#ifndef LQOLAB_OPTIMIZER_COST_MODEL_H_
#define LQOLAB_OPTIMIZER_COST_MODEL_H_

#include "exec/db_context.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "stats/cardinality_estimator.h"

namespace lqolab::optimizer {

/// Cost added to paths using a disabled operator (PostgreSQL's
/// disable_cost idea: the path remains usable as a last resort).
inline constexpr double kDisabledPathCost = 1.0e15;

/// Infinite cost marker for structurally impossible paths.
inline constexpr double kImpossibleCost = 1.0e30;

/// Result of costing a base-relation access path.
struct ScanChoice {
  ScanType type = ScanType::kSeq;
  catalog::ColumnId index_column = catalog::kInvalidColumn;
  double cost = kImpossibleCost;
};

/// Planner cost model. Mirrors the executor's virtual-time formulas
/// (exec/cost_constants.h) but evaluates them over ESTIMATED cardinalities
/// and an assumed cache-residency fraction derived from
/// effective_cache_size — so estimated costs and measured latencies live on
/// the same scale, yet diverge exactly where the estimator errs.
class CostModel {
 public:
  CostModel(const exec::DbContext* ctx,
            const stats::CardinalityEstimator* estimator);

  /// Cost of scanning `alias` with a specific scan type. Returns
  /// kImpossibleCost if the type is not applicable (no usable index /
  /// predicate); adds kDisabledPathCost if disabled by configuration.
  ScanChoice ScanCost(const query::Query& q, query::AliasId alias,
                      ScanType type) const;

  /// Cheapest allowed access path for `alias` under the current config.
  ScanChoice BestScan(const query::Query& q, query::AliasId alias) const;

  /// Cost of joining estimated inputs with `algo`, excluding child costs.
  /// For kIndexNlj, `inner_alias`/`probe_column` identify the probed base
  /// relation and its index (from CanIndexNlj); the inner's scan cost is
  /// not charged (the probe replaces it). Other algorithms ignore them.
  double JoinCost(const query::Query& q, JoinAlgo algo, double rows_left,
                  double rows_right, double rows_out,
                  query::AliasId inner_alias = -1,
                  catalog::ColumnId probe_column =
                      catalog::kInvalidColumn) const;

  /// Whether an index-NLJ with `inner` as the probed side is structurally
  /// possible (inner is a single base relation with an index on some edge
  /// column towards `outer_mask`). Returns the probe column.
  bool CanIndexNlj(const query::Query& q, query::AliasMask outer_mask,
                   query::AliasId inner, catalog::ColumnId* probe_column) const;

  /// Fraction of pages the planner assumes to be cached, from
  /// effective_cache_size relative to the total database size.
  double CachedFraction() const;

  const stats::CardinalityEstimator& estimator() const { return *estimator_; }

 private:
  double EstimatedPageCost(bool sequential) const;

  const exec::DbContext* ctx_;
  const stats::CardinalityEstimator* estimator_;
};

}  // namespace lqolab::optimizer

#endif  // LQOLAB_OPTIMIZER_COST_MODEL_H_
