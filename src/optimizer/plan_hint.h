#ifndef LQOLAB_OPTIMIZER_PLAN_HINT_H_
#define LQOLAB_OPTIMIZER_PLAN_HINT_H_

#include <string>

#include "optimizer/physical_plan.h"
#include "query/query.h"

namespace lqolab::optimizer {

/// Lossless textual plan hints (the pg_hint_plan-style exchange format of
/// the serving and fuzzing layers). The grammar extends ToString() with the
/// probe column of index-driven scans, which ToString drops:
///
///   plan := node
///   node := scan | join
///   scan := ScanTypeName '(' alias ['#' column_id] ')'
///   join := JoinAlgoName '(' node ', ' node ')'
///
/// e.g. "HashJoin(SeqScan(t), IndexNlj(SeqScan(mc), IndexScan(cn#1)))".
/// RenderPlanHint + ParsePlanHint round-trip every valid plan exactly
/// (same node array, same root).
std::string RenderPlanHint(const PhysicalPlan& plan, const query::Query& q);

/// Parses a hint back into a plan, resolving aliases against `q`. The tree
/// is rebuilt in post order (left subtree, right subtree, join), matching
/// how every planner lays out its node array. Returns false and sets
/// `*error` on malformed input, unknown aliases or join algorithms;
/// `*out` is unspecified on failure.
bool ParsePlanHint(const std::string& hint, const query::Query& q,
                   PhysicalPlan* out, std::string* error);

}  // namespace lqolab::optimizer

#endif  // LQOLAB_OPTIMIZER_PLAN_HINT_H_
