#ifndef LQOLAB_OPTIMIZER_PLANNER_H_
#define LQOLAB_OPTIMIZER_PLANNER_H_

#include <cstdint>
#include <vector>

#include "exec/db_context.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "stats/cardinality_estimator.h"

namespace lqolab::optimizer {

/// Output of query planning.
struct PlanningResult {
  PhysicalPlan plan;
  /// Estimated total cost (virtual nanoseconds under the cost model).
  double estimated_cost = 0.0;
  /// DP subproblems / GEQO evaluations performed; drives the modeled
  /// planning time.
  int64_t planner_steps = 0;
  bool used_geqo = false;
};

/// GEQO tuning knobs (pglite's equivalent of geqo_pool_size/geqo_generations).
struct GeqoParams {
  int32_t pool_size = 40;
  int32_t generations = 60;
  double mutation_rate = 0.15;
  uint64_t seed = 0;  ///< Combined with the query fingerprint.
};

/// The pglite query planner: System-R style dynamic programming over
/// connected subgraphs (bushy or left-deep), switching to the genetic
/// optimizer (GEQO) at config.geqo_threshold relations, exactly like
/// PostgreSQL. All decisions are made on ESTIMATED cardinalities.
///
/// When metrics collection is enabled on the calling thread (obs/metrics.h),
/// planning emits the planner_* counters — invocations, DP subproblems,
/// GEQO generations and plans costed — without affecting the modeled
/// planning time.
class Planner {
 public:
  explicit Planner(const exec::DbContext* ctx);

  /// Plans under the context's configuration (DP / GEQO / FROM-order
  /// depending on geqo, geqo_threshold and join_collapse_limit).
  PlanningResult Plan(const query::Query& q) const;

  /// Exhaustive DP (bushy trees when `bushy`).
  PlanningResult PlanDynamicProgramming(const query::Query& q,
                                        bool bushy) const;

  /// Genetic planning over left-deep join orders.
  PlanningResult PlanGenetic(const query::Query& q,
                             const GeqoParams& params) const;

  /// Greedily picks physical operators for a fixed left-deep join order and
  /// returns its estimated cost (kImpossibleCost when the order contains a
  /// cross product). Used by GEQO fitness and by learned-optimizer search
  /// spaces.
  double CostJoinOrder(const query::Query& q,
                       const std::vector<query::AliasId>& order,
                       PhysicalPlan* plan_out, int64_t* steps) const;

  /// Estimated cost of an arbitrary physical plan (the cost model applied
  /// node by node over estimated cardinalities). Used by LQOs that pretrain
  /// on costs (Balsa) or rank subplans (LEON).
  double EstimatePlanCost(const query::Query& q,
                          const PhysicalPlan& plan) const;

  const CostModel& cost_model() const { return cost_model_; }
  const stats::CardinalityEstimator& estimator() const { return estimator_; }

 private:
  const exec::DbContext* ctx_;
  stats::CardinalityEstimator estimator_;
  CostModel cost_model_;
};

}  // namespace lqolab::optimizer

#endif  // LQOLAB_OPTIMIZER_PLANNER_H_
