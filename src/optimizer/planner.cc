#include "optimizer/planner.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "exec/cost_constants.h"  // Spooled-intermediate re-read pricing.
#include "exec/oracle.h"          // QueryFingerprint for GEQO seeding.
#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::optimizer {

using query::AliasId;
using query::AliasMask;
using query::Query;

namespace {

/// DP table entry for one connected subset.
struct DpEntry {
  bool valid = false;
  double cost = kImpossibleCost;
  double rows = 0.0;
  // Join reconstruction.
  AliasMask left = 0;
  AliasMask right = 0;
  JoinAlgo algo = JoinAlgo::kHash;
  catalog::ColumnId probe_column = catalog::kInvalidColumn;
  // Scan reconstruction (singletons).
  ScanChoice scan;
};

/// Re-read cost of a spooled intermediate for `mask`, or kImpossibleCost
/// when none exists. During adaptive re-planning (docs/overload.md) the
/// subsets an abandoned attempt materialized are readable at per-tuple
/// spool cost instead of being recomputed, and a plan whose subtree covers
/// exactly such a mask executes as that cheap read (exec/executor.cc).
double SpoolReadCost(const exec::DbContext* ctx, AliasMask mask) {
  if (ctx->spooled == nullptr) return kImpossibleCost;
  const auto it = ctx->spooled->find(mask);
  if (it == ctx->spooled->end()) return kImpossibleCost;
  return static_cast<double>(it->second) *
         static_cast<double>(exec::cost::kScanTupleNs);
}

int32_t BuildPlanFromDp(const std::vector<DpEntry>& dp, const Query& q,
                        AliasMask mask, PhysicalPlan* plan) {
  const DpEntry& entry = dp[mask];
  LQOLAB_CHECK(entry.valid);
  if (std::popcount(mask) == 1) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(mask));
    return plan->AddScan(alias, entry.scan.type, entry.scan.index_column);
  }
  const int32_t left = BuildPlanFromDp(dp, q, entry.left, plan);
  int32_t right;
  if (entry.algo == JoinAlgo::kIndexNlj) {
    const AliasId inner =
        static_cast<AliasId>(std::countr_zero(entry.right));
    right = plan->AddScan(inner, ScanType::kIndex, entry.probe_column);
  } else {
    right = BuildPlanFromDp(dp, q, entry.right, plan);
  }
  return plan->AddJoin(entry.algo, left, right);
}

}  // namespace

Planner::Planner(const exec::DbContext* ctx)
    : ctx_(ctx), estimator_(ctx), cost_model_(ctx, &estimator_) {}

PlanningResult Planner::Plan(const Query& q) const {
  obs::Count(obs::Counter::kPlannerInvocations);
  const auto& cfg = ctx_->config;
  if (q.relation_count() >= 2 && cfg.join_collapse_limit <= 1) {
    // Join order follows the FROM clause.
    std::vector<AliasId> order(static_cast<size_t>(q.relation_count()));
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      order[static_cast<size_t>(a)] = a;
    }
    PlanningResult result;
    result.estimated_cost =
        CostJoinOrder(q, order, &result.plan, &result.planner_steps);
    LQOLAB_CHECK_LT(result.estimated_cost, kImpossibleCost);
    return result;
  }
  if (cfg.geqo && q.relation_count() >= cfg.geqo_threshold) {
    GeqoParams params;
    params.seed = cfg.geqo_seed;
    return PlanGenetic(q, params);
  }
  return PlanDynamicProgramming(q, cfg.enable_bushy);
}

PlanningResult Planner::PlanDynamicProgramming(const Query& q,
                                               bool bushy) const {
  const int32_t n = q.relation_count();
  LQOLAB_CHECK_GE(n, 1);
  LQOLAB_CHECK_LE(n, 22);  // DP is exponential; GEQO covers larger queries.
  const AliasMask full = q.FullMask();
  std::vector<DpEntry> dp(static_cast<size_t>(full) + 1);
  PlanningResult result;

  // Base relations.
  for (AliasId a = 0; a < n; ++a) {
    DpEntry& entry = dp[query::MaskOf(a)];
    entry.valid = true;
    entry.scan = cost_model_.BestScan(q, a);
    entry.cost = std::min(entry.scan.cost,
                          SpoolReadCost(ctx_, query::MaskOf(a)));
    entry.rows = estimator_.EstimateBaseRows(q, a);
    ++result.planner_steps;
  }

  for (AliasMask mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2 || !q.IsConnected(mask)) continue;
    DpEntry& entry = dp[mask];
    const double rows_out = estimator_.EstimateJoinRows(q, mask);

    auto consider = [&](AliasMask s1, AliasMask s2) {
      const DpEntry& left = dp[s1];
      const DpEntry& right = dp[s2];
      if (!left.valid || !right.valid) return;
      if (!q.HasEdgeBetween(s1, s2)) return;
      ++result.planner_steps;
      for (JoinAlgo algo :
           {JoinAlgo::kHash, JoinAlgo::kNestLoop, JoinAlgo::kMerge}) {
        const double cost =
            left.cost + right.cost +
            cost_model_.JoinCost(q, algo, left.rows, right.rows, rows_out);
        if (cost < entry.cost) {
          entry.valid = true;
          entry.cost = cost;
          entry.rows = rows_out;
          entry.left = s1;
          entry.right = s2;
          entry.algo = algo;
          entry.probe_column = catalog::kInvalidColumn;
        }
      }
      if (std::popcount(s2) == 1) {
        const AliasId inner = static_cast<AliasId>(std::countr_zero(s2));
        catalog::ColumnId probe_column = catalog::kInvalidColumn;
        if (cost_model_.CanIndexNlj(q, s1, inner, &probe_column)) {
          const double cost =
              left.cost + cost_model_.JoinCost(q, JoinAlgo::kIndexNlj,
                                               left.rows, right.rows, rows_out,
                                               inner, probe_column);
          if (cost < entry.cost) {
            entry.valid = true;
            entry.cost = cost;
            entry.rows = rows_out;
            entry.left = s1;
            entry.right = s2;
            entry.algo = JoinAlgo::kIndexNlj;
            entry.probe_column = probe_column;
          }
        }
      }
    };

    if (bushy) {
      // All connected complementary pairs; both (s1,s2) role orders come up
      // naturally as the submask enumeration visits each side.
      for (AliasMask s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
        const AliasMask s2 = mask ^ s1;
        if (s2 == 0) continue;
        consider(s1, s2);
      }
    } else {
      // Left-deep: extend by a single relation on the right; also consider
      // the single relation on the left for the first join.
      AliasMask bits = mask;
      while (bits != 0) {
        const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
        bits &= bits - 1;
        const AliasMask single = query::MaskOf(alias);
        const AliasMask rest = mask ^ single;
        consider(rest, single);
        if (std::popcount(rest) == 1) consider(single, rest);
      }
    }
    // A spooled intermediate makes this whole subset readable at re-read
    // cost; supersets (numerically larger masks) see the clamped value.
    if (entry.valid) {
      entry.cost = std::min(entry.cost, SpoolReadCost(ctx_, mask));
    }
  }

  const DpEntry& top = dp[full];
  LQOLAB_CHECK_MSG(top.valid, "no DP plan for " << q.id);
  result.estimated_cost = top.cost;
  if (n == 1) {
    result.plan.AddScan(0, top.scan.type, top.scan.index_column);
  } else {
    BuildPlanFromDp(dp, q, full, &result.plan);
  }
  result.plan.Validate(q);
  obs::Count(obs::Counter::kPlannerDpSubproblems, result.planner_steps);
  return result;
}

double Planner::CostJoinOrder(const Query& q,
                              const std::vector<AliasId>& order,
                              PhysicalPlan* plan_out, int64_t* steps) const {
  LQOLAB_CHECK_EQ(order.size(), static_cast<size_t>(q.relation_count()));
  PhysicalPlan plan;
  const ScanChoice first = cost_model_.BestScan(q, order[0]);
  int32_t current = plan.AddScan(order[0], first.type, first.index_column);
  double total = std::min(first.cost, SpoolReadCost(ctx_, query::MaskOf(order[0])));
  AliasMask mask = query::MaskOf(order[0]);
  double rows_left = estimator_.EstimateBaseRows(q, order[0]);

  for (size_t i = 1; i < order.size(); ++i) {
    const AliasId next = order[i];
    const AliasMask next_mask = query::MaskOf(next);
    if (!q.HasEdgeBetween(mask, next_mask)) return kImpossibleCost;
    const double rows_right = estimator_.EstimateBaseRows(q, next);
    const double rows_out = estimator_.EstimateJoinRows(q, mask | next_mask);
    const ScanChoice scan = cost_model_.BestScan(q, next);
    if (steps != nullptr) ++*steps;

    double best_cost = kImpossibleCost;
    JoinAlgo best_algo = JoinAlgo::kHash;
    catalog::ColumnId best_probe = catalog::kInvalidColumn;
    for (JoinAlgo algo :
         {JoinAlgo::kHash, JoinAlgo::kNestLoop, JoinAlgo::kMerge}) {
      const double cost =
          scan.cost +
          cost_model_.JoinCost(q, algo, rows_left, rows_right, rows_out);
      if (cost < best_cost) {
        best_cost = cost;
        best_algo = algo;
      }
    }
    catalog::ColumnId probe_column = catalog::kInvalidColumn;
    if (cost_model_.CanIndexNlj(q, mask, next, &probe_column)) {
      const double cost = cost_model_.JoinCost(
          q, JoinAlgo::kIndexNlj, rows_left, rows_right, rows_out, next,
          probe_column);
      if (cost < best_cost) {
        best_cost = cost;
        best_algo = JoinAlgo::kIndexNlj;
        best_probe = probe_column;
      }
    }
    const int32_t right =
        best_algo == JoinAlgo::kIndexNlj
            ? plan.AddScan(next, ScanType::kIndex, best_probe)
            : plan.AddScan(next, scan.type, scan.index_column);
    current = plan.AddJoin(best_algo, current, right);
    total += best_cost;
    mask |= next_mask;
    // A spooled intermediate covering the prefix replaces everything paid
    // so far with one cheap re-read (the executor elides the subtree).
    total = std::min(total, SpoolReadCost(ctx_, mask));
    rows_left = rows_out;
  }
  if (plan_out != nullptr) {
    plan.root = current;
    *plan_out = std::move(plan);
  }
  return total;
}

PlanningResult Planner::PlanGenetic(const Query& q,
                                    const GeqoParams& params) const {
  const int32_t n = q.relation_count();
  LQOLAB_CHECK_GE(n, 2);
  util::Rng rng(params.seed ^ exec::QueryFingerprint(q));
  PlanningResult result;
  result.used_geqo = true;

  // A random connected order: start anywhere, extend by a random adjacent
  // unvisited relation.
  auto random_order = [&]() {
    std::vector<AliasId> order;
    order.push_back(
        static_cast<AliasId>(rng.UniformInt(0, n - 1)));
    AliasMask mask = query::MaskOf(order[0]);
    while (static_cast<int32_t>(order.size()) < n) {
      std::vector<AliasId> candidates;
      for (AliasId a = 0; a < n; ++a) {
        if ((mask & query::MaskOf(a)) == 0 &&
            (q.AdjacencyMask(a) & mask) != 0) {
          candidates.push_back(a);
        }
      }
      LQOLAB_CHECK(!candidates.empty());
      const AliasId pick = candidates[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
      order.push_back(pick);
      mask |= query::MaskOf(pick);
    }
    return order;
  };

  // Turns a preference sequence into a valid connected order: repeatedly
  // take the earliest preferred relation adjacent to the current prefix.
  auto repair = [&](const std::vector<AliasId>& preference) {
    std::vector<AliasId> order;
    std::vector<char> used(static_cast<size_t>(n), 0);
    order.push_back(preference[0]);
    used[static_cast<size_t>(preference[0])] = 1;
    AliasMask mask = query::MaskOf(preference[0]);
    while (static_cast<int32_t>(order.size()) < n) {
      AliasId chosen = -1;
      for (AliasId a : preference) {
        if (!used[static_cast<size_t>(a)] &&
            (q.AdjacencyMask(a) & mask) != 0) {
          chosen = a;
          break;
        }
      }
      LQOLAB_CHECK_GE(chosen, 0);
      order.push_back(chosen);
      used[static_cast<size_t>(chosen)] = 1;
      mask |= query::MaskOf(chosen);
    }
    return order;
  };

  struct Individual {
    std::vector<AliasId> order;
    double fitness = kImpossibleCost;
  };
  int64_t plans_costed = 0;
  auto evaluate = [&](Individual* ind) {
    ind->fitness = CostJoinOrder(q, ind->order, nullptr,
                                 &result.planner_steps);
    ++plans_costed;
  };

  std::vector<Individual> population(
      static_cast<size_t>(params.pool_size));
  for (auto& ind : population) {
    ind.order = random_order();
    evaluate(&ind);
  }
  auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };
  std::sort(population.begin(), population.end(), by_fitness);

  for (int32_t gen = 0; gen < params.generations; ++gen) {
    const size_t survivors = population.size() / 2;
    for (size_t i = survivors; i < population.size(); ++i) {
      // Order crossover with connectivity repair: child prefers a prefix of
      // parent A, then parent B's order.
      const auto& pa =
          population[static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(survivors) - 1))]
              .order;
      const auto& pb =
          population[static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(survivors) - 1))]
              .order;
      const size_t cut =
          static_cast<size_t>(rng.UniformInt(1, n - 1));
      std::vector<AliasId> preference(pa.begin(),
                                      pa.begin() + static_cast<long>(cut));
      for (AliasId a : pb) {
        if (std::find(preference.begin(), preference.end(), a) ==
            preference.end()) {
          preference.push_back(a);
        }
      }
      Individual child;
      child.order = repair(preference);
      if (rng.Uniform() < params.mutation_rate) {
        const size_t x = static_cast<size_t>(rng.UniformInt(0, n - 1));
        const size_t y = static_cast<size_t>(rng.UniformInt(0, n - 1));
        std::swap(child.order[x], child.order[y]);
        child.order = repair(child.order);
      }
      evaluate(&child);
      population[i] = std::move(child);
    }
    std::sort(population.begin(), population.end(), by_fitness);
  }

  const Individual& best = population.front();
  LQOLAB_CHECK_LT(best.fitness, kImpossibleCost);
  result.estimated_cost =
      CostJoinOrder(q, best.order, &result.plan, nullptr);
  result.plan.Validate(q);
  obs::Count(obs::Counter::kPlannerGeqoGenerations, params.generations);
  obs::Count(obs::Counter::kPlannerGeqoPlansCosted, plans_costed);
  return result;
}

double Planner::EstimatePlanCost(const Query& q,
                                 const PhysicalPlan& plan) const {
  LQOLAB_CHECK(!plan.empty());
  double total = 0.0;
  // Inner scans of index-NLJ joins are probed, not scanned.
  std::vector<char> skip(plan.nodes.size(), 0);
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.type == PlanNode::Type::kJoin && node.algo == JoinAlgo::kIndexNlj) {
      skip[static_cast<size_t>(node.right)] = 1;
    }
  }
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.type == PlanNode::Type::kScan) {
      if (skip[i]) continue;
      const ScanChoice choice = cost_model_.ScanCost(q, node.alias,
                                                     node.scan_type);
      if (choice.cost >= kImpossibleCost) return kImpossibleCost;
      total += choice.cost;
      continue;
    }
    const PlanNode& left = plan.node(node.left);
    const PlanNode& right = plan.node(node.right);
    const double rows_left = estimator_.EstimateJoinRows(q, left.mask);
    const double rows_right = estimator_.EstimateJoinRows(q, right.mask);
    const double rows_out = estimator_.EstimateJoinRows(q, node.mask);
    if (node.algo == JoinAlgo::kIndexNlj) {
      LQOLAB_CHECK(right.type == PlanNode::Type::kScan);
      catalog::ColumnId probe_column = catalog::kInvalidColumn;
      if (!cost_model_.CanIndexNlj(q, left.mask, right.alias, &probe_column)) {
        return kImpossibleCost;
      }
      total += cost_model_.JoinCost(q, JoinAlgo::kIndexNlj, rows_left,
                                    rows_right, rows_out, right.alias,
                                    probe_column);
    } else {
      total += cost_model_.JoinCost(q, node.algo, rows_left, rows_right,
                                    rows_out);
    }
  }
  return total;
}

}  // namespace lqolab::optimizer
