#include "optimizer/plan_hint.h"

#include <cctype>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "util/check.h"

namespace lqolab::optimizer {

namespace {

/// Recursive-descent parser over the hint grammar (see plan_hint.h).
class HintParser {
 public:
  HintParser(const std::string& text, const query::Query& q,
             PhysicalPlan* out)
      : text_(text), q_(q), out_(out) {}

  bool Parse(std::string* error) {
    const int32_t root = ParseNode();
    if (root < 0) {
      *error = error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing input at offset " + std::to_string(pos_);
      return false;
    }
    out_->root = root;
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    error_ = std::string("expected '") + c + "' at offset " +
             std::to_string(pos_);
    return false;
  }

  /// Identifier: [A-Za-z0-9_]+ (covers operator names and aliases).
  std::string ParseIdent() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Returns the new node's index or -1 on error (error_ set).
  int32_t ParseNode() {
    const std::string name = ParseIdent();
    if (name.empty()) {
      error_ = "expected operator name at offset " + std::to_string(pos_);
      return -1;
    }
    for (JoinAlgo algo : {JoinAlgo::kHash, JoinAlgo::kNestLoop,
                          JoinAlgo::kIndexNlj, JoinAlgo::kMerge}) {
      if (name == JoinAlgoName(algo)) return ParseJoin(algo);
    }
    for (ScanType type : {ScanType::kSeq, ScanType::kIndex, ScanType::kBitmap,
                          ScanType::kTid}) {
      if (name == ScanTypeName(type)) return ParseScan(type);
    }
    error_ = "unknown operator '" + name + "'";
    return -1;
  }

  int32_t ParseJoin(JoinAlgo algo) {
    if (!Consume('(')) return -1;
    const int32_t left = ParseNode();
    if (left < 0) return -1;
    if (!Consume(',')) return -1;
    const int32_t right = ParseNode();
    if (right < 0) return -1;
    if (!Consume(')')) return -1;
    if ((out_->node(left).mask & out_->node(right).mask) != 0) {
      error_ = "join inputs overlap";
      return -1;
    }
    return out_->AddJoin(algo, left, right);
  }

  int32_t ParseScan(ScanType type) {
    if (!Consume('(')) return -1;
    const std::string alias = ParseIdent();
    query::AliasId id = -1;
    for (size_t i = 0; i < q_.relations.size(); ++i) {
      if (q_.relations[i].alias == alias) {
        id = static_cast<query::AliasId>(i);
        break;
      }
    }
    if (id < 0) {
      error_ = "unknown alias '" + alias + "'";
      return -1;
    }
    catalog::ColumnId index_column = catalog::kInvalidColumn;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '#') {
      ++pos_;
      const std::string digits = ParseIdent();
      char* end = nullptr;
      const long value = std::strtol(digits.c_str(), &end, 10);
      if (digits.empty() || *end != '\0') {
        error_ = "bad index column '" + digits + "'";
        return -1;
      }
      index_column = static_cast<catalog::ColumnId>(value);
    }
    if (!Consume(')')) return -1;
    return out_->AddScan(id, type, index_column);
  }

  const std::string& text_;
  const query::Query& q_;
  PhysicalPlan* out_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string RenderPlanHint(const PhysicalPlan& plan, const query::Query& q) {
  LQOLAB_CHECK(!plan.empty());
  std::ostringstream os;
  std::function<void(int32_t)> render = [&](int32_t i) {
    const PlanNode& n = plan.node(i);
    if (n.type == PlanNode::Type::kScan) {
      os << ScanTypeName(n.scan_type) << "("
         << q.relations[static_cast<size_t>(n.alias)].alias;
      if (n.index_column != catalog::kInvalidColumn) {
        os << "#" << n.index_column;
      }
      os << ")";
      return;
    }
    os << JoinAlgoName(n.algo) << "(";
    render(n.left);
    os << ", ";
    render(n.right);
    os << ")";
  };
  render(plan.root);
  return os.str();
}

bool ParsePlanHint(const std::string& hint, const query::Query& q,
                   PhysicalPlan* out, std::string* error) {
  LQOLAB_CHECK(out != nullptr);
  LQOLAB_CHECK(error != nullptr);
  *out = PhysicalPlan();
  HintParser parser(hint, q, out);
  return parser.Parse(error);
}

}  // namespace lqolab::optimizer
