#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "exec/cost_constants.h"
#include "util/check.h"

namespace lqolab::optimizer {

// The planner's cost model deliberately uses the SCALAR per-tuple constants
// (cost::kScanTupleNs etc., i.e. cost::kScalarTupleCosts) regardless of
// DbConfig::vectorized_exec. Planner costs are unit-free rankings compared
// only against each other, and pglite's real planner would not re-cost
// plans per executor engine either; pinning them keeps plan choices, golden
// fixtures (tests/golden/plans.txt) and cached estimates byte-stable across
// engine flips. Only the executor's virtual-time charges switch engines,
// via cost::TupleCostsFor (exec/executor.cc).
namespace cost = exec::cost;
using query::AliasId;
using query::AliasMask;
using query::Predicate;
using query::Query;

namespace {

double SafeLog2(double x) { return x < 2.0 ? 1.0 : std::log2(x); }

}  // namespace

CostModel::CostModel(const exec::DbContext* ctx,
                     const stats::CardinalityEstimator* estimator)
    : ctx_(ctx), estimator_(estimator) {
  LQOLAB_CHECK(ctx != nullptr);
  LQOLAB_CHECK(estimator != nullptr);
}

double CostModel::CachedFraction() const {
  int64_t db_pages = 0;
  for (const auto& table : ctx_->tables()) db_pages += table->page_count();
  if (db_pages == 0) return 1.0;
  const int64_t cache_pages =
      engine::ScaledBytes(ctx_->config.effective_cache_size_mb) /
      storage::kPageSizeBytes;
  return std::min(1.0, static_cast<double>(cache_pages) /
                           static_cast<double>(db_pages));
}

double CostModel::EstimatedPageCost(bool sequential) const {
  const double cached = CachedFraction();
  const double miss_cost = static_cast<double>(
      sequential ? cost::kDiskSeqReadNs : cost::kDiskReadNs);
  return cached * static_cast<double>(cost::kSharedHitNs) +
         (1.0 - cached) * miss_cost;
}

ScanChoice CostModel::ScanCost(const Query& q, AliasId alias,
                               ScanType type) const {
  const catalog::TableId table_id =
      q.relations[static_cast<size_t>(alias)].table;
  const storage::Table& table = ctx_->table(table_id);
  const auto preds = q.PredicatesFor(alias);
  const double total_rows = static_cast<double>(table.row_count());
  const double pages = static_cast<double>(table.page_count());
  const auto& cfg = ctx_->config;

  ScanChoice choice;
  choice.type = type;

  switch (type) {
    case ScanType::kSeq: {
      choice.cost = pages * EstimatedPageCost(/*sequential=*/true) +
                    total_rows * static_cast<double>(
                                     cost::kScanTupleNs +
                                     static_cast<int64_t>(preds.size()) *
                                         cost::kPredEvalNs);
      if (!cfg.enable_seqscan) choice.cost += kDisabledPathCost;
      return choice;
    }
    case ScanType::kIndex:
    case ScanType::kBitmap: {
      // Pick the most selective indexed predicate as the driver.
      double best_driver_cost = kImpossibleCost;
      for (const Predicate* pred : preds) {
        if (pred->kind == Predicate::Kind::kIsNull ||
            pred->kind == Predicate::Kind::kNotNull) {
          continue;
        }
        const storage::Index* index = ctx_->FindIndex(table_id, pred->column);
        if (index == nullptr) continue;
        const double sel = estimator_->PredicateSelectivity(q, *pred);
        const double matches = std::max(1.0, sel * total_rows);
        double c = static_cast<double>(index->height() *
                                       cost::kIndexDescentNs);
        c += std::max(1.0, matches / 256.0) *
             EstimatedPageCost(/*sequential=*/true);  // leaf pages
        if (type == ScanType::kIndex) {
          // Random heap fetch per match.
          c += matches * (static_cast<double>(cost::kIndexRowFetchNs) +
                          EstimatedPageCost(/*sequential=*/false));
        } else {
          // Bitmap: page-ordered heap access over distinct pages.
          const double heap_pages = std::min(pages, matches);
          c += matches * static_cast<double>(cost::kBitmapBuildNs +
                                             cost::kBitmapRowFetchNs);
          c += heap_pages * EstimatedPageCost(/*sequential=*/true);
        }
        c += matches * static_cast<double>(preds.size() - 1) *
             static_cast<double>(cost::kPredEvalNs);
        if (c < best_driver_cost) {
          best_driver_cost = c;
          choice.index_column = pred->column;
        }
      }
      if (best_driver_cost >= kImpossibleCost) return choice;  // impossible
      choice.cost = best_driver_cost;
      const bool enabled = type == ScanType::kIndex ? cfg.enable_indexscan
                                                    : cfg.enable_bitmapscan;
      if (!enabled) choice.cost += kDisabledPathCost;
      return choice;
    }
    case ScanType::kTid: {
      for (const Predicate* pred : preds) {
        if (pred->column == 0 && (pred->kind == Predicate::Kind::kEq ||
                                  pred->kind == Predicate::Kind::kIn)) {
          const double matches = std::max(
              1.0, static_cast<double>(pred->int_values.size() +
                                       pred->str_values.size()));
          choice.cost = matches * (static_cast<double>(cost::kTidFetchNs) +
                                   EstimatedPageCost(/*sequential=*/false));
          if (!cfg.enable_tidscan) choice.cost += kDisabledPathCost;
          return choice;
        }
      }
      return choice;  // impossible
    }
  }
  return choice;
}

ScanChoice CostModel::BestScan(const Query& q, AliasId alias) const {
  ScanChoice best;
  for (ScanType type : {ScanType::kSeq, ScanType::kIndex, ScanType::kBitmap,
                        ScanType::kTid}) {
    const ScanChoice candidate = ScanCost(q, alias, type);
    if (candidate.cost < best.cost) best = candidate;
  }
  LQOLAB_CHECK_LT(best.cost, kImpossibleCost);
  return best;
}

bool CostModel::CanIndexNlj(const Query& q, AliasMask outer_mask,
                            AliasId inner,
                            catalog::ColumnId* probe_column) const {
  const auto edges = q.EdgesBetween(outer_mask, query::MaskOf(inner));
  if (edges.empty()) return false;
  const catalog::TableId inner_table =
      q.relations[static_cast<size_t>(inner)].table;
  for (const auto& edge : edges) {
    if (ctx_->FindIndex(inner_table, edge.right_column) != nullptr) {
      if (probe_column != nullptr) *probe_column = edge.right_column;
      return true;
    }
  }
  return false;
}

double CostModel::JoinCost(const Query& q, JoinAlgo algo, double rows_left,
                           double rows_right, double rows_out,
                           AliasId inner_alias,
                           catalog::ColumnId probe_column) const {
  const auto& cfg = ctx_->config;
  const double work_mem_bytes =
      static_cast<double>(engine::ScaledBytes(cfg.work_mem_mb));
  double c = rows_out * static_cast<double>(cost::kJoinOutputNs);
  switch (algo) {
    case JoinAlgo::kHash: {
      c += rows_right * static_cast<double>(cost::kHashBuildNs) +
           rows_left * static_cast<double>(cost::kHashProbeNs);
      const double batches = std::max(
          1.0, rows_right * cost::kBytesPerTupleSlot / work_mem_bytes);
      if (batches > 1.0) {
        c *= 1.0 + cost::kSpillPassPenalty * SafeLog2(batches);
        c += 2.0 * (rows_left + rows_right) / storage::kRowsPerPage *
             static_cast<double>(cost::kDiskSeqReadNs);
      }
      if (!cfg.enable_hashjoin) c += kDisabledPathCost;
      return c;
    }
    case JoinAlgo::kNestLoop: {
      c += rows_left * rows_right * static_cast<double>(cost::kNlCompareNs);
      if (!cfg.enable_nestloop) c += kDisabledPathCost;
      return c;
    }
    case JoinAlgo::kIndexNlj: {
      LQOLAB_CHECK_GE(inner_alias, 0);
      const catalog::TableId inner_table =
          q.relations[static_cast<size_t>(inner_alias)].table;
      if (probe_column == catalog::kInvalidColumn) return kImpossibleCost;
      const storage::Index* index = ctx_->FindIndex(inner_table, probe_column);
      LQOLAB_CHECK(index != nullptr);
      const auto& cs = ctx_->column_stats(inner_table, probe_column);
      const double avg_matches =
          cs.n_distinct > 0
              ? static_cast<double>(index->entry_count()) /
                    static_cast<double>(cs.n_distinct)
              : 1.0;
      const double fetched = std::max(rows_out, rows_left * avg_matches);
      c += rows_left * static_cast<double>(index->height() *
                                           cost::kIndexDescentNs);
      c += fetched * (static_cast<double>(cost::kIndexRowFetchNs) +
                      EstimatedPageCost(/*sequential=*/false));
      if (!cfg.enable_nestloop) c += kDisabledPathCost;
      return c;
    }
    case JoinAlgo::kMerge: {
      auto sort_cost = [&](double rows) {
        double s = rows * SafeLog2(rows) * cost::kSortItemNs;
        if (rows * cost::kBytesPerTupleSlot > work_mem_bytes) {
          s *= 1.0 + cost::kSpillPassPenalty;
          s += 2.0 * rows / storage::kRowsPerPage *
               static_cast<double>(cost::kDiskSeqReadNs);
        }
        return s;
      };
      c += sort_cost(rows_left) + sort_cost(rows_right);
      c += (rows_left + rows_right) * static_cast<double>(cost::kMergeStepNs);
      if (!cfg.enable_mergejoin) c += kDisabledPathCost;
      return c;
    }
  }
  return kImpossibleCost;
}

}  // namespace lqolab::optimizer
