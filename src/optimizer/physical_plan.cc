#include "optimizer/physical_plan.h"

#include <functional>
#include <sstream>

#include "util/check.h"

namespace lqolab::optimizer {

const char* ScanTypeName(ScanType type) {
  switch (type) {
    case ScanType::kSeq: return "SeqScan";
    case ScanType::kIndex: return "IndexScan";
    case ScanType::kBitmap: return "BitmapScan";
    case ScanType::kTid: return "TidScan";
  }
  return "?";
}

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kHash: return "HashJoin";
    case JoinAlgo::kNestLoop: return "NestLoop";
    case JoinAlgo::kIndexNlj: return "IndexNlj";
    case JoinAlgo::kMerge: return "MergeJoin";
  }
  return "?";
}

int32_t PhysicalPlan::AddScan(query::AliasId alias, ScanType type,
                              catalog::ColumnId index_column) {
  PlanNode node;
  node.type = PlanNode::Type::kScan;
  node.alias = alias;
  node.scan_type = type;
  node.index_column = index_column;
  node.mask = query::MaskOf(alias);
  nodes.push_back(node);
  root = static_cast<int32_t>(nodes.size()) - 1;
  return root;
}

int32_t PhysicalPlan::AddJoin(JoinAlgo algo, int32_t left, int32_t right) {
  LQOLAB_CHECK_GE(left, 0);
  LQOLAB_CHECK_GE(right, 0);
  PlanNode node;
  node.type = PlanNode::Type::kJoin;
  node.algo = algo;
  node.left = left;
  node.right = right;
  node.mask = nodes[static_cast<size_t>(left)].mask |
              nodes[static_cast<size_t>(right)].mask;
  LQOLAB_CHECK_EQ(nodes[static_cast<size_t>(left)].mask &
                      nodes[static_cast<size_t>(right)].mask,
                  0u);
  nodes.push_back(node);
  root = static_cast<int32_t>(nodes.size()) - 1;
  return root;
}

int32_t PhysicalPlan::join_count() const {
  int32_t count = 0;
  for (const auto& node : nodes) {
    if (node.type == PlanNode::Type::kJoin) ++count;
  }
  return count;
}

bool PhysicalPlan::IsLeftDeep() const {
  for (const auto& node : nodes) {
    if (node.type == PlanNode::Type::kJoin &&
        nodes[static_cast<size_t>(node.right)].type != PlanNode::Type::kScan) {
      return false;
    }
  }
  return true;
}

void PhysicalPlan::Validate(const query::Query& q) const {
  LQOLAB_CHECK(!empty());
  const PlanNode& top = node(root);
  LQOLAB_CHECK_EQ(top.mask, q.FullMask());
  std::function<void(int32_t)> visit = [&](int32_t i) {
    const PlanNode& n = node(i);
    if (n.type == PlanNode::Type::kScan) {
      LQOLAB_CHECK_GE(n.alias, 0);
      LQOLAB_CHECK_LT(n.alias, q.relation_count());
      return;
    }
    const PlanNode& l = node(n.left);
    const PlanNode& r = node(n.right);
    LQOLAB_CHECK_EQ(n.mask, l.mask | r.mask);
    LQOLAB_CHECK_MSG(q.HasEdgeBetween(l.mask, r.mask),
                     "cross product in plan for " << q.id);
    visit(n.left);
    visit(n.right);
  };
  visit(root);
}

std::string PhysicalPlan::ToString(const query::Query& q) const {
  std::ostringstream os;
  std::function<void(int32_t)> render = [&](int32_t i) {
    const PlanNode& n = node(i);
    if (n.type == PlanNode::Type::kScan) {
      os << ScanTypeName(n.scan_type) << "("
         << q.relations[static_cast<size_t>(n.alias)].alias << ")";
      return;
    }
    os << JoinAlgoName(n.algo) << "(";
    render(n.left);
    os << ", ";
    render(n.right);
    os << ")";
  };
  if (empty()) return "<empty>";
  render(root);
  return os.str();
}

std::string PhysicalPlan::ToTreeString(const query::Query& q,
                                       const catalog::Schema& schema) const {
  std::ostringstream os;
  std::function<void(int32_t, int)> render = [&](int32_t i, int depth) {
    const PlanNode& n = node(i);
    os << std::string(static_cast<size_t>(depth) * 2, ' ') << "-> ";
    if (n.type == PlanNode::Type::kScan) {
      const auto& rel = q.relations[static_cast<size_t>(n.alias)];
      os << ScanTypeName(n.scan_type) << " on "
         << schema.table(rel.table).name << " " << rel.alias;
      if (n.index_column != catalog::kInvalidColumn) {
        os << " using ("
           << schema.table(rel.table)
                  .columns[static_cast<size_t>(n.index_column)]
                  .name
           << ")";
      }
      os << "\n";
      return;
    }
    os << JoinAlgoName(n.algo) << "\n";
    render(n.left, depth + 1);
    render(n.right, depth + 1);
  };
  if (empty()) return "<empty>\n";
  render(root, 0);
  return os.str();
}

}  // namespace lqolab::optimizer
