#ifndef LQOLAB_OPTIMIZER_PHYSICAL_PLAN_H_
#define LQOLAB_OPTIMIZER_PHYSICAL_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "query/query.h"

namespace lqolab::optimizer {

/// Access path of a base relation.
enum class ScanType {
  kSeq,     ///< Sequential heap scan.
  kIndex,   ///< B-tree index scan with heap fetches in index order.
  kBitmap,  ///< Bitmap index scan + page-ordered bitmap heap scan.
  kTid,     ///< Direct fetch by tuple id (only for `id = const` predicates).
};

/// Physical join algorithm.
enum class JoinAlgo {
  kHash,     ///< Hash join, build on the inner (right) input.
  kNestLoop, ///< Nested loop with materialized inner.
  kIndexNlj, ///< Nested loop probing an index on the inner base relation.
  kMerge,    ///< Sort-merge join.
};

const char* ScanTypeName(ScanType type);
const char* JoinAlgoName(JoinAlgo algo);

/// Node of a physical plan tree (stored in a flat vector; children by
/// index). `mask` caches the alias set covered by the subtree.
struct PlanNode {
  enum class Type { kScan, kJoin };
  Type type = Type::kScan;
  query::AliasMask mask = 0;

  // --- Scan fields ---
  query::AliasId alias = -1;
  ScanType scan_type = ScanType::kSeq;
  /// Column whose index drives a kIndex/kBitmap scan (kInvalidColumn when
  /// not applicable).
  catalog::ColumnId index_column = catalog::kInvalidColumn;

  // --- Join fields ---
  JoinAlgo algo = JoinAlgo::kHash;
  int32_t left = -1;
  int32_t right = -1;

  bool operator==(const PlanNode&) const = default;
};

/// A physical plan: a binary tree of joins over base-relation scans.
/// Learned optimizers hand these to the engine directly (the pg_hint_plan
/// path of the paper); the native planner produces them itself.
struct PhysicalPlan {
  std::vector<PlanNode> nodes;
  int32_t root = -1;

  /// Structural equality: identical node arrays (including child indices
  /// and index columns) and the same root. Every planner builds trees in
  /// post order, so equal trees compare equal node-for-node.
  bool operator==(const PhysicalPlan&) const = default;

  /// Appends a scan leaf and returns its node index.
  int32_t AddScan(query::AliasId alias, ScanType type,
                  catalog::ColumnId index_column = catalog::kInvalidColumn);

  /// Appends a join over two existing nodes and returns its node index.
  int32_t AddJoin(JoinAlgo algo, int32_t left, int32_t right);

  const PlanNode& node(int32_t i) const {
    return nodes[static_cast<size_t>(i)];
  }

  bool empty() const { return nodes.empty() || root < 0; }

  /// Number of join nodes.
  int32_t join_count() const;

  /// True when the tree is left-deep (every right child is a scan).
  bool IsLeftDeep() const;

  /// Validates tree structure against the query (each alias scanned exactly
  /// once, every join connected). Aborts on violation.
  void Validate(const query::Query& q) const;

  /// One-line rendering, e.g. "HashJoin(Seq(t), IndexNlj(Seq(mc), Idx(cn)))".
  std::string ToString(const query::Query& q) const;

  /// Multi-line EXPLAIN-style rendering.
  std::string ToTreeString(const query::Query& q,
                           const catalog::Schema& schema) const;
};

}  // namespace lqolab::optimizer

#endif  // LQOLAB_OPTIMIZER_PHYSICAL_PLAN_H_
