#ifndef LQOLAB_EXEC_COST_CONSTANTS_H_
#define LQOLAB_EXEC_COST_CONSTANTS_H_

#include "util/virtual_clock.h"

namespace lqolab::exec {

/// Virtual-time constants charged by the executor. These are the calibration
/// points of the simulation (DESIGN.md §1): per-page costs by cache tier and
/// per-tuple CPU costs by operator. Values are loosely scaled to commodity
/// hardware (8 KiB page reads, hash-join throughput of ~10M tuples/s).
namespace cost {

using util::VirtualNanos;

// --- Page access by buffer tier ------------------------------------------
inline constexpr VirtualNanos kSharedHitNs = 500;
inline constexpr VirtualNanos kOsHitNs = 4'000;
inline constexpr VirtualNanos kDiskReadNs = 100'000;
/// Sequential disk reads amortize readahead.
inline constexpr VirtualNanos kDiskSeqReadNs = 25'000;

// --- Scans ----------------------------------------------------------------
/// Per heap tuple visited by a sequential scan.
inline constexpr VirtualNanos kScanTupleNs = 40;
/// Additional CPU per predicate evaluation per visited tuple.
inline constexpr VirtualNanos kPredEvalNs = 12;
/// B-tree descent per level.
inline constexpr VirtualNanos kIndexDescentNs = 400;
/// Per heap tuple fetched through an index (random order).
inline constexpr VirtualNanos kIndexRowFetchNs = 150;
/// Per heap tuple fetched by a bitmap heap scan (page-ordered).
inline constexpr VirtualNanos kBitmapRowFetchNs = 60;
/// Per row-id collected by a bitmap index scan (incl. sort).
inline constexpr VirtualNanos kBitmapBuildNs = 25;
/// Per tuple fetched directly by ctid.
inline constexpr VirtualNanos kTidFetchNs = 200;

// --- Joins ----------------------------------------------------------------
inline constexpr VirtualNanos kHashBuildNs = 120;
inline constexpr VirtualNanos kHashProbeNs = 80;
inline constexpr VirtualNanos kNlCompareNs = 12;
inline constexpr VirtualNanos kMergeStepNs = 30;
/// n log2(n) coefficient for in-memory sort.
inline constexpr VirtualNanos kSortItemNs = 18;
inline constexpr VirtualNanos kJoinOutputNs = 40;
/// Bytes a tuple occupies in a hash table / sort buffer (spill decisions).
inline constexpr int64_t kBytesPerTupleSlot = 48;
/// CPU penalty multiplier per extra hash-batch / sort-merge pass.
inline constexpr double kSpillPassPenalty = 0.55;

// --- Engine-dependent per-tuple CPU costs ----------------------------------
/// The per-tuple CPU constants that depend on which execution engine runs
/// the hot path. The tuple-at-a-time reference pays the constants above;
/// the batched kernels (DbConfig::vectorized_exec, exec/kernels.h) amortize
/// interpretation overhead across kBatchRows-row strides and are charged a
/// recalibrated set. Page/IO costs and the nested-loop compare are engine-
/// independent (the batch engine does not change page access or the NLJ
/// inner loop), so only these six constants move.
struct TupleCosts {
  VirtualNanos scan_tuple;
  VirtualNanos pred_eval;
  VirtualNanos bitmap_build;
  VirtualNanos hash_build;
  VirtualNanos hash_probe;
  VirtualNanos join_output;
};

inline constexpr TupleCosts kScalarTupleCosts{
    kScanTupleNs,  kPredEvalNs,  kBitmapBuildNs,
    kHashBuildNs,  kHashProbeNs, kJoinOutputNs};

/// Calibrated against micro_engine's measured scalar-vs-vectorized row
/// throughput (BENCH_engine.json; method in docs/execution.md): the batch
/// kernels run the filter and hash-join loops ≥3x faster, so the virtual
/// clock charges roughly a third per tuple, with the scalar ratios between
/// operators preserved so relative plan quality keeps its shape.
inline constexpr TupleCosts kVectorizedTupleCosts{
    /*scan_tuple=*/13, /*pred_eval=*/4,   /*bitmap_build=*/8,
    /*hash_build=*/36, /*hash_probe=*/24, /*join_output=*/14};

/// The executor selects per config at query time. The planner's CostModel
/// deliberately stays on kScalarTupleCosts (optimizer/cost_model.cc): its
/// costs are unit-free rankings compared only to each other, and pinning
/// them keeps golden plans and every recorded estimate stable across
/// engine flips.
inline constexpr const TupleCosts& TupleCostsFor(bool vectorized_exec) {
  return vectorized_exec ? kVectorizedTupleCosts : kScalarTupleCosts;
}

// --- Parallel execution ----------------------------------------------------
/// Pages below which a scan is not parallelized.
inline constexpr int64_t kParallelMinPages = 1'000;
/// Pages of driving data per additional worker.
inline constexpr int64_t kParallelPagesPerWorker = 2'000;
/// Effective speedup fraction contributed by each worker.
inline constexpr double kParallelEfficiency = 0.7;

// --- Plan / statement overheads --------------------------------------------
/// Executor startup (plan initialization, snapshot).
inline constexpr VirtualNanos kExecStartupNs = 200'000;
/// Planner cost per DP subproblem or GEQO individual evaluated.
inline constexpr VirtualNanos kPlanStepNs = 2'000;
/// Planner baseline per relation in the FROM list.
inline constexpr VirtualNanos kPlanPerRelationNs = 120'000;
/// Extra planner probing per step when effective_cache_size is small
/// relative to the database (see DESIGN.md: Table 2 planning-time effect).
inline constexpr VirtualNanos kPlanColdProbeNs = 220'000;

// --- Hot/cold run-state warm-up --------------------------------------------
/// First execution of a query signature pays this extra fraction
/// (relcache/JIT warm-up, §7.3 / Fig. 4: ~14.6% drop after the 1st run).
inline constexpr double kFirstRunPenalty = 0.185;
/// Second execution still pays a small residue (~1% drop after the 2nd).
inline constexpr double kSecondRunPenalty = 0.014;
/// Log-normal execution noise (sigma of ln-scale).
inline constexpr double kNoiseSigma = 0.02;

/// Caps on materialized intermediate results in the true-cardinality
/// oracle; a subset whose materialization exceeds either is treated as
/// timed out. The cell cap (rows x participating aliases) bounds memory.
inline constexpr int64_t kMaxIntermediateRows = 12'000'000;
inline constexpr int64_t kMaxIntermediateCells = 64'000'000;

}  // namespace cost

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_COST_CONSTANTS_H_
