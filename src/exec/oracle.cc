#include "exec/oracle.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "exec/cost_constants.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::exec {

using query::AliasId;
using query::AliasMask;
using query::Query;
using storage::RowId;
using storage::Value;

namespace {

constexpr int64_t kMatBudgetBytes = 384ll * 1024 * 1024;

// Predicate-transfer tuning (docs/execution.md §Predicate transfer): a
// Bloom filter over the build/reduce side pays off only when enough probes
// amortize its construction, so small inputs skip it. Target FPR and seed
// are fixed so runs are deterministic.
constexpr int64_t kTransferMinProbes = 4096;
constexpr double kTransferFpr = 0.01;
constexpr uint64_t kTransferSeed = 0x51de7a55c0ffeeULL;

// How many iterations ahead join-probe loops hint the next key's hash-slot
// cache line (random accesses the hardware prefetcher cannot predict).
constexpr int64_t kProbePrefetchDistance = 16;

/// Lazy predicate-transfer schedule (see kernels::kBloomSampleProbes): the
/// probe loop runs exact-only while the first sampled non-null keys have
/// their hit/miss outcomes counted, and the Bloom filter is built
/// mid-stream — construction cost included — only once the sampled miss
/// rate clears kBloomBuildMissNum/kBloomBuildMissDen. Hit-heavy streams
/// never pay for a filter that would reject nothing; the decision is a
/// pure function of the probe sequence, and the filter is only ever a
/// pre-test in front of the exact lookup, so engaging it cannot change
/// result bytes.
struct TransferSchedule {
  explicit TransferSchedule(bool enabled) : armed(enabled) {}

  bool armed;  // transfer enabled for this stream and still sampling

  /// Feed one exact-probe outcome from the sampled prefix. Returns true
  /// exactly once — when the sample clears the miss bar — and the caller
  /// then builds and installs the Bloom filter for the rest of the stream.
  bool ShouldBuild(bool missed) {
    if (!armed) return false;
    misses_ += missed ? 1 : 0;
    if (++probes_ < kernels::kBloomSampleProbes) return false;
    armed = false;
    return misses_ * kernels::kBloomBuildMissDen >=
           probes_ * kernels::kBloomBuildMissNum;
  }

 private:
  int64_t probes_ = 0;
  int64_t misses_ = 0;
};

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4))) *
         0x100000001b3ULL;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (char c : s) h = HashCombine(h, static_cast<uint64_t>(c));
  return h;
}

}  // namespace

uint64_t QueryFingerprint(const Query& q) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = HashString(h, q.id);
  for (const auto& rel : q.relations) {
    h = HashCombine(h, static_cast<uint64_t>(rel.table));
    h = HashString(h, rel.alias);
  }
  for (const auto& e : q.edges) {
    h = HashCombine(h, static_cast<uint64_t>(e.left_alias));
    h = HashCombine(h, static_cast<uint64_t>(e.left_column));
    h = HashCombine(h, static_cast<uint64_t>(e.right_alias));
    h = HashCombine(h, static_cast<uint64_t>(e.right_column));
  }
  for (const auto& p : q.predicates) {
    h = HashString(h, p.Signature());
  }
  return h;
}

Oracle::Oracle(const DbContext* ctx) : ctx_(ctx) { LQOLAB_CHECK(ctx != nullptr); }

Oracle::QueryMemo& Oracle::Memo(const Query& q) {
  QueryMemo& memo = memos_[QueryFingerprint(q)];
  if (!memo.bound) {
    memo.bound = true;
    const size_t n = q.relations.size();
    memo.preds.resize(n);
    memo.filtered.resize(n);
    memo.filtered_ready.assign(n, 0);
    for (size_t a = 0; a < n; ++a) {
      memo.preds[a] = query::BindAliasPredicates(
          q, static_cast<AliasId>(a), ctx_->table(q.relations[a].table));
    }
  }
  return memo;
}

void Oracle::FilterSharded(const storage::ShardedTableSet& shards,
                           catalog::TableId table,
                           const query::BoundPredicate* preds,
                           size_t pred_count, std::vector<RowId>* rows) {
  LQOLAB_DCHECK(pred_count > 0);
  const int32_t n = shards.num_shards();
  if (static_cast<int32_t>(shard_rows_.size()) < n) shard_rows_.resize(n);
  for (int32_t s = 0; s < n; ++s) {
    const storage::ShardedTableSet::Shard& shard = shards.shard(table, s);
    shard_local_.clear();
    kernels::SelectPredicate(shard.column_data(preds[0].column),
                             shard.row_count(), preds[0], &shard_local_);
    for (size_t p = 1; p < pred_count; ++p) {
      kernels::RefinePredicate(shard.column_data(preds[p].column), preds[p],
                               &shard_local_);
    }
    // Local -> global: shard.row_ids is ascending, so order is preserved.
    std::vector<RowId>& global = shard_rows_[static_cast<size_t>(s)];
    global.clear();
    global.reserve(shard_local_.size());
    for (RowId local : shard_local_) {
      global.push_back(shard.row_ids[static_cast<size_t>(local)]);
    }
  }
  kernels::MergeShardRows(shard_rows_, rows);
}

void Oracle::EnsureFiltered(QueryMemo& memo, const Query& q, AliasId alias) {
  if (memo.filtered_ready[static_cast<size_t>(alias)]) return;
  const catalog::TableId table_id =
      q.relations[static_cast<size_t>(alias)].table;
  const storage::Table& table = ctx_->table(table_id);
  const auto& preds = memo.preds[static_cast<size_t>(alias)];
  std::vector<RowId>& rows = memo.filtered[static_cast<size_t>(alias)];
  rows.clear();
  const int64_t n = table.row_count();
  if (ctx_->config.vectorized_exec) {
    // Batched engine: full-column selection kernel on the first predicate,
    // then in-place refinement per remaining predicate. Same conjunction,
    // same ascending output as the row loop below. With sharding active the
    // kernels run shard-at-a-time and the matches are merged back.
    const storage::ShardedTableSet* shards = ctx_->shards();
    if (preds.empty()) {
      kernels::SelectAll(n, &rows);
    } else if (shards != nullptr) {
      FilterSharded(*shards, table_id, preds.data(), preds.size(), &rows);
    } else {
      kernels::SelectPredicate(table.column(preds[0].column).data(), n,
                               preds[0], &rows);
      for (size_t p = 1; p < preds.size(); ++p) {
        kernels::RefinePredicate(table.column(preds[p].column).data(),
                                 preds[p], &rows);
      }
    }
  } else {
    for (RowId r = 0; r < n; ++r) {
      bool match = true;
      for (const auto& pred : preds) {
        if (!pred.Matches(table.column(pred.column).at(r))) {
          match = false;
          break;
        }
      }
      if (match) rows.push_back(r);
    }
  }
  memo.filtered_ready[static_cast<size_t>(alias)] = 1;
}

const std::vector<RowId>& Oracle::FilteredRows(const Query& q, AliasId alias) {
  QueryMemo& memo = Memo(q);
  EnsureFiltered(memo, q, alias);
  return memo.filtered[static_cast<size_t>(alias)];
}

int64_t Oracle::TrueBaseRows(const Query& q, AliasId alias) {
  return static_cast<int64_t>(FilteredRows(q, alias).size());
}

const std::vector<RowId>& Oracle::SinglePredicateRows(const Query& q,
                                                      AliasId alias,
                                                      size_t pred_index) {
  QueryMemo& memo = Memo(q);
  const uint64_t key =
      (static_cast<uint64_t>(alias) << 32) | static_cast<uint64_t>(pred_index);
  auto it = memo.single_pred.find(key);
  if (it != memo.single_pred.end()) return it->second;
  const catalog::TableId table_id =
      q.relations[static_cast<size_t>(alias)].table;
  const storage::Table& table = ctx_->table(table_id);
  const auto& preds = memo.preds[static_cast<size_t>(alias)];
  LQOLAB_CHECK_LT(pred_index, preds.size());
  const auto& pred = preds[pred_index];
  std::vector<RowId> rows;
  const int64_t n = table.row_count();
  const storage::Column& column = table.column(pred.column);
  if (ctx_->config.vectorized_exec) {
    if (const storage::ShardedTableSet* shards = ctx_->shards()) {
      FilterSharded(*shards, table_id, &pred, 1, &rows);
    } else {
      kernels::SelectPredicate(column.data(), n, pred, &rows);
    }
  } else {
    for (RowId r = 0; r < n; ++r) {
      if (pred.Matches(column.at(r))) rows.push_back(r);
    }
  }
  return memo.single_pred.emplace(key, std::move(rows)).first->second;
}

const std::vector<query::BoundPredicate>& Oracle::BoundPredicates(
    const Query& q, AliasId alias) {
  return Memo(q).preds[static_cast<size_t>(alias)];
}

Oracle::CardResult Oracle::TrueJoinRows(const Query& q, AliasMask mask) {
  LQOLAB_CHECK_MSG(q.IsConnected(mask),
                   "oracle asked for disconnected subset in " << q.id);
  obs::Count(obs::Counter::kOracleCardinalityCalls);
  QueryMemo& memo = Memo(q);
  auto it = memo.cards.find(mask);
  if (it != memo.cards.end()) return it->second;
  if (std::popcount(mask) == 1) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(mask));
    EnsureFiltered(memo, q, alias);
    const CardResult result{
        static_cast<int64_t>(memo.filtered[static_cast<size_t>(alias)].size()),
        false};
    memo.cards[mask] = result;
    return result;
  }
  const Intermediate* mat = Materialize(memo, q, mask);
  CardResult result;
  if (mat != nullptr) {
    result.rows = mat->rows;
    memo.cards[mask] = result;
    return result;
  }
  // Materialization exceeded the caps: the subset is huge but its exact
  // size may still be countable without storing tuples, by streaming the
  // extension of a cached submask materialization. Plans over such subsets
  // then get charged honest (large) virtual time instead of timing out.
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    const AliasMask rest = mask & ~query::MaskOf(alias);
    if (!q.IsConnected(rest)) continue;
    auto rest_it = memo.mats.find(rest);
    if (rest_it == memo.mats.end()) continue;
    EnsureFiltered(memo, q, alias);
    int64_t count = 0;
    if (CountExtension(q, rest_it->second, alias,
                       memo.filtered[static_cast<size_t>(alias)], &count)) {
      result.rows = count;
      memo.cards[mask] = result;
      return result;
    }
  }
  int64_t tree_count = 0;
  if (TreeCount(memo, q, mask, &tree_count)) {
    result.rows = tree_count;
    memo.cards[mask] = result;
    return result;
  }
  result.overflow = true;
  memo.cards[mask] = result;
  return result;
}

bool Oracle::TreeCount(QueryMemo& memo, const Query& q, AliasMask mask,
                       int64_t* count) {
  // Collect the subset's internal edges; bail out on cycles (message
  // passing is exact only for tree-shaped join graphs).
  std::vector<query::JoinEdge> edges;
  for (const auto& edge : q.edges) {
    if ((mask & query::MaskOf(edge.left_alias)) &&
        (mask & query::MaskOf(edge.right_alias))) {
      edges.push_back(edge);
    }
  }
  const int32_t members = std::popcount(mask);
  if (static_cast<int32_t>(edges.size()) != members - 1) return false;

  // Per-row partial counts (as doubles to survive astronomically large
  // subsets; saturated on return).
  std::unordered_map<query::AliasId, std::vector<double>> row_counts;
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    EnsureFiltered(memo, q, alias);
    row_counts[alias].assign(memo.filtered[static_cast<size_t>(alias)].size(),
                             1.0);
  }

  // Peel leaves: repeatedly take an alias with exactly one remaining edge,
  // aggregate its per-key count sums, and multiply them into the neighbor.
  std::vector<char> edge_done(edges.size(), 0);
  AliasMask remaining = mask;
  while (std::popcount(remaining) > 1) {
    AliasId leaf = -1;
    size_t leaf_edge = 0;
    bits = remaining;
    while (bits != 0) {
      const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
      bits &= bits - 1;
      int32_t degree = 0;
      size_t last_edge = 0;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edge_done[e]) continue;
        if (edges[e].left_alias == alias || edges[e].right_alias == alias) {
          ++degree;
          last_edge = e;
        }
      }
      if (degree == 1) {
        leaf = alias;
        leaf_edge = last_edge;
        break;
      }
    }
    if (leaf < 0) return false;  // should not happen for a tree
    const auto& edge = edges[leaf_edge];
    const AliasId parent =
        edge.left_alias == leaf ? edge.right_alias : edge.left_alias;
    const catalog::ColumnId leaf_col =
        edge.left_alias == leaf ? edge.left_column : edge.right_column;
    const catalog::ColumnId parent_col =
        edge.left_alias == leaf ? edge.right_column : edge.left_column;

    // Message: per join-key sum of the leaf's row counts.
    const storage::Column& leaf_values =
        ctx_->table(q.relations[static_cast<size_t>(leaf)].table)
            .column(leaf_col);
    const auto& leaf_rows = memo.filtered[static_cast<size_t>(leaf)];
    const auto& leaf_counts = row_counts[leaf];
    std::unordered_map<Value, double> message;
    message.reserve(leaf_rows.size());
    for (size_t i = 0; i < leaf_rows.size(); ++i) {
      const Value v = leaf_values.at(leaf_rows[i]);
      if (v != storage::kNullValue) message[v] += leaf_counts[i];
    }

    // Fold into the parent: each parent row multiplies by its key's sum
    // (zero when no partner exists).
    const storage::Column& parent_values =
        ctx_->table(q.relations[static_cast<size_t>(parent)].table)
            .column(parent_col);
    const auto& parent_rows = memo.filtered[static_cast<size_t>(parent)];
    auto& parent_counts = row_counts[parent];
    for (size_t i = 0; i < parent_rows.size(); ++i) {
      if (parent_counts[i] == 0.0) continue;
      const Value v = parent_values.at(parent_rows[i]);
      double factor = 0.0;
      if (v != storage::kNullValue) {
        auto it = message.find(v);
        if (it != message.end()) factor = it->second;
      }
      parent_counts[i] *= factor;
    }

    edge_done[leaf_edge] = 1;
    remaining &= ~query::MaskOf(leaf);
  }

  const AliasId root = static_cast<AliasId>(std::countr_zero(remaining));
  double total = 0.0;
  for (double c : row_counts[root]) total += c;
  constexpr double kSaturate = 4.0e18;
  *count = static_cast<int64_t>(std::min(total, kSaturate));
  return true;
}

bool Oracle::CountExtension(const Query& q, const Intermediate& left,
                            AliasId alias,
                            const std::vector<storage::RowId>& base_rows,
                            int64_t* count) {
  return ctx_->config.vectorized_exec
             ? CountExtensionVectorized(q, left, alias, base_rows, count)
             : CountExtensionScalar(q, left, alias, base_rows, count);
}

/// Batched engine for the streaming-count fallback. The single-edge case
/// sums grouped key multiplicities from the JoinHashTable; the residual
/// case walks the same (probe row, base row) pairs as the scalar loop, so
/// the kMaxCountedPairs cap trips at the identical pair.
bool Oracle::CountExtensionVectorized(
    const Query& q, const Intermediate& left, AliasId alias,
    const std::vector<storage::RowId>& base_rows, int64_t* count) {
  AliasMask left_mask = 0;
  for (AliasId a : left.aliases) left_mask |= query::MaskOf(a);
  const auto edges = q.EdgesBetween(left_mask, query::MaskOf(alias));
  LQOLAB_CHECK(!edges.empty());
  const storage::Table& base_table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);
  const auto& hash_edge = edges[0];
  const storage::Column& base_key = base_table.column(hash_edge.right_column);
  const int32_t width = static_cast<int32_t>(left.aliases.size());
  auto position_of = [&](AliasId a) {
    for (int32_t i = 0; i < width; ++i) {
      if (left.aliases[static_cast<size_t>(i)] == a) return i;
    }
    LQOLAB_CHECK_MSG(false, "alias not in intermediate");
    return -1;
  };
  const int32_t hash_pos = position_of(hash_edge.left_alias);
  const Value* probe_col =
      ctx_->table(q.relations[static_cast<size_t>(hash_edge.left_alias)].table)
          .column(hash_edge.left_column)
          .data();

  join_table_.Build(base_key.data(), base_rows.data(),
                    static_cast<int64_t>(base_rows.size()));
  const BloomFilter* bloom = nullptr;
  TransferSchedule transfer{ctx_->config.predicate_transfer &&
                            left.rows >= kTransferMinProbes};

  if (edges.size() == 1) {
    // Pure counting: a group's size is the per-key multiplicity.
    int64_t total = 0;
    for (int64_t row = 0; row < left.rows; ++row) {
      const int64_t ahead =
          std::min(row + kProbePrefetchDistance, left.rows - 1);
      join_table_.PrefetchProbe(
          probe_col[left.data[static_cast<size_t>(ahead * width + hash_pos)]]);
      const Value v =
          probe_col[left.data[static_cast<size_t>(row * width + hash_pos)]];
      if (v == storage::kNullValue) continue;
      if (bloom != nullptr && !bloom->MayContain(v)) continue;
      const int32_t hits = join_table_.Probe(v).count;
      if (transfer.ShouldBuild(hits == 0)) {
        join_table_.FillBloom(&transfer_bloom_, kTransferFpr, kTransferSeed);
        bloom = &transfer_bloom_;
      }
      total += hits;
    }
    *count = total;
    return true;
  }

  constexpr int64_t kMaxCountedPairs = 400'000'000;
  struct EdgeProbe {
    int32_t left_pos;
    const Value* left_col;
    const Value* right_col;
  };
  std::vector<EdgeProbe> residual;
  for (size_t e = 1; e < edges.size(); ++e) {
    residual.push_back(
        {position_of(edges[e].left_alias),
         ctx_->table(
                 q.relations[static_cast<size_t>(edges[e].left_alias)].table)
             .column(edges[e].left_column)
             .data(),
         base_table.column(edges[e].right_column).data()});
  }
  int64_t total = 0;
  int64_t pairs = 0;
  for (int64_t row = 0; row < left.rows; ++row) {
    const int64_t ahead = std::min(row + kProbePrefetchDistance, left.rows - 1);
    join_table_.PrefetchProbe(
        probe_col[left.data[static_cast<size_t>(ahead * width + hash_pos)]]);
    const RowId* tuple = left.data.data() + row * width;
    const Value v = probe_col[tuple[hash_pos]];
    if (v == storage::kNullValue) continue;
    if (bloom != nullptr && !bloom->MayContain(v)) continue;
    const kernels::JoinHashTable::Group group = join_table_.Probe(v);
    if (transfer.ShouldBuild(group.count == 0)) {
      join_table_.FillBloom(&transfer_bloom_, kTransferFpr, kTransferSeed);
      bloom = &transfer_bloom_;
    }
    for (int32_t g = 0; g < group.count; ++g) {
      const RowId base_row = group.rows[g];
      if (++pairs > kMaxCountedPairs) return false;
      bool ok = true;
      for (const auto& probe : residual) {
        const Value lv = probe.left_col[tuple[probe.left_pos]];
        if (lv == storage::kNullValue || lv != probe.right_col[base_row]) {
          ok = false;
          break;
        }
      }
      if (ok) ++total;
    }
  }
  *count = total;
  return true;
}

bool Oracle::CountExtensionScalar(const Query& q, const Intermediate& left,
                                  AliasId alias,
                                  const std::vector<storage::RowId>& base_rows,
                                  int64_t* count) {
  AliasMask left_mask = 0;
  for (AliasId a : left.aliases) left_mask |= query::MaskOf(a);
  const auto edges = q.EdgesBetween(left_mask, query::MaskOf(alias));
  LQOLAB_CHECK(!edges.empty());
  const storage::Table& base_table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);
  const auto& hash_edge = edges[0];
  const storage::Column& base_key = base_table.column(hash_edge.right_column);
  const int32_t width = static_cast<int32_t>(left.aliases.size());
  auto position_of = [&](AliasId a) {
    for (int32_t i = 0; i < width; ++i) {
      if (left.aliases[static_cast<size_t>(i)] == a) return i;
    }
    LQOLAB_CHECK_MSG(false, "alias not in intermediate");
    return -1;
  };
  const int32_t hash_pos = position_of(hash_edge.left_alias);
  const storage::Column& probe_col =
      ctx_->table(q.relations[static_cast<size_t>(hash_edge.left_alias)].table)
          .column(hash_edge.left_column);

  if (edges.size() == 1) {
    // Pure counting: sum per-key multiplicities, O(|left| + |base|).
    std::unordered_map<Value, int64_t> counts;
    counts.reserve(base_rows.size());
    for (RowId r : base_rows) {
      const Value v = base_key.at(r);
      if (v != storage::kNullValue) ++counts[v];
    }
    int64_t total = 0;
    for (int64_t row = 0; row < left.rows; ++row) {
      const Value v = probe_col.at(left.data[static_cast<size_t>(
          row * width + hash_pos)]);
      if (v == storage::kNullValue) continue;
      auto it = counts.find(v);
      if (it != counts.end()) total += it->second;
    }
    *count = total;
    return true;
  }

  // Residual edges: iterate matching pairs with a work cap.
  constexpr int64_t kMaxCountedPairs = 400'000'000;
  std::unordered_map<Value, std::vector<RowId>> hash;
  hash.reserve(base_rows.size());
  for (RowId r : base_rows) {
    const Value v = base_key.at(r);
    if (v != storage::kNullValue) hash[v].push_back(r);
  }
  struct EdgeProbe {
    int32_t left_pos;
    const storage::Column* left_col;
    const storage::Column* right_col;
  };
  std::vector<EdgeProbe> residual;
  for (size_t e = 1; e < edges.size(); ++e) {
    residual.push_back(
        {position_of(edges[e].left_alias),
         &ctx_->table(
                  q.relations[static_cast<size_t>(edges[e].left_alias)].table)
              .column(edges[e].left_column),
         &base_table.column(edges[e].right_column)});
  }
  int64_t total = 0;
  int64_t pairs = 0;
  for (int64_t row = 0; row < left.rows; ++row) {
    const RowId* tuple = left.data.data() + row * width;
    const Value v = probe_col.at(tuple[hash_pos]);
    if (v == storage::kNullValue) continue;
    auto it = hash.find(v);
    if (it == hash.end()) continue;
    for (RowId base_row : it->second) {
      if (++pairs > kMaxCountedPairs) return false;
      bool ok = true;
      for (const auto& probe : residual) {
        const Value lv = probe.left_col->at(tuple[probe.left_pos]);
        if (lv == storage::kNullValue || lv != probe.right_col->at(base_row)) {
          ok = false;
          break;
        }
      }
      if (ok) ++total;
    }
  }
  *count = total;
  return true;
}

const Oracle::Intermediate* Oracle::Materialize(QueryMemo& memo,
                                                const Query& q,
                                                AliasMask mask) {
  auto mat_it = memo.mats.find(mask);
  if (mat_it != memo.mats.end()) return &mat_it->second;
  auto card_it = memo.cards.find(mask);
  if (card_it != memo.cards.end() && card_it->second.overflow) return nullptr;

  if (std::popcount(mask) == 1) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(mask));
    EnsureFiltered(memo, q, alias);
    Intermediate base;
    base.aliases = {alias};
    base.data = memo.filtered[static_cast<size_t>(alias)];
    base.rows = static_cast<int64_t>(base.data.size());
    TrackBytes(base.bytes());
    auto [it, inserted] = memo.mats.emplace(mask, std::move(base));
    LQOLAB_CHECK(inserted);
    EnforceBudget(memo, mask);
    return &it->second;
  }

  // Fast path: extend a cached materialization of (mask minus one alias).
  // The extension streams and is exact, so it cannot blow up beyond the
  // subset's own result size.
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    const AliasMask rest = mask & ~query::MaskOf(alias);
    if (!q.IsConnected(rest)) continue;
    auto rest_it = memo.mats.find(rest);
    if (rest_it == memo.mats.end()) continue;
    EnsureFiltered(memo, q, alias);
    Intermediate joined =
        JoinWithBase(q, rest_it->second, alias,
                     memo.filtered[static_cast<size_t>(alias)], mask);
    if (joined.rows < 0) {
      memo.cards[mask] = {0, true};
      return nullptr;
    }
    memo.cards[mask] = {joined.rows, false};
    TrackBytes(joined.bytes());
    auto [it, inserted] = memo.mats.emplace(mask, std::move(joined));
    LQOLAB_CHECK(inserted);
    EnforceBudget(memo, mask);
    return &it->second;
  }

  // Fresh evaluation: semi-join-reduce every member relation, then join
  // greedily (smallest reduced base first) over the reduced row lists.
  // After reduction, every partial tuple extends to at least one full
  // tuple of the subset (exactly, for acyclic subsets), so intermediates
  // stay near the subset's result size.
  //
  // Batched engine, 2-alias subsets: reduction is pure overhead — the one
  // join discards non-matching rows itself, produces no oversized
  // intermediate (its output IS the subset's result), and emits the same
  // bytes either way: probing unreduced rows only adds probes that emit
  // nothing, and build-side rows removed by reduction sit in groups no
  // surviving probe key reaches. The reference path keeps the reduction
  // unconditionally, as documentation of the general algorithm.
  std::vector<std::vector<storage::RowId>> reduced;
  if (ctx_->config.vectorized_exec && std::popcount(mask) == 2) {
    reduced.resize(q.relations.size());
    AliasMask pair_bits = mask;
    while (pair_bits != 0) {
      const AliasId alias = static_cast<AliasId>(std::countr_zero(pair_bits));
      pair_bits &= pair_bits - 1;
      EnsureFiltered(memo, q, alias);
      reduced[static_cast<size_t>(alias)] =
          memo.filtered[static_cast<size_t>(alias)];
    }
  } else {
    reduced = SemiJoinReduce(memo, q, mask);
  }
  auto reduced_rows = [&](AliasId a) -> const std::vector<storage::RowId>& {
    return reduced[static_cast<size_t>(a)];
  };

  std::vector<AliasId> members;
  AliasMask bits2 = mask;
  while (bits2 != 0) {
    members.push_back(static_cast<AliasId>(std::countr_zero(bits2)));
    bits2 &= bits2 - 1;
  }
  // Greedy connected order over reduced sizes.
  AliasId start = members[0];
  for (AliasId a : members) {
    if (reduced_rows(a).size() < reduced_rows(start).size()) start = a;
  }
  Intermediate current;
  current.aliases = {start};
  current.data = reduced_rows(start);
  current.rows = static_cast<int64_t>(current.data.size());
  AliasMask covered = query::MaskOf(start);
  while (covered != mask) {
    AliasId next = -1;
    for (AliasId a : members) {
      if (covered & query::MaskOf(a)) continue;
      if ((q.AdjacencyMask(a) & covered) == 0) continue;
      if (next < 0 || reduced_rows(a).size() < reduced_rows(next).size()) {
        next = a;
      }
    }
    LQOLAB_CHECK_GE(next, 0);
    Intermediate joined =
        JoinWithBase(q, current, next, reduced_rows(next), mask);
    if (joined.rows < 0) {
      memo.cards[mask] = {0, true};
      return nullptr;
    }
    current = std::move(joined);
    covered |= query::MaskOf(next);
  }
  memo.cards[mask] = {current.rows, false};
  TrackBytes(current.bytes());
  auto [it, inserted] = memo.mats.emplace(mask, std::move(current));
  LQOLAB_CHECK(inserted);
  EnforceBudget(memo, mask);
  return &it->second;
}

std::vector<std::vector<storage::RowId>> Oracle::SemiJoinReduce(
    QueryMemo& memo, const Query& q, AliasMask mask) {
  std::vector<std::vector<storage::RowId>> reduced(q.relations.size());
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    EnsureFiltered(memo, q, alias);
    reduced[static_cast<size_t>(alias)] =
        memo.filtered[static_cast<size_t>(alias)];
  }
  // Edges inside the mask.
  std::vector<query::JoinEdge> edges;
  for (const auto& edge : q.edges) {
    if ((mask & query::MaskOf(edge.left_alias)) &&
        (mask & query::MaskOf(edge.right_alias))) {
      edges.push_back(edge);
    }
  }
  // Fixpoint bookkeeping for the batched engine: a directed reduction is a
  // pure membership filter, so re-running it is a no-op unless one of its
  // two sides shrank since it last ran. Versions count shrinks per alias;
  // each directed edge remembers the versions it last ran against and is
  // skipped when both are unchanged — identical rows kept, without the
  // redundant set rebuilds the reference path tolerates.
  std::vector<uint32_t> version(q.relations.size(), 0);
  std::vector<uint32_t> ran_keep(edges.size() * 2, UINT32_MAX);
  std::vector<uint32_t> ran_probe(edges.size() * 2, UINT32_MAX);
  // Batched engine: directed slots that probe the same (alias, column)
  // share one cached ValueSet from semi_set_pool_, rebuilt only when the
  // probe side has shrunk since the set was last built. The reference path
  // deliberately rebuilds its unordered_set every time.
  struct BuildKey {
    AliasId alias;
    catalog::ColumnId column;
  };
  std::vector<BuildKey> build_keys;
  std::vector<size_t> slot_key(edges.size() * 2, 0);
  std::vector<uint32_t> built_version;
  if (ctx_->config.vectorized_exec) {
    auto key_index = [&](AliasId alias, catalog::ColumnId column) {
      for (size_t i = 0; i < build_keys.size(); ++i) {
        if (build_keys[i].alias == alias && build_keys[i].column == column) {
          return i;
        }
      }
      build_keys.push_back({alias, column});
      return build_keys.size() - 1;
    };
    for (size_t e = 0; e < edges.size(); ++e) {
      slot_key[2 * e] = key_index(edges[e].right_alias, edges[e].right_column);
      slot_key[2 * e + 1] =
          key_index(edges[e].left_alias, edges[e].left_column);
    }
    if (semi_set_pool_.size() < build_keys.size()) {
      semi_set_pool_.resize(build_keys.size());
    }
    built_version.assign(build_keys.size(), UINT32_MAX);
  }
  // A few reduction passes (2 suffice for tree-shaped subsets when edges
  // are swept in both directions; a 3rd catches most cycle effects).
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    // Batched engine: the probe side publishes its key set as an
    // open-addressing ValueSet (plus, under predicate_transfer, a lazily
    // built Bloom filter consulted before the exact lookup — sideways
    // information passing), and the keep side is compacted in place.
    // Membership is exactly the reference path's unordered_set semantics,
    // so both engines keep the same rows.
    auto reduce_side_batched = [&](size_t slot, AliasId keep,
                                   catalog::ColumnId keep_col, AliasId probe,
                                   catalog::ColumnId probe_col) {
      if (ran_keep[slot] == version[static_cast<size_t>(keep)] &&
          ran_probe[slot] == version[static_cast<size_t>(probe)]) {
        return;
      }
      auto& keep_rows = reduced[static_cast<size_t>(keep)];
      const auto& probe_rows = reduced[static_cast<size_t>(probe)];
      const storage::Column& keep_values =
          ctx_->table(q.relations[static_cast<size_t>(keep)].table)
              .column(keep_col);
      const storage::Column& probe_values =
          ctx_->table(q.relations[static_cast<size_t>(probe)].table)
              .column(probe_col);
      const size_t key = slot_key[slot];
      kernels::ValueSet& set = semi_set_pool_[key];
      if (built_version[key] != version[static_cast<size_t>(probe)]) {
        set.Build(probe_values.data(), probe_rows.data(),
                  static_cast<int64_t>(probe_rows.size()));
        built_version[key] = version[static_cast<size_t>(probe)];
      }
      const size_t before = keep_rows.size();
      if (ctx_->config.predicate_transfer &&
          static_cast<int64_t>(keep_rows.size()) >= kTransferMinProbes) {
        kernels::RefineBySetAdaptive(keep_values.data(), set,
                                     &transfer_bloom_, kTransferFpr,
                                     kTransferSeed, &keep_rows);
      } else {
        kernels::RefineBySet(keep_values.data(), set, nullptr, &keep_rows);
      }
      if (keep_rows.size() != before) {
        changed = true;
        ++version[static_cast<size_t>(keep)];
      }
      ran_keep[slot] = version[static_cast<size_t>(keep)];
      ran_probe[slot] = version[static_cast<size_t>(probe)];
    };
    auto reduce_side = [&](size_t slot, AliasId keep,
                           catalog::ColumnId keep_col, AliasId probe,
                           catalog::ColumnId probe_col) {
      if (ctx_->config.vectorized_exec) {
        reduce_side_batched(slot, keep, keep_col, probe, probe_col);
        return;
      }
      auto& keep_rows = reduced[static_cast<size_t>(keep)];
      const auto& probe_rows = reduced[static_cast<size_t>(probe)];
      const storage::Column& keep_values =
          ctx_->table(q.relations[static_cast<size_t>(keep)].table)
              .column(keep_col);
      const storage::Column& probe_values =
          ctx_->table(q.relations[static_cast<size_t>(probe)].table)
              .column(probe_col);
      std::unordered_set<Value> present;
      present.reserve(probe_rows.size());
      for (RowId r : probe_rows) {
        const Value v = probe_values.at(r);
        if (v != storage::kNullValue) present.insert(v);
      }
      std::vector<RowId> kept;
      kept.reserve(keep_rows.size());
      for (RowId r : keep_rows) {
        const Value v = keep_values.at(r);
        if (v != storage::kNullValue && present.count(v) > 0) {
          kept.push_back(r);
        }
      }
      if (kept.size() != keep_rows.size()) {
        keep_rows = std::move(kept);
        changed = true;
      }
    };
    for (size_t e = 0; e < edges.size(); ++e) {
      const auto& edge = edges[e];
      reduce_side(2 * e, edge.left_alias, edge.left_column, edge.right_alias,
                  edge.right_column);
      reduce_side(2 * e + 1, edge.right_alias, edge.right_column,
                  edge.left_alias, edge.left_column);
    }
    if (!changed) break;
  }
  return reduced;
}

Oracle::Intermediate Oracle::JoinWithBase(
    const Query& q, const Intermediate& left, AliasId alias,
    const std::vector<storage::RowId>& base_rows, AliasMask scope) {
  return ctx_->config.vectorized_exec
             ? JoinWithBaseVectorized(q, left, alias, base_rows, scope)
             : JoinWithBaseScalar(q, left, alias, base_rows, scope);
}

/// Batched engine: build a grouped JoinHashTable over the base rows (one
/// flat payload array instead of a vector per key), optionally publish its
/// key set as a Bloom filter (predicate transfer), then probe the left
/// intermediate in kBatchRows strides, gathering probe keys into an
/// L1-resident staging buffer. Match set, output order and the overflow
/// trip point are identical to JoinWithBaseScalar: probes run in left-row
/// order and each group replays the base rows in insertion order.
Oracle::Intermediate Oracle::JoinWithBaseVectorized(
    const Query& q, const Intermediate& left, AliasId alias,
    const std::vector<storage::RowId>& base_rows, AliasMask scope) {
  AliasMask left_mask = 0;
  for (AliasId a : left.aliases) left_mask |= query::MaskOf(a);
  LQOLAB_DCHECK((left_mask & ~scope) == 0);
  const auto edges = q.EdgesBetween(left_mask, query::MaskOf(alias));
  LQOLAB_CHECK(!edges.empty());

  const storage::Table& base_table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);
  const auto& hash_edge = edges[0];
  const storage::Column& base_key = base_table.column(hash_edge.right_column);
  join_table_.Build(base_key.data(), base_rows.data(),
                    static_cast<int64_t>(base_rows.size()));

  const int32_t width = static_cast<int32_t>(left.aliases.size());
  auto position_of = [&](AliasId a) {
    for (int32_t i = 0; i < width; ++i) {
      if (left.aliases[static_cast<size_t>(i)] == a) return i;
    }
    LQOLAB_CHECK_MSG(false, "alias not in intermediate");
    return -1;
  };
  struct EdgeProbe {
    int32_t left_pos;
    const Value* left_col;
    const Value* right_col;
  };
  std::vector<EdgeProbe> residual;
  const int32_t hash_pos = position_of(hash_edge.left_alias);
  const Value* hash_probe_col =
      ctx_->table(q.relations[static_cast<size_t>(hash_edge.left_alias)].table)
          .column(hash_edge.left_column)
          .data();
  for (size_t e = 1; e < edges.size(); ++e) {
    EdgeProbe probe;
    probe.left_pos = position_of(edges[e].left_alias);
    probe.left_col =
        ctx_->table(q.relations[static_cast<size_t>(edges[e].left_alias)].table)
            .column(edges[e].left_column)
            .data();
    probe.right_col = base_table.column(edges[e].right_column).data();
    residual.push_back(probe);
  }

  const BloomFilter* bloom = nullptr;
  TransferSchedule transfer{ctx_->config.predicate_transfer &&
                            left.rows >= kTransferMinProbes};

  Intermediate out;
  out.aliases = left.aliases;
  out.aliases.insert(
      std::upper_bound(out.aliases.begin(), out.aliases.end(), alias), alias);
  const int32_t out_width = width + 1;
  const int32_t insert_pos = [&] {
    for (int32_t i = 0; i < out_width; ++i) {
      if (out.aliases[static_cast<size_t>(i)] == alias) return i;
    }
    return -1;
  }();

  // Output rows are staged in an L1-resident flush buffer and appended to
  // out.data one chunk at a time, so vector bookkeeping is paid once per
  // ~kFlushCells/out_width rows instead of per match.
  constexpr int32_t kFlushCells = 2048;
  RowId flush[kFlushCells];
  int32_t flush_used = 0;

  Value probe_keys[kernels::kBatchRows];
  for (int64_t batch = 0; batch < left.rows; batch += kernels::kBatchRows) {
    const int32_t n = static_cast<int32_t>(
        std::min<int64_t>(kernels::kBatchRows, left.rows - batch));
    const RowId* batch_tuples = left.data.data() + batch * width;
    // Gather this batch's probe keys through the row-id indirection once.
    for (int32_t i = 0; i < n; ++i) {
      probe_keys[i] = hash_probe_col[batch_tuples[i * width + hash_pos]];
    }
    for (int32_t i = 0; i < n; ++i) {
      join_table_.PrefetchProbe(
          probe_keys[std::min<int32_t>(
              i + static_cast<int32_t>(kProbePrefetchDistance), n - 1)]);
      const Value probe_value = probe_keys[i];
      if (probe_value == storage::kNullValue) continue;
      if (bloom != nullptr && !bloom->MayContain(probe_value)) continue;
      const kernels::JoinHashTable::Group group = join_table_.Probe(probe_value);
      if (transfer.ShouldBuild(group.count == 0)) {
        join_table_.FillBloom(&transfer_bloom_, kTransferFpr, kTransferSeed);
        bloom = &transfer_bloom_;
      }
      if (group.count == 0) continue;
      const RowId* tuple = batch_tuples + i * width;
      for (int32_t g = 0; g < group.count; ++g) {
        const RowId base_row = group.rows[g];
        bool ok = true;
        for (const auto& probe : residual) {
          const Value lv = probe.left_col[tuple[probe.left_pos]];
          if (lv == storage::kNullValue || lv != probe.right_col[base_row]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (out.rows >= cost::kMaxIntermediateRows ||
            out.rows * out_width >= cost::kMaxIntermediateCells) {
          out.rows = -1;  // overflow
          out.data.clear();
          out.data.shrink_to_fit();
          return out;
        }
        if (flush_used + out_width > kFlushCells) {
          out.data.insert(out.data.end(), flush, flush + flush_used);
          flush_used = 0;
        }
        RowId* staged = flush + flush_used;  // out_width ≤ 32 aliases + 1
        for (int32_t c = 0; c < insert_pos; ++c) staged[c] = tuple[c];
        staged[insert_pos] = base_row;
        for (int32_t c = insert_pos + 1; c < out_width; ++c) {
          staged[c] = tuple[c - 1];
        }
        flush_used += out_width;
        ++out.rows;
      }
    }
  }
  out.data.insert(out.data.end(), flush, flush + flush_used);
  return out;
}

Oracle::Intermediate Oracle::JoinWithBaseScalar(
    const Query& q, const Intermediate& left, AliasId alias,
    const std::vector<storage::RowId>& base_rows, AliasMask scope) {
  AliasMask left_mask = 0;
  for (AliasId a : left.aliases) left_mask |= query::MaskOf(a);
  LQOLAB_DCHECK((left_mask & ~scope) == 0);
  // Edges normalized so that left_alias is inside `left`.
  const auto edges = q.EdgesBetween(left_mask, query::MaskOf(alias));
  LQOLAB_CHECK(!edges.empty());

  const storage::Table& base_table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);

  // Hash the base relation on the first edge's column.
  const auto& hash_edge = edges[0];
  const storage::Column& base_key =
      base_table.column(hash_edge.right_column);
  std::unordered_map<Value, std::vector<RowId>> hash;
  hash.reserve(base_rows.size());
  for (RowId r : base_rows) {
    const Value v = base_key.at(r);
    if (v == storage::kNullValue) continue;
    hash[v].push_back(r);
  }

  // Positions of the probe-side aliases within the left tuple layout.
  const int32_t width = static_cast<int32_t>(left.aliases.size());
  auto position_of = [&](AliasId a) {
    for (int32_t i = 0; i < width; ++i) {
      if (left.aliases[static_cast<size_t>(i)] == a) return i;
    }
    LQOLAB_CHECK_MSG(false, "alias not in intermediate");
    return -1;
  };
  struct EdgeProbe {
    int32_t left_pos;
    const storage::Column* left_col;
    const storage::Column* right_col;
  };
  std::vector<EdgeProbe> residual;
  const int32_t hash_pos = position_of(hash_edge.left_alias);
  const storage::Column& hash_probe_col =
      ctx_->table(q.relations[static_cast<size_t>(hash_edge.left_alias)].table)
          .column(hash_edge.left_column);
  for (size_t e = 1; e < edges.size(); ++e) {
    EdgeProbe probe;
    probe.left_pos = position_of(edges[e].left_alias);
    probe.left_col =
        &ctx_->table(q.relations[static_cast<size_t>(edges[e].left_alias)].table)
             .column(edges[e].left_column);
    probe.right_col = &base_table.column(edges[e].right_column);
    residual.push_back(probe);
  }

  // New layout: aliases sorted ascending with `alias` inserted.
  Intermediate out;
  out.aliases = left.aliases;
  out.aliases.insert(
      std::upper_bound(out.aliases.begin(), out.aliases.end(), alias), alias);
  const int32_t out_width = width + 1;
  const int32_t insert_pos = [&] {
    for (int32_t i = 0; i < out_width; ++i) {
      if (out.aliases[static_cast<size_t>(i)] == alias) return i;
    }
    return -1;
  }();

  for (int64_t row = 0; row < left.rows; ++row) {
    const RowId* tuple = left.data.data() + row * width;
    const Value probe_value =
        hash_probe_col.at(tuple[hash_pos]);
    if (probe_value == storage::kNullValue) continue;
    auto it = hash.find(probe_value);
    if (it == hash.end()) continue;
    for (RowId base_row : it->second) {
      bool ok = true;
      for (const auto& probe : residual) {
        const Value lv = probe.left_col->at(tuple[probe.left_pos]);
        if (lv == storage::kNullValue ||
            lv != probe.right_col->at(base_row)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (out.rows >= cost::kMaxIntermediateRows ||
          out.rows * out_width >= cost::kMaxIntermediateCells) {
        out.rows = -1;  // overflow
        out.data.clear();
        out.data.shrink_to_fit();
        return out;
      }
      for (int32_t i = 0; i < out_width; ++i) {
        if (i < insert_pos) {
          out.data.push_back(tuple[i]);
        } else if (i == insert_pos) {
          out.data.push_back(base_row);
        } else {
          out.data.push_back(tuple[i - 1]);
        }
      }
      ++out.rows;
    }
  }
  return out;
}

void Oracle::TrackBytes(int64_t delta) { mat_bytes_ += delta; }

void Oracle::EnforceBudget(QueryMemo& keep, AliasMask keep_mask) {
  if (mat_bytes_ <= kMatBudgetBytes) return;
  // Drop materializations of all other queries first, then (if still over)
  // the current query's larger intermediates. Cardinalities are retained.
  for (auto& [fp, memo] : memos_) {
    if (&memo == &keep) continue;
    for (auto& [mask, mat] : memo.mats) mat_bytes_ -= mat.bytes();
    memo.mats.clear();
  }
  if (mat_bytes_ <= kMatBudgetBytes) return;
  std::vector<std::pair<int64_t, AliasMask>> sized;
  for (auto& [mask, mat] : keep.mats) sized.emplace_back(mat.bytes(), mask);
  std::sort(sized.begin(), sized.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [bytes, mask] : sized) {
    if (mat_bytes_ <= kMatBudgetBytes / 2) break;
    if (mask == keep_mask) continue;
    mat_bytes_ -= bytes;
    keep.mats.erase(mask);
  }
}

void Oracle::ReleaseMaterializations() {
  for (auto& [fp, memo] : memos_) {
    memo.mats.clear();
  }
  mat_bytes_ = 0;
}

}  // namespace lqolab::exec
