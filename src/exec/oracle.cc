#include "exec/oracle.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "exec/cost_constants.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::exec {

using query::AliasId;
using query::AliasMask;
using query::Query;
using storage::RowId;
using storage::Value;

namespace {

constexpr int64_t kMatBudgetBytes = 384ll * 1024 * 1024;

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4))) *
         0x100000001b3ULL;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (char c : s) h = HashCombine(h, static_cast<uint64_t>(c));
  return h;
}

}  // namespace

uint64_t QueryFingerprint(const Query& q) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = HashString(h, q.id);
  for (const auto& rel : q.relations) {
    h = HashCombine(h, static_cast<uint64_t>(rel.table));
    h = HashString(h, rel.alias);
  }
  for (const auto& e : q.edges) {
    h = HashCombine(h, static_cast<uint64_t>(e.left_alias));
    h = HashCombine(h, static_cast<uint64_t>(e.left_column));
    h = HashCombine(h, static_cast<uint64_t>(e.right_alias));
    h = HashCombine(h, static_cast<uint64_t>(e.right_column));
  }
  for (const auto& p : q.predicates) {
    h = HashString(h, p.Signature());
  }
  return h;
}

Oracle::Oracle(const DbContext* ctx) : ctx_(ctx) { LQOLAB_CHECK(ctx != nullptr); }

Oracle::QueryMemo& Oracle::Memo(const Query& q) {
  QueryMemo& memo = memos_[QueryFingerprint(q)];
  if (!memo.bound) {
    memo.bound = true;
    const size_t n = q.relations.size();
    memo.preds.resize(n);
    memo.filtered.resize(n);
    memo.filtered_ready.assign(n, 0);
    for (size_t a = 0; a < n; ++a) {
      memo.preds[a] = query::BindAliasPredicates(
          q, static_cast<AliasId>(a), ctx_->table(q.relations[a].table));
    }
  }
  return memo;
}

void Oracle::EnsureFiltered(QueryMemo& memo, const Query& q, AliasId alias) {
  if (memo.filtered_ready[static_cast<size_t>(alias)]) return;
  const storage::Table& table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);
  const auto& preds = memo.preds[static_cast<size_t>(alias)];
  std::vector<RowId>& rows = memo.filtered[static_cast<size_t>(alias)];
  rows.clear();
  const int64_t n = table.row_count();
  for (RowId r = 0; r < n; ++r) {
    bool match = true;
    for (const auto& pred : preds) {
      if (!pred.Matches(table.column(pred.column).at(r))) {
        match = false;
        break;
      }
    }
    if (match) rows.push_back(r);
  }
  memo.filtered_ready[static_cast<size_t>(alias)] = 1;
}

const std::vector<RowId>& Oracle::FilteredRows(const Query& q, AliasId alias) {
  QueryMemo& memo = Memo(q);
  EnsureFiltered(memo, q, alias);
  return memo.filtered[static_cast<size_t>(alias)];
}

int64_t Oracle::TrueBaseRows(const Query& q, AliasId alias) {
  return static_cast<int64_t>(FilteredRows(q, alias).size());
}

const std::vector<RowId>& Oracle::SinglePredicateRows(const Query& q,
                                                      AliasId alias,
                                                      size_t pred_index) {
  QueryMemo& memo = Memo(q);
  const uint64_t key =
      (static_cast<uint64_t>(alias) << 32) | static_cast<uint64_t>(pred_index);
  auto it = memo.single_pred.find(key);
  if (it != memo.single_pred.end()) return it->second;
  const storage::Table& table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);
  const auto& preds = memo.preds[static_cast<size_t>(alias)];
  LQOLAB_CHECK_LT(pred_index, preds.size());
  const auto& pred = preds[pred_index];
  std::vector<RowId> rows;
  const int64_t n = table.row_count();
  const storage::Column& column = table.column(pred.column);
  for (RowId r = 0; r < n; ++r) {
    if (pred.Matches(column.at(r))) rows.push_back(r);
  }
  return memo.single_pred.emplace(key, std::move(rows)).first->second;
}

const std::vector<query::BoundPredicate>& Oracle::BoundPredicates(
    const Query& q, AliasId alias) {
  return Memo(q).preds[static_cast<size_t>(alias)];
}

Oracle::CardResult Oracle::TrueJoinRows(const Query& q, AliasMask mask) {
  LQOLAB_CHECK_MSG(q.IsConnected(mask),
                   "oracle asked for disconnected subset in " << q.id);
  obs::Count(obs::Counter::kOracleCardinalityCalls);
  QueryMemo& memo = Memo(q);
  auto it = memo.cards.find(mask);
  if (it != memo.cards.end()) return it->second;
  if (std::popcount(mask) == 1) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(mask));
    EnsureFiltered(memo, q, alias);
    const CardResult result{
        static_cast<int64_t>(memo.filtered[static_cast<size_t>(alias)].size()),
        false};
    memo.cards[mask] = result;
    return result;
  }
  const Intermediate* mat = Materialize(memo, q, mask);
  CardResult result;
  if (mat != nullptr) {
    result.rows = mat->rows;
    memo.cards[mask] = result;
    return result;
  }
  // Materialization exceeded the caps: the subset is huge but its exact
  // size may still be countable without storing tuples, by streaming the
  // extension of a cached submask materialization. Plans over such subsets
  // then get charged honest (large) virtual time instead of timing out.
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    const AliasMask rest = mask & ~query::MaskOf(alias);
    if (!q.IsConnected(rest)) continue;
    auto rest_it = memo.mats.find(rest);
    if (rest_it == memo.mats.end()) continue;
    EnsureFiltered(memo, q, alias);
    int64_t count = 0;
    if (CountExtension(q, rest_it->second, alias,
                       memo.filtered[static_cast<size_t>(alias)], &count)) {
      result.rows = count;
      memo.cards[mask] = result;
      return result;
    }
  }
  int64_t tree_count = 0;
  if (TreeCount(memo, q, mask, &tree_count)) {
    result.rows = tree_count;
    memo.cards[mask] = result;
    return result;
  }
  result.overflow = true;
  memo.cards[mask] = result;
  return result;
}

bool Oracle::TreeCount(QueryMemo& memo, const Query& q, AliasMask mask,
                       int64_t* count) {
  // Collect the subset's internal edges; bail out on cycles (message
  // passing is exact only for tree-shaped join graphs).
  std::vector<query::JoinEdge> edges;
  for (const auto& edge : q.edges) {
    if ((mask & query::MaskOf(edge.left_alias)) &&
        (mask & query::MaskOf(edge.right_alias))) {
      edges.push_back(edge);
    }
  }
  const int32_t members = std::popcount(mask);
  if (static_cast<int32_t>(edges.size()) != members - 1) return false;

  // Per-row partial counts (as doubles to survive astronomically large
  // subsets; saturated on return).
  std::unordered_map<query::AliasId, std::vector<double>> row_counts;
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    EnsureFiltered(memo, q, alias);
    row_counts[alias].assign(memo.filtered[static_cast<size_t>(alias)].size(),
                             1.0);
  }

  // Peel leaves: repeatedly take an alias with exactly one remaining edge,
  // aggregate its per-key count sums, and multiply them into the neighbor.
  std::vector<char> edge_done(edges.size(), 0);
  AliasMask remaining = mask;
  while (std::popcount(remaining) > 1) {
    AliasId leaf = -1;
    size_t leaf_edge = 0;
    bits = remaining;
    while (bits != 0) {
      const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
      bits &= bits - 1;
      int32_t degree = 0;
      size_t last_edge = 0;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edge_done[e]) continue;
        if (edges[e].left_alias == alias || edges[e].right_alias == alias) {
          ++degree;
          last_edge = e;
        }
      }
      if (degree == 1) {
        leaf = alias;
        leaf_edge = last_edge;
        break;
      }
    }
    if (leaf < 0) return false;  // should not happen for a tree
    const auto& edge = edges[leaf_edge];
    const AliasId parent =
        edge.left_alias == leaf ? edge.right_alias : edge.left_alias;
    const catalog::ColumnId leaf_col =
        edge.left_alias == leaf ? edge.left_column : edge.right_column;
    const catalog::ColumnId parent_col =
        edge.left_alias == leaf ? edge.right_column : edge.left_column;

    // Message: per join-key sum of the leaf's row counts.
    const storage::Column& leaf_values =
        ctx_->table(q.relations[static_cast<size_t>(leaf)].table)
            .column(leaf_col);
    const auto& leaf_rows = memo.filtered[static_cast<size_t>(leaf)];
    const auto& leaf_counts = row_counts[leaf];
    std::unordered_map<Value, double> message;
    message.reserve(leaf_rows.size());
    for (size_t i = 0; i < leaf_rows.size(); ++i) {
      const Value v = leaf_values.at(leaf_rows[i]);
      if (v != storage::kNullValue) message[v] += leaf_counts[i];
    }

    // Fold into the parent: each parent row multiplies by its key's sum
    // (zero when no partner exists).
    const storage::Column& parent_values =
        ctx_->table(q.relations[static_cast<size_t>(parent)].table)
            .column(parent_col);
    const auto& parent_rows = memo.filtered[static_cast<size_t>(parent)];
    auto& parent_counts = row_counts[parent];
    for (size_t i = 0; i < parent_rows.size(); ++i) {
      if (parent_counts[i] == 0.0) continue;
      const Value v = parent_values.at(parent_rows[i]);
      double factor = 0.0;
      if (v != storage::kNullValue) {
        auto it = message.find(v);
        if (it != message.end()) factor = it->second;
      }
      parent_counts[i] *= factor;
    }

    edge_done[leaf_edge] = 1;
    remaining &= ~query::MaskOf(leaf);
  }

  const AliasId root = static_cast<AliasId>(std::countr_zero(remaining));
  double total = 0.0;
  for (double c : row_counts[root]) total += c;
  constexpr double kSaturate = 4.0e18;
  *count = static_cast<int64_t>(std::min(total, kSaturate));
  return true;
}

bool Oracle::CountExtension(const Query& q, const Intermediate& left,
                            AliasId alias,
                            const std::vector<storage::RowId>& base_rows,
                            int64_t* count) {
  AliasMask left_mask = 0;
  for (AliasId a : left.aliases) left_mask |= query::MaskOf(a);
  const auto edges = q.EdgesBetween(left_mask, query::MaskOf(alias));
  LQOLAB_CHECK(!edges.empty());
  const storage::Table& base_table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);
  const auto& hash_edge = edges[0];
  const storage::Column& base_key = base_table.column(hash_edge.right_column);
  const int32_t width = static_cast<int32_t>(left.aliases.size());
  auto position_of = [&](AliasId a) {
    for (int32_t i = 0; i < width; ++i) {
      if (left.aliases[static_cast<size_t>(i)] == a) return i;
    }
    LQOLAB_CHECK_MSG(false, "alias not in intermediate");
    return -1;
  };
  const int32_t hash_pos = position_of(hash_edge.left_alias);
  const storage::Column& probe_col =
      ctx_->table(q.relations[static_cast<size_t>(hash_edge.left_alias)].table)
          .column(hash_edge.left_column);

  if (edges.size() == 1) {
    // Pure counting: sum per-key multiplicities, O(|left| + |base|).
    std::unordered_map<Value, int64_t> counts;
    counts.reserve(base_rows.size());
    for (RowId r : base_rows) {
      const Value v = base_key.at(r);
      if (v != storage::kNullValue) ++counts[v];
    }
    int64_t total = 0;
    for (int64_t row = 0; row < left.rows; ++row) {
      const Value v = probe_col.at(left.data[static_cast<size_t>(
          row * width + hash_pos)]);
      if (v == storage::kNullValue) continue;
      auto it = counts.find(v);
      if (it != counts.end()) total += it->second;
    }
    *count = total;
    return true;
  }

  // Residual edges: iterate matching pairs with a work cap.
  constexpr int64_t kMaxCountedPairs = 400'000'000;
  std::unordered_map<Value, std::vector<RowId>> hash;
  hash.reserve(base_rows.size());
  for (RowId r : base_rows) {
    const Value v = base_key.at(r);
    if (v != storage::kNullValue) hash[v].push_back(r);
  }
  struct EdgeProbe {
    int32_t left_pos;
    const storage::Column* left_col;
    const storage::Column* right_col;
  };
  std::vector<EdgeProbe> residual;
  for (size_t e = 1; e < edges.size(); ++e) {
    residual.push_back(
        {position_of(edges[e].left_alias),
         &ctx_->table(
                  q.relations[static_cast<size_t>(edges[e].left_alias)].table)
              .column(edges[e].left_column),
         &base_table.column(edges[e].right_column)});
  }
  int64_t total = 0;
  int64_t pairs = 0;
  for (int64_t row = 0; row < left.rows; ++row) {
    const RowId* tuple = left.data.data() + row * width;
    const Value v = probe_col.at(tuple[hash_pos]);
    if (v == storage::kNullValue) continue;
    auto it = hash.find(v);
    if (it == hash.end()) continue;
    for (RowId base_row : it->second) {
      if (++pairs > kMaxCountedPairs) return false;
      bool ok = true;
      for (const auto& probe : residual) {
        const Value lv = probe.left_col->at(tuple[probe.left_pos]);
        if (lv == storage::kNullValue || lv != probe.right_col->at(base_row)) {
          ok = false;
          break;
        }
      }
      if (ok) ++total;
    }
  }
  *count = total;
  return true;
}

const Oracle::Intermediate* Oracle::Materialize(QueryMemo& memo,
                                                const Query& q,
                                                AliasMask mask) {
  auto mat_it = memo.mats.find(mask);
  if (mat_it != memo.mats.end()) return &mat_it->second;
  auto card_it = memo.cards.find(mask);
  if (card_it != memo.cards.end() && card_it->second.overflow) return nullptr;

  if (std::popcount(mask) == 1) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(mask));
    EnsureFiltered(memo, q, alias);
    Intermediate base;
    base.aliases = {alias};
    base.data = memo.filtered[static_cast<size_t>(alias)];
    base.rows = static_cast<int64_t>(base.data.size());
    TrackBytes(base.bytes());
    auto [it, inserted] = memo.mats.emplace(mask, std::move(base));
    LQOLAB_CHECK(inserted);
    EnforceBudget(memo, mask);
    return &it->second;
  }

  // Fast path: extend a cached materialization of (mask minus one alias).
  // The extension streams and is exact, so it cannot blow up beyond the
  // subset's own result size.
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    const AliasMask rest = mask & ~query::MaskOf(alias);
    if (!q.IsConnected(rest)) continue;
    auto rest_it = memo.mats.find(rest);
    if (rest_it == memo.mats.end()) continue;
    EnsureFiltered(memo, q, alias);
    Intermediate joined =
        JoinWithBase(q, rest_it->second, alias,
                     memo.filtered[static_cast<size_t>(alias)], mask);
    if (joined.rows < 0) {
      memo.cards[mask] = {0, true};
      return nullptr;
    }
    memo.cards[mask] = {joined.rows, false};
    TrackBytes(joined.bytes());
    auto [it, inserted] = memo.mats.emplace(mask, std::move(joined));
    LQOLAB_CHECK(inserted);
    EnforceBudget(memo, mask);
    return &it->second;
  }

  // Fresh evaluation: semi-join-reduce every member relation, then join
  // greedily (smallest reduced base first) over the reduced row lists.
  // After reduction, every partial tuple extends to at least one full
  // tuple of the subset (exactly, for acyclic subsets), so intermediates
  // stay near the subset's result size.
  std::vector<std::vector<storage::RowId>> reduced =
      SemiJoinReduce(memo, q, mask);
  auto reduced_rows = [&](AliasId a) -> const std::vector<storage::RowId>& {
    return reduced[static_cast<size_t>(a)];
  };

  std::vector<AliasId> members;
  AliasMask bits2 = mask;
  while (bits2 != 0) {
    members.push_back(static_cast<AliasId>(std::countr_zero(bits2)));
    bits2 &= bits2 - 1;
  }
  // Greedy connected order over reduced sizes.
  AliasId start = members[0];
  for (AliasId a : members) {
    if (reduced_rows(a).size() < reduced_rows(start).size()) start = a;
  }
  Intermediate current;
  current.aliases = {start};
  current.data = reduced_rows(start);
  current.rows = static_cast<int64_t>(current.data.size());
  AliasMask covered = query::MaskOf(start);
  while (covered != mask) {
    AliasId next = -1;
    for (AliasId a : members) {
      if (covered & query::MaskOf(a)) continue;
      if ((q.AdjacencyMask(a) & covered) == 0) continue;
      if (next < 0 || reduced_rows(a).size() < reduced_rows(next).size()) {
        next = a;
      }
    }
    LQOLAB_CHECK_GE(next, 0);
    Intermediate joined =
        JoinWithBase(q, current, next, reduced_rows(next), mask);
    if (joined.rows < 0) {
      memo.cards[mask] = {0, true};
      return nullptr;
    }
    current = std::move(joined);
    covered |= query::MaskOf(next);
  }
  memo.cards[mask] = {current.rows, false};
  TrackBytes(current.bytes());
  auto [it, inserted] = memo.mats.emplace(mask, std::move(current));
  LQOLAB_CHECK(inserted);
  EnforceBudget(memo, mask);
  return &it->second;
}

std::vector<std::vector<storage::RowId>> Oracle::SemiJoinReduce(
    QueryMemo& memo, const Query& q, AliasMask mask) {
  std::vector<std::vector<storage::RowId>> reduced(q.relations.size());
  AliasMask bits = mask;
  while (bits != 0) {
    const AliasId alias = static_cast<AliasId>(std::countr_zero(bits));
    bits &= bits - 1;
    EnsureFiltered(memo, q, alias);
    reduced[static_cast<size_t>(alias)] =
        memo.filtered[static_cast<size_t>(alias)];
  }
  // Edges inside the mask.
  std::vector<query::JoinEdge> edges;
  for (const auto& edge : q.edges) {
    if ((mask & query::MaskOf(edge.left_alias)) &&
        (mask & query::MaskOf(edge.right_alias))) {
      edges.push_back(edge);
    }
  }
  // A few reduction passes (2 suffice for tree-shaped subsets when edges
  // are swept in both directions; a 3rd catches most cycle effects).
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    auto reduce_side = [&](AliasId keep, catalog::ColumnId keep_col,
                           AliasId probe, catalog::ColumnId probe_col) {
      auto& keep_rows = reduced[static_cast<size_t>(keep)];
      const auto& probe_rows = reduced[static_cast<size_t>(probe)];
      const storage::Column& keep_values =
          ctx_->table(q.relations[static_cast<size_t>(keep)].table)
              .column(keep_col);
      const storage::Column& probe_values =
          ctx_->table(q.relations[static_cast<size_t>(probe)].table)
              .column(probe_col);
      std::unordered_set<Value> present;
      present.reserve(probe_rows.size());
      for (RowId r : probe_rows) {
        const Value v = probe_values.at(r);
        if (v != storage::kNullValue) present.insert(v);
      }
      std::vector<RowId> kept;
      kept.reserve(keep_rows.size());
      for (RowId r : keep_rows) {
        const Value v = keep_values.at(r);
        if (v != storage::kNullValue && present.count(v) > 0) {
          kept.push_back(r);
        }
      }
      if (kept.size() != keep_rows.size()) {
        keep_rows = std::move(kept);
        changed = true;
      }
    };
    for (const auto& edge : edges) {
      reduce_side(edge.left_alias, edge.left_column, edge.right_alias,
                  edge.right_column);
      reduce_side(edge.right_alias, edge.right_column, edge.left_alias,
                  edge.left_column);
    }
    if (!changed) break;
  }
  return reduced;
}

Oracle::Intermediate Oracle::JoinWithBase(
    const Query& q, const Intermediate& left, AliasId alias,
    const std::vector<storage::RowId>& base_rows, AliasMask scope) {
  AliasMask left_mask = 0;
  for (AliasId a : left.aliases) left_mask |= query::MaskOf(a);
  LQOLAB_DCHECK((left_mask & ~scope) == 0);
  // Edges normalized so that left_alias is inside `left`.
  const auto edges = q.EdgesBetween(left_mask, query::MaskOf(alias));
  LQOLAB_CHECK(!edges.empty());

  const storage::Table& base_table =
      ctx_->table(q.relations[static_cast<size_t>(alias)].table);

  // Hash the base relation on the first edge's column.
  const auto& hash_edge = edges[0];
  const storage::Column& base_key =
      base_table.column(hash_edge.right_column);
  std::unordered_map<Value, std::vector<RowId>> hash;
  hash.reserve(base_rows.size());
  for (RowId r : base_rows) {
    const Value v = base_key.at(r);
    if (v == storage::kNullValue) continue;
    hash[v].push_back(r);
  }

  // Positions of the probe-side aliases within the left tuple layout.
  const int32_t width = static_cast<int32_t>(left.aliases.size());
  auto position_of = [&](AliasId a) {
    for (int32_t i = 0; i < width; ++i) {
      if (left.aliases[static_cast<size_t>(i)] == a) return i;
    }
    LQOLAB_CHECK_MSG(false, "alias not in intermediate");
    return -1;
  };
  struct EdgeProbe {
    int32_t left_pos;
    const storage::Column* left_col;
    const storage::Column* right_col;
  };
  std::vector<EdgeProbe> residual;
  const int32_t hash_pos = position_of(hash_edge.left_alias);
  const storage::Column& hash_probe_col =
      ctx_->table(q.relations[static_cast<size_t>(hash_edge.left_alias)].table)
          .column(hash_edge.left_column);
  for (size_t e = 1; e < edges.size(); ++e) {
    EdgeProbe probe;
    probe.left_pos = position_of(edges[e].left_alias);
    probe.left_col =
        &ctx_->table(q.relations[static_cast<size_t>(edges[e].left_alias)].table)
             .column(edges[e].left_column);
    probe.right_col = &base_table.column(edges[e].right_column);
    residual.push_back(probe);
  }

  // New layout: aliases sorted ascending with `alias` inserted.
  Intermediate out;
  out.aliases = left.aliases;
  out.aliases.insert(
      std::upper_bound(out.aliases.begin(), out.aliases.end(), alias), alias);
  const int32_t out_width = width + 1;
  const int32_t insert_pos = [&] {
    for (int32_t i = 0; i < out_width; ++i) {
      if (out.aliases[static_cast<size_t>(i)] == alias) return i;
    }
    return -1;
  }();

  for (int64_t row = 0; row < left.rows; ++row) {
    const RowId* tuple = left.data.data() + row * width;
    const Value probe_value =
        hash_probe_col.at(tuple[hash_pos]);
    if (probe_value == storage::kNullValue) continue;
    auto it = hash.find(probe_value);
    if (it == hash.end()) continue;
    for (RowId base_row : it->second) {
      bool ok = true;
      for (const auto& probe : residual) {
        const Value lv = probe.left_col->at(tuple[probe.left_pos]);
        if (lv == storage::kNullValue ||
            lv != probe.right_col->at(base_row)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (out.rows >= cost::kMaxIntermediateRows ||
          out.rows * out_width >= cost::kMaxIntermediateCells) {
        out.rows = -1;  // overflow
        out.data.clear();
        out.data.shrink_to_fit();
        return out;
      }
      for (int32_t i = 0; i < out_width; ++i) {
        if (i < insert_pos) {
          out.data.push_back(tuple[i]);
        } else if (i == insert_pos) {
          out.data.push_back(base_row);
        } else {
          out.data.push_back(tuple[i - 1]);
        }
      }
      ++out.rows;
    }
  }
  return out;
}

void Oracle::TrackBytes(int64_t delta) { mat_bytes_ += delta; }

void Oracle::EnforceBudget(QueryMemo& keep, AliasMask keep_mask) {
  if (mat_bytes_ <= kMatBudgetBytes) return;
  // Drop materializations of all other queries first, then (if still over)
  // the current query's larger intermediates. Cardinalities are retained.
  for (auto& [fp, memo] : memos_) {
    if (&memo == &keep) continue;
    for (auto& [mask, mat] : memo.mats) mat_bytes_ -= mat.bytes();
    memo.mats.clear();
  }
  if (mat_bytes_ <= kMatBudgetBytes) return;
  std::vector<std::pair<int64_t, AliasMask>> sized;
  for (auto& [mask, mat] : keep.mats) sized.emplace_back(mat.bytes(), mask);
  std::sort(sized.begin(), sized.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [bytes, mask] : sized) {
    if (mat_bytes_ <= kMatBudgetBytes / 2) break;
    if (mask == keep_mask) continue;
    mat_bytes_ -= bytes;
    keep.mats.erase(mask);
  }
}

void Oracle::ReleaseMaterializations() {
  for (auto& [fp, memo] : memos_) {
    memo.mats.clear();
  }
  mat_bytes_ = 0;
}

}  // namespace lqolab::exec
