#ifndef LQOLAB_EXEC_ORACLE_H_
#define LQOLAB_EXEC_ORACLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/bloom.h"
#include "exec/db_context.h"
#include "exec/kernels.h"
#include "query/predicate_binding.h"
#include "query/query.h"

namespace lqolab::exec {

/// Stable fingerprint of a query's full structure (relations, edges,
/// predicates); used to key oracle memoization across repeated executions.
uint64_t QueryFingerprint(const query::Query& q);

/// True-cardinality oracle: computes the exact result sizes of filtered base
/// relations and of connected join subsets by actually evaluating them over
/// the data (hash joins over row-id tuples). Results are memoized per query
/// fingerprint, so repeated plan executions during LQO training are cheap.
///
/// This is the core of the simulation substrate (DESIGN.md §4.1): the
/// executor charges virtual time as a function of TRUE cardinalities, while
/// the planner sees only the estimator — exactly the gap that separates good
/// plans from bad ones on the real system.
///
/// Two interchangeable engines implement the hot path (docs/execution.md):
/// the batch-at-a-time kernels of exec/kernels.h (DbConfig::vectorized_exec,
/// the default), optionally with Bloom-filter predicate transfer
/// (DbConfig::predicate_transfer), and the original tuple-at-a-time
/// reference. Both return byte-identical row sets — the vectorized path
/// reproduces the reference's match semantics and output ordering exactly,
/// and predicate transfer is a pure pre-test that cannot change results —
/// so the scalar path stays selectable at runtime as the differential
/// baseline (tests/test_kernels.cc, fuzz::DifferentialOracle).
class Oracle {
 public:
  explicit Oracle(const DbContext* ctx);

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Result of a cardinality request. `overflow` marks subsets whose
  /// materialization exceeded cost::kMaxIntermediateRows; the executor
  /// treats such plans as timed out.
  struct CardResult {
    int64_t rows = 0;
    bool overflow = false;
  };

  /// Rows of `alias` passing all its predicates (ascending row ids).
  const std::vector<storage::RowId>& FilteredRows(const query::Query& q,
                                                  query::AliasId alias);

  /// Filtered row count of a base relation.
  int64_t TrueBaseRows(const query::Query& q, query::AliasId alias);

  /// Rows of `alias` matching ONLY its `pred_index`-th predicate (used to
  /// model index/bitmap scan page access).
  const std::vector<storage::RowId>& SinglePredicateRows(const query::Query& q,
                                                         query::AliasId alias,
                                                         size_t pred_index);

  /// True cardinality of the join over a connected alias subset.
  CardResult TrueJoinRows(const query::Query& q, query::AliasMask mask);

  /// Bound predicates of an alias (resolved dictionary codes).
  const std::vector<query::BoundPredicate>& BoundPredicates(
      const query::Query& q, query::AliasId alias);

  /// Frees all materialized intermediates (cardinalities are kept).
  void ReleaseMaterializations();

  /// Total bytes currently held in materialized intermediates.
  int64_t materialization_bytes() const { return mat_bytes_; }

 private:
  /// Materialized join result: tuples of row-ids, one per alias in
  /// `aliases` (ascending), row-major in `data`.
  struct Intermediate {
    std::vector<query::AliasId> aliases;
    std::vector<storage::RowId> data;
    int64_t rows = 0;

    int64_t bytes() const {
      return static_cast<int64_t>(data.capacity()) *
             static_cast<int64_t>(sizeof(storage::RowId));
    }
  };

  struct QueryMemo {
    bool bound = false;
    std::vector<std::vector<query::BoundPredicate>> preds;   // per alias
    std::vector<std::vector<storage::RowId>> filtered;       // per alias
    std::vector<char> filtered_ready;
    std::unordered_map<uint64_t, std::vector<storage::RowId>> single_pred;
    std::unordered_map<query::AliasMask, CardResult> cards;
    std::unordered_map<query::AliasMask, Intermediate> mats;
  };

  QueryMemo& Memo(const query::Query& q);
  void EnsureFiltered(QueryMemo& memo, const query::Query& q,
                      query::AliasId alias);

  /// Sharded scan (storage::ShardedTableSet): runs the selection kernels
  /// shard-at-a-time over each shard's dense column segments, maps the
  /// shard-local matches back to global row ids and k-way-merges them —
  /// byte-identical to running the kernels over the unsharded columns.
  void FilterSharded(const storage::ShardedTableSet& shards,
                     catalog::TableId table,
                     const query::BoundPredicate* preds, size_t pred_count,
                     std::vector<storage::RowId>* rows);

  /// Returns the materialized subset or nullptr on overflow. Prefers
  /// extending a cached submask materialization by one relation (exact and
  /// blowup-free); otherwise evaluates the subset from scratch with
  /// Yannakakis-style semi-join reduction, which bounds intermediates by
  /// (roughly) the subset's own result size even for adversarial shapes.
  const Intermediate* Materialize(QueryMemo& memo, const query::Query& q,
                                  query::AliasMask mask);

  /// Joins `left` with base rows of `alias` over all connecting edges
  /// within `scope`. Returns overflow via `result.rows < 0`. Dispatches to
  /// the batched or the tuple-at-a-time engine per config.
  Intermediate JoinWithBase(const query::Query& q, const Intermediate& left,
                            query::AliasId alias,
                            const std::vector<storage::RowId>& base_rows,
                            query::AliasMask scope);
  Intermediate JoinWithBaseScalar(
      const query::Query& q, const Intermediate& left, query::AliasId alias,
      const std::vector<storage::RowId>& base_rows, query::AliasMask scope);
  Intermediate JoinWithBaseVectorized(
      const query::Query& q, const Intermediate& left, query::AliasId alias,
      const std::vector<storage::RowId>& base_rows, query::AliasMask scope);

  /// Exact count of a TREE-shaped (acyclic) subset by message passing over
  /// the join tree in O(sum of base rows) — no materialization, any result
  /// size. Returns false when the subset's edges contain a cycle.
  bool TreeCount(QueryMemo& memo, const query::Query& q,
                 query::AliasMask mask, int64_t* count);

  /// Streams the one-relation extension of `left` counting result rows
  /// without storing them; returns false when the pair-iteration work cap
  /// is exceeded. Used for subsets too large to materialize.
  bool CountExtension(const query::Query& q, const Intermediate& left,
                      query::AliasId alias,
                      const std::vector<storage::RowId>& base_rows,
                      int64_t* count);
  bool CountExtensionScalar(const query::Query& q, const Intermediate& left,
                            query::AliasId alias,
                            const std::vector<storage::RowId>& base_rows,
                            int64_t* count);
  bool CountExtensionVectorized(const query::Query& q,
                                const Intermediate& left,
                                query::AliasId alias,
                                const std::vector<storage::RowId>& base_rows,
                                int64_t* count);

  /// Semi-join-reduces the filtered row lists of every alias in `mask`
  /// (rows without a join partner on some edge inside `mask` are dropped;
  /// sound for computing the join over `mask`).
  std::vector<std::vector<storage::RowId>> SemiJoinReduce(
      QueryMemo& memo, const query::Query& q, query::AliasMask mask);

  void TrackBytes(int64_t delta);
  /// Evicts materializations when over budget, never touching `keep_mask`
  /// of `keep` (callers may hold a pointer into it).
  void EnforceBudget(QueryMemo& keep, query::AliasMask keep_mask);

  const DbContext* ctx_;
  std::unordered_map<uint64_t, QueryMemo> memos_;
  int64_t mat_bytes_ = 0;

  // Scratch for the batched engine, reused across calls so the steady-state
  // hot path performs no per-tuple heap allocation (the Oracle is already
  // single-threaded per replica, so plain members are safe).
  // SemiJoinReduce keeps one ValueSet per distinct (probe alias, column)
  // build key so an unchanged probe side never rebuilds its set across
  // passes; the pool persists so slot storage is reused across queries.
  std::vector<kernels::ValueSet> semi_set_pool_;
  kernels::JoinHashTable join_table_;
  BloomFilter transfer_bloom_;
  // FilterSharded staging: per-shard global match lists and the
  // shard-local selection buffer.
  std::vector<std::vector<storage::RowId>> shard_rows_;
  std::vector<storage::RowId> shard_local_;
};

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_ORACLE_H_
