#ifndef LQOLAB_EXEC_DB_CONTEXT_H_
#define LQOLAB_EXEC_DB_CONTEXT_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "engine/config.h"
#include "stats/column_stats.h"
#include "storage/buffer_pool.h"
#include "storage/index.h"
#include "storage/table.h"

namespace lqolab::exec {

/// Shared view of one database instance used by the estimator, planner and
/// executor. Owned and assembled by engine::Database.
///
/// Tables and indexes are immutable once built, and are held by shared_ptr
/// so that worker replicas (Database::CloneContextForWorker) can reference
/// the same physical data without copying it; everything else in the context
/// is per-replica state.
struct DbContext {
  const catalog::Schema* schema = nullptr;
  std::vector<std::shared_ptr<storage::Table>> tables;
  /// Secondary indexes keyed by (table, column).
  std::map<std::pair<catalog::TableId, catalog::ColumnId>,
           std::shared_ptr<storage::Index>>
      indexes;
  std::vector<stats::TableStats> table_stats;
  std::unique_ptr<storage::BufferPool> buffer_pool;
  engine::DbConfig config;

  const storage::Table& table(catalog::TableId id) const {
    return *tables[static_cast<size_t>(id)];
  }

  /// Index on (table, column) or nullptr.
  const storage::Index* FindIndex(catalog::TableId table,
                                  catalog::ColumnId column) const {
    auto it = indexes.find({table, column});
    return it == indexes.end() ? nullptr : it->second.get();
  }

  const stats::ColumnStats& column_stats(catalog::TableId table,
                                         catalog::ColumnId column) const {
    return table_stats[static_cast<size_t>(table)]
        .columns[static_cast<size_t>(column)];
  }
};

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_DB_CONTEXT_H_
