#ifndef LQOLAB_EXEC_DB_CONTEXT_H_
#define LQOLAB_EXEC_DB_CONTEXT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "engine/config.h"
#include "engine/shared_context.h"
#include "stats/column_stats.h"
#include "storage/buffer_pool.h"
#include "storage/index.h"
#include "storage/table.h"

namespace lqolab::exec {

/// Observed true cardinalities pinned into the estimator during mid-query
/// adaptive re-optimization (docs/overload.md). Keys are query-relative
/// alias masks (query::AliasMask, kept as a plain uint32_t here to avoid an
/// include cycle with query/). A pinned mask short-circuits every estimate
/// for that alias set — including any armed "stats.estimate" poison fault —
/// so a re-plan sees ground truth for the already-executed prefix.
struct CardinalityPins {
  std::unordered_map<uint32_t, double> rows;

  bool empty() const { return rows.empty(); }
  bool Has(uint32_t mask) const { return rows.find(mask) != rows.end(); }
  /// Pinned rows for `mask`, or a negative value when unpinned.
  double Lookup(uint32_t mask) const {
    auto it = rows.find(mask);
    return it == rows.end() ? -1.0 : it->second;
  }
  void Pin(uint32_t mask, double r) { rows[mask] = r < 1.0 ? 1.0 : r; }
};

/// Per-replica view of one database instance used by the estimator, planner
/// and executor. Owned and assembled by engine::Database.
///
/// All immutable post-build state (catalog, column segments, indexes,
/// statistics, shard layout) lives in one engine::SharedContext referenced
/// here by shared_ptr: worker replicas copy the pointer, never the data.
/// What remains in the context itself is exactly the per-replica mutable
/// state — buffer pools and configuration.
struct DbContext {
  /// Convenience alias for `&shared->schema` (kept as a raw pointer because
  /// query generation and plan encoding take the schema standalone).
  const catalog::Schema* schema = nullptr;
  std::shared_ptr<const engine::SharedContext> shared;
  /// Main buffer cache. With sharding enabled it serves index and any
  /// non-sharded pages; heap pages of sharded tables go to shard_pools.
  std::unique_ptr<storage::BufferPool> buffer_pool;
  /// One pool per shard (empty unless config.table_shards > 1), each sized
  /// 1/num_shards of the configured capacities: sharding partitions the
  /// cache the way it partitions the heap.
  std::vector<std::unique_ptr<storage::BufferPool>> shard_pools;
  engine::DbConfig config;
  /// Installed (non-null) only while engine::Database::ExecutePlanAdaptive
  /// is re-planning; consulted first by stats::CardinalityEstimator. Owned
  /// by the adaptive loop, never by the context.
  const CardinalityPins* card_pins = nullptr;
  /// Installed (non-null) only while ExecutePlanAdaptive is re-planning:
  /// alias mask -> true rows of every intermediate an abandoned attempt
  /// fully materialized. The planner prices these subsets at spool re-read
  /// cost (optimizer/planner.cc) so a re-plan gravitates toward work
  /// already paid for, and the executor elides their subtrees at run time
  /// (exec::ReplanMonitor::materialized). Owned by the adaptive loop.
  const std::unordered_map<uint32_t, int64_t>* spooled = nullptr;

  const std::vector<std::shared_ptr<storage::Table>>& tables() const {
    return shared->tables;
  }

  const storage::Table& table(catalog::TableId id) const {
    return *shared->tables[static_cast<size_t>(id)];
  }

  /// Index on (table, column) or nullptr.
  const storage::Index* FindIndex(catalog::TableId table,
                                  catalog::ColumnId column) const {
    auto it = shared->indexes.find({table, column});
    return it == shared->indexes.end() ? nullptr : it->second.get();
  }

  const std::vector<stats::TableStats>& table_stats() const {
    return shared->table_stats;
  }

  const stats::ColumnStats& column_stats(catalog::TableId table,
                                         catalog::ColumnId column) const {
    return shared->table_stats[static_cast<size_t>(table)]
        .columns[static_cast<size_t>(column)];
  }

  /// Shard layout, or nullptr when sharding is disabled.
  const storage::ShardedTableSet* shards() const {
    return shared == nullptr ? nullptr : shared->shards.get();
  }

  /// Pool serving `shard` (-1 or out of range = the main pool). The single
  /// routing point for every page charge in the executor.
  storage::BufferPool& pool(int32_t shard = -1) const {
    if (shard >= 0 && static_cast<size_t>(shard) < shard_pools.size()) {
      return *shard_pools[static_cast<size_t>(shard)];
    }
    return *buffer_pool;
  }

  // Buffer counters aggregated across the main and shard pools, so
  // EXPLAIN ANALYZE tier breakdowns mean the same thing sharded or not.
  int64_t buffer_shared_hits() const {
    int64_t n = buffer_pool->shared_hits();
    for (const auto& p : shard_pools) n += p->shared_hits();
    return n;
  }
  int64_t buffer_os_hits() const {
    int64_t n = buffer_pool->os_hits();
    for (const auto& p : shard_pools) n += p->os_hits();
    return n;
  }
  int64_t buffer_disk_reads() const {
    int64_t n = buffer_pool->disk_reads();
    for (const auto& p : shard_pools) n += p->disk_reads();
    return n;
  }
};

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_DB_CONTEXT_H_
