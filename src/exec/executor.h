#ifndef LQOLAB_EXEC_EXECUTOR_H_
#define LQOLAB_EXEC_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/db_context.h"
#include "exec/deadline.h"
#include "exec/oracle.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "util/status.h"
#include "util/virtual_clock.h"

namespace lqolab::stats {
class CardinalityEstimator;
}  // namespace lqolab::stats

namespace lqolab::exec {

/// Per-operator runtime statistics of one execution (parallel to
/// plan.nodes). Pure observation: collecting these never charges virtual
/// time or mutates cache state, so executions replay bit-identically
/// whether or not anyone reads them. Rendered by obs/explain.h as
/// EXPLAIN ANALYZE.
struct PlanNodeStats {
  /// True output rows (-1 where the oracle count overflowed).
  int64_t actual_rows = 0;
  /// Times the operator was (re)started: 1 everywhere except the probed
  /// inner scan of an index nested-loop join (one probe per outer row).
  int64_t loops = 1;
  /// Virtual time charged by this node alone (children excluded), after
  /// warm-up/noise scaling. Index-NLJ inner probes are charged to the
  /// join. Zero for nodes skipped by a timeout or overflow.
  util::VirtualNanos self_time_ns = 0;
  /// Buffer-cache tier breakdown of this node's page accesses.
  int64_t shared_hits = 0;
  int64_t os_hits = 0;
  int64_t disk_reads = 0;
};

/// Opt-in mid-query divergence monitor (adaptive re-optimization,
/// docs/overload.md). When passed to Execute, every node's observed true
/// cardinality is compared against the estimate the planner believed (the
/// same call path, so an armed "stats.estimate" poison is seen identically);
/// when the q-error crosses `qerror_threshold` on a subset big enough to
/// matter, the walk stops with ExecutionResult::replan_requested and the
/// partial latency already paid. Masks in `pins` were observed by an earlier
/// attempt and never re-trigger. Divergence is detected as a node's output
/// materializes, before its parent consumes it, so the diverging node's own
/// cost is not charged to the abandoned attempt.
struct ReplanMonitor {
  const stats::CardinalityEstimator* estimator = nullptr;
  const CardinalityPins* pins = nullptr;
  /// Trigger when max(actual/est, est/actual) >= this.
  double qerror_threshold = 8.0;
  /// ... and max(actual, estimate) >= this (small subsets cannot hurt).
  int64_t min_rows = 1024;
  /// Out: (alias mask, true rows) of every node the walk observed before
  /// stopping, including the diverging node — the truths the re-plan pins.
  std::vector<std::pair<uint32_t, int64_t>> observed;
  /// In: mask -> rows of intermediates fully computed (and charged) by an
  /// earlier abandoned attempt. A join result for an alias mask is the same
  /// row set under any join order, so a re-execution that needs one of
  /// these subsets reads the spooled intermediate (rows * kMatReadNs)
  /// instead of recomputing its whole subtree — the POP/Rio-style
  /// checkpoint reuse that makes abandoning a bad plan affordable. Fed by
  /// ExecutionResult::completed (see Database::ExecutePlanAdaptive).
  std::unordered_map<uint32_t, int64_t> materialized;
};

/// Outcome of one (simulated) plan execution.
struct ExecutionResult {
  /// Outcome classification: OK on success, kDeadlineExceeded when
  /// `timed_out`, the cancel code (kCancelled/kShutdown) when a
  /// QueryDeadline aborted the walk, or the injected code of a faultlib
  /// error (kUnavailable/kResourceExhausted). Non-OK results report the
  /// partial latency accumulated before the abort and zero result_rows.
  util::Status status;
  /// Simulated execution latency. Equals the timeout when `timed_out`.
  util::VirtualNanos execution_ns = 0;
  bool timed_out = false;
  /// True result cardinality of the query (0 when timed out).
  int64_t result_rows = 0;
  /// Heap/index pages touched through the buffer cache.
  int64_t pages_accessed = 0;

  /// The walk stopped because a ReplanMonitor flagged divergence; status is
  /// OK, execution_ns holds the wasted prefix latency, result_rows is 0.
  bool replan_requested = false;
  /// Index of the diverging node and its q-error (when replan_requested).
  size_t replan_node = 0;
  double replan_qerror = 0.0;
  /// When replan_requested: (mask, rows) of every node fully charged before
  /// the walk stopped — intermediates the abandoned attempt materialized.
  /// The adaptive loop merges these into ReplanMonitor::materialized so the
  /// next attempt reuses instead of recomputes them.
  std::vector<std::pair<uint32_t, int64_t>> completed;

  /// Per plan node: true output rows (parallel to plan.nodes; join nodes
  /// whose subset overflowed report -1).
  std::vector<int64_t> node_rows;
  /// Per plan node: rows/loops/time/buffer breakdown (parallel to
  /// plan.nodes; node_rows is kept as the compact legacy view).
  std::vector<PlanNodeStats> node_stats;
};

/// Virtual-time executor. Walks a physical plan bottom-up, obtains every
/// node's true input/output cardinalities from the Oracle, and charges
/// simulated nanoseconds: per-tuple CPU by operator type and per-page costs
/// through the two-tier buffer cache (which this mutates — executions have
/// side effects on cache state, the mechanism behind Fig. 4).
///
/// The work done per execution is O(plan size + pages touched), independent
/// of how catastrophic the plan is: true cardinalities are memoized in the
/// oracle and the arithmetic is analytic. Timeouts are therefore free.
class Executor {
 public:
  Executor(DbContext* ctx, Oracle* oracle);

  /// Executes `plan` for `q`. `time_multiplier` scales all charges (used by
  /// the engine for warm-up state and execution noise); `timeout_ns` bounds
  /// the reported latency, marking the result timed out. A non-null
  /// `deadline` is polled at every plan-node boundary so another thread can
  /// cancel the walk mid-plan (result.status carries the cancel code). A
  /// non-null `monitor` arms mid-query divergence detection (see
  /// ReplanMonitor).
  ExecutionResult Execute(const query::Query& q,
                          const optimizer::PhysicalPlan& plan,
                          util::VirtualNanos timeout_ns,
                          double time_multiplier = 1.0,
                          const QueryDeadline* deadline = nullptr,
                          ReplanMonitor* monitor = nullptr);

 private:
  /// Charges one page access and returns its cost. `sequential` selects the
  /// cheaper read-ahead disk cost on a miss. `shard` routes the access to a
  /// per-shard buffer pool (-1 = the main pool; see DbContext::pool).
  util::VirtualNanos ChargePage(uint64_t key, bool sequential,
                                int32_t shard = -1);

  /// Charges page accesses for `count` heap fetches given by row-ids,
  /// sampling at most kMaxPageLoop accesses and scaling the charge.
  util::VirtualNanos ChargeHeapFetches(catalog::TableId table,
                                       const std::vector<storage::RowId>& rows,
                                       bool page_ordered);

  /// Charges `pages` random page touches of `table`'s heap using a
  /// deterministic probe sequence (used for index-NLJ inner fetches where
  /// exact row-ids are not materialized).
  util::VirtualNanos ChargeRandomHeapPages(catalog::TableId table,
                                           int64_t touches);

  util::VirtualNanos ScanCost(const query::Query& q,
                              const optimizer::PlanNode& node,
                              bool* overflow);
  util::VirtualNanos JoinCost(const query::Query& q,
                              const optimizer::PhysicalPlan& plan,
                              const optimizer::PlanNode& node, bool* overflow);

  double ParallelSpeedup(int64_t driving_pages) const;

  DbContext* ctx_;
  Oracle* oracle_;
  int64_t pages_accessed_ = 0;
  /// First injected fault error of the current execution (sticky until the
  /// node-boundary check aborts the walk); OK when no fault fired.
  util::Status fault_status_;
};

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_EXECUTOR_H_
