#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "exec/cost_constants.h"
#include "faultlib/faultlib.h"
#include "obs/metrics.h"
#include "stats/cardinality_estimator.h"
#include "util/check.h"

namespace lqolab::exec {

using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::PlanNode;
using optimizer::ScanType;
using query::Query;
using storage::AccessTier;
using storage::BufferPool;
using storage::PageKind;
using storage::RowId;
using util::VirtualNanos;

namespace {

/// Maximum buffer-pool operations charged per scan; larger fetch counts are
/// sampled and the cost scaled, keeping real time bounded.
constexpr int64_t kMaxPageLoop = 20'000;

VirtualNanos TierCost(AccessTier tier, bool sequential) {
  switch (tier) {
    case AccessTier::kSharedHit:
      return cost::kSharedHitNs;
    case AccessTier::kOsHit:
      return cost::kOsHitNs;
    case AccessTier::kDisk:
      return sequential ? cost::kDiskSeqReadNs : cost::kDiskReadNs;
  }
  return cost::kDiskReadNs;
}

double SafeLog2(double x) { return x < 2.0 ? 1.0 : std::log2(x); }

/// Adds `amount` (double nanoseconds) saturating at a large cap.
VirtualNanos SaturatingNanos(double amount) {
  constexpr double kCap = 9.0e17;
  if (amount >= kCap) return static_cast<VirtualNanos>(kCap);
  if (amount < 0.0) return 0;
  return static_cast<VirtualNanos>(amount);
}

}  // namespace

Executor::Executor(DbContext* ctx, Oracle* oracle)
    : ctx_(ctx), oracle_(oracle) {
  LQOLAB_CHECK(ctx != nullptr);
  LQOLAB_CHECK(oracle != nullptr);
}

VirtualNanos Executor::ChargePage(uint64_t key, bool sequential,
                                  int32_t shard) {
  ++pages_accessed_;
  obs::Count(obs::Counter::kExecPagesAccessed);
  // Single choke point of every buffer access: the canonical storage fault
  // site. Errors latch into fault_status_ (the walk aborts at the next node
  // boundary); latency spikes charge extra virtual time like a slow read.
  const faultlib::FaultAction fault = LQOLAB_FAULT_POINT("buffer.read_page");
  if (fault.is_error() && fault_status_.ok()) {
    fault_status_ = fault.error("buffer.read_page");
  }
  const AccessTier tier = ctx_->pool(shard).Access(key);
  VirtualNanos nanos = TierCost(tier, sequential);
  if (fault.is_latency()) nanos += fault.latency_ns;
  return nanos;
}

VirtualNanos Executor::ChargeHeapFetches(catalog::TableId table,
                                         const std::vector<RowId>& rows,
                                         bool page_ordered) {
  if (rows.empty()) return 0;
  VirtualNanos total = 0;
  const storage::ShardedTableSet* shards = ctx_->shards();
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t step = std::max<int64_t>(1, n / kMaxPageLoop);
  int64_t charged = 0;
  int64_t last_page = -1;
  int32_t last_shard = -1;
  for (int64_t i = 0; i < n; i += step) {
    const RowId row = rows[static_cast<size_t>(i)];
    int32_t shard = -1;
    int64_t page;
    if (shards != nullptr) {
      // Sharded heap: the row lives on a shard-local page of its shard's
      // buffer pool.
      shard = shards->shard_of_row(table, row);
      page = shards->local_page(table, row);
    } else {
      page = storage::Table::PageOfRow(row);
    }
    if (page_ordered && page == last_page && shard == last_shard) {
      continue;  // row-ids sorted: dedup
    }
    last_page = page;
    last_shard = shard;
    total += ChargePage(
        BufferPool::PageKey(table, PageKind::kHeap, catalog::kInvalidColumn,
                            page),
        page_ordered, shard);
    ++charged;
  }
  if (charged == 0) return 0;
  // Scale sampled charges back to the full fetch count (random-order scans
  // revisit pages; page-ordered ones were deduplicated above, so their
  // sample is already page-accurate up to the stride).
  const double scale = page_ordered ? static_cast<double>(step)
                                    : static_cast<double>(n) /
                                          static_cast<double>(charged);
  return SaturatingNanos(static_cast<double>(total) * scale);
}

VirtualNanos Executor::ChargeRandomHeapPages(catalog::TableId table,
                                             int64_t touches) {
  if (touches <= 0) return 0;
  const int64_t pages =
      std::max<int64_t>(1, ctx_->table(table).page_count());
  const int64_t loops = std::min(touches, kMaxPageLoop);
  const storage::ShardedTableSet* shards = ctx_->shards();
  VirtualNanos total = 0;
  uint64_t state = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(table);
  for (int64_t i = 0; i < loops; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t page = static_cast<int64_t>((state >> 33) %
                                        static_cast<uint64_t>(pages));
    int32_t shard = -1;
    if (shards != nullptr) {
      // Map the probed global page to the shard-local page of its first row
      // (deterministic, and distributes probes across shard pools the same
      // way the heap itself is distributed).
      const RowId row = static_cast<RowId>(page * storage::kRowsPerPage);
      shard = shards->shard_of_row(table, row);
      page = shards->local_page(table, row);
    }
    total += ChargePage(
        BufferPool::PageKey(table, PageKind::kHeap, catalog::kInvalidColumn,
                            page),
        /*sequential=*/false, shard);
  }
  const double scale =
      static_cast<double>(touches) / static_cast<double>(loops);
  return SaturatingNanos(static_cast<double>(total) * scale);
}

double Executor::ParallelSpeedup(int64_t driving_pages) const {
  const auto& cfg = ctx_->config;
  const int32_t workers =
      std::min({cfg.max_parallel_workers_per_gather, cfg.max_parallel_workers,
                cfg.max_worker_processes});
  if (workers <= 0 || driving_pages < cost::kParallelMinPages) return 1.0;
  const int64_t usable = std::min<int64_t>(
      workers,
      std::max<int64_t>(1, driving_pages / cost::kParallelPagesPerWorker));
  return 1.0 + cost::kParallelEfficiency * static_cast<double>(usable);
}

VirtualNanos Executor::ScanCost(const Query& q, const PlanNode& node,
                                bool* overflow) {
  *overflow = false;
  const cost::TupleCosts& tc =
      cost::TupleCostsFor(ctx_->config.vectorized_exec);
  const catalog::TableId table_id =
      q.relations[static_cast<size_t>(node.alias)].table;
  const storage::Table& table = ctx_->table(table_id);
  const int64_t total_rows = table.row_count();
  const int64_t pages = table.page_count();
  const auto& preds = oracle_->BoundPredicates(q, node.alias);
  const int64_t pred_count = static_cast<int64_t>(preds.size());

  double cpu = 0.0;
  VirtualNanos io = 0;

  switch (node.scan_type) {
    case ScanType::kSeq: {
      if (const storage::ShardedTableSet* shards = ctx_->shards()) {
        // Sharded heap: one sequential sweep per shard, each through its
        // own buffer pool.
        for (int32_t s = 0; s < shards->num_shards(); ++s) {
          const int64_t shard_pages = shards->shard(table_id, s).page_count();
          for (int64_t p = 0; p < shard_pages; ++p) {
            io += ChargePage(BufferPool::PageKey(table_id, PageKind::kHeap,
                                                 catalog::kInvalidColumn, p),
                             /*sequential=*/true, s);
          }
        }
      } else {
        for (int64_t p = 0; p < pages; ++p) {
          io += ChargePage(BufferPool::PageKey(table_id, PageKind::kHeap,
                                               catalog::kInvalidColumn, p),
                           /*sequential=*/true);
        }
      }
      cpu = static_cast<double>(total_rows) *
            static_cast<double>(tc.scan_tuple + pred_count * tc.pred_eval);
      const double speedup = ParallelSpeedup(pages);
      return SaturatingNanos((cpu + static_cast<double>(io)) / speedup);
    }
    case ScanType::kIndex:
    case ScanType::kBitmap: {
      // Find the driving predicate (first one on the index column).
      size_t pred_index = preds.size();
      for (size_t i = 0; i < preds.size(); ++i) {
        if (preds[i].column == node.index_column) {
          pred_index = i;
          break;
        }
      }
      LQOLAB_CHECK_MSG(pred_index < preds.size(),
                       "index scan without driving predicate in " << q.id);
      const storage::Index* index = ctx_->FindIndex(table_id, node.index_column);
      LQOLAB_CHECK_MSG(index != nullptr, "missing index for scan in " << q.id);
      const auto& matched = oracle_->SinglePredicateRows(q, node.alias,
                                                         pred_index);
      const int64_t matches = static_cast<int64_t>(matched.size());
      const auto& pred = preds[pred_index];
      const int64_t descents =
          pred.kind == query::Predicate::Kind::kRange
              ? 1
              : std::max<int64_t>(1,
                                  static_cast<int64_t>(pred.values.size()));
      cpu += static_cast<double>(descents * index->height() *
                                 cost::kIndexDescentNs);
      // Leaf pages proportional to matches.
      const int64_t leaf_pages = std::max<int64_t>(1, matches / 256);
      for (int64_t p = 0; p < std::min<int64_t>(leaf_pages, kMaxPageLoop);
           ++p) {
        io += ChargePage(BufferPool::PageKey(table_id, PageKind::kIndexLeaf,
                                             node.index_column, p),
                         /*sequential=*/true);
      }
      const int64_t residual = std::max<int64_t>(0, pred_count - 1);
      if (node.scan_type == ScanType::kIndex) {
        io += ChargeHeapFetches(table_id, matched, /*page_ordered=*/false);
        cpu += static_cast<double>(matches) *
               static_cast<double>(cost::kIndexRowFetchNs +
                                   residual * tc.pred_eval);
      } else {
        cpu += static_cast<double>(matches) *
               static_cast<double>(tc.bitmap_build);
        io += ChargeHeapFetches(table_id, matched, /*page_ordered=*/true);
        cpu += static_cast<double>(matches) *
               static_cast<double>(cost::kBitmapRowFetchNs +
                                   residual * tc.pred_eval);
      }
      return SaturatingNanos(cpu + static_cast<double>(io));
    }
    case ScanType::kTid: {
      // Only valid for id = const / id IN (...) predicates.
      size_t pred_index = preds.size();
      for (size_t i = 0; i < preds.size(); ++i) {
        if (preds[i].column == 0 &&
            (preds[i].kind == query::Predicate::Kind::kEq ||
             preds[i].kind == query::Predicate::Kind::kIn)) {
          pred_index = i;
          break;
        }
      }
      LQOLAB_CHECK_MSG(pred_index < preds.size(),
                       "tid scan without id predicate in " << q.id);
      const auto& matched =
          oracle_->SinglePredicateRows(q, node.alias, pred_index);
      io += ChargeHeapFetches(table_id, matched, /*page_ordered=*/true);
      cpu += static_cast<double>(matched.size()) *
             static_cast<double>(cost::kTidFetchNs +
                                 (pred_count - 1) * tc.pred_eval);
      return SaturatingNanos(cpu + static_cast<double>(io));
    }
  }
  return 0;
}

VirtualNanos Executor::JoinCost(const Query& q, const PhysicalPlan& plan,
                                const PlanNode& node, bool* overflow) {
  *overflow = false;
  const cost::TupleCosts& tc =
      cost::TupleCostsFor(ctx_->config.vectorized_exec);
  const PlanNode& left = plan.node(node.left);
  const PlanNode& right = plan.node(node.right);
  const Oracle::CardResult in_l = oracle_->TrueJoinRows(q, left.mask);
  const Oracle::CardResult in_r = oracle_->TrueJoinRows(q, right.mask);
  const Oracle::CardResult out = oracle_->TrueJoinRows(q, node.mask);
  if (in_l.overflow || in_r.overflow || out.overflow) {
    *overflow = true;
    return 0;
  }
  const double rows_l = static_cast<double>(in_l.rows);
  const double rows_r = static_cast<double>(in_r.rows);
  const double rows_out = static_cast<double>(out.rows);
  const int64_t work_mem_bytes = engine::ScaledBytes(ctx_->config.work_mem_mb);

  double cpu = rows_out * static_cast<double>(tc.join_output);
  double io = 0.0;

  switch (node.algo) {
    case JoinAlgo::kHash: {
      cpu += rows_r * static_cast<double>(tc.hash_build) +
             rows_l * static_cast<double>(tc.hash_probe);
      const double build_bytes = rows_r * cost::kBytesPerTupleSlot;
      const double batches =
          std::max(1.0, build_bytes / static_cast<double>(work_mem_bytes));
      if (batches > 1.0) {
        // work_mem pressure: the build side spills to temp batches. This is
        // the allocation-pressure fault site for hash joins.
        const faultlib::FaultAction fault = LQOLAB_FAULT_POINT("buffer.alloc");
        if (fault.is_error() && fault_status_.ok()) {
          fault_status_ = fault.error("buffer.alloc");
        } else if (fault.is_latency()) {
          io += static_cast<double>(fault.latency_ns);
        }
        cpu *= 1.0 + cost::kSpillPassPenalty * SafeLog2(batches);
        // Spilled batches are written to and re-read from temp files.
        const double spill_pages =
            (rows_l + rows_r) / static_cast<double>(storage::kRowsPerPage);
        io += 2.0 * spill_pages * static_cast<double>(cost::kDiskSeqReadNs);
      }
      const double speedup =
          ParallelSpeedup(static_cast<int64_t>(rows_l) / storage::kRowsPerPage);
      return SaturatingNanos((cpu + io) / speedup);
    }
    case JoinAlgo::kNestLoop: {
      cpu += rows_l * rows_r * static_cast<double>(cost::kNlCompareNs);
      return SaturatingNanos(cpu + io);
    }
    case JoinAlgo::kIndexNlj: {
      // The inner must be a base relation with an index on the join column.
      LQOLAB_CHECK(right.type == PlanNode::Type::kScan);
      const auto edges = q.EdgesBetween(left.mask, right.mask);
      LQOLAB_CHECK(!edges.empty());
      const catalog::TableId inner_table =
          q.relations[static_cast<size_t>(right.alias)].table;
      const storage::Index* index = nullptr;
      catalog::ColumnId probe_column = catalog::kInvalidColumn;
      for (const auto& edge : edges) {
        index = ctx_->FindIndex(inner_table, edge.right_column);
        if (index != nullptr) {
          probe_column = edge.right_column;
          break;
        }
      }
      LQOLAB_CHECK_MSG(index != nullptr, "index NLJ without inner index");
      const auto& probe_stats = ctx_->column_stats(inner_table, probe_column);
      const double avg_matches =
          probe_stats.n_distinct > 0
              ? static_cast<double>(index->entry_count()) /
                    static_cast<double>(probe_stats.n_distinct)
              : 1.0;
      const double fetched = std::max(rows_out, rows_l * avg_matches);
      cpu += rows_l * static_cast<double>(index->height() *
                                          cost::kIndexDescentNs);
      cpu += fetched * static_cast<double>(cost::kIndexRowFetchNs);
      const auto& inner_preds = oracle_->BoundPredicates(q, right.alias);
      cpu += fetched * static_cast<double>(inner_preds.size()) *
             static_cast<double>(tc.pred_eval);
      io += static_cast<double>(
          ChargeRandomHeapPages(inner_table, static_cast<int64_t>(std::min(
                                                 fetched, 1.0e12))));
      return SaturatingNanos(cpu + io);
    }
    case JoinAlgo::kMerge: {
      auto sorted_for_free = [&](const PlanNode& child,
                                 catalog::ColumnId column) {
        return child.type == PlanNode::Type::kScan &&
               child.scan_type == ScanType::kIndex &&
               child.index_column == column;
      };
      const auto edges = q.EdgesBetween(left.mask, right.mask);
      LQOLAB_CHECK(!edges.empty());
      auto sort_cost = [&](double rows, bool free_sort) {
        if (free_sort || rows < 2.0) return 0.0;
        double c = rows * SafeLog2(rows) * cost::kSortItemNs;
        const double bytes = rows * cost::kBytesPerTupleSlot;
        if (bytes > static_cast<double>(work_mem_bytes)) {
          // work_mem pressure: external merge sort (see hash-spill site).
          const faultlib::FaultAction fault =
              LQOLAB_FAULT_POINT("buffer.alloc");
          if (fault.is_error() && fault_status_.ok()) {
            fault_status_ = fault.error("buffer.alloc");
          } else if (fault.is_latency()) {
            io += static_cast<double>(fault.latency_ns);
          }
          c *= 1.0 + cost::kSpillPassPenalty;
          io += 2.0 * (rows / storage::kRowsPerPage) *
                static_cast<double>(cost::kDiskSeqReadNs);
        }
        return c;
      };
      cpu += sort_cost(rows_l, sorted_for_free(left, edges[0].left_column));
      cpu += sort_cost(rows_r, sorted_for_free(right, edges[0].right_column));
      cpu += (rows_l + rows_r) * static_cast<double>(cost::kMergeStepNs);
      return SaturatingNanos(cpu + io);
    }
  }
  return 0;
}

ExecutionResult Executor::Execute(const Query& q, const PhysicalPlan& plan,
                                  VirtualNanos timeout_ns,
                                  double time_multiplier,
                                  const QueryDeadline* deadline,
                                  ReplanMonitor* monitor) {
  LQOLAB_CHECK(!plan.empty());
  ExecutionResult result;
  result.node_rows.assign(plan.nodes.size(), 0);
  result.node_stats.assign(plan.nodes.size(), PlanNodeStats{});
  pages_accessed_ = 0;
  fault_status_ = util::Status::Ok();

  double total = static_cast<double>(cost::kExecStartupNs);
  bool overflow = false;

  // Nodes are stored in construction order, so children precede parents:
  // a simple forward walk is bottom-up. Skip inner scans of index-NLJ
  // joins (they are probed, not scanned).
  std::vector<char> skip(plan.nodes.size(), 0);
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.type == PlanNode::Type::kJoin &&
        node.algo == JoinAlgo::kIndexNlj) {
      skip[static_cast<size_t>(node.right)] = 1;
    }
  }

  // Intermediate reuse across replan attempts: a subset an abandoned
  // attempt already materialized (monitor->materialized) is read back at
  // per-tuple spool cost instead of recomputed, and its entire subtree is
  // elided. Marked top-down (parents have higher indices) so the highest
  // reusable subset wins and everything beneath it is covered.
  std::vector<char> reused(plan.nodes.size(), 0);
  std::vector<char> covered(plan.nodes.size(), 0);
  if (monitor != nullptr && !monitor->materialized.empty()) {
    const uint32_t root_mask = plan.node(plan.root).mask;
    for (size_t i = plan.nodes.size(); i-- > 0;) {
      const PlanNode& node = plan.nodes[i];
      if (!covered[i] && !skip[i] && node.mask != root_mask &&
          monitor->materialized.count(node.mask) != 0) {
        reused[i] = 1;
      }
      if ((covered[i] || reused[i]) && node.type == PlanNode::Type::kJoin) {
        covered[static_cast<size_t>(node.left)] = 1;
        covered[static_cast<size_t>(node.right)] = 1;
      }
    }
  }

  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    // Node boundary: the cancellation poll point and the landing spot for
    // any fault latched inside the previous node's page charges.
    if (deadline != nullptr && deadline->cancelled()) {
      result.status = util::Status(deadline->code(), "execution cancelled");
      obs::Count(obs::Counter::kExecCancelled);
      break;
    }
    if (!fault_status_.ok()) break;
    const faultlib::FaultAction node_fault = LQOLAB_FAULT_POINT("exec.node");
    if (node_fault.is_error()) {
      fault_status_ = node_fault.error("exec.node");
      break;
    }
    if (node_fault.is_latency()) {
      total += static_cast<double>(node_fault.latency_ns);
    }
    const PlanNode& node = plan.nodes[i];
    PlanNodeStats& stats = result.node_stats[i];
    if (covered[i]) continue;  // Subtree replaced by a reused intermediate.
    if (reused[i]) {
      // Read the spooled rows back instead of recomputing the subtree. The
      // row set of an alias mask is join-order-independent, so this is
      // result-identical; its cardinality was observed by the attempt that
      // materialized it, so the divergence check would be a no-op.
      const int64_t rows = monitor->materialized.at(node.mask);
      result.node_rows[i] = rows;
      stats.actual_rows = rows;
      const VirtualNanos node_cost = SaturatingNanos(
          static_cast<double>(rows) *
          static_cast<double>(
              cost::TupleCostsFor(ctx_->config.vectorized_exec).scan_tuple));
      stats.self_time_ns =
          SaturatingNanos(static_cast<double>(node_cost) * time_multiplier);
      total += static_cast<double>(node_cost);
      if (total * time_multiplier >= static_cast<double>(timeout_ns)) break;
      continue;
    }
    if (monitor != nullptr) {
      // Divergence check against the estimate the planner believed, done as
      // the node's output cardinality becomes known and before its parent
      // (or this node's own cost) is charged. The estimator call goes
      // through the same pin/poison layers planning went through.
      const Oracle::CardResult actual = oracle_->TrueJoinRows(q, node.mask);
      if (!actual.overflow) {
        monitor->observed.emplace_back(node.mask, actual.rows);
        const bool is_root = node.mask == plan.node(plan.root).mask;
        const bool pinned =
            monitor->pins != nullptr && monitor->pins->Has(node.mask);
        if (!is_root && !pinned && monitor->estimator != nullptr) {
          const double est = std::max(
              1.0, monitor->estimator->EstimateJoinRows(q, node.mask));
          const double act = std::max(1.0, static_cast<double>(actual.rows));
          const double qerr = act > est ? act / est : est / act;
          if (qerr >= monitor->qerror_threshold &&
              std::max(est, act) >= static_cast<double>(monitor->min_rows)) {
            result.replan_requested = true;
            result.replan_node = i;
            result.replan_qerror = qerr;
            break;
          }
        }
      }
    }
    // Aggregated across the main and shard pools, so sharded tier
    // breakdowns stay comparable to unsharded ones.
    const int64_t shared_before = ctx_->buffer_shared_hits();
    const int64_t os_before = ctx_->buffer_os_hits();
    const int64_t disk_before = ctx_->buffer_disk_reads();
    bool node_overflow = false;
    VirtualNanos node_cost = 0;
    if (node.type == PlanNode::Type::kScan) {
      const Oracle::CardResult rows = oracle_->TrueJoinRows(q, node.mask);
      result.node_rows[i] = rows.rows;
      stats.actual_rows = rows.rows;
      if (!skip[i]) {
        node_cost = ScanCost(q, node, &node_overflow);
      }
    } else {
      const Oracle::CardResult rows = oracle_->TrueJoinRows(q, node.mask);
      result.node_rows[i] = rows.overflow ? -1 : rows.rows;
      stats.actual_rows = result.node_rows[i];
      node_cost = JoinCost(q, plan, node, &node_overflow);
      if (node.algo == JoinAlgo::kIndexNlj && !node_overflow) {
        // The probed inner scan restarts once per outer row (memoized
        // oracle lookup — JoinCost already requested this cardinality).
        const Oracle::CardResult outer =
            oracle_->TrueJoinRows(q, plan.node(node.left).mask);
        result.node_stats[static_cast<size_t>(node.right)].loops =
            outer.overflow ? -1 : std::max<int64_t>(1, outer.rows);
      }
    }
    stats.shared_hits = ctx_->buffer_shared_hits() - shared_before;
    stats.os_hits = ctx_->buffer_os_hits() - os_before;
    stats.disk_reads = ctx_->buffer_disk_reads() - disk_before;
    if (node_overflow) {
      overflow = true;
      break;
    }
    stats.self_time_ns =
        SaturatingNanos(static_cast<double>(node_cost) * time_multiplier);
    total += static_cast<double>(node_cost);
    if (total * time_multiplier >= static_cast<double>(timeout_ns)) break;
  }

  result.pages_accessed = pages_accessed_;
  const double scaled = total * time_multiplier;
  if (result.replan_requested) {
    // Abandoned attempt: report the prefix latency already paid and the
    // intermediates that prefix fully materialized (probed index-NLJ
    // inners and elided subtrees excluded), so the re-execution can reuse
    // rather than recompute them; the adaptive loop re-plans with the
    // observed truths pinned.
    for (size_t j = 0; j < result.replan_node; ++j) {
      if (skip[j] || covered[j] || result.node_rows[j] < 0) continue;
      result.completed.emplace_back(plan.nodes[j].mask, result.node_rows[j]);
    }
    result.execution_ns =
        SaturatingNanos(std::min(scaled, static_cast<double>(timeout_ns)));
    return result;
  }
  if (result.status.ok() && !fault_status_.ok()) {
    // A fault latched during the final node never reached a boundary check.
    result.status = fault_status_;
  }
  if (!result.status.ok()) {
    // Cancelled or faulted mid-plan: report the partial latency, no rows.
    result.execution_ns =
        SaturatingNanos(std::min(scaled, static_cast<double>(timeout_ns)));
    return result;
  }
  if (overflow || scaled >= static_cast<double>(timeout_ns)) {
    result.timed_out = true;
    result.execution_ns = timeout_ns;
    result.status = util::Status(util::StatusCode::kDeadlineExceeded,
                                 "statement timeout");
    return result;
  }
  result.execution_ns = SaturatingNanos(scaled);
  const Oracle::CardResult final_rows =
      oracle_->TrueJoinRows(q, plan.node(plan.root).mask);
  result.result_rows = final_rows.overflow ? 0 : final_rows.rows;
  return result;
}

}  // namespace lqolab::exec
