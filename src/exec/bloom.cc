#include "exec/bloom.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace lqolab::exec {
namespace {

constexpr uint32_t kMagic = 0x4c514246;  // "LQBF"

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i]))
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace

BloomFilter::BloomFilter(int64_t expected_entries, double target_fpr,
                         uint64_t seed) {
  Reset(expected_entries, target_fpr, seed);
}

void BloomFilter::Reset(int64_t expected_entries, double target_fpr,
                        uint64_t seed) {
  seed_ = seed;
  entries_added_ = 0;
  expected_entries = std::max<int64_t>(expected_entries, 1);
  target_fpr = std::min(std::max(target_fpr, 1e-6), 0.5);
  // Ideal Bloom sizing is bits/key = -log2(p) / ln 2 ≈ 1.44·(-log2 p); the
  // blocked layout loses accuracy to uneven block loads, so pad by 30%.
  const double bits_per_key = 1.44 * (-std::log2(target_fpr)) * 1.3;
  const double total_bits = bits_per_key * static_cast<double>(expected_entries);
  const int64_t blocks =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(total_bits / 512.0)));
  blocks_.assign(static_cast<size_t>(blocks), Block{});
  const int k = static_cast<int>(std::lround(0.693 * bits_per_key));
  hashes_per_key_ = std::min(std::max(k, 1), 8);
}

void BloomFilter::Add(storage::Value key) {
  const uint64_t h = Hash(key);
  Block& b = blocks_[BlockIndex(h)];
  uint64_t probe = h;
  for (int i = 0; i < hashes_per_key_; ++i) {
    probe = NextProbe(probe);
    b.words[probe >> 61] |= 1ull << ((probe >> 55) & 63);
  }
  ++entries_added_;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(40 + blocks_.size() * sizeof(Block));
  PutU64(&out, kMagic);
  PutU64(&out, seed_);
  PutU64(&out, static_cast<uint64_t>(hashes_per_key_));
  PutU64(&out, static_cast<uint64_t>(entries_added_));
  PutU64(&out, blocks_.size());
  for (const Block& b : blocks_) {
    for (const uint64_t word : b.words) PutU64(&out, word);
  }
  return out;
}

bool BloomFilter::Deserialize(const std::string& bytes, BloomFilter* out) {
  LQOLAB_CHECK(out != nullptr);
  size_t pos = 0;
  uint64_t magic = 0, seed = 0, hashes = 0, entries = 0, blocks = 0;
  if (!GetU64(bytes, &pos, &magic) || magic != kMagic) return false;
  if (!GetU64(bytes, &pos, &seed) || !GetU64(bytes, &pos, &hashes) ||
      !GetU64(bytes, &pos, &entries) || !GetU64(bytes, &pos, &blocks)) {
    return false;
  }
  if (hashes < 1 || hashes > 8 || blocks == 0) return false;
  if (bytes.size() != pos + blocks * sizeof(Block)) return false;
  out->seed_ = seed;
  out->hashes_per_key_ = static_cast<int>(hashes);
  out->entries_added_ = static_cast<int64_t>(entries);
  out->blocks_.assign(static_cast<size_t>(blocks), Block{});
  for (size_t i = 0; i < blocks; ++i) {
    for (uint64_t& word : out->blocks_[i].words) {
      if (!GetU64(bytes, &pos, &word)) return false;
    }
  }
  return true;
}

bool BloomFilter::BitsEqual(const BloomFilter& other) const {
  if (seed_ != other.seed_ || hashes_per_key_ != other.hashes_per_key_ ||
      blocks_.size() != other.blocks_.size()) {
    return false;
  }
  return std::memcmp(blocks_.data(), other.blocks_.data(),
                     blocks_.size() * sizeof(Block)) == 0;
}

}  // namespace lqolab::exec
