#ifndef LQOLAB_EXEC_KERNELS_H_
#define LQOLAB_EXEC_KERNELS_H_

#include <cstdint>
#include <vector>

#include "exec/bloom.h"
#include "query/predicate_binding.h"
#include "storage/column.h"

/// Batch-at-a-time operator kernels for the oracle/executor hot path
/// (docs/execution.md). Rows move through the kernels as selection vectors —
/// dense, ascending std::vector<RowId> — produced and consumed in
/// kBatchRows-sized strides over raw column arrays. Every kernel is written
/// to be byte-compatible with the tuple-at-a-time reference in
/// exec/oracle.cc: same match semantics, same output order, so the two
/// paths are interchangeable (tests/test_kernels.cc enforces this).
///
/// All kernels append into caller-owned buffers and never shrink capacity,
/// so a warmed caller (Oracle's scratch members) runs them with zero heap
/// allocations per tuple in steady state.
namespace lqolab::exec::kernels {

/// Rows processed per inner-loop stride. Batches bound the stack-resident
/// staging buffers and keep the working set inside L1.
inline constexpr int32_t kBatchRows = 1024;

/// Adaptive predicate transfer: a Bloom pre-test only pays for itself when
/// rejections dominate the probe stream — every probe that passes the
/// filter pays for it on top of the exact lookup, so on hit-heavy streams
/// it is pure overhead. Probe loops run exact-only over their first
/// kBloomSampleProbes non-null keys while counting misses, and build the
/// filter for the remainder only when at least kBloomBuildMissNum /
/// kBloomBuildMissDen of the sample missed. The decision is a pure
/// function of the probe sequence (deterministic), and a Bloom negative is
/// exact, so output bytes are identical either way.
inline constexpr int64_t kBloomSampleProbes = 4096;
inline constexpr int64_t kBloomBuildMissNum = 7;
inline constexpr int64_t kBloomBuildMissDen = 8;

/// Appends the row-ids in [0, num_rows) matching `pred` to `*out`
/// (ascending; `*out` is not cleared). `data` is the column's raw value
/// array (storage::Column::data()).
void SelectPredicate(const storage::Value* data, int64_t num_rows,
                     const query::BoundPredicate& pred,
                     std::vector<storage::RowId>* out);

/// Appends all row-ids [0, num_rows) to `*out` — the no-predicate scan.
void SelectAll(int64_t num_rows, std::vector<storage::RowId>* out);

/// In-place compaction: keeps only the row-ids whose column value matches
/// `pred`. Preserves order.
void RefinePredicate(const storage::Value* data,
                     const query::BoundPredicate& pred,
                     std::vector<storage::RowId>* rows);

/// K-way merge of per-shard match lists (storage::ShardedTableSet scans):
/// each input list is ascending and the lists are pairwise disjoint, so the
/// merged output is the exact ascending row-id list an unsharded scan would
/// have produced. `*out` is cleared first.
void MergeShardRows(const std::vector<std::vector<storage::RowId>>& lists,
                    std::vector<storage::RowId>* out);

/// Open-addressing set of non-null join-key values — the batch counterpart
/// of the reference path's std::unordered_set<Value> in semi-join
/// reduction. Build() reuses slot storage across calls.
class ValueSet {
 public:
  /// Rebuilds the set from `column[rows[i]]` for i in [0, n); null keys are
  /// skipped.
  void Build(const storage::Value* column, const storage::RowId* rows,
             int64_t n);

  /// Never true for a value that was not inserted; null never matches.
  bool Contains(storage::Value v) const {
    size_t i = HashValue(v) & mask_;
    while (true) {
      const storage::Value k = slots_[i];
      if (k == v) return true;
      if (k == storage::kNullValue) return false;
      i = (i + 1) & mask_;
    }
  }

  int64_t distinct() const { return distinct_; }

  /// Hints the cache line of `v`'s home slot into cache. Probe loops call
  /// this a few iterations ahead of Contains() so the (random) slot load
  /// overlaps useful work instead of stalling the loop.
  void PrefetchContains(storage::Value v) const {
    __builtin_prefetch(slots_.data() + (HashValue(v) & mask_));
  }

  /// Rebuilds `*bloom` over this set's values (predicate transfer): callers
  /// can reject most absent keys on one cache line before the exact
  /// Contains().
  void FillBloom(BloomFilter* bloom, double target_fpr, uint64_t seed) const;

  /// 32-bit finalizer (xxhash-style avalanche) shared by ValueSet and
  /// JoinHashTable so slot placement is deterministic across platforms.
  static uint32_t HashValue(storage::Value v) {
    uint32_t x = static_cast<uint32_t>(v);
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return x;
  }

 private:
  std::vector<storage::Value> slots_;  // kNullValue marks an empty slot
  size_t mask_ = 0;
  int64_t distinct_ = 0;
};

/// In-place compaction of `rows` to those whose column value is non-null
/// and present in `set`. When `bloom` is non-null it is consulted first as
/// a cheap pre-test (predicate transfer); a Bloom negative is exact, so the
/// output is identical with or without it.
void RefineBySet(const storage::Value* column, const ValueSet& set,
                 const BloomFilter* bloom, std::vector<storage::RowId>* rows);

/// RefineBySet under the lazy predicate-transfer schedule: the first
/// kBloomSampleProbes rows are refined with exact lookups only while their
/// miss rate is measured; when at least kBloomBuildMissNum/kBloomBuildMissDen
/// of the sampled non-null keys missed, `*scratch` is (re)built from `set`
/// and consulted as a pre-test for the remaining rows. Output is byte-identical to
/// RefineBySet — the filter never decides membership, only short-circuits
/// definite misses — but hit-heavy inputs never pay for its construction.
void RefineBySetAdaptive(const storage::Value* column, const ValueSet& set,
                         BloomFilter* scratch, double transfer_fpr,
                         uint64_t transfer_seed,
                         std::vector<storage::RowId>* rows);

/// Batched hash-join build side: groups base row-ids by join-key value.
/// Byte-compatibility contract with the reference path's
/// std::unordered_map<Value, std::vector<RowId>>: Probe(v) returns the
/// matching rows in exactly the order they appeared in the Build() input
/// (a two-pass grouped layout — count, prefix-sum, fill — instead of
/// per-key vectors, so building allocates O(1) times, not per key).
class JoinHashTable {
 public:
  /// Rebuilds from `column[rows[i]]` for i in [0, n); null keys are
  /// skipped. Reuses slot and payload storage across calls.
  void Build(const storage::Value* column, const storage::RowId* rows,
             int64_t n);

  struct Group {
    const storage::RowId* rows = nullptr;
    int32_t count = 0;
  };

  /// The base rows whose key equals `v`, in Build() input order; an empty
  /// group when absent (or when `v` is null).
  Group Probe(storage::Value v) const {
    size_t i = ValueSet::HashValue(v) & mask_;
    while (true) {
      const storage::Value k = slot_keys_[i];
      if (k == v) {
        return {payload_.data() + slot_offset_[i], slot_count_[i]};
      }
      if (k == storage::kNullValue) return {};
      i = (i + 1) & mask_;
    }
  }

  int64_t distinct() const { return distinct_; }
  int64_t payload_rows() const { return static_cast<int64_t>(payload_size_); }

  /// Hints the cache line of `v`'s home slot into cache ahead of Probe().
  void PrefetchProbe(storage::Value v) const {
    __builtin_prefetch(slot_keys_.data() + (ValueSet::HashValue(v) & mask_));
  }

  /// Rebuilds `*bloom` over this table's distinct keys (predicate
  /// transfer). Probers can reject most missing keys on one cache line
  /// before paying the exact Probe().
  void FillBloom(BloomFilter* bloom, double target_fpr, uint64_t seed) const;

 private:
  std::vector<storage::Value> slot_keys_;  // kNullValue marks an empty slot
  std::vector<int32_t> slot_count_;
  std::vector<int32_t> slot_offset_;
  std::vector<int32_t> slot_cursor_;
  std::vector<int32_t> row_slot_;  // pass-1 slot memo, -1 for null keys
  std::vector<storage::RowId> payload_;
  size_t payload_size_ = 0;
  size_t mask_ = 0;
  int64_t distinct_ = 0;
};

}  // namespace lqolab::exec::kernels

#endif  // LQOLAB_EXEC_KERNELS_H_
