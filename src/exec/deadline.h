#ifndef LQOLAB_EXEC_DEADLINE_H_
#define LQOLAB_EXEC_DEADLINE_H_

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace lqolab::exec {

/// Cross-thread cancellation token for one in-flight execution. The
/// statement timeout already bounds *virtual* time inside the executor;
/// QueryDeadline covers the external axis — a client abort or server
/// shutdown cancelling work mid-plan from another thread. The executor
/// polls `cancelled()` at every plan-node boundary, so a cancel lands
/// within one node's evaluation.
///
/// Cancellation is sticky and first-cancel-wins: the first Cancel() fixes
/// the code surfaced in ExecutionResult::status.
class QueryDeadline {
 public:
  QueryDeadline() = default;

  QueryDeadline(const QueryDeadline&) = delete;
  QueryDeadline& operator=(const QueryDeadline&) = delete;

  /// Requests cancellation. Safe from any thread; later calls are no-ops.
  void Cancel(util::StatusCode code = util::StatusCode::kCancelled) {
    int32_t expected = kNotCancelled;
    code_.compare_exchange_strong(expected, static_cast<int32_t>(code),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  }

  bool cancelled() const {
    return code_.load(std::memory_order_acquire) != kNotCancelled;
  }

  /// The first cancel's code; kOk when not cancelled.
  util::StatusCode code() const {
    const int32_t raw = code_.load(std::memory_order_acquire);
    return raw == kNotCancelled ? util::StatusCode::kOk
                                : static_cast<util::StatusCode>(raw);
  }

 private:
  static constexpr int32_t kNotCancelled = -1;
  std::atomic<int32_t> code_{kNotCancelled};
};

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_DEADLINE_H_
