#include "exec/kernels.h"

#include <algorithm>

#include "util/check.h"

namespace lqolab::exec::kernels {

using query::Predicate;
using storage::kNullValue;
using storage::RowId;
using storage::Value;

namespace {

/// Branch-free batched selection: stage candidate row-ids in an L1-resident
/// buffer and advance the write cursor by the match bit, so the compiler
/// can vectorize the compare and the loop carries no mispredicted branch.
template <typename MatchFn>
void SelectImpl(const Value* data, int64_t num_rows,
                std::vector<RowId>* out, MatchFn match) {
  RowId staged[kBatchRows];
  for (int64_t base = 0; base < num_rows; base += kBatchRows) {
    const int32_t n =
        static_cast<int32_t>(std::min<int64_t>(kBatchRows, num_rows - base));
    const Value* batch = data + base;
    int32_t count = 0;
    for (int32_t i = 0; i < n; ++i) {
      staged[count] = static_cast<RowId>(base + i);
      count += match(batch[i]) ? 1 : 0;
    }
    out->insert(out->end(), staged, staged + count);
  }
}

/// In-place selection-vector compaction with gathered loads.
template <typename MatchFn>
void RefineImpl(const Value* data, std::vector<RowId>* rows, MatchFn match) {
  RowId* d = rows->data();
  const size_t n = rows->size();
  size_t count = 0;
  for (size_t j = 0; j < n; ++j) {
    const RowId r = d[j];
    d[count] = r;
    count += match(data[r]) ? 1 : 0;
  }
  rows->resize(count);
}

/// Calls `sink` with a match functor equivalent to pred.Matches(). The null
/// sentinel (INT32_MIN) lets most kinds fold the null test away: a range
/// lower bound of max(lo, kNullValue + 1) excludes null for free, and an
/// eq/in list never legitimately contains the sentinel (Matches() rejects
/// null before the membership test), so sentinel entries are dropped here.
template <typename Sink>
void DispatchPredicate(const query::BoundPredicate& pred, Sink&& sink) {
  switch (pred.kind) {
    case Predicate::Kind::kIsNull:
      sink([](Value v) { return v == kNullValue; });
      return;
    case Predicate::Kind::kNotNull:
      sink([](Value v) { return v != kNullValue; });
      return;
    case Predicate::Kind::kRange: {
      const Value lo = std::max(pred.lo, kNullValue + 1);
      const Value hi = pred.hi;
      sink([lo, hi](Value v) { return v >= lo && v <= hi; });
      return;
    }
    case Predicate::Kind::kEq:
    case Predicate::Kind::kIn:
    case Predicate::Kind::kLikePrefix: {
      const Value* begin = pred.values.data();
      const Value* end = begin + pred.values.size();
      if (begin != end && *begin == kNullValue) ++begin;  // sorted first
      const size_t m = static_cast<size_t>(end - begin);
      if (m == 0) {
        sink([](Value) { return false; });
      } else if (m == 1) {
        const Value target = *begin;
        sink([target](Value v) { return v == target; });
      } else if (m <= 8) {
        sink([begin, m](Value v) {
          bool hit = false;
          for (size_t i = 0; i < m; ++i) hit |= (v == begin[i]);
          return hit;
        });
      } else {
        sink([begin, end](Value v) {
          return v != kNullValue && std::binary_search(begin, end, v);
        });
      }
      return;
    }
  }
  LQOLAB_CHECK_MSG(false, "unknown predicate kind");
}

}  // namespace

void SelectPredicate(const Value* data, int64_t num_rows,
                     const query::BoundPredicate& pred,
                     std::vector<RowId>* out) {
  DispatchPredicate(pred, [&](auto match) {
    SelectImpl(data, num_rows, out, match);
  });
}

void SelectAll(int64_t num_rows, std::vector<RowId>* out) {
  const size_t old = out->size();
  out->resize(old + static_cast<size_t>(num_rows));
  RowId* d = out->data() + old;
  for (int64_t i = 0; i < num_rows; ++i) d[i] = static_cast<RowId>(i);
}

void RefinePredicate(const Value* data, const query::BoundPredicate& pred,
                     std::vector<RowId>* rows) {
  DispatchPredicate(pred, [&](auto match) { RefineImpl(data, rows, match); });
}

void MergeShardRows(const std::vector<std::vector<RowId>>& lists,
                    std::vector<RowId>* out) {
  out->clear();
  size_t total = 0;
  for (const auto& list : lists) total += list.size();
  out->reserve(total);
  // Cursor-based k-way merge; k is the shard count (≤ 64, typically ≤ 8),
  // so a linear min scan over the heads beats heap bookkeeping.
  std::vector<size_t> cursor(lists.size(), 0);
  while (out->size() < total) {
    size_t best = lists.size();
    RowId best_row = 0;
    for (size_t l = 0; l < lists.size(); ++l) {
      if (cursor[l] >= lists[l].size()) continue;
      const RowId head = lists[l][cursor[l]];
      if (best == lists.size() || head < best_row) {
        best = l;
        best_row = head;
      }
    }
    out->push_back(best_row);
    ++cursor[best];
  }
}

namespace {

/// Smallest power of two ≥ 2n (load factor ≤ 0.5), floored at 16 slots.
size_t SlotCapacity(int64_t n) {
  size_t cap = 16;
  while (cap < static_cast<size_t>(n) * 2) cap <<= 1;
  return cap;
}

/// How many iterations ahead probe loops hint their next hash-slot cache
/// line (a random access the hardware prefetcher cannot predict).
constexpr size_t kPrefetchDistance = 16;

}  // namespace

void ValueSet::Build(const Value* column, const RowId* rows, int64_t n) {
  // Only the first SlotCapacity(n) slots are active for this build (mask_
  // covers exactly them): a set that once held a large key set must not
  // keep clearing and probing its historical capacity for every small
  // rebuild, and a right-sized active region keeps probes cache-resident.
  const size_t needed = SlotCapacity(n);
  if (slots_.size() < needed) slots_.resize(needed);
  std::fill(slots_.begin(),
            slots_.begin() + static_cast<ptrdiff_t>(needed), kNullValue);
  mask_ = needed - 1;
  distinct_ = 0;
  for (int64_t j = 0; j < n; ++j) {
    if (j + static_cast<int64_t>(kPrefetchDistance) < n) {
      PrefetchContains(
          column[rows[j + static_cast<int64_t>(kPrefetchDistance)]]);
    }
    const Value v = column[rows[j]];
    if (v == kNullValue) continue;
    size_t i = ValueSet::HashValue(v) & mask_;
    while (slots_[i] != kNullValue && slots_[i] != v) i = (i + 1) & mask_;
    if (slots_[i] == kNullValue) {
      slots_[i] = v;
      ++distinct_;
    }
  }
}

void ValueSet::FillBloom(BloomFilter* bloom, double target_fpr,
                         uint64_t seed) const {
  bloom->Reset(std::max<int64_t>(distinct_, 1), target_fpr, seed);
  // Only the active slot prefix holds this build's keys; the tail may
  // carry stale values from an earlier, larger build.
  for (size_t i = 0; i <= mask_; ++i) {
    if (slots_[i] != kNullValue) bloom->Add(slots_[i]);
  }
}

void RefineBySet(const Value* column, const ValueSet& set,
                 const BloomFilter* bloom, std::vector<RowId>* rows) {
  RowId* d = rows->data();
  const size_t n = rows->size();
  size_t count = 0;
  if (bloom != nullptr) {
    for (size_t j = 0; j < n; ++j) {
      const size_t ahead = std::min(j + kPrefetchDistance, n - 1);
      set.PrefetchContains(column[d[ahead]]);
      const RowId r = d[j];
      const Value v = column[r];
      d[count] = r;
      count +=
          (v != kNullValue && bloom->MayContain(v) && set.Contains(v)) ? 1 : 0;
    }
  } else {
    for (size_t j = 0; j < n; ++j) {
      const size_t ahead = std::min(j + kPrefetchDistance, n - 1);
      set.PrefetchContains(column[d[ahead]]);
      const RowId r = d[j];
      const Value v = column[r];
      d[count] = r;
      count += (v != kNullValue && set.Contains(v)) ? 1 : 0;
    }
  }
  rows->resize(count);
}

void RefineBySetAdaptive(const Value* column, const ValueSet& set,
                         BloomFilter* scratch, double transfer_fpr,
                         uint64_t transfer_seed, std::vector<RowId>* rows) {
  RowId* d = rows->data();
  const size_t n = rows->size();
  size_t count = 0;
  // Sampled exact-only prefix: measure how often keys miss before spending
  // anything on the Bloom filter.
  const size_t sample = std::min(n, static_cast<size_t>(kBloomSampleProbes));
  size_t missed = 0;
  size_t j = 0;
  for (; j < sample; ++j) {
    const size_t ahead = std::min(j + kPrefetchDistance, n - 1);
    set.PrefetchContains(column[d[ahead]]);
    const RowId r = d[j];
    const Value v = column[r];
    const bool hit = v != kNullValue && set.Contains(v);
    missed += (v != kNullValue && !hit) ? 1 : 0;
    d[count] = r;
    count += hit ? 1 : 0;
  }
  const BloomFilter* bloom = nullptr;
  if (j < n && missed * static_cast<size_t>(kBloomBuildMissDen) >=
                   sample * static_cast<size_t>(kBloomBuildMissNum)) {
    set.FillBloom(scratch, transfer_fpr, transfer_seed);
    bloom = scratch;
  }
  if (bloom != nullptr) {
    for (; j < n; ++j) {
      const RowId r = d[j];
      const Value v = column[r];
      d[count] = r;
      count +=
          (v != kNullValue && bloom->MayContain(v) && set.Contains(v)) ? 1 : 0;
    }
  } else {
    for (; j < n; ++j) {
      const size_t ahead = std::min(j + kPrefetchDistance, n - 1);
      set.PrefetchContains(column[d[ahead]]);
      const RowId r = d[j];
      const Value v = column[r];
      d[count] = r;
      count += (v != kNullValue && set.Contains(v)) ? 1 : 0;
    }
  }
  rows->resize(count);
}

void JoinHashTable::Build(const Value* column, const RowId* rows, int64_t n) {
  // Active-prefix sizing, as in ValueSet::Build: clear and address only
  // the SlotCapacity(n) slots this build needs, not the historical
  // capacity, so small rebuilds stay cheap and cache-resident. Only
  // slot_keys_ is cleared — slot_count_ is initialized lazily when a key
  // first claims its slot, so empty slots never touch it.
  const size_t needed = SlotCapacity(n);
  if (slot_keys_.size() < needed) {
    slot_keys_.resize(needed);
    slot_count_.resize(needed);
    slot_offset_.resize(needed);
    slot_cursor_.resize(needed);
  }
  std::fill(slot_keys_.begin(),
            slot_keys_.begin() + static_cast<ptrdiff_t>(needed), kNullValue);
  mask_ = needed - 1;
  distinct_ = 0;
  if (row_slot_.size() < static_cast<size_t>(n)) {
    row_slot_.resize(static_cast<size_t>(n));
  }

  // Pass 1: find-or-insert each key's slot and count its rows, remembering
  // each row's slot so pass 2 is a direct store instead of a second probe.
  for (int64_t j = 0; j < n; ++j) {
    if (j + static_cast<int64_t>(kPrefetchDistance) < n) {
      const Value pv =
          column[rows[j + static_cast<int64_t>(kPrefetchDistance)]];
      __builtin_prefetch(slot_keys_.data() +
                         (ValueSet::HashValue(pv) & mask_));
    }
    const Value v = column[rows[j]];
    if (v == kNullValue) {
      row_slot_[static_cast<size_t>(j)] = -1;
      continue;
    }
    size_t i = ValueSet::HashValue(v) & mask_;
    while (slot_keys_[i] != kNullValue && slot_keys_[i] != v) {
      i = (i + 1) & mask_;
    }
    if (slot_keys_[i] == kNullValue) {
      slot_keys_[i] = v;
      slot_count_[i] = 0;
      ++distinct_;
    }
    ++slot_count_[i];
    row_slot_[static_cast<size_t>(j)] = static_cast<int32_t>(i);
  }

  // Prefix-sum the counts into grouped payload offsets (occupied slots
  // only — empty slots carry stale counts by design).
  int32_t offset = 0;
  for (size_t i = 0; i <= mask_; ++i) {
    if (slot_keys_[i] == kNullValue) continue;
    slot_offset_[i] = offset;
    slot_cursor_[i] = offset;
    offset += slot_count_[i];
  }
  payload_size_ = static_cast<size_t>(offset);
  if (payload_.size() < payload_size_) payload_.resize(payload_size_);

  // Pass 2: fill each group in input order — this is what makes Probe()
  // byte-compatible with the reference path's per-key vectors.
  for (int64_t j = 0; j < n; ++j) {
    const int32_t i = row_slot_[static_cast<size_t>(j)];
    if (i < 0) continue;
    payload_[static_cast<size_t>(slot_cursor_[i]++)] = rows[j];
  }
}

void JoinHashTable::FillBloom(BloomFilter* bloom, double target_fpr,
                              uint64_t seed) const {
  bloom->Reset(std::max<int64_t>(distinct_, 1), target_fpr, seed);
  // Only the active slot prefix holds this build's keys; the tail may
  // carry stale values from an earlier, larger build.
  for (size_t i = 0; i <= mask_; ++i) {
    if (slot_keys_[i] != kNullValue) bloom->Add(slot_keys_[i]);
  }
}

}  // namespace lqolab::exec::kernels
