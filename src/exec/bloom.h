#ifndef LQOLAB_EXEC_BLOOM_H_
#define LQOLAB_EXEC_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"

namespace lqolab::exec {

/// Blocked Bloom filter over join-key values, used for sideways information
/// passing ("predicate transfer", docs/execution.md): the reduced side of a
/// semi-join publishes its key set as a Bloom filter so the other side can
/// reject most non-matching probe keys with one cache line instead of a
/// hash-table lookup. A negative answer is exact (zero false negatives by
/// construction); a positive answer falls through to the exact membership
/// check, so the filter is a pure fast path and never changes results.
///
/// Layout follows the cache-sectorized design of Putze et al. (2007), as
/// used by wing's predicate_transfer bloomfilter: the bit array is split
/// into 512-bit (64-byte, one cache line) blocks; a key hashes to one block
/// and sets k bits inside it, so every Add/MayContain touches exactly one
/// cache line. All hashing is seeded and the block count is a pure function
/// of (entries, target FPR), making the bit pattern deterministic for a
/// given (seed, insertion set) — a requirement for replayable fuzz runs.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_entries` keys at roughly
  /// `target_fpr` false-positive rate (clamped to [1e-6, 0.5]). The blocked
  /// layout costs accuracy vs an ideal Bloom filter, so bits-per-key gets a
  /// ~30% pad; the achieved FPR stays within ~2x of the target (the bound
  /// tests/test_kernels.cc asserts).
  BloomFilter(int64_t expected_entries, double target_fpr, uint64_t seed);

  /// An empty filter; call Reset() before use. Exists so callers can keep a
  /// long-lived filter and re-size it per build without reallocating when
  /// the new block count fits the old capacity (steady-state zero-alloc).
  BloomFilter() = default;

  /// Re-sizes for a new key set, clearing all bits. Same sizing rule as the
  /// constructor; reuses the existing block storage when possible.
  void Reset(int64_t expected_entries, double target_fpr, uint64_t seed);

  void Add(storage::Value key);

  /// False only when `key` was never added. True may be a false positive.
  bool MayContain(storage::Value key) const {
    const uint64_t h = Hash(key);
    const Block& b = blocks_[BlockIndex(h)];
    uint64_t probe = h;
    for (int i = 0; i < hashes_per_key_; ++i) {
      probe = NextProbe(probe);
      if (!(b.words[probe >> 61] & (1ull << ((probe >> 55) & 63)))) {
        return false;
      }
    }
    return true;
  }

  int64_t entries_added() const { return entries_added_; }
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }
  int hashes_per_key() const { return hashes_per_key_; }
  uint64_t seed() const { return seed_; }

  /// Size of the bit array in bytes (excludes the header fields).
  int64_t SizeBytes() const { return num_blocks() * 64; }

  /// Portable byte serialization (header + bit array, little-endian).
  /// Deserialize(Serialize(f)) reproduces `f` exactly: same parameters,
  /// same bits, same answers.
  std::string Serialize() const;
  static bool Deserialize(const std::string& bytes, BloomFilter* out);

  /// True when both filters have identical parameters and bit patterns.
  bool BitsEqual(const BloomFilter& other) const;

 private:
  struct alignas(64) Block {
    uint64_t words[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };

  uint64_t Hash(storage::Value key) const {
    // SplitMix64 finalizer over the seeded key: cheap, well-mixed, and
    // stable across platforms.
    uint64_t x = static_cast<uint64_t>(static_cast<int64_t>(key)) + seed_;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  size_t BlockIndex(uint64_t h) const {
    // Lemire's fast range reduction: maps the high bits uniformly onto
    // [0, blocks) without a modulo.
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(h) * blocks_.size()) >> 64);
  }

  /// Odd-multiplier LCG step; consumers read the TOP 9 bits (3 word +
  /// 6 bit-in-word) because an LCG's low bits have short periods and would
  /// make successive probes cluster (measured 19% FPR instead of <2%).
  static uint64_t NextProbe(uint64_t probe) {
    return probe * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull;
  }

  uint64_t seed_ = 0;
  int hashes_per_key_ = 1;
  int64_t entries_added_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace lqolab::exec

#endif  // LQOLAB_EXEC_BLOOM_H_
