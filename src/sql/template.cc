#include "sql/template.h"

#include <cctype>
#include <vector>

#include "sql/lexer.h"

namespace lqolab::sql {

namespace {

const char* const kKeywords[] = {
    "SELECT", "FROM", "WHERE", "AND",  "AS",  "COUNT", "MIN",  "MAX",
    "SUM",    "AVG",  "IN",    "BETWEEN", "IS", "NOT", "NULL", "LIKE",
};

bool IsKeyword(const Token& token, std::string* upper) {
  for (const char* keyword : kKeywords) {
    if (token.Is(keyword)) {
      *upper = keyword;
      return true;
    }
  }
  return false;
}

void AppendToken(std::string* out, const std::string& text) {
  // Single-space join, except around the tokens SQL conventionally writes
  // tight: nothing before `, ) . ;` and nothing after `( .`.
  if (!out->empty()) {
    const char last = out->back();
    const char first = text[0];
    const bool tight_after = last == '(' || last == '.';
    const bool tight_before =
        first == ',' || first == ')' || first == '.' || first == ';';
    if (!tight_after && !tight_before) *out += ' ';
  }
  *out += text;
}

}  // namespace

std::string NormalizeSqlTemplate(std::string_view sql) {
  std::vector<Token> tokens;
  if (!Lex(sql, &tokens).ok()) return std::string(sql);

  std::string out;
  size_t i = 0;
  const size_t n = tokens.size();  // last token is kEnd
  auto is_literal_at = [&](size_t j) {
    if (j >= n) return false;
    if (tokens[j].kind == TokenKind::kInt ||
        tokens[j].kind == TokenKind::kString) {
      return true;
    }
    return tokens[j].IsSymbol("-") && j + 1 < n &&
           tokens[j + 1].kind == TokenKind::kInt;
  };
  while (tokens[i].kind != TokenKind::kEnd) {
    const Token& token = tokens[i];
    // `IN ( literal , ... )` collapses to `IN (?)` so templates are
    // literal-arity-independent.
    if (token.Is("IN") && i + 1 < n && tokens[i + 1].IsSymbol("(") &&
        is_literal_at(i + 2)) {
      size_t j = i + 2;
      while (j < n && (is_literal_at(j) || tokens[j].IsSymbol(",") ||
                       (tokens[j].IsSymbol("-") &&
                        is_literal_at(j)))) {
        ++j;
      }
      if (j < n && tokens[j].IsSymbol(")")) {
        AppendToken(&out, "IN");
        AppendToken(&out, "(?)");
        i = j + 1;
        continue;
      }
    }
    if (is_literal_at(i)) {
      AppendToken(&out, "?");
      i += tokens[i].IsSymbol("-") ? 2 : 1;
      continue;
    }
    if (token.IsSymbol(";")) {  // trailing or stray; never part of the key
      ++i;
      continue;
    }
    std::string upper;
    if (IsKeyword(token, &upper)) {
      AppendToken(&out, upper);
    } else if (token.kind == TokenKind::kIdentifier) {
      std::string lower = token.text;
      for (char& c : lower) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      AppendToken(&out, lower);
    } else {
      AppendToken(&out, token.text);
    }
    ++i;
  }
  return out;
}

uint64_t SqlTemplateFingerprint(std::string_view sql) {
  const std::string normalized = NormalizeSqlTemplate(sql);
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : normalized) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace lqolab::sql
