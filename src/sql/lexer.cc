#include "sql/lexer.h"

#include <cctype>

namespace lqolab::sql {

using util::Status;
using util::StatusCode;

std::string LocString(const SourceLoc& loc) {
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

bool Token::Is(std::string_view keyword) const {
  if (kind != TokenKind::kIdentifier || text.size() != keyword.size()) {
    return false;
  }
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

bool Token::IsSymbol(std::string_view symbol) const {
  return kind == TokenKind::kSymbol && text == symbol;
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kString: {
      // Long literals (the corpus feeds megabyte strings) are elided so the
      // diagnostic stays readable.
      if (text.size() > 24) {
        return "string literal (" + std::to_string(text.size()) + " chars)";
      }
      return "'" + text + "'";
    }
    case TokenKind::kIdentifier:
    case TokenKind::kInt:
    case TokenKind::kSymbol:
      return "'" + text + "'";
  }
  return "?";
}

namespace {

Status LexError(const SourceLoc& loc, const std::string& message) {
  return Status(StatusCode::kInvalidArgument,
                LocString(loc) + ": " + message);
}

}  // namespace

Status Lex(std::string_view sql, std::vector<Token>* tokens) {
  tokens->clear();
  SourceLoc loc;
  size_t i = 0;
  const size_t n = sql.size();
  auto advance = [&](char c) {
    if (c == '\n') {
      ++loc.line;
      loc.column = 1;
    } else {
      ++loc.column;
    }
    ++i;
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(c);
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') advance(sql[i]);
      continue;
    }
    Token token;
    token.loc = loc;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      token.kind = TokenKind::kIdentifier;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        token.text += sql[i];
        advance(sql[i]);
      }
      tokens->push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      token.kind = TokenKind::kInt;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
        token.text += sql[i];
        advance(sql[i]);
        if (token.text.size() > 19) {
          return LexError(token.loc, "integer literal too long");
        }
      }
      // <= 19 digits can still overflow int64 ("99999999999999999999" has
      // 20 and was caught above; 19 nines fit).
      token.int_value = 0;
      for (char d : token.text) {
        token.int_value = token.int_value * 10 + (d - '0');
      }
      tokens->push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      token.kind = TokenKind::kString;
      advance(c);
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            token.text += '\'';
            advance(sql[i]);
            advance(sql[i]);
            continue;
          }
          advance(sql[i]);
          closed = true;
          break;
        }
        token.text += sql[i];
        advance(sql[i]);
      }
      if (!closed) {
        return LexError(token.loc, "unterminated string literal");
      }
      tokens->push_back(std::move(token));
      continue;
    }
    if (c == '<' || c == '>') {
      token.kind = TokenKind::kSymbol;
      token.text = c;
      advance(c);
      if (i < n && sql[i] == '=') {
        token.text += '=';
        advance('=');
      }
      tokens->push_back(std::move(token));
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == ';' ||
        c == '*' || c == '=' || c == '-') {
      token.kind = TokenKind::kSymbol;
      token.text = c;
      advance(c);
      tokens->push_back(std::move(token));
      continue;
    }
    return LexError(loc, std::string("unexpected character '") + c + "'");
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.loc = loc;
  tokens->push_back(std::move(end));
  return Status::Ok();
}

}  // namespace lqolab::sql
