#ifndef LQOLAB_SQL_BINDER_H_
#define LQOLAB_SQL_BINDER_H_

#include <string>
#include <string_view>

#include "catalog/schema.h"
#include "query/query.h"
#include "sql/ast.h"
#include "util/status.h"

namespace lqolab::sql {

/// Resolves a parsed statement against `schema` into the engine's Query
/// struct. Everything the grammar accepts but the engine cannot execute is
/// rejected here with a position-anchored kInvalidArgument diagnostic:
///   - the SELECT list must be exactly `COUNT(*)`
///   - table, alias, and column names must resolve (unknown names get an
///     edit-distance "did you mean" suggestion)
///   - literal types must match the column type (int vs dictionary string)
///   - `a.x = b.y` join conditions must connect integer columns
///   - LIKE patterns must be prefix-only: one trailing `%` and no interior
///     `%`; `_` is an ordinary character here, not a single-char wildcard
///     (the engine expands the prefix against the column dictionary)
///   - the join graph must be connected and use at most 32 relations
///
/// Unquoted identifiers fold to lower case (the SQL convention); every
/// catalog name is already lower case. Predicates and join edges are bound
/// in source order, so Query::ToSql of the result reproduces the clause
/// order of the input.
///
/// `out->id` is left empty: callers name the query (see AssignQueryId),
/// since the same SQL text can serve as different workload entries.
util::Status BindSelect(const SelectStatement& stmt,
                        const catalog::Schema& schema, query::Query* out);

/// ParseSelect + BindSelect in one step.
util::Status ParseAndBindSql(std::string_view sql,
                             const catalog::Schema& schema, query::Query* out);

/// Sets q->id and derives template_id/variant from it using the workload
/// naming convention `<digits><letter...>` (e.g. "13a" -> family 13,
/// variant 'a'). Ids not of that shape get template_id 0 / variant 'a'.
void AssignQueryId(const std::string& id, query::Query* q);

}  // namespace lqolab::sql

#endif  // LQOLAB_SQL_BINDER_H_
