#ifndef LQOLAB_SQL_PARSER_H_
#define LQOLAB_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/status.h"

namespace lqolab::sql {

/// Parenthesized WHERE groups deeper than this are rejected with a clean
/// diagnostic instead of recursing toward stack exhaustion. The grammar has
/// no OR, so real queries never need grouping at all; the cap only bounds
/// adversarial input.
inline constexpr int32_t kMaxGroupDepth = 64;

/// Parses one `SELECT ... FROM ... [WHERE ...] [;]` statement, which must
/// span the whole input (trailing tokens are an error). Diagnostics are
/// kInvalidArgument with a "line:col: " anchor, e.g.
/// `1:32: expected FROM, got 'WHRE'`.
///
/// Grammar (keywords case-insensitive; `--` comments allowed):
///   statement   := SELECT select_item (',' select_item)*
///                  FROM from_item (',' from_item)* [WHERE conjunction] [';']
///   select_item := COUNT '(' '*' ')' | agg '(' column ')' | column
///   agg         := COUNT | MIN | MAX | SUM | AVG
///   from_item   := identifier [[AS] identifier]
///   conjunction := predicate (AND predicate)*
///   predicate   := '(' conjunction ')'            -- depth-capped, flattened
///                | column IS [NOT] NULL
///                | column LIKE string
///                | column BETWEEN int AND int
///                | column IN '(' literal (',' literal)* ')'
///                | column ('='|'<'|'<='|'>'|'>=') (column | literal)
///   column      := identifier ['.' identifier]
///   literal     := ['-'] int | string
util::Status ParseSelect(std::string_view sql, SelectStatement* out);

}  // namespace lqolab::sql

#endif  // LQOLAB_SQL_PARSER_H_
