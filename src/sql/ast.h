#ifndef LQOLAB_SQL_AST_H_
#define LQOLAB_SQL_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lqolab::sql {

/// 1-based position of a token in the original query text. Every parser and
/// binder diagnostic is anchored to one of these ("line:col: message").
struct SourceLoc {
  int32_t line = 1;
  int32_t column = 1;
};

/// Renders "line:col" for diagnostics.
std::string LocString(const SourceLoc& loc);

/// A literal operand. Integers are kept as int64 until the binder
/// range-checks them against storage::Value (int32).
struct AstLiteral {
  enum class Kind { kInt, kString };
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  std::string str_value;
  SourceLoc loc;
};

/// `column` or `qualifier.column`. The binder resolves the qualifier
/// against the FROM aliases (or searches every FROM item when absent).
struct AstColumnRef {
  std::string qualifier;
  std::string column;
  SourceLoc loc;
};

/// One SELECT-list item. The grammar accepts the aggregate forms a reader
/// expects from benchmark SQL; the binder then enforces what the engine can
/// execute (a single COUNT(*)) with a typed diagnostic rather than a parse
/// error.
struct AstSelectItem {
  enum class Agg {
    kNone,       ///< bare column reference
    kCountStar,  ///< COUNT(*)
    kCount,      ///< COUNT(column)
    kMin,
    kMax,
    kSum,
    kAvg,
  };
  Agg agg = Agg::kNone;
  AstColumnRef column;  ///< valid unless kCountStar
  SourceLoc loc;
};

/// One FROM item: `table` or `table [AS] alias`.
struct AstTableRef {
  std::string table;
  std::string alias;  ///< empty when none was written (defaults to table)
  SourceLoc loc;
};

/// One conjunct of the WHERE clause. `a.x = b.y` (both sides columns) is a
/// join condition; every other form filters a single relation.
struct AstPredicate {
  enum class Op {
    kEq,         ///< col = literal, or col = col (join)
    kIn,         ///< col IN (literal, ...)
    kBetween,    ///< col BETWEEN lo AND hi (literals[0], literals[1])
    kLt,         ///< col < literal
    kLe,         ///< col <= literal
    kGt,         ///< col > literal
    kGe,         ///< col >= literal
    kIsNull,     ///< col IS NULL
    kIsNotNull,  ///< col IS NOT NULL
    kLike,       ///< col LIKE 'prefix%' (literals[0] is the raw pattern)
  };
  Op op = Op::kEq;
  AstColumnRef lhs;
  /// kEq only: the right side is another column (a join condition).
  bool rhs_is_column = false;
  AstColumnRef rhs_column;
  std::vector<AstLiteral> literals;
  SourceLoc loc;
};

/// A parsed `SELECT ... FROM ... [WHERE ...]` statement. Parenthesized
/// WHERE groups are flattened into the conjunction (the grammar has no OR,
/// so grouping carries no semantics).
struct SelectStatement {
  std::vector<AstSelectItem> select;
  std::vector<AstTableRef> from;
  std::vector<AstPredicate> where;
};

}  // namespace lqolab::sql

#endif  // LQOLAB_SQL_AST_H_
