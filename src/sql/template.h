#ifndef LQOLAB_SQL_TEMPLATE_H_
#define LQOLAB_SQL_TEMPLATE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lqolab::sql {

/// Rewrites a SQL statement into its parameterized template: every literal
/// becomes `?`, IN lists collapse to `(?)` regardless of arity, keywords are
/// upper-cased, identifiers fold to lower case, whitespace and comments are
/// canonicalized, and a trailing `;` is dropped. Two statements that differ
/// only in their constants therefore normalize to the same string — the
/// plan-cache key for the SQL serve path. Input that does not lex is
/// returned verbatim (it can never bind, so any key works; verbatim keeps
/// distinct garbage distinct).
std::string NormalizeSqlTemplate(std::string_view sql);

/// FNV-1a fingerprint of NormalizeSqlTemplate(sql).
uint64_t SqlTemplateFingerprint(std::string_view sql);

}  // namespace lqolab::sql

#endif  // LQOLAB_SQL_TEMPLATE_H_
