#ifndef LQOLAB_SQL_LEXER_H_
#define LQOLAB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace lqolab::sql {

/// Token kinds. SQL keywords are lexed as identifiers and matched
/// case-insensitively by the parser, so `select` and `SELECT` are equal and
/// any keyword remains usable as an identifier where the grammar allows.
enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kInt,         ///< [0-9]+ (unary minus is handled by the parser)
  kString,      ///< '...' with '' as the embedded-quote escape
  kSymbol,      ///< one of ( ) , . ; * = < > <= >=
  kEnd,         ///< end of input (always the last token)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier text, decoded string body, or symbol spelling.
  std::string text;
  /// kInt only.
  int64_t int_value = 0;
  SourceLoc loc;

  /// Case-insensitive keyword test (kIdentifier only).
  bool Is(std::string_view keyword) const;
  /// Symbol test.
  bool IsSymbol(std::string_view symbol) const;
  /// How the token renders in an error message, e.g. `'WHRE'`.
  std::string Describe() const;
};

/// Lexes `sql` into tokens (a kEnd token is always appended). Returns a
/// position-anchored kInvalidArgument on an unterminated string literal, an
/// integer literal too long to ever bind, or a stray character. `--`
/// comments run to end of line.
util::Status Lex(std::string_view sql, std::vector<Token>* tokens);

}  // namespace lqolab::sql

#endif  // LQOLAB_SQL_LEXER_H_
