#include "sql/binder.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <vector>

#include "sql/parser.h"
#include "storage/column.h"

namespace lqolab::sql {

using catalog::ColumnId;
using catalog::ColumnType;
using catalog::Schema;
using catalog::TableId;
using query::AliasId;
using query::JoinEdge;
using query::Predicate;
using query::Query;
using query::QueryRelation;
using util::Status;
using util::StatusCode;

namespace {

/// Open range endpoints for one-sided comparisons, matching the convention
/// the hand-built JOB workload uses so `t.production_year > 2000` binds to
/// the same predicate as QB::Gt and round-trips byte-identically.
constexpr storage::Value kOpenLo = -2000000000;
constexpr storage::Value kOpenHi = 2000000000;

std::string Lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

/// Plain Levenshtein distance; names are short, so the O(n*m) table is
/// nothing.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

/// Closest candidate within an edit-distance budget of a third of the name
/// (at least 2), or empty when nothing is plausibly a typo.
std::string Suggest(const std::string& name,
                    const std::vector<std::string>& candidates) {
  const size_t budget = std::max<size_t>(2, name.size() / 3);
  size_t best_distance = budget + 1;
  std::string best;
  for (const auto& candidate : candidates) {
    const size_t d = EditDistance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

class Binder {
 public:
  Binder(const SelectStatement& stmt, const Schema& schema, Query* out)
      : stmt_(stmt), schema_(schema), out_(out) {}

  Status Bind() {
    Status status = BindSelectList();
    if (status.ok()) status = BindFrom();
    if (status.ok()) status = BindWhere();
    if (status.ok()) status = CheckConnected();
    return status;
  }

 private:
  Status Fail(const SourceLoc& loc, const std::string& message) const {
    return Status(StatusCode::kInvalidArgument,
                  LocString(loc) + ": " + message);
  }

  Status BindSelectList() {
    const auto& items = stmt_.select;
    if (items.size() != 1 ||
        items[0].agg != AstSelectItem::Agg::kCountStar) {
      const auto& at = items.empty() ? SourceLoc() : items[0].loc;
      return Fail(at, "the select list must be exactly COUNT(*)");
    }
    return Status::Ok();
  }

  Status BindFrom() {
    if (stmt_.from.size() > 32) {
      return Fail(stmt_.from[32].loc,
                  "queries are limited to 32 relations");
    }
    for (const auto& ref : stmt_.from) {
      const std::string table_name = Lower(ref.table);
      const TableId table = schema_.FindTable(table_name);
      if (table == catalog::kInvalidTable) {
        std::vector<std::string> names;
        for (const auto& def : schema_.tables()) names.push_back(def.name);
        return Fail(ref.loc, "unknown table '" + table_name + "'" +
                                 DidYouMean(Suggest(table_name, names)));
      }
      QueryRelation rel;
      rel.table = table;
      rel.alias = ref.alias.empty() ? table_name : Lower(ref.alias);
      for (const auto& existing : out_->relations) {
        if (existing.alias == rel.alias) {
          return Fail(ref.loc, "duplicate alias '" + rel.alias + "'");
        }
      }
      out_->relations.push_back(std::move(rel));
    }
    return Status::Ok();
  }

  static std::string DidYouMean(const std::string& suggestion) {
    if (suggestion.empty()) return "";
    return ", did you mean '" + suggestion + "'?";
  }

  /// Resolves a column reference to (alias, column). Unqualified names are
  /// searched across every FROM item and must be unambiguous.
  Status ResolveColumn(const AstColumnRef& ref, AliasId* alias_out,
                       ColumnId* column_out) const {
    const std::string column_name = Lower(ref.column);
    if (!ref.qualifier.empty()) {
      const std::string qualifier = Lower(ref.qualifier);
      AliasId alias = -1;
      for (size_t i = 0; i < out_->relations.size(); ++i) {
        if (out_->relations[i].alias == qualifier) {
          alias = static_cast<AliasId>(i);
          break;
        }
      }
      if (alias < 0) {
        std::vector<std::string> aliases;
        for (const auto& rel : out_->relations) aliases.push_back(rel.alias);
        return Fail(ref.loc, "unknown alias '" + qualifier + "'" +
                                 DidYouMean(Suggest(qualifier, aliases)));
      }
      const auto& def = schema_.table(out_->relations
                                          [static_cast<size_t>(alias)].table);
      const ColumnId column = def.FindColumn(column_name);
      if (column == catalog::kInvalidColumn) {
        std::vector<std::string> names;
        for (const auto& col : def.columns) names.push_back(col.name);
        return Fail(ref.loc,
                    "unknown column '" + qualifier + "." + column_name +
                        "'" + DidYouMean(Suggest(column_name, names)));
      }
      *alias_out = alias;
      *column_out = column;
      return Status::Ok();
    }

    AliasId found_alias = -1;
    ColumnId found_column = catalog::kInvalidColumn;
    std::string matches;  // for the ambiguity diagnostic
    for (size_t i = 0; i < out_->relations.size(); ++i) {
      const auto& rel = out_->relations[i];
      const ColumnId column =
          schema_.table(rel.table).FindColumn(column_name);
      if (column == catalog::kInvalidColumn) continue;
      if (found_alias >= 0) {
        if (!matches.empty()) matches += ", ";
        matches += rel.alias + "." + column_name;
        continue;
      }
      found_alias = static_cast<AliasId>(i);
      found_column = column;
      matches = rel.alias + "." + column_name;
    }
    if (found_alias < 0) {
      std::vector<std::string> names;
      for (const auto& rel : out_->relations) {
        for (const auto& col : schema_.table(rel.table).columns) {
          names.push_back(col.name);
        }
      }
      return Fail(ref.loc, "unknown column '" + column_name + "'" +
                               DidYouMean(Suggest(column_name, names)));
    }
    if (matches.find(',') != std::string::npos) {
      return Fail(ref.loc, "ambiguous column '" + column_name +
                               "' (matches " + matches + ")");
    }
    *alias_out = found_alias;
    *column_out = found_column;
    return Status::Ok();
  }

  ColumnType TypeOf(AliasId alias, ColumnId column) const {
    const auto& rel = out_->relations[static_cast<size_t>(alias)];
    return schema_.table(rel.table)
        .columns[static_cast<size_t>(column)]
        .type;
  }

  std::string NameOf(AliasId alias, ColumnId column) const {
    const auto& rel = out_->relations[static_cast<size_t>(alias)];
    return rel.alias + "." +
           schema_.table(rel.table).columns[static_cast<size_t>(column)].name;
  }

  /// Range-checks an int64 literal (or a derived range endpoint) into
  /// storage::Value; kNullValue is reserved as the null sentinel.
  Status CheckedValue(int64_t value, const SourceLoc& loc,
                      storage::Value* out) const {
    if (value <= storage::kNullValue ||
        value > std::numeric_limits<storage::Value>::max()) {
      return Fail(loc, "integer literal out of range");
    }
    *out = static_cast<storage::Value>(value);
    return Status::Ok();
  }

  Status RequireInt(const AstLiteral& literal, ColumnType type,
                    AliasId alias, ColumnId column,
                    storage::Value* out) const {
    if (literal.kind != AstLiteral::Kind::kInt) {
      return Fail(literal.loc, "string literal compared against integer "
                               "column " + NameOf(alias, column));
    }
    if (type != ColumnType::kInt) {
      return Fail(literal.loc, "integer literal compared against string "
                               "column " + NameOf(alias, column));
    }
    return CheckedValue(literal.int_value, literal.loc, out);
  }

  Status BindWhere() {
    for (const auto& pred : stmt_.where) {
      Status status = BindPredicate(pred);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  Status BindPredicate(const AstPredicate& pred) {
    AliasId alias = -1;
    ColumnId column = catalog::kInvalidColumn;
    Status status = ResolveColumn(pred.lhs, &alias, &column);
    if (!status.ok()) return status;
    const ColumnType type = TypeOf(alias, column);

    if (pred.rhs_is_column) return BindJoin(pred, alias, column, type);

    Predicate bound;
    bound.alias = alias;
    bound.column = column;

    switch (pred.op) {
      case AstPredicate::Op::kEq:
      case AstPredicate::Op::kIn: {
        bound.kind = pred.op == AstPredicate::Op::kEq
                         ? Predicate::Kind::kEq
                         : Predicate::Kind::kIn;
        for (const auto& literal : pred.literals) {
          if (literal.kind == AstLiteral::Kind::kString) {
            if (type != ColumnType::kString) {
              return Fail(literal.loc,
                          "string literal compared against integer column " +
                              NameOf(alias, column));
            }
            bound.str_values.push_back(literal.str_value);
          } else {
            storage::Value value = 0;
            status = RequireInt(literal, type, alias, column, &value);
            if (!status.ok()) return status;
            bound.int_values.push_back(value);
          }
        }
        break;
      }
      case AstPredicate::Op::kBetween: {
        bound.kind = Predicate::Kind::kRange;
        storage::Value lo = 0;
        storage::Value hi = 0;
        status = RequireInt(pred.literals[0], type, alias, column, &lo);
        if (status.ok()) {
          status = RequireInt(pred.literals[1], type, alias, column, &hi);
        }
        if (!status.ok()) return status;
        // An inverted range (lo > hi) is legal SQL that matches nothing;
        // the fuzzer emits these deliberately, so bind it as written.
        bound.int_values = {lo, hi};
        break;
      }
      case AstPredicate::Op::kLt:
      case AstPredicate::Op::kLe:
      case AstPredicate::Op::kGt:
      case AstPredicate::Op::kGe: {
        bound.kind = Predicate::Kind::kRange;
        if (pred.literals[0].kind != AstLiteral::Kind::kInt ||
            type != ColumnType::kInt) {
          storage::Value ignored = 0;
          return RequireInt(pred.literals[0], type, alias, column, &ignored);
        }
        // One-sided ranges share the workload's open-endpoint convention,
        // with the strict forms tightened by one (values are integers).
        int64_t lo = kOpenLo;
        int64_t hi = kOpenHi;
        const int64_t x = pred.literals[0].int_value;
        switch (pred.op) {
          case AstPredicate::Op::kLt: hi = x - 1; break;
          case AstPredicate::Op::kLe: hi = x; break;
          case AstPredicate::Op::kGt: lo = x + 1; break;
          default: lo = x; break;  // kGe
        }
        storage::Value lo32 = 0;
        storage::Value hi32 = 0;
        status = CheckedValue(lo, pred.literals[0].loc, &lo32);
        if (status.ok()) {
          status = CheckedValue(hi, pred.literals[0].loc, &hi32);
        }
        if (!status.ok()) return status;
        bound.int_values = {lo32, hi32};
        break;
      }
      case AstPredicate::Op::kIsNull:
        bound.kind = Predicate::Kind::kIsNull;
        break;
      case AstPredicate::Op::kIsNotNull:
        bound.kind = Predicate::Kind::kNotNull;
        break;
      case AstPredicate::Op::kLike: {
        if (type != ColumnType::kString) {
          return Fail(pred.literals[0].loc,
                      "LIKE requires a string column, but " +
                          NameOf(alias, column) + " is an integer column");
        }
        // The engine's kLikePrefix expands the prefix against the column
        // dictionary by literal comparison, so `_` is an ordinary character
        // here (no single-char wildcard; docs/sql.md documents the subset).
        const std::string& pattern = pred.literals[0].str_value;
        const bool prefix_only =
            !pattern.empty() && pattern.back() == '%' &&
            pattern.find('%') == pattern.size() - 1;
        if (!prefix_only) {
          return Fail(pred.literals[0].loc,
                      "only prefix LIKE patterns ('prefix%') are supported");
        }
        bound.kind = Predicate::Kind::kLikePrefix;
        bound.str_values = {pattern.substr(0, pattern.size() - 1)};
        break;
      }
    }
    out_->predicates.push_back(std::move(bound));
    return Status::Ok();
  }

  Status BindJoin(const AstPredicate& pred, AliasId left_alias,
                  ColumnId left_column, ColumnType left_type) {
    AliasId right_alias = -1;
    ColumnId right_column = catalog::kInvalidColumn;
    Status status =
        ResolveColumn(pred.rhs_column, &right_alias, &right_column);
    if (!status.ok()) return status;
    if (left_type != ColumnType::kInt ||
        TypeOf(right_alias, right_column) != ColumnType::kInt) {
      // Dictionary codes are per-column, so string equality across tables
      // has no meaningful storage-level interpretation here.
      return Fail(pred.loc, "join conditions must connect integer columns");
    }
    if (left_alias == right_alias) {
      return Fail(pred.loc, "join condition references a single relation");
    }
    JoinEdge edge;
    edge.left_alias = left_alias;
    edge.left_column = left_column;
    edge.right_alias = right_alias;
    edge.right_column = right_column;
    out_->edges.push_back(edge);
    return Status::Ok();
  }

  Status CheckConnected() const {
    if (out_->relations.empty()) {
      return Fail(SourceLoc(), "FROM clause is empty");
    }
    if (!out_->IsConnected(out_->FullMask())) {
      return Fail(stmt_.from[0].loc,
                  "the join graph does not connect every FROM relation");
    }
    return Status::Ok();
  }

  const SelectStatement& stmt_;
  const Schema& schema_;
  Query* out_;
};

}  // namespace

Status BindSelect(const SelectStatement& stmt, const Schema& schema,
                  Query* out) {
  *out = Query();
  return Binder(stmt, schema, out).Bind();
}

Status ParseAndBindSql(std::string_view sql, const Schema& schema,
                       Query* out) {
  SelectStatement stmt;
  const Status parsed = ParseSelect(sql, &stmt);
  if (!parsed.ok()) return parsed;
  return BindSelect(stmt, schema, out);
}

void AssignQueryId(const std::string& id, Query* q) {
  q->id = id;
  q->template_id = 0;
  q->variant = 'a';
  // `[letter]<digits><letter>`: "13a" -> family 13 / 'a'; a letter prefix
  // marks an extension namespace offset by 100 ("e1a" -> 101 / 'a', the
  // convention BuildExtJobWorkload established).
  size_t start = 0;
  if (!id.empty() && std::isalpha(static_cast<unsigned char>(id[0]))) {
    start = 1;
  }
  size_t i = start;
  while (i < id.size() &&
         std::isdigit(static_cast<unsigned char>(id[i]))) {
    ++i;
  }
  if (i == start || i - start > 6) return;  // no digits (or absurdly many)
  if (i == id.size() ||
      !std::isalpha(static_cast<unsigned char>(id[i]))) {
    return;
  }
  q->template_id = std::stoi(id.substr(start, i - start)) +
                   (start > 0 ? 100 : 0);
  q->variant = id[i];
}

}  // namespace lqolab::sql
