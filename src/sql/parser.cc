#include "sql/parser.h"

#include <vector>

#include "sql/lexer.h"

namespace lqolab::sql {

using util::Status;
using util::StatusCode;

namespace {

/// Recursive-descent parser over the pre-lexed token stream. Every method
/// either succeeds or records the first error; parsing stops at the first
/// diagnostic (the corpus tests pin the exact message text).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status Parse(SelectStatement* out) {
    if (!ExpectKeyword("SELECT")) return error_;
    if (!ParseSelectList(&out->select)) return error_;
    if (!ExpectKeyword("FROM")) return error_;
    if (!ParseFromList(&out->from)) return error_;
    if (Peek().Is("WHERE")) {
      Advance();
      if (!ParseConjunction(&out->where, 0)) return error_;
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      Fail(Peek(), "expected end of statement, got " + Peek().Describe());
      return error_;
    }
    return Status::Ok();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Fail(const Token& at, const std::string& message) {
    if (error_.ok()) {
      error_ = Status(StatusCode::kInvalidArgument,
                      LocString(at.loc) + ": " + message);
    }
    return false;
  }

  bool ExpectKeyword(const char* keyword) {
    if (!Peek().Is(keyword)) {
      return Fail(Peek(), std::string("expected ") + keyword + ", got " +
                              Peek().Describe());
    }
    Advance();
    return true;
  }

  bool ExpectSymbol(const char* symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return Fail(Peek(), std::string("expected '") + symbol + "', got " +
                              Peek().Describe());
    }
    Advance();
    return true;
  }

  bool ParseIdentifier(std::string* text, SourceLoc* loc) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Fail(Peek(), "expected identifier, got " + Peek().Describe());
    }
    const Token& token = Advance();
    *text = token.text;
    if (loc != nullptr) *loc = token.loc;
    return true;
  }

  bool ParseColumnRef(AstColumnRef* ref) {
    std::string first;
    if (!ParseIdentifier(&first, &ref->loc)) return false;
    if (Peek().IsSymbol(".")) {
      Advance();
      ref->qualifier = std::move(first);
      std::string column;
      SourceLoc ignored;
      if (!ParseIdentifier(&column, &ignored)) return false;
      ref->column = std::move(column);
    } else {
      ref->column = std::move(first);
    }
    return true;
  }

  bool ParseLiteral(AstLiteral* literal) {
    if (Peek().IsSymbol("-")) {
      const Token& minus = Advance();
      if (Peek().kind != TokenKind::kInt) {
        return Fail(Peek(),
                    "expected integer after '-', got " + Peek().Describe());
      }
      const Token& token = Advance();
      literal->kind = AstLiteral::Kind::kInt;
      literal->int_value = -token.int_value;
      literal->loc = minus.loc;
      return true;
    }
    if (Peek().kind == TokenKind::kInt) {
      const Token& token = Advance();
      literal->kind = AstLiteral::Kind::kInt;
      literal->int_value = token.int_value;
      literal->loc = token.loc;
      return true;
    }
    if (Peek().kind == TokenKind::kString) {
      const Token& token = Advance();
      literal->kind = AstLiteral::Kind::kString;
      literal->str_value = token.text;
      literal->loc = token.loc;
      return true;
    }
    return Fail(Peek(), "expected literal, got " + Peek().Describe());
  }

  bool ParseAggregate(AstSelectItem* item, AstSelectItem::Agg agg) {
    item->agg = agg;
    item->loc = Advance().loc;  // the aggregate keyword
    if (!ExpectSymbol("(")) return false;
    if (agg == AstSelectItem::Agg::kCountStar) {
      if (!ExpectSymbol("*")) return false;
    } else if (!ParseColumnRef(&item->column)) {
      return false;
    }
    return ExpectSymbol(")");
  }

  bool ParseSelectList(std::vector<AstSelectItem>* items) {
    while (true) {
      AstSelectItem item;
      if (Peek().Is("COUNT")) {
        // COUNT(*) vs COUNT(column): decided by the token after '('.
        const bool star = tokens_[pos_ + 1].IsSymbol("(") &&
                          tokens_[pos_ + 2].IsSymbol("*");
        if (!ParseAggregate(&item, star ? AstSelectItem::Agg::kCountStar
                                        : AstSelectItem::Agg::kCount)) {
          return false;
        }
      } else if (Peek().Is("MIN")) {
        if (!ParseAggregate(&item, AstSelectItem::Agg::kMin)) return false;
      } else if (Peek().Is("MAX")) {
        if (!ParseAggregate(&item, AstSelectItem::Agg::kMax)) return false;
      } else if (Peek().Is("SUM")) {
        if (!ParseAggregate(&item, AstSelectItem::Agg::kSum)) return false;
      } else if (Peek().Is("AVG")) {
        if (!ParseAggregate(&item, AstSelectItem::Agg::kAvg)) return false;
      } else {
        item.agg = AstSelectItem::Agg::kNone;
        if (!ParseColumnRef(&item.column)) return false;
        item.loc = item.column.loc;
      }
      items->push_back(std::move(item));
      if (!Peek().IsSymbol(",")) return true;
      Advance();
    }
  }

  bool ParseFromList(std::vector<AstTableRef>* items) {
    while (true) {
      AstTableRef ref;
      if (!ParseIdentifier(&ref.table, &ref.loc)) return false;
      if (Peek().Is("AS")) {
        Advance();
        SourceLoc ignored;
        if (!ParseIdentifier(&ref.alias, &ignored)) return false;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !Peek().Is("WHERE")) {
        // `title t` implicit-alias form.
        ref.alias = Advance().text;
      }
      items->push_back(std::move(ref));
      if (!Peek().IsSymbol(",")) return true;
      Advance();
    }
  }

  bool ParseConjunction(std::vector<AstPredicate>* out, int32_t depth) {
    while (true) {
      if (!ParsePredicate(out, depth)) return false;
      if (!Peek().Is("AND")) return true;
      Advance();
    }
  }

  bool ParsePredicate(std::vector<AstPredicate>* out, int32_t depth) {
    if (Peek().IsSymbol("(")) {
      // Grouping only (the grammar has no OR): flatten into the enclosing
      // conjunction. Depth-capped so adversarial nesting cannot exhaust the
      // stack.
      if (depth >= kMaxGroupDepth) {
        return Fail(Peek(), "parenthesized groups nested deeper than " +
                                std::to_string(kMaxGroupDepth));
      }
      Advance();
      if (!ParseConjunction(out, depth + 1)) return false;
      return ExpectSymbol(")");
    }

    AstPredicate pred;
    if (!ParseColumnRef(&pred.lhs)) return false;
    pred.loc = pred.lhs.loc;

    if (Peek().Is("IS")) {
      Advance();
      if (Peek().Is("NOT")) {
        Advance();
        pred.op = AstPredicate::Op::kIsNotNull;
      } else {
        pred.op = AstPredicate::Op::kIsNull;
      }
      if (!ExpectKeyword("NULL")) return false;
      out->push_back(std::move(pred));
      return true;
    }
    if (Peek().Is("LIKE")) {
      Advance();
      pred.op = AstPredicate::Op::kLike;
      AstLiteral pattern;
      if (Peek().kind != TokenKind::kString) {
        return Fail(Peek(),
                    "expected string pattern after LIKE, got " +
                        Peek().Describe());
      }
      if (!ParseLiteral(&pattern)) return false;
      pred.literals.push_back(std::move(pattern));
      out->push_back(std::move(pred));
      return true;
    }
    if (Peek().Is("BETWEEN")) {
      Advance();
      pred.op = AstPredicate::Op::kBetween;
      AstLiteral lo;
      AstLiteral hi;
      if (!ParseLiteral(&lo)) return false;
      if (!ExpectKeyword("AND")) return false;
      if (!ParseLiteral(&hi)) return false;
      pred.literals.push_back(std::move(lo));
      pred.literals.push_back(std::move(hi));
      out->push_back(std::move(pred));
      return true;
    }
    if (Peek().Is("IN")) {
      Advance();
      pred.op = AstPredicate::Op::kIn;
      if (!ExpectSymbol("(")) return false;
      while (true) {
        AstLiteral literal;
        if (!ParseLiteral(&literal)) return false;
        pred.literals.push_back(std::move(literal));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      if (!ExpectSymbol(")")) return false;
      out->push_back(std::move(pred));
      return true;
    }

    if (Peek().IsSymbol("=")) {
      pred.op = AstPredicate::Op::kEq;
    } else if (Peek().IsSymbol("<")) {
      pred.op = AstPredicate::Op::kLt;
    } else if (Peek().IsSymbol("<=")) {
      pred.op = AstPredicate::Op::kLe;
    } else if (Peek().IsSymbol(">")) {
      pred.op = AstPredicate::Op::kGt;
    } else if (Peek().IsSymbol(">=")) {
      pred.op = AstPredicate::Op::kGe;
    } else {
      return Fail(Peek(), "expected a predicate operator, got " +
                              Peek().Describe());
    }
    const Token& op_token = Advance();

    if (Peek().kind == TokenKind::kIdentifier) {
      if (pred.op != AstPredicate::Op::kEq) {
        return Fail(op_token,
                    "inequality join conditions are not supported");
      }
      pred.rhs_is_column = true;
      if (!ParseColumnRef(&pred.rhs_column)) return false;
      out->push_back(std::move(pred));
      return true;
    }
    AstLiteral literal;
    if (!ParseLiteral(&literal)) return false;
    pred.literals.push_back(std::move(literal));
    out->push_back(std::move(pred));
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Status error_;
};

}  // namespace

Status ParseSelect(std::string_view sql, SelectStatement* out) {
  *out = SelectStatement();
  std::vector<Token> tokens;
  const Status lexed = Lex(sql, &tokens);
  if (!lexed.ok()) return lexed;
  Parser parser(std::move(tokens));
  return parser.Parse(out);
}

}  // namespace lqolab::sql
