#ifndef LQOLAB_SERVE_PLAN_CACHE_H_
#define LQOLAB_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/config.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "storage/lru_cache.h"
#include "util/virtual_clock.h"

namespace lqolab::exec {
struct CardinalityPins;
}  // namespace lqolab::exec

namespace lqolab::serve {

/// Modeled cost of serving a plan from the cache (fingerprint hash + shard
/// lookup), charged as the hit's planning time. Orders of magnitude below
/// even the cheapest cold planning, like a PostgreSQL prepared-statement
/// generic-plan reuse.
inline constexpr util::VirtualNanos kPlanCacheHitNs = 20'000;  // 20 us

/// Canonical cache key of a (query, configuration, model) triple: mixes the
/// query fingerprint (tables + join graph + bound predicates, see
/// exec::QueryFingerprint) with every configuration knob the planner reads
/// (enable_* switches, GEQO settings, memory sizing, estimator variant) and
/// the serving model's hot-swap version. Two lookups collide only when the
/// same planner would produce the same plan; publishing a new model changes
/// `model_version` and thus invalidates every LQO-routed entry at once.
uint64_t PlanCacheKey(const query::Query& q, const engine::DbConfig& config,
                      uint64_t model_version = 0);

/// Cache key for the SQL route: same configuration/model mixing as
/// PlanCacheKey, but the query identity is the normalized SQL template
/// fingerprint (sql::SqlTemplateFingerprint — constants stripped), so the
/// same template with different literals shares one entry. Sound because a
/// PhysicalPlan stores only structure (scan types, join order); literals
/// re-bind from the submitted Query at execution, like a PostgreSQL
/// prepared-statement generic plan.
uint64_t PlanCacheKeyForTemplate(uint64_t template_fingerprint,
                                 const engine::DbConfig& config,
                                 uint64_t model_version = 0);

/// A cached planning outcome: the plan plus the timing the cold plan paid
/// (kept for reporting; a hit charges only kPlanCacheHitNs).
struct CachedPlan {
  optimizer::PhysicalPlan plan;
  util::VirtualNanos planning_ns = 0;
  util::VirtualNanos inference_ns = 0;
  double estimated_cost = 0.0;
  /// Cardinality truths learned by adaptive replans of this entry's query
  /// (QueryRun::replan_pins), written back by the serve path's plan
  /// feedback so repeat arrivals execute the corrected plan with the
  /// estimator already grounded (no re-triggered replans). Null for plans
  /// that never replanned.
  std::shared_ptr<const exec::CardinalityPins> pins;
};

struct PlanCacheOptions {
  /// Number of independently locked shards (keys are striped by hash).
  int32_t shards = 8;
  /// Plans per shard; 0 disables the cache (every lookup misses, inserts
  /// are dropped).
  int64_t capacity_per_shard = 64;
};

/// Sharded LRU plan cache. Each shard pairs a storage::LruCache (recency
/// order + the lifetime eviction counter, shared with the buffer-cache
/// model rather than duplicated here) with the plan payloads, under its own
/// mutex — concurrent lookups of different shards never contend. Hit, miss
/// and eviction counts flow into the calling thread's
/// obs::MetricsRegistry.
class PlanCache {
 public:
  explicit PlanCache(const PlanCacheOptions& options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key`, refreshing its recency, or nullptr
  /// on a miss. The returned snapshot stays valid after eviction (shared
  /// ownership).
  std::shared_ptr<const CachedPlan> Lookup(uint64_t key);

  /// Caches `plan` under `key`, evicting the shard's LRU entry if full.
  /// Re-inserting an existing key refreshes recency and replaces the
  /// payload. No-op when the cache is disabled.
  void Insert(uint64_t key, std::shared_ptr<const CachedPlan> plan);

  /// Drops every cached plan (dropped entries count as evictions).
  void Clear();

  bool enabled() const { return capacity_per_shard_ > 0; }
  int64_t capacity() const {
    return capacity_per_shard_ * static_cast<int64_t>(shards_.size());
  }
  /// Cached plans across all shards.
  int64_t size() const;
  /// Lifetime evictions across all shards (from the underlying LruCaches).
  int64_t evictions() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    storage::LruCache lru;
    std::unordered_map<uint64_t, std::shared_ptr<const CachedPlan>> plans;

    explicit Shard(int64_t capacity) : lru(capacity) {}
  };

  Shard& ShardFor(uint64_t key);

  int64_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lqolab::serve

#endif  // LQOLAB_SERVE_PLAN_CACHE_H_
