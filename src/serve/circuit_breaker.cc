#include "serve/circuit_breaker.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::serve {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  LQOLAB_CHECK_GT(options.failure_threshold, 0);
  LQOLAB_CHECK_GT(options.open_requests, 0);
  LQOLAB_CHECK_GT(options.probe_successes, 0);
  LQOLAB_CHECK_GE(options.probe_spacing, 0);
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  failure_streak_ = 0;
  open_count_ = 0;
  probes_in_flight_ = 0;
  probe_streak_ = 0;
  half_open_requests_ = 0;
  ++trips_;
  obs::Count(obs::Counter::kServeBreakerTrips);
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (++open_count_ >= options_.open_requests) {
        // The open interval has elapsed (counted in requests, not time):
        // half-open and let this request through as the first probe.
        state_ = State::kHalfOpen;
        probe_streak_ = 0;
        probes_in_flight_ = 1;
        half_open_requests_ = 1;
        obs::Count(obs::Counter::kServeBreakerProbes);
        return true;
      }
      ++short_circuits_;
      obs::Count(obs::Counter::kServeBreakerShortCircuits);
      return false;
    case State::kHalfOpen:
      if (options_.probe_spacing > 0) {
        // Deterministic selection: probe iff this request's index in the
        // half-open window is a multiple of probe_spacing. Independent of
        // whether earlier probes have reported back, so the probe sequence
        // is identical under any load or thread interleaving.
        const bool probe =
            half_open_requests_++ % options_.probe_spacing == 0;
        if (!probe) {
          ++short_circuits_;
          obs::Count(obs::Counter::kServeBreakerShortCircuits);
          return false;
        }
        ++probes_in_flight_;
        obs::Count(obs::Counter::kServeBreakerProbes);
        return true;
      }
      ++half_open_requests_;
      // Classic policy: admit one probe at a time — a burst of queries
      // arriving half-open must not all hit a possibly-still-broken arm.
      // Probe selection is load-dependent (see probe_spacing).
      if (probes_in_flight_ > 0) {
        ++short_circuits_;
        obs::Count(obs::Counter::kServeBreakerShortCircuits);
        return false;
      }
      probes_in_flight_ = 1;
      obs::Count(obs::Counter::kServeBreakerProbes);
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      failure_streak_ = 0;
      return;
    case State::kOpen:
      // Outcome of a request allowed before the trip; the trip already
      // reset the streaks.
      return;
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_streak_ >= options_.probe_successes) {
        state_ = State::kClosed;
        failure_streak_ = 0;
        ++recoveries_;
        obs::Count(obs::Counter::kServeBreakerRecoveries);
      }
      return;
  }
}

void CircuitBreaker::Trip() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kOpen) TripLocked();
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++failure_streak_ >= options_.failure_threshold) TripLocked();
      return;
    case State::kOpen:
      return;  // Late outcome of a pre-trip request.
    case State::kHalfOpen:
      TripLocked();  // One failed probe re-opens immediately.
      return;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

int64_t CircuitBreaker::recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recoveries_;
}

int64_t CircuitBreaker::short_circuits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_circuits_;
}

}  // namespace lqolab::serve
