#ifndef LQOLAB_SERVE_DISPATCHER_H_
#define LQOLAB_SERVE_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <vector>

#include "serve/query_server.h"
#include "util/virtual_clock.h"

namespace lqolab::serve {

/// One finished open-loop admission, reported by whichever worker executed
/// it. `served` carries every service-side field (Process + retries);
/// the dispatcher fills in the virtual placement — queue wait, completion
/// time, deadline verdict — before resolving `promise`.
struct OpenLoopCompletion {
  ServedQuery served;
  std::promise<ServedQuery> promise;
  util::VirtualNanos arrival_vt = 0;
  /// Absolute virtual deadline (arrival + budget); 0 = none.
  util::VirtualNanos deadline_vt = 0;
  /// Virtual service time (ServedQuery::latency_ns() at report time).
  util::VirtualNanos service_ns = 0;
};

/// Deterministic G/G/k placement of open-loop completions in virtual time.
///
/// Real worker threads race, so the order in which executions *finish* is
/// scheduling-dependent — but every quantity that matters is not: arrivals
/// are virtual timestamps fixed at admission, service times are
/// deterministic virtual latencies (deterministic replay + admission-order
/// salts), and queueing is FIFO in admission order. The dispatcher
/// therefore rebuilds the queueing timeline analytically: completions are
/// buffered until their admission sequence number is next, then placed on
/// a min-heap of k virtual worker free-times —
///
///   start      = max(arrival, earliest free worker)
///   completion = start + service
///
/// — which makes queue waits, completion times and deadline verdicts pure
/// functions of the admitted sequence, byte-identical for any real thread
/// count or interleaving (BENCH_overload.json's reproducibility gate).
/// Promises resolve at placement, i.e. strictly in admission order.
class VirtualDispatcher {
 public:
  /// `virtual_workers` is k, the service capacity the timeline models
  /// (usually the server's worker count, but fixable independently so
  /// recorded metrics don't depend on the machine's thread count).
  explicit VirtualDispatcher(int32_t virtual_workers);

  VirtualDispatcher(const VirtualDispatcher&) = delete;
  VirtualDispatcher& operator=(const VirtualDispatcher&) = delete;

  /// Reports completion of open-loop admission `seq` (dense, 0-based,
  /// assigned under the server's queue lock). Callable from any thread in
  /// any order; each seq must be reported exactly once. Resolves the
  /// promises of every contiguously-completed admission.
  void Complete(uint64_t seq, OpenLoopCompletion completion);

  int64_t finalized() const {
    return finalized_.load(std::memory_order_relaxed);
  }
  int64_t deadline_missed() const {
    return deadline_missed_.load(std::memory_order_relaxed);
  }
  /// Latest virtual completion placed so far (the timeline's high-water
  /// mark; 0 before any completion).
  util::VirtualNanos horizon() const {
    return horizon_.load(std::memory_order_relaxed);
  }

 private:
  /// Places `completion` on the virtual timeline and resolves its promise.
  /// Caller holds mu_.
  void PlaceLocked(OpenLoopCompletion* completion);

  std::mutex mu_;
  /// Min-heap (std::*_heap with std::greater) of virtual worker free times.
  std::vector<util::VirtualNanos> free_heap_;
  uint64_t next_seq_ = 0;
  /// Completions that arrived ahead of their turn, keyed by seq.
  std::map<uint64_t, OpenLoopCompletion> pending_;
  std::atomic<int64_t> finalized_{0};
  std::atomic<int64_t> deadline_missed_{0};
  std::atomic<util::VirtualNanos> horizon_{0};
};

}  // namespace lqolab::serve

#endif  // LQOLAB_SERVE_DISPATCHER_H_
