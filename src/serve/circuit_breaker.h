#ifndef LQOLAB_SERVE_CIRCUIT_BREAKER_H_
#define LQOLAB_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

namespace lqolab::serve {

/// Tuning of one CircuitBreaker. All thresholds are request counts, not
/// wall-clock durations: the serving stack runs on virtual time, and
/// count-based transitions keep chaos runs deterministic.
struct CircuitBreakerOptions {
  /// Consecutive failures in kClosed (or one failure in kHalfOpen) that
  /// trip the breaker open.
  int32_t failure_threshold = 3;
  /// Requests short-circuited while kOpen before the breaker half-opens
  /// (the count-based stand-in for an open-interval timer).
  int32_t open_requests = 32;
  /// Consecutive probe successes in kHalfOpen that close the breaker.
  int32_t probe_successes = 2;
  /// Half-open probe admission policy. 0 (classic) admits one probe at a
  /// time: a request is a probe iff no earlier probe is still unreported —
  /// which makes probe *selection* depend on outcome timing, i.e. on load
  /// (two configurations replaying the same request sequence pick
  /// different probes when service times differ). > 0 selects
  /// deterministically by request index instead: every probe_spacing-th
  /// half-open request is a probe, counted under the breaker lock,
  /// regardless of what earlier probes are doing. Same admitted-probe
  /// *sequence* in any schedule — the property BENCH_overload.json's
  /// reproducibility gate relies on.
  int32_t probe_spacing = 0;
};

/// Per-route circuit breaker guarding the LQO arm of a QueryServer: after a
/// streak of inference faults / plan timeouts the route trips and queries
/// short-circuit to the native pglite plan, shedding a misbehaving model
/// instead of paying its failure latency per query. After `open_requests`
/// short-circuits the breaker half-opens and lets probe queries through;
/// a probe streak closes it, one probe failure re-trips it.
///
///   kClosed --failure streak--> kOpen --count elapsed--> kHalfOpen
///      ^                                                    |
///      +---------------- probe streak ----------------------+
///
/// Thread-safe; one instance is shared by all worker threads.
class CircuitBreaker {
 public:
  enum class State : int32_t { kClosed = 0, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  /// Gate, called before routing a query to the guarded arm. Returns true
  /// to attempt the arm (closed, or a half-open probe), false to
  /// short-circuit to the fallback. Every AllowRequest()==true MUST be
  /// paired with exactly one RecordSuccess() or RecordFailure().
  bool AllowRequest();

  /// Reports the outcome of an allowed request.
  void RecordSuccess();
  void RecordFailure();

  /// Forces the breaker open immediately, outside the AllowRequest pairing
  /// protocol. For out-of-band evidence that the guarded arm is unhealthy —
  /// e.g. the cost-model drift detector (docs/cost_models.md) observing a
  /// rolling Q-error blowup across many already-reported requests. No-op
  /// when already open.
  void Trip();

  State state() const;
  /// Lifetime closed->open (or half-open->open) transitions.
  int64_t trips() const;
  /// Lifetime half-open->closed transitions.
  int64_t recoveries() const;
  /// Lifetime requests short-circuited while open.
  int64_t short_circuits() const;

  static const char* StateName(State state);

 private:
  void TripLocked();

  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  /// Consecutive failures while closed.
  int32_t failure_streak_ = 0;
  /// Requests short-circuited since the breaker opened.
  int32_t open_count_ = 0;
  /// Probes in flight (allowed but unreported) while half-open.
  int32_t probes_in_flight_ = 0;
  /// Requests seen while half-open (deterministic probe selection).
  int64_t half_open_requests_ = 0;
  /// Consecutive probe successes while half-open.
  int32_t probe_streak_ = 0;
  int64_t trips_ = 0;
  int64_t recoveries_ = 0;
  int64_t short_circuits_ = 0;
};

}  // namespace lqolab::serve

#endif  // LQOLAB_SERVE_CIRCUIT_BREAKER_H_
