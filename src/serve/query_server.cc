#include "serve/query_server.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "exec/cost_constants.h"
#include "exec/oracle.h"
#include "faultlib/faultlib.h"
#include "serve/dispatcher.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace lqolab::serve {

using engine::Database;
using query::Query;
using util::VirtualNanos;

namespace {

/// Salt bit distinguishing a fallback re-execution's replay stream from the
/// primary attempt's (both must be pure functions of the admission, not of
/// scheduling).
constexpr uint64_t kFallbackSaltBit = 1ull << 63;

/// Mixed into the era of a native plan cached on the kLqo fallback path, so
/// a fallback entry at model version v and an LQO entry at version v for the
/// same query/template occupy distinct cache slots.
constexpr uint64_t kNativeDomainSalt = 0x9a71fe0fba11bac6ULL;

/// Degrades a plan to the canonical pathological shape — every scan
/// sequential, every join a nested loop (the shape test_serve's
/// SlowPlanOptimizer produces). Models a "lqo.infer" poison fault: the
/// model answered, but with a corrupted prediction.
void DegradePlan(optimizer::PhysicalPlan* plan) {
  for (optimizer::PlanNode& node : plan->nodes) {
    if (node.type == optimizer::PlanNode::Type::kScan) {
      node.scan_type = optimizer::ScanType::kSeq;
      node.index_column = catalog::kInvalidColumn;
    } else {
      node.algo = optimizer::JoinAlgo::kNestLoop;
    }
  }
}

}  // namespace

const char* RouteModeName(RouteMode mode) {
  switch (mode) {
    case RouteMode::kPglite:
      return "pglite";
    case RouteMode::kLqo:
      return "lqo";
    case RouteMode::kShadow:
      return "shadow";
  }
  return "unknown";
}

QueryServer::QueryServer(Database* db, const ServerOptions& options)
    : parent_(db),
      options_(options),
      seed_(options.seed != 0 ? options.seed : db->seed()),
      cache_(options.cache),
      breaker_(options.breaker) {
  LQOLAB_CHECK(db != nullptr);
  LQOLAB_CHECK_GT(options_.queue_capacity, 0);
  planning_db_ = db->CloneContextForWorker();
  const int32_t workers = options_.workers > 0
                              ? options_.workers
                              : util::ThreadPool::DefaultParallelism();
  states_.reserve(static_cast<size_t>(workers));
  workers_.reserve(static_cast<size_t>(workers));
  const int32_t virtual_workers = options_.virtual_workers > 0
                                      ? options_.virtual_workers
                                      : workers;
  dispatcher_ = std::make_unique<VirtualDispatcher>(virtual_workers);
  admit_heap_.assign(static_cast<size_t>(virtual_workers), 0);
  for (int32_t w = 0; w < workers; ++w) {
    auto state = std::make_unique<WorkerState>();
    state->db = db->CloneContextForWorker();
    states_.push_back(std::move(state));
  }
  for (int32_t w = 0; w < workers; ++w) {
    workers_.emplace_back(&QueryServer::WorkerLoop, this,
                          states_[static_cast<size_t>(w)].get());
  }
}

QueryServer::~QueryServer() { Shutdown(); }

std::future<ServedQuery> QueryServer::Submit(Query q) {
  return Enqueue(std::move(q), /*template_fp=*/0);
}

std::future<ServedQuery> QueryServer::SubmitSql(const std::string& sql,
                                                const std::string& id) {
  engine::Database::PreparedSql prepared;
  const util::Status bound = parent_->PrepareSql(sql, &prepared, id);
  if (!bound.ok()) {
    // Malformed text is the client's failure, resolved at admission; no
    // ticket, no retry, no engine work.
    {
      std::lock_guard<std::mutex> lock(control_mu_);
      control_metrics_.Add(obs::Counter::kServeSqlRejected, 1);
    }
    ServedQuery served;
    served.query_id = id;
    served.ticket = -1;
    served.route = options_.route;
    served.status = bound;
    std::promise<ServedQuery> promise;
    promise.set_value(std::move(served));
    return promise.get_future();
  }
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    control_metrics_.Add(obs::Counter::kServeSqlQueries, 1);
  }
  return Enqueue(std::move(prepared.query), prepared.template_fingerprint);
}

std::future<ServedQuery> QueryServer::Enqueue(Query q, uint64_t template_fp) {
  std::future<ServedQuery> result;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    space_cv_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int32_t>(queue_.size()) < options_.queue_capacity;
    });
    if (stopping_) {
      // Racing with Shutdown: the query will never run. Resolve it as an
      // explicit kShutdown result instead of aborting the process.
      lock.unlock();
      return ShutdownFuture(q);
    }
    Ticket ticket;
    ticket.query = std::move(q);
    ticket.id = next_ticket_++;
    ticket.sql_template_fp = template_fp;
    ticket.occurrence = occurrences_[exec::QueryFingerprint(ticket.query)]++;
    result = ticket.promise.get_future();
    queue_.push_back(std::move(ticket));
  }
  queue_cv_.notify_one();
  return result;
}

bool QueryServer::TrySubmit(Query q, std::future<ServedQuery>* result) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Accepted and explicitly refused (not backpressure): hand back an
      // immediately-resolved kShutdown result.
      lock.unlock();
      *result = ShutdownFuture(q);
      return true;
    }
    if (static_cast<int32_t>(queue_.size()) >= options_.queue_capacity) {
      obs::Count(obs::Counter::kServeRejected);
      return false;
    }
    Ticket ticket;
    ticket.query = std::move(q);
    ticket.id = next_ticket_++;
    ticket.occurrence = occurrences_[exec::QueryFingerprint(ticket.query)]++;
    *result = ticket.promise.get_future();
    queue_.push_back(std::move(ticket));
  }
  queue_cv_.notify_one();
  return true;
}

std::future<ServedQuery> QueryServer::SubmitAt(Query q,
                                               const OpenLoopArrival& arrival) {
  // Pre-built refusal results resolve outside queue_mu_.
  ServedQuery refused;
  refused.query_id = q.id;
  refused.ticket = -1;
  refused.route = options_.route;
  refused.tenant = arrival.tenant;
  refused.arrival_vt = arrival.arrival_vt;
  refused.completion_vt = arrival.arrival_vt;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_) {
      lock.unlock();
      return ShutdownFuture(q);
    }
    if (static_cast<int32_t>(queue_.size()) >= options_.queue_capacity) {
      // Open-loop arrivals never block: a full queue is a refusal the SLO
      // accountant sees, not backpressure the arrival process absorbs.
      lock.unlock();
      {
        std::lock_guard<std::mutex> control(control_mu_);
        control_metrics_.Add(obs::Counter::kServeRejected, 1);
      }
      refused.rejected = true;
      refused.status = util::Status(util::StatusCode::kResourceExhausted,
                                    "admission queue full");
      std::promise<ServedQuery> promise;
      promise.set_value(std::move(refused));
      return promise.get_future();
    }
    if (options_.shed_on_predicted_miss && arrival.deadline_budget_ns > 0) {
      // Deadline-aware shedding: predict this arrival's completion on the
      // estimate heap (same G/G/k placement the dispatcher performs, on
      // caller estimates instead of completed truths) and refuse it when
      // it cannot make its deadline — better to fail one query instantly
      // than to let it queue, miss anyway, and drag every later query
      // further past its own budget.
      const VirtualNanos predicted_start =
          std::max(arrival.arrival_vt, admit_heap_.front());
      if (predicted_start + arrival.estimated_service_ns >
          arrival.arrival_vt + arrival.deadline_budget_ns) {
        lock.unlock();
        {
          std::lock_guard<std::mutex> control(control_mu_);
          control_metrics_.Add(obs::Counter::kServeShed, 1);
        }
        refused.shed = true;
        refused.status = util::Status(util::StatusCode::kUnavailable,
                                      "shed: predicted deadline miss");
        std::promise<ServedQuery> promise;
        promise.set_value(std::move(refused));
        return promise.get_future();
      }
    }
    // Admit: advance the estimate heap by this arrival's service estimate
    // (refused arrivals above consumed no capacity, so they left it alone).
    std::pop_heap(admit_heap_.begin(), admit_heap_.end(),
                  std::greater<VirtualNanos>());
    admit_heap_.back() = std::max(arrival.arrival_vt, admit_heap_.back()) +
                         arrival.estimated_service_ns;
    std::push_heap(admit_heap_.begin(), admit_heap_.end(),
                   std::greater<VirtualNanos>());

    Ticket ticket;
    ticket.query = std::move(q);
    ticket.id = next_ticket_++;
    ticket.occurrence = occurrences_[exec::QueryFingerprint(ticket.query)]++;
    ticket.open_loop = true;
    ticket.open_seq = next_open_seq_++;
    ticket.arrival_vt = arrival.arrival_vt;
    ticket.deadline_vt = arrival.deadline_budget_ns > 0
                             ? arrival.arrival_vt + arrival.deadline_budget_ns
                             : 0;
    ticket.tenant = arrival.tenant;
    std::future<ServedQuery> result = ticket.promise.get_future();
    queue_.push_back(std::move(ticket));
    lock.unlock();
    {
      std::lock_guard<std::mutex> control(control_mu_);
      control_metrics_.Add(obs::Counter::kServeOpenLoopQueries, 1);
    }
    queue_cv_.notify_one();
    return result;
  }
}

uint64_t QueryServer::PublishModel(
    std::shared_ptr<lqo::LearnedOptimizer> model) {
  return model_.Publish(std::move(model));
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

ServedQuery QueryServer::ShutdownResult(const Query& q, int64_t ticket_id) {
  ServedQuery served;
  served.query_id = q.id;
  served.ticket = ticket_id;
  served.route = options_.route;
  served.status = util::Status(util::StatusCode::kShutdown,
                               "server shut down before execution");
  {
    // Shutdown/Submit run on client threads with no MetricsScope; record
    // on the server's own control registry instead.
    std::lock_guard<std::mutex> lock(control_mu_);
    control_metrics_.Add(obs::Counter::kServeShutdownDropped, 1);
  }
  return served;
}

std::future<ServedQuery> QueryServer::ShutdownFuture(const Query& q) {
  std::promise<ServedQuery> promise;
  promise.set_value(ShutdownResult(q, /*ticket_id=*/-1));
  return promise.get_future();
}

void QueryServer::Shutdown() {
  std::vector<Ticket> dropped;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    stopping_ = true;
    queue_cv_.notify_all();
    space_cv_.notify_all();
    // Bounded drain: give the workers a window to absorb the backlog.
    idle_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.shutdown_drain_ms),
                      [&] { return queue_.empty() && in_flight_ == 0; });
    // Whatever is still queued will never run; claim it for explicit
    // kShutdown resolution below.
    while (!queue_.empty()) {
      dropped.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    // Cancel in-flight executions mid-plan; each worker's executor observes
    // the deadline at its next node boundary and returns kShutdown. The
    // deadline object lives on the worker's stack, but the pointer is only
    // registered while valid and we hold queue_mu_, so the Cancel is safe.
    for (auto& state : states_) {
      if (state->active_deadline != nullptr) {
        state->active_deadline->Cancel(util::StatusCode::kShutdown);
      }
    }
  }
  queue_cv_.notify_all();
  for (Ticket& ticket : dropped) {
    ServedQuery served = ShutdownResult(ticket.query, ticket.id);
    if (ticket.open_loop) {
      // Dropped open-loop admissions still report to the dispatcher (zero
      // service): sequence order must keep advancing or every in-flight
      // admission behind them would buffer forever.
      served.tenant = ticket.tenant;
      served.arrival_vt = ticket.arrival_vt;
      OpenLoopCompletion completion;
      completion.arrival_vt = ticket.arrival_vt;
      completion.deadline_vt = ticket.deadline_vt;
      completion.service_ns = 0;
      completion.served = std::move(served);
      completion.promise = std::move(ticket.promise);
      dispatcher_->Complete(ticket.open_seq, std::move(completion));
    } else {
      ticket.promise.set_value(std::move(served));
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

obs::MetricsRegistry QueryServer::SnapshotMetrics() const {
  obs::MetricsRegistry merged;
  for (const auto& state : states_) {
    std::lock_guard<std::mutex> lock(state->mu);
    merged.MergeFrom(state->metrics);
  }
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    merged.MergeFrom(control_metrics_);
  }
  if (dispatcher_ != nullptr) {
    merged.Add(obs::Counter::kServeDeadlineMissed,
               dispatcher_->deadline_missed());
  }
  return merged;
}

void QueryServer::WorkerLoop(WorkerState* state) {
  for (;;) {
    Ticket ticket;
    exec::QueryDeadline deadline;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      state->active_deadline = &deadline;  // Shutdown cancels through this.
    }
    space_cv_.notify_one();
    ServedQuery served;
    {
      // The state lock is uncontended in steady state (one worker, one
      // state); SnapshotMetrics takes it briefly for a consistent copy.
      std::lock_guard<std::mutex> lock(state->mu);
      obs::MetricsScope scope(&state->metrics);
      int32_t retries = 0;
      VirtualNanos backoff = 0;
      for (;;) {
        served = Process(state->db.get(), ticket, &deadline);
        // Retry only transient faults, and only within the bounded budget.
        // Timeouts, deadline expiry and cancellation are never retried:
        // that work already consumed its budget (or its caller is gone).
        if (!served.status.retryable() || retries >= options_.max_retries ||
            deadline.cancelled()) {
          break;
        }
        backoff += options_.retry_backoff_ns << retries;
        ++retries;
        obs::Count(obs::Counter::kServeRetries);
      }
      served.retries = retries;
      served.backoff_ns = backoff;
      obs::Count(obs::Counter::kServeQueries);
    }
    served.tenant = ticket.tenant;
    served.arrival_vt = ticket.arrival_vt;
    if (ticket.open_loop) {
      // Open-loop: the dispatcher computes the virtual placement (queue
      // wait, completion, deadline verdict) in admission order and resolves
      // the promise — possibly buffering behind a slower earlier admission.
      OpenLoopCompletion completion;
      completion.arrival_vt = ticket.arrival_vt;
      completion.deadline_vt = ticket.deadline_vt;
      completion.service_ns = served.latency_ns();
      completion.served = std::move(served);
      completion.promise = std::move(ticket.promise);
      dispatcher_->Complete(ticket.open_seq, std::move(completion));
    } else {
      ticket.promise.set_value(std::move(served));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      state->active_deadline = nullptr;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

QueryServer::Acquired QueryServer::NativePlan(Database* replica,
                                              const Query& q,
                                              uint64_t template_fp,
                                              uint64_t model_version) {
  // Era 0 — the pglite/shadow routes — keys the entry model-independently;
  // a nonzero era (kLqo fallback) ties it to the model snapshot whose
  // timeout produced it, so PublishModel invalidates fallback plans exactly
  // like the LQO plans they shadow.
  const uint64_t era =
      model_version == 0 ? 0
                         : util::MixSeed(model_version, kNativeDomainSalt);
  const uint64_t key =
      template_fp != 0
          ? PlanCacheKeyForTemplate(template_fp, replica->config(), era)
          : PlanCacheKey(q, replica->config(), era);
  if (std::shared_ptr<const CachedPlan> hit = cache_.Lookup(key)) {
    Acquired out;
    out.plan = std::move(hit);
    out.cache_hit = true;
    out.model_version = model_version;
    out.key = key;
    return out;
  }
  const Database::Planned planned = replica->PlanQuery(q);
  CachedPlan cached;
  cached.plan = planned.plan;
  cached.planning_ns = planned.planning_ns;
  cached.estimated_cost = planned.estimated_cost;
  auto snapshot = std::make_shared<const CachedPlan>(std::move(cached));
  cache_.Insert(key, snapshot);
  Acquired out;
  out.plan = std::move(snapshot);
  out.model_version = model_version;
  out.key = key;
  return out;
}

QueryServer::Acquired QueryServer::LqoPlan(const Query& q,
                                           uint64_t template_fp) {
  const HotSwapSlot<lqo::LearnedOptimizer>::Snapshot snapshot =
      model_.Acquire();
  if (snapshot.value == nullptr) return {};
  const uint64_t key =
      template_fp != 0
          ? PlanCacheKeyForTemplate(template_fp, parent_->config(),
                                    snapshot.version)
          : PlanCacheKey(q, parent_->config(), snapshot.version);
  if (std::shared_ptr<const CachedPlan> hit = cache_.Lookup(key)) {
    Acquired out;
    out.plan = std::move(hit);
    out.cache_hit = true;
    out.model_version = snapshot.version;
    out.key = key;
    return out;
  }
  // Model-serving fault site: inference errors, latency spikes, and
  // poisoned predictions (all on the cache-miss path — a cache hit never
  // touches the model).
  const faultlib::FaultAction fault = LQOLAB_FAULT_POINT("lqo.infer");
  if (fault.is_error()) {
    Acquired failed;
    failed.infer_fault = true;
    failed.model_version = snapshot.version;
    return failed;
  }
  lqo::Prediction prediction;
  {
    // One inference at a time: models mutate internal state while planning
    // and may re-plan through the planning replica's configuration.
    std::lock_guard<std::mutex> lock(inference_mu_);
    prediction = snapshot.value->Plan(q, planning_db_.get());
  }
  obs::Count(obs::Counter::kServeLqoPlanned);
  CachedPlan cached;
  cached.plan = std::move(prediction.plan);
  cached.inference_ns = prediction.inference_ns;
  // Forced plans skip join-order search in the engine; hint-based methods
  // (Bao) report their per-hint-set plannings instead — the same accounting
  // as benchkit::MeasureWorkload.
  cached.planning_ns =
      prediction.planning_ns > 0
          ? prediction.planning_ns
          : static_cast<VirtualNanos>(q.relation_count()) *
                exec::cost::kPlanPerRelationNs;
  auto shared = std::make_shared<const CachedPlan>(std::move(cached));
  cache_.Insert(key, shared);
  Acquired out;
  out.plan = std::move(shared);
  out.model_version = snapshot.version;
  out.key = key;
  if (fault.is_latency()) out.infer_latency_ns = fault.latency_ns;
  if (fault.is_poison()) {
    // Corrupted prediction: this acquisition executes a degraded copy. The
    // cache keeps the clean plan, so the poison stays confined to the hit
    // that drew it instead of persisting beyond its fault schedule.
    CachedPlan poisoned = *out.plan;
    DegradePlan(&poisoned.plan);
    out.plan = std::make_shared<const CachedPlan>(std::move(poisoned));
  }
  return out;
}

ServedQuery QueryServer::Process(Database* replica, const Ticket& ticket,
                                 const exec::QueryDeadline* deadline) {
  const Query& q = ticket.query;
  ServedQuery served;
  served.query_id = q.id;
  served.ticket = ticket.id;
  served.route = options_.route;

  // Worker-replica fault site: the whole attempt fails before any engine
  // work — exactly the transient failure WorkerLoop's bounded retry covers.
  const faultlib::FaultAction worker_fault =
      LQOLAB_FAULT_POINT("serve.worker");
  if (worker_fault.is_error()) {
    served.status = worker_fault.error("serve.worker");
    return served;
  }

  // The executed plan when adaptive replanning rewrote it mid-flight
  // (kept alive for the observer; ServedQuery::plan renders it).
  std::shared_ptr<const optimizer::PhysicalPlan> replanned;
  const auto execute = [&](const Acquired& src, VirtualNanos planning_ns,
                           VirtualNanos deadline_ns, uint64_t salt) {
    if (options_.deterministic_replay) {
      replica->BeginQueryReplay(seed_, q, salt);
    }
    // Pass-through to ExecutePlan unless DbConfig::adaptive_replan is on.
    // Pins fed back by an earlier replan of this cache entry seed the
    // estimator, so the corrected plan runs straight through.
    engine::QueryRun run = replica->ExecutePlanAdaptive(
        q, src.plan->plan, planning_ns, deadline_ns, deadline,
        src.plan->pins.get());
    served.replans = run.replans;
    served.replan_wasted_ns = run.replan_wasted_ns;
    replanned = run.replanned_plan;
    if (run.replans > 0) obs::Count(obs::Counter::kServeReplannedQueries);
    if (!ticket.open_loop && src.key != 0 && run.replans > 0 &&
        run.replanned_plan != nullptr && run.status.ok() && !run.timed_out) {
      // Plan feedback: write the corrected plan and its cardinality truths
      // back under the entry's key, so repeat arrivals skip the divergence
      // detection and replan planning this run just paid. Closed-loop
      // (warm-up) only — the open-loop phase is cache-read-only, keeping
      // its completion record independent of worker interleaving.
      CachedPlan corrected;
      corrected.plan = *run.replanned_plan;
      corrected.planning_ns = src.plan->planning_ns;
      corrected.inference_ns = src.plan->inference_ns;
      corrected.estimated_cost = src.plan->estimated_cost;
      corrected.pins = run.replan_pins;
      cache_.Insert(src.key,
                    std::make_shared<const CachedPlan>(std::move(corrected)));
      obs::Count(obs::Counter::kServePlanFeedback);
    }
    return run;
  };

  // The breaker gates the LQO arm only: after a failure/timeout streak the
  // route short-circuits straight to the native plan.
  Acquired lqo;
  bool lqo_allowed = true;
  if (options_.route == RouteMode::kLqo) {
    lqo_allowed = breaker_.AllowRequest();
    served.breaker_short_circuit = !lqo_allowed;
  }
  if (options_.route != RouteMode::kPglite && lqo_allowed) {
    lqo = LqoPlan(q, ticket.sql_template_fp);
    if (lqo.infer_fault) {
      served.infer_fault = true;
      obs::Count(obs::Counter::kServeInferFaults);
      // A dead model server is the arm's failure; the query itself is
      // served from the native plan below, no retry needed.
      if (options_.route == RouteMode::kLqo) breaker_.RecordFailure();
    }
  }

  // The plan whose execution produced the final answer; feeds the observer.
  std::shared_ptr<const CachedPlan> winning;
  if (options_.route == RouteMode::kLqo && lqo.plan != nullptr) {
    served.cache_hit = lqo.cache_hit;
    served.inference_ns =
        (lqo.cache_hit ? 0 : lqo.plan->inference_ns) + lqo.infer_latency_ns;
    served.planning_ns =
        lqo.cache_hit ? kPlanCacheHitNs : lqo.plan->planning_ns;
    engine::QueryRun run = execute(lqo, served.planning_ns,
                                   options_.lqo_deadline_ns,
                                   ticket.occurrence);
    served.plan = lqo.plan->plan.ToString(q);
    winning = lqo.plan;
    if (run.timed_out) {
      // The paper's timeout protocol: abandon the learned plan, re-execute
      // the query on the pglite plan, charge the wasted attempt. Blowing
      // the deadline is the model's failure — the breaker hears about it.
      breaker_.RecordFailure();
      served.fell_back = true;
      served.wasted_ns = run.execution_ns;
      obs::Count(obs::Counter::kServeFallbacks);
      // The fallback plan is cached under the era of the snapshot that
      // timed out (not era 0): a published replacement model must not hit
      // the previous era's fallback entries.
      const Acquired native = NativePlan(replica, q, ticket.sql_template_fp,
                                         lqo.model_version);
      const VirtualNanos replan_ns =
          native.cache_hit ? kPlanCacheHitNs : native.plan->planning_ns;
      served.planning_ns += replan_ns;
      run = execute(native, replan_ns, /*deadline=*/0,
                    ticket.occurrence | kFallbackSaltBit);
      served.plan = native.plan->plan.ToString(q);
      winning = native.plan;
    } else {
      // Success, or a storage/cancellation failure that is not the model's
      // doing (a transient exec fault retries the whole attempt instead).
      breaker_.RecordSuccess();
    }
    served.execution_ns = run.execution_ns;
    served.timed_out = run.timed_out;
    served.result_rows = run.result_rows;
    served.status = run.status;
  } else {
    // Native execution: the pglite route, the shadow route, the lqo route
    // before any model is published, and every degraded lqo path (breaker
    // open, inference fault).
    if (options_.route == RouteMode::kLqo && lqo_allowed && !lqo.infer_fault) {
      // Allowed through the breaker but no model is published: a healthy
      // no-op for the arm (keeps AllowRequest/Record* exactly paired).
      breaker_.RecordSuccess();
    }
    const Acquired native =
        NativePlan(replica, q, ticket.sql_template_fp, /*model_version=*/0);
    served.cache_hit = native.cache_hit;
    served.planning_ns =
        native.cache_hit ? kPlanCacheHitNs : native.plan->planning_ns;
    if (options_.route == RouteMode::kShadow && lqo.plan != nullptr) {
      served.shadow_plan = lqo.plan->plan.ToString(q);
      served.inference_ns =
          (lqo.cache_hit ? 0 : lqo.plan->inference_ns) + lqo.infer_latency_ns;
    }
    const engine::QueryRun run = execute(native, served.planning_ns,
                                         /*deadline=*/0, ticket.occurrence);
    served.plan = native.plan->plan.ToString(q);
    winning = native.plan;
    served.execution_ns = run.execution_ns;
    served.timed_out = run.timed_out;
    served.result_rows = run.result_rows;
    served.status = run.status;
  }

  if (replanned != nullptr) {
    // Adaptive replanning rewrote the plan mid-flight: report (and feed the
    // observer) what actually executed, not the admission-time plan.
    served.plan = replanned->ToString(q);
  }
  if (options_.observer != nullptr && winning != nullptr &&
      served.status.ok() && !served.timed_out) {
    options_.observer->OnPlanExecuted(
        q, replanned != nullptr ? *replanned : winning->plan,
        served.execution_ns, static_cast<uint64_t>(ticket.id));
  }

  return served;
}

}  // namespace lqolab::serve
