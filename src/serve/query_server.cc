#include "serve/query_server.h"

#include <utility>

#include "exec/cost_constants.h"
#include "exec/oracle.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace lqolab::serve {

using engine::Database;
using query::Query;
using util::VirtualNanos;

namespace {

/// Salt bit distinguishing a fallback re-execution's replay stream from the
/// primary attempt's (both must be pure functions of the admission, not of
/// scheduling).
constexpr uint64_t kFallbackSaltBit = 1ull << 63;

}  // namespace

const char* RouteModeName(RouteMode mode) {
  switch (mode) {
    case RouteMode::kPglite:
      return "pglite";
    case RouteMode::kLqo:
      return "lqo";
    case RouteMode::kShadow:
      return "shadow";
  }
  return "unknown";
}

QueryServer::QueryServer(Database* db, const ServerOptions& options)
    : parent_(db),
      options_(options),
      seed_(options.seed != 0 ? options.seed : db->seed()),
      cache_(options.cache) {
  LQOLAB_CHECK(db != nullptr);
  LQOLAB_CHECK_GT(options_.queue_capacity, 0);
  planning_db_ = db->CloneContextForWorker();
  const int32_t workers = options_.workers > 0
                              ? options_.workers
                              : util::ThreadPool::DefaultParallelism();
  states_.reserve(static_cast<size_t>(workers));
  workers_.reserve(static_cast<size_t>(workers));
  for (int32_t w = 0; w < workers; ++w) {
    auto state = std::make_unique<WorkerState>();
    state->db = db->CloneContextForWorker();
    states_.push_back(std::move(state));
  }
  for (int32_t w = 0; w < workers; ++w) {
    workers_.emplace_back(&QueryServer::WorkerLoop, this,
                          states_[static_cast<size_t>(w)].get());
  }
}

QueryServer::~QueryServer() { Shutdown(); }

std::future<ServedQuery> QueryServer::Submit(Query q) {
  std::future<ServedQuery> result;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    LQOLAB_CHECK(!stopping_);
    space_cv_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int32_t>(queue_.size()) < options_.queue_capacity;
    });
    LQOLAB_CHECK(!stopping_);
    Ticket ticket;
    ticket.query = std::move(q);
    ticket.id = next_ticket_++;
    ticket.occurrence = occurrences_[exec::QueryFingerprint(ticket.query)]++;
    result = ticket.promise.get_future();
    queue_.push_back(std::move(ticket));
  }
  queue_cv_.notify_one();
  return result;
}

bool QueryServer::TrySubmit(Query q, std::future<ServedQuery>* result) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    LQOLAB_CHECK(!stopping_);
    if (static_cast<int32_t>(queue_.size()) >= options_.queue_capacity) {
      obs::Count(obs::Counter::kServeRejected);
      return false;
    }
    Ticket ticket;
    ticket.query = std::move(q);
    ticket.id = next_ticket_++;
    ticket.occurrence = occurrences_[exec::QueryFingerprint(ticket.query)]++;
    *result = ticket.promise.get_future();
    queue_.push_back(std::move(ticket));
  }
  queue_cv_.notify_one();
  return true;
}

uint64_t QueryServer::PublishModel(
    std::shared_ptr<lqo::LearnedOptimizer> model) {
  return model_.Publish(std::move(model));
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

obs::MetricsRegistry QueryServer::SnapshotMetrics() const {
  obs::MetricsRegistry merged;
  for (const auto& state : states_) {
    std::lock_guard<std::mutex> lock(state->mu);
    merged.MergeFrom(state->metrics);
  }
  return merged;
}

void QueryServer::WorkerLoop(WorkerState* state) {
  for (;;) {
    Ticket ticket;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    space_cv_.notify_one();
    ServedQuery served;
    {
      // The state lock is uncontended in steady state (one worker, one
      // state); SnapshotMetrics takes it briefly for a consistent copy.
      std::lock_guard<std::mutex> lock(state->mu);
      obs::MetricsScope scope(&state->metrics);
      served = Process(state->db.get(), ticket);
    }
    ticket.promise.set_value(std::move(served));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

QueryServer::Acquired QueryServer::NativePlan(Database* replica,
                                              const Query& q) {
  const uint64_t key = PlanCacheKey(q, replica->config(), /*model_version=*/0);
  if (std::shared_ptr<const CachedPlan> hit = cache_.Lookup(key)) {
    return {std::move(hit), true};
  }
  const Database::Planned planned = replica->PlanQuery(q);
  CachedPlan cached;
  cached.plan = planned.plan;
  cached.planning_ns = planned.planning_ns;
  cached.estimated_cost = planned.estimated_cost;
  auto snapshot = std::make_shared<const CachedPlan>(std::move(cached));
  cache_.Insert(key, snapshot);
  return {std::move(snapshot), false};
}

QueryServer::Acquired QueryServer::LqoPlan(const Query& q) {
  const HotSwapSlot<lqo::LearnedOptimizer>::Snapshot snapshot =
      model_.Acquire();
  if (snapshot.value == nullptr) return {};
  const uint64_t key = PlanCacheKey(q, parent_->config(), snapshot.version);
  if (std::shared_ptr<const CachedPlan> hit = cache_.Lookup(key)) {
    return {std::move(hit), true};
  }
  lqo::Prediction prediction;
  {
    // One inference at a time: models mutate internal state while planning
    // and may re-plan through the planning replica's configuration.
    std::lock_guard<std::mutex> lock(inference_mu_);
    prediction = snapshot.value->Plan(q, planning_db_.get());
  }
  obs::Count(obs::Counter::kServeLqoPlanned);
  CachedPlan cached;
  cached.plan = std::move(prediction.plan);
  cached.inference_ns = prediction.inference_ns;
  // Forced plans skip join-order search in the engine; hint-based methods
  // (Bao) report their per-hint-set plannings instead — the same accounting
  // as benchkit::MeasureWorkload.
  cached.planning_ns =
      prediction.planning_ns > 0
          ? prediction.planning_ns
          : static_cast<VirtualNanos>(q.relation_count()) *
                exec::cost::kPlanPerRelationNs;
  auto shared = std::make_shared<const CachedPlan>(std::move(cached));
  cache_.Insert(key, shared);
  return {std::move(shared), false};
}

ServedQuery QueryServer::Process(Database* replica, const Ticket& ticket) {
  const Query& q = ticket.query;
  ServedQuery served;
  served.query_id = q.id;
  served.ticket = ticket.id;
  served.route = options_.route;

  const auto execute = [&](const optimizer::PhysicalPlan& plan,
                           VirtualNanos planning_ns, VirtualNanos deadline,
                           uint64_t salt) {
    if (options_.deterministic_replay) {
      replica->BeginQueryReplay(seed_, q, salt);
    }
    return replica->ExecutePlan(q, plan, planning_ns, deadline);
  };

  Acquired lqo;
  if (options_.route != RouteMode::kPglite) lqo = LqoPlan(q);

  if (options_.route == RouteMode::kLqo && lqo.plan != nullptr) {
    served.cache_hit = lqo.cache_hit;
    served.inference_ns = lqo.cache_hit ? 0 : lqo.plan->inference_ns;
    served.planning_ns =
        lqo.cache_hit ? kPlanCacheHitNs : lqo.plan->planning_ns;
    engine::QueryRun run = execute(lqo.plan->plan, served.planning_ns,
                                   options_.lqo_deadline_ns,
                                   ticket.occurrence);
    served.plan = lqo.plan->plan.ToString(q);
    if (run.timed_out) {
      // The paper's timeout protocol: abandon the learned plan, re-execute
      // the query on the pglite plan, charge the wasted attempt.
      served.fell_back = true;
      served.wasted_ns = run.execution_ns;
      obs::Count(obs::Counter::kServeFallbacks);
      const Acquired native = NativePlan(replica, q);
      const VirtualNanos replan_ns =
          native.cache_hit ? kPlanCacheHitNs : native.plan->planning_ns;
      served.planning_ns += replan_ns;
      run = execute(native.plan->plan, replan_ns, /*deadline=*/0,
                    ticket.occurrence | kFallbackSaltBit);
      served.plan = native.plan->plan.ToString(q);
    }
    served.execution_ns = run.execution_ns;
    served.timed_out = run.timed_out;
    served.result_rows = run.result_rows;
  } else {
    // Native execution: the pglite route, the shadow route, and the lqo
    // route before any model is published.
    const Acquired native = NativePlan(replica, q);
    served.cache_hit = native.cache_hit;
    served.planning_ns =
        native.cache_hit ? kPlanCacheHitNs : native.plan->planning_ns;
    if (options_.route == RouteMode::kShadow && lqo.plan != nullptr) {
      served.shadow_plan = lqo.plan->plan.ToString(q);
      served.inference_ns = lqo.cache_hit ? 0 : lqo.plan->inference_ns;
    }
    const engine::QueryRun run = execute(native.plan->plan,
                                         served.planning_ns, /*deadline=*/0,
                                         ticket.occurrence);
    served.plan = native.plan->plan.ToString(q);
    served.execution_ns = run.execution_ns;
    served.timed_out = run.timed_out;
    served.result_rows = run.result_rows;
  }

  obs::Count(obs::Counter::kServeQueries);
  return served;
}

}  // namespace lqolab::serve
