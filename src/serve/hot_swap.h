#ifndef LQOLAB_SERVE_HOT_SWAP_H_
#define LQOLAB_SERVE_HOT_SWAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

// The lock-free path needs std::atomic<std::shared_ptr>. Under
// ThreadSanitizer we use the mutex slot instead: libstdc++ 12's _Sp_atomic
// releases its internal pointer-word spinlock with relaxed ordering on the
// load path, which TSAN reports as a race between Publish and Acquire —
// inside the library, not in this protocol. The mutex slot has identical
// semantics and TSAN models it exactly.
#if !defined(__cpp_lib_atomic_shared_ptr) || defined(__SANITIZE_THREAD__)
#define LQOLAB_SERVE_HOT_SWAP_LOCKED 1
#endif
#if !defined(LQOLAB_SERVE_HOT_SWAP_LOCKED) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LQOLAB_SERVE_HOT_SWAP_LOCKED 1
#endif
#endif

namespace lqolab::serve {

/// Lock-free publication slot for a shared model (hot swap). A trainer
/// thread publishes fully built, immutable-from-the-reader's-view snapshots
/// with Publish(); serving threads read the current snapshot with
/// Acquire(). Both sides touch a single atomic shared_ptr, so:
///  - readers never block a publish and a publish never blocks readers
///    (no mutex on the hot path);
///  - a reader sees either the old snapshot or the new one, never a torn
///    mix — the pointer and its version travel together inside one
///    heap-allocated Versioned block;
///  - the old model stays alive until the last in-flight query holding its
///    shared_ptr finishes, then frees (safe memory reclamation for free).
///
/// The slot does NOT make the payload's methods thread-safe. Callers whose
/// payload mutates on use (e.g. lqo::LearnedOptimizer::Plan) must add their
/// own serialization around the call — see serve::QueryServer, which keeps
/// one inference mutex per server, mirroring the single model-server
/// process of the original Bao/Neo deployments.
template <typename T>
class HotSwapSlot {
 public:
  struct Snapshot {
    std::shared_ptr<T> value;
    /// Publication sequence number, starting at 1; 0 means "nothing
    /// published yet" (value is null).
    uint64_t version = 0;
  };

  HotSwapSlot() = default;
  HotSwapSlot(const HotSwapSlot&) = delete;
  HotSwapSlot& operator=(const HotSwapSlot&) = delete;

  /// Returns the current snapshot ({nullptr, 0} before the first Publish).
  Snapshot Acquire() const {
#if defined(LQOLAB_SERVE_HOT_SWAP_LOCKED)
    std::shared_ptr<const Versioned> current;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current = cell_;
    }
#else
    const std::shared_ptr<const Versioned> current =
        cell_.load(std::memory_order_acquire);
#endif
    if (current == nullptr) return Snapshot{};
    return Snapshot{current->value, current->version};
  }

  /// Atomically replaces the published value; returns the new version.
  /// Counts obs::Counter::kServeModelSwaps on the calling thread.
  uint64_t Publish(std::shared_ptr<T> value) {
    auto next = std::make_shared<const Versioned>(
        Versioned{std::move(value), versions_.fetch_add(1) + 1});
    const uint64_t version = next->version;
#if defined(LQOLAB_SERVE_HOT_SWAP_LOCKED)
    {
      std::lock_guard<std::mutex> lock(mu_);
      cell_ = std::move(next);
    }
#else
    cell_.store(std::move(next), std::memory_order_release);
#endif
    obs::Count(obs::Counter::kServeModelSwaps);
    return version;
  }

  /// Version of the current snapshot (0 before the first Publish).
  uint64_t version() const { return Acquire().version; }

 private:
  struct Versioned {
    std::shared_ptr<T> value;
    uint64_t version;
  };

#if defined(LQOLAB_SERVE_HOT_SWAP_LOCKED)
  mutable std::mutex mu_;
  std::shared_ptr<const Versioned> cell_;  // guarded by mu_
#else
  std::atomic<std::shared_ptr<const Versioned>> cell_;
#endif
  std::atomic<uint64_t> versions_{0};
};

}  // namespace lqolab::serve

#endif  // LQOLAB_SERVE_HOT_SWAP_H_
