#ifndef LQOLAB_SERVE_QUERY_SERVER_H_
#define LQOLAB_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "exec/deadline.h"
#include "lqo/interface.h"
#include "obs/metrics.h"
#include "query/query.h"
#include "serve/circuit_breaker.h"
#include "serve/hot_swap.h"
#include "serve/plan_cache.h"
#include "util/status.h"
#include "util/virtual_clock.h"

namespace lqolab::serve {

class VirtualDispatcher;

/// How the server turns an admitted query into an executable plan.
enum class RouteMode {
  kPglite,  ///< Native planner only (the paper's baseline that wins Fig. 5).
  kLqo,     ///< Published model plans; timeout falls back to the pglite plan.
  kShadow,  ///< Model plans (recorded), but the pglite plan executes.
};

const char* RouteModeName(RouteMode mode);

/// Callback invoked by a worker after it successfully executes a plan
/// (status OK, not timed out): the hook the online cost-model refresh loop
/// (costmodel::OnlineRefresher) uses to harvest per-plan actuals without the
/// server knowing anything about cost models. Called on the worker thread,
/// inside its MetricsScope, holding no server locks except the worker's own
/// state mutex — implementations must not call back into the server's
/// submission API, but PublishModel/TripLqoBreaker are safe.
class ServedPlanObserver {
 public:
  virtual ~ServedPlanObserver() = default;
  /// `sequence` is the admission ticket id: unique, and assigned in
  /// admission order regardless of which worker executes the query.
  virtual void OnPlanExecuted(const query::Query& q,
                              const optimizer::PhysicalPlan& plan,
                              util::VirtualNanos execution_ns,
                              uint64_t sequence) = 0;
};

struct ServerOptions {
  /// Worker threads, each owning a Database::CloneContextForWorker replica;
  /// 0 means util::ThreadPool::DefaultParallelism().
  int32_t workers = 0;
  /// Bounded admission queue: Submit blocks when full (backpressure),
  /// TrySubmit rejects.
  int32_t queue_capacity = 128;
  RouteMode route = RouteMode::kPglite;
  /// Plan-cache geometry; capacity_per_shard 0 disables caching.
  PlanCacheOptions cache;
  /// Deadline for executing an LQO-routed plan (the paper's timeout
  /// protocol); on expiry the query re-executes on the pglite plan and the
  /// fallback is recorded. 0 uses the configured statement timeout.
  util::VirtualNanos lqo_deadline_ns = 0;
  /// When true (default), every execution starts from the canonical replay
  /// state (Database::BeginQueryReplay with a salt fixed at admission), so
  /// per-query results are identical for any worker count. When false,
  /// executions share each replica's warm cache state — higher fidelity to
  /// a long-running server, but results become scheduling-dependent.
  bool deterministic_replay = true;
  /// Replay seed; 0 adopts the parent database's generation seed.
  uint64_t seed = 0;
  /// Bounded retry of transient worker faults: a query whose attempt ends
  /// with a retryable status (kUnavailable / kResourceExhausted) re-runs up
  /// to this many extra times. Deadline expiry, timeouts and cancellation
  /// are never retried — that work already consumed its budget. All queries
  /// here are read-only, hence idempotent; a mutating route must not opt in.
  int32_t max_retries = 2;
  /// Virtual backoff before retry k (1-based): retry_backoff_ns << (k-1).
  /// Charged to the client-visible latency (ServedQuery::backoff_ns).
  util::VirtualNanos retry_backoff_ns = 100'000;
  /// Bounded wall-clock drain at Shutdown: queued queries still unclaimed
  /// after this many milliseconds resolve as explicit kShutdown results
  /// instead of executing.
  int32_t shutdown_drain_ms = 2'000;
  /// Circuit breaker guarding the LQO route (consulted in kLqo mode only).
  CircuitBreakerOptions breaker;
  /// Optional hook observing every successful execution (see
  /// ServedPlanObserver). Must outlive the server; nullptr disables.
  ServedPlanObserver* observer = nullptr;

  // --- Open-loop admission (SubmitAt; docs/overload.md) ------------------
  /// Virtual service capacity k the open-loop dispatcher and the shedding
  /// predictor model; 0 adopts the real worker count. Fixing it decouples
  /// recorded virtual metrics (queue waits, deadline misses) from the
  /// machine's thread count.
  int32_t virtual_workers = 0;
  /// Deadline-aware load shedding: refuse an open-loop admission when its
  /// predicted virtual start (earliest estimated-free worker) plus its
  /// estimated service time lands past arrival + deadline budget. A shed
  /// query resolves immediately (kUnavailable, ServedQuery::shed) and
  /// consumes no capacity — the overload-control policy that keeps goodput
  /// from collapsing past saturation.
  bool shed_on_predicted_miss = false;
};

/// Admission metadata of one open-loop arrival (QueryServer::SubmitAt).
struct OpenLoopArrival {
  /// Virtual arrival timestamp; deadlines are stamped here, at arrival,
  /// so queue wait counts against the SLO.
  util::VirtualNanos arrival_vt = 0;
  /// Deadline budget from arrival; 0 = no deadline.
  util::VirtualNanos deadline_budget_ns = 0;
  /// Caller-estimated virtual service time, the shedding predictor's
  /// input (e.g. measured in a warm-up pass; see loadgen::OpenLoopRunner).
  util::VirtualNanos estimated_service_ns = 0;
  /// Tenant index for per-tenant SLO accounting (free-form, >= 0).
  int32_t tenant = 0;
};

/// Outcome of one served query, delivered through the Submit future.
struct ServedQuery {
  std::string query_id;
  int64_t ticket = 0;
  RouteMode route = RouteMode::kPglite;
  /// Final outcome: OK on success, kShutdown when the server stopped before
  /// (or while) running the query, kDeadlineExceeded when `timed_out`, or
  /// the fault code when every retry was exhausted.
  util::Status status;
  /// Transient-fault retries performed (0 on the common path).
  int32_t retries = 0;
  /// Virtual backoff charged by those retries; part of latency_ns().
  util::VirtualNanos backoff_ns = 0;
  /// The circuit breaker short-circuited the LQO route to pglite.
  bool breaker_short_circuit = false;
  /// Model inference failed (injected fault); served from the native plan.
  bool infer_fault = false;
  bool cache_hit = false;
  /// LQO plan hit its deadline; the pglite plan produced the answer.
  bool fell_back = false;
  /// The final answer itself timed out (statement timeout on the winning
  /// plan); result_rows is 0.
  bool timed_out = false;
  int64_t result_rows = 0;
  util::VirtualNanos inference_ns = 0;
  util::VirtualNanos planning_ns = 0;
  /// Execution time of the winning plan.
  util::VirtualNanos execution_ns = 0;
  /// Virtual time burned on a timed-out LQO attempt before falling back
  /// (equals the deadline when fell_back).
  util::VirtualNanos wasted_ns = 0;
  /// One-line rendering of the executed plan.
  std::string plan;
  /// In shadow mode: the plan the model proposed (not executed).
  std::string shadow_plan;

  // --- Adaptive re-optimization (DbConfig::adaptive_replan) --------------
  /// Mid-query cancel-and-replan rounds the winning execution took; its
  /// wasted prefix time is inside execution_ns (QueryRun::replans).
  int32_t replans = 0;
  util::VirtualNanos replan_wasted_ns = 0;

  // --- Open-loop admission (SubmitAt) ------------------------------------
  int32_t tenant = 0;
  util::VirtualNanos arrival_vt = 0;
  /// Virtual time spent queued before service started (dispatcher-placed;
  /// 0 on the closed-loop Submit path).
  util::VirtualNanos queue_wait_ns = 0;
  /// Virtual completion timestamp: arrival + queue wait + service.
  util::VirtualNanos completion_vt = 0;
  /// Completion landed past the deadline stamped at arrival.
  bool deadline_missed = false;
  /// Refused at admission: predicted queue wait exceeded the remaining
  /// deadline budget (status kUnavailable).
  bool shed = false;
  /// Refused at admission: queue full (status kResourceExhausted; the
  /// open-loop analogue of TrySubmit's false return).
  bool rejected = false;

  /// Client-visible latency in virtual time.
  util::VirtualNanos latency_ns() const {
    return inference_ns + planning_ns + wasted_ns + backoff_ns + execution_ns;
  }

  /// Open-loop client-visible latency: queue wait + service.
  util::VirtualNanos total_latency_ns() const {
    return queue_wait_ns + latency_ns();
  }
};

/// A long-lived, concurrent query-serving front end over one database: a
/// bounded admission queue fans queries out to a pool of worker threads,
/// each executing on an isolated engine replica
/// (Database::CloneContextForWorker). Plans come from a sharded LRU plan
/// cache backed by the pluggable router (pglite / published LQO / shadow);
/// LQO-routed plans run under a per-query deadline with the paper's
/// timeout-fallback protocol. Models are published through a lock-free
/// HotSwapSlot, so training can continue while the server drains traffic.
/// Full architecture notes: docs/serving.md.
class QueryServer {
 public:
  /// Spawns the worker pool. `db` must outlive the server; the server never
  /// executes on it (replicas only), but LQO inference plans through a
  /// dedicated replica as well, so `db` stays untouched throughout.
  QueryServer(engine::Database* db, const ServerOptions& options);

  /// Shuts down: drains the queue, joins the workers.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits a query, blocking while the queue is full (backpressure). The
  /// future resolves when a worker finishes the query. Racing with
  /// Shutdown() is safe: once the server is stopping, the returned future
  /// resolves immediately with status kShutdown.
  std::future<ServedQuery> Submit(query::Query q);

  /// Admits raw SQL text. The statement is parsed and bound at admission on
  /// the calling thread (engine::Database::PrepareSql against the parent's
  /// schema); malformed text resolves immediately with the binder's
  /// kInvalidArgument diagnostic and counts kServeSqlRejected — nothing is
  /// enqueued. Well-formed text enqueues like Submit (blocking on a full
  /// queue), except the plan cache is keyed on the statement's normalized
  /// template (PlanCacheKeyForTemplate): resubmitting the same template
  /// with different literals hits the cached plan. `id` names the query in
  /// results/metrics the way workload files do ("c7b").
  std::future<ServedQuery> SubmitSql(const std::string& sql,
                                     const std::string& id = "adhoc");

  /// Open-loop admission: never blocks the arrival process. Where Submit
  /// models a closed-loop client (backpressure pauses the workload), an
  /// open-loop arrival happens at a virtual timestamp whether or not the
  /// server has capacity — so a full queue *rejects* (kResourceExhausted,
  /// ServedQuery::rejected) instead of blocking, and with
  /// ServerOptions::shed_on_predicted_miss a doomed admission is *shed*
  /// (kUnavailable, ServedQuery::shed) before consuming capacity. Deadlines
  /// are stamped at arrival: queue wait counts against the budget. Virtual
  /// placement (queue wait, completion time, deadline verdict) comes from
  /// the deterministic VirtualDispatcher (serve/dispatcher.h), so results
  /// are byte-identical for any worker count. The future resolves in
  /// admission order.
  std::future<ServedQuery> SubmitAt(query::Query q,
                                    const OpenLoopArrival& arrival);

  /// Non-blocking admission: returns false (and counts
  /// obs::Counter::kServeRejected on the calling thread) when the queue is
  /// full. During shutdown, returns true with an immediately-resolved
  /// kShutdown future (the query was accepted and explicitly refused, not
  /// backpressured).
  bool TrySubmit(query::Query q, std::future<ServedQuery>* result);

  /// Publishes a trained model to the router (atomic hot swap; never blocks
  /// serving). In-flight queries finish on the snapshot they acquired; the
  /// version change invalidates every LQO-routed plan-cache entry. Returns
  /// the new model version.
  uint64_t PublishModel(std::shared_ptr<lqo::LearnedOptimizer> model);

  /// Blocks until the queue is empty and no query is in flight.
  void Drain();

  /// Stops admissions, drains the queue for at most
  /// ServerOptions::shutdown_drain_ms, resolves any still-queued query with
  /// status kShutdown, cancels in-flight executions mid-plan through their
  /// QueryDeadline, and joins the worker pool. Every future ever handed out
  /// is guaranteed to resolve. Idempotent; called by the destructor.
  void Shutdown();

  /// Merged engine/serve counters of all workers (callable while serving;
  /// the snapshot is consistent per worker, workers are merged in index
  /// order).
  obs::MetricsRegistry SnapshotMetrics() const;

  int32_t workers() const { return static_cast<int32_t>(workers_.size()); }
  const PlanCache& plan_cache() const { return cache_; }
  /// The breaker guarding the LQO route (observable for tests/benches).
  const CircuitBreaker& breaker() const { return breaker_; }
  /// Force-opens the LQO breaker (CircuitBreaker::Trip): the escape hatch
  /// for out-of-band health signals such as cost-model drift alarms.
  void TripLqoBreaker() { breaker_.Trip(); }
  uint64_t model_version() const { return model_.version(); }
  uint64_t seed() const { return seed_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Ticket {
    query::Query query;
    int64_t id = 0;
    /// Normalized-template fingerprint of a SubmitSql admission; 0 on the
    /// struct route (plan cache keys per query instead).
    uint64_t sql_template_fp = 0;
    /// 0-based occurrence of this query fingerprint among admissions;
    /// fixes the replay salt at admission so executions are independent of
    /// which worker runs them, in which order.
    uint64_t occurrence = 0;
    /// Open-loop (SubmitAt) admissions route their completion through the
    /// VirtualDispatcher under `open_seq` instead of resolving directly.
    bool open_loop = false;
    uint64_t open_seq = 0;
    util::VirtualNanos arrival_vt = 0;
    /// Absolute virtual deadline (arrival + budget); 0 = none.
    util::VirtualNanos deadline_vt = 0;
    int32_t tenant = 0;
    std::promise<ServedQuery> promise;
  };

  struct WorkerState {
    /// Held for the duration of each ticket (uncontended) and briefly by
    /// SnapshotMetrics.
    mutable std::mutex mu;
    std::unique_ptr<engine::Database> db;
    obs::MetricsRegistry metrics;
    /// Cancellation token of the ticket this worker is executing, or null
    /// when idle. Guarded by queue_mu_; Shutdown cancels through it.
    exec::QueryDeadline* active_deadline = nullptr;
  };

  /// A plan pulled from the cache (`cache_hit`) or produced cold.
  struct Acquired {
    std::shared_ptr<const CachedPlan> plan;
    bool cache_hit = false;
    /// Inference failed with an injected fault (plan is null).
    bool infer_fault = false;
    /// Injected inference latency spike for this acquisition (not cached).
    util::VirtualNanos infer_latency_ns = 0;
    /// Model version of the snapshot that produced (or would have produced)
    /// this plan; the era any same-query fallback plan must be keyed under.
    uint64_t model_version = 0;
    /// Plan-cache key this acquisition resolved through (0 when the plan
    /// never touched the cache); the slot plan feedback writes back to.
    uint64_t key = 0;
  };

  void WorkerLoop(WorkerState* state);
  ServedQuery Process(engine::Database* replica, const Ticket& ticket,
                      const exec::QueryDeadline* deadline);

  /// An immediately-resolved kShutdown result for a query refused at
  /// admission; counts kServeShutdownDropped on the control registry.
  std::future<ServedQuery> ShutdownFuture(const query::Query& q);
  /// Builds the kShutdown result for a refused/dropped ticket.
  ServedQuery ShutdownResult(const query::Query& q, int64_t ticket_id);

  /// Shared admission tail of Submit/SubmitSql: builds the ticket (with the
  /// SQL route's template fingerprint, 0 on the struct route), blocks on a
  /// full queue, and resolves kShutdown when racing with Shutdown.
  std::future<ServedQuery> Enqueue(query::Query q, uint64_t template_fp);

  /// Returns the native plan for `q`, through the cache (planning on the
  /// worker's own replica on a miss — identical plan on every worker).
  /// `template_fp` != 0 keys the lookup on the normalized SQL template.
  /// `model_version` is the era the entry is keyed under: 0 on the pglite
  /// and shadow routes (native plans never change with the model there),
  /// the acquiring snapshot's version on the kLqo fallback path — a model
  /// swap must invalidate fallback entries exactly like LQO entries.
  Acquired NativePlan(engine::Database* replica, const query::Query& q,
                      uint64_t template_fp, uint64_t model_version);
  /// Returns the published model's plan for `q` (inference serialized on
  /// the dedicated planning replica), through the cache; `plan` is null
  /// when no model is published. `template_fp` as in NativePlan.
  Acquired LqoPlan(const query::Query& q, uint64_t template_fp);

  engine::Database* parent_;
  ServerOptions options_;
  uint64_t seed_;
  PlanCache cache_;
  HotSwapSlot<lqo::LearnedOptimizer> model_;
  CircuitBreaker breaker_;

  /// Counters emitted by non-worker threads (shutdown drops); merged into
  /// SnapshotMetrics alongside the per-worker registries.
  mutable std::mutex control_mu_;
  obs::MetricsRegistry control_metrics_;

  /// Serializes model inference; models mutate internal state when
  /// planning, and the original systems run one model-server process.
  std::mutex inference_mu_;
  std::unique_ptr<engine::Database> planning_db_;  // guarded by inference_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // workers: ticket available / stopping
  std::condition_variable space_cv_;  // submitters: queue has room
  std::condition_variable idle_cv_;   // Drain: queue empty and none in flight
  std::deque<Ticket> queue_;
  std::unordered_map<uint64_t, uint64_t> occurrences_;
  int64_t next_ticket_ = 0;
  int64_t in_flight_ = 0;
  bool stopping_ = false;

  // Open-loop admission state (guarded by queue_mu_): dense sequence
  // numbers for the dispatcher, and the shedding predictor's min-heap of
  // *estimated* virtual worker free-times. The predictor deliberately
  // mirrors the dispatcher's G/G/k placement but runs on caller-provided
  // estimates at admission time, so the shed decision is deterministic and
  // requires no completed work.
  uint64_t next_open_seq_ = 0;
  std::vector<util::VirtualNanos> admit_heap_;
  std::unique_ptr<VirtualDispatcher> dispatcher_;

  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> workers_;
};

}  // namespace lqolab::serve

#endif  // LQOLAB_SERVE_QUERY_SERVER_H_
