#ifndef LQOLAB_SERVE_QUERY_SERVER_H_
#define LQOLAB_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "lqo/interface.h"
#include "obs/metrics.h"
#include "query/query.h"
#include "serve/hot_swap.h"
#include "serve/plan_cache.h"
#include "util/virtual_clock.h"

namespace lqolab::serve {

/// How the server turns an admitted query into an executable plan.
enum class RouteMode {
  kPglite,  ///< Native planner only (the paper's baseline that wins Fig. 5).
  kLqo,     ///< Published model plans; timeout falls back to the pglite plan.
  kShadow,  ///< Model plans (recorded), but the pglite plan executes.
};

const char* RouteModeName(RouteMode mode);

struct ServerOptions {
  /// Worker threads, each owning a Database::CloneContextForWorker replica;
  /// 0 means util::ThreadPool::DefaultParallelism().
  int32_t workers = 0;
  /// Bounded admission queue: Submit blocks when full (backpressure),
  /// TrySubmit rejects.
  int32_t queue_capacity = 128;
  RouteMode route = RouteMode::kPglite;
  /// Plan-cache geometry; capacity_per_shard 0 disables caching.
  PlanCacheOptions cache;
  /// Deadline for executing an LQO-routed plan (the paper's timeout
  /// protocol); on expiry the query re-executes on the pglite plan and the
  /// fallback is recorded. 0 uses the configured statement timeout.
  util::VirtualNanos lqo_deadline_ns = 0;
  /// When true (default), every execution starts from the canonical replay
  /// state (Database::BeginQueryReplay with a salt fixed at admission), so
  /// per-query results are identical for any worker count. When false,
  /// executions share each replica's warm cache state — higher fidelity to
  /// a long-running server, but results become scheduling-dependent.
  bool deterministic_replay = true;
  /// Replay seed; 0 adopts the parent database's generation seed.
  uint64_t seed = 0;
};

/// Outcome of one served query, delivered through the Submit future.
struct ServedQuery {
  std::string query_id;
  int64_t ticket = 0;
  RouteMode route = RouteMode::kPglite;
  bool cache_hit = false;
  /// LQO plan hit its deadline; the pglite plan produced the answer.
  bool fell_back = false;
  /// The final answer itself timed out (statement timeout on the winning
  /// plan); result_rows is 0.
  bool timed_out = false;
  int64_t result_rows = 0;
  util::VirtualNanos inference_ns = 0;
  util::VirtualNanos planning_ns = 0;
  /// Execution time of the winning plan.
  util::VirtualNanos execution_ns = 0;
  /// Virtual time burned on a timed-out LQO attempt before falling back
  /// (equals the deadline when fell_back).
  util::VirtualNanos wasted_ns = 0;
  /// One-line rendering of the executed plan.
  std::string plan;
  /// In shadow mode: the plan the model proposed (not executed).
  std::string shadow_plan;

  /// Client-visible latency in virtual time.
  util::VirtualNanos latency_ns() const {
    return inference_ns + planning_ns + wasted_ns + execution_ns;
  }
};

/// A long-lived, concurrent query-serving front end over one database: a
/// bounded admission queue fans queries out to a pool of worker threads,
/// each executing on an isolated engine replica
/// (Database::CloneContextForWorker). Plans come from a sharded LRU plan
/// cache backed by the pluggable router (pglite / published LQO / shadow);
/// LQO-routed plans run under a per-query deadline with the paper's
/// timeout-fallback protocol. Models are published through a lock-free
/// HotSwapSlot, so training can continue while the server drains traffic.
/// Full architecture notes: docs/serving.md.
class QueryServer {
 public:
  /// Spawns the worker pool. `db` must outlive the server; the server never
  /// executes on it (replicas only), but LQO inference plans through a
  /// dedicated replica as well, so `db` stays untouched throughout.
  QueryServer(engine::Database* db, const ServerOptions& options);

  /// Shuts down: drains the queue, joins the workers.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Admits a query, blocking while the queue is full (backpressure). The
  /// future resolves when a worker finishes the query. Must not be called
  /// after Shutdown().
  std::future<ServedQuery> Submit(query::Query q);

  /// Non-blocking admission: returns false (and counts
  /// obs::Counter::kServeRejected on the calling thread) when the queue is
  /// full.
  bool TrySubmit(query::Query q, std::future<ServedQuery>* result);

  /// Publishes a trained model to the router (atomic hot swap; never blocks
  /// serving). In-flight queries finish on the snapshot they acquired; the
  /// version change invalidates every LQO-routed plan-cache entry. Returns
  /// the new model version.
  uint64_t PublishModel(std::shared_ptr<lqo::LearnedOptimizer> model);

  /// Blocks until the queue is empty and no query is in flight.
  void Drain();

  /// Stops admissions, drains, and joins the worker pool. Idempotent;
  /// called by the destructor.
  void Shutdown();

  /// Merged engine/serve counters of all workers (callable while serving;
  /// the snapshot is consistent per worker, workers are merged in index
  /// order).
  obs::MetricsRegistry SnapshotMetrics() const;

  int32_t workers() const { return static_cast<int32_t>(workers_.size()); }
  const PlanCache& plan_cache() const { return cache_; }
  uint64_t model_version() const { return model_.version(); }
  uint64_t seed() const { return seed_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Ticket {
    query::Query query;
    int64_t id = 0;
    /// 0-based occurrence of this query fingerprint among admissions;
    /// fixes the replay salt at admission so executions are independent of
    /// which worker runs them, in which order.
    uint64_t occurrence = 0;
    std::promise<ServedQuery> promise;
  };

  struct WorkerState {
    /// Held for the duration of each ticket (uncontended) and briefly by
    /// SnapshotMetrics.
    mutable std::mutex mu;
    std::unique_ptr<engine::Database> db;
    obs::MetricsRegistry metrics;
  };

  /// A plan pulled from the cache (`cache_hit`) or produced cold.
  struct Acquired {
    std::shared_ptr<const CachedPlan> plan;
    bool cache_hit = false;
  };

  void WorkerLoop(WorkerState* state);
  ServedQuery Process(engine::Database* replica, const Ticket& ticket);

  /// Returns the native plan for `q`, through the cache (planning on the
  /// worker's own replica on a miss — identical plan on every worker).
  Acquired NativePlan(engine::Database* replica, const query::Query& q);
  /// Returns the published model's plan for `q` (inference serialized on
  /// the dedicated planning replica), through the cache; `plan` is null
  /// when no model is published.
  Acquired LqoPlan(const query::Query& q);

  engine::Database* parent_;
  ServerOptions options_;
  uint64_t seed_;
  PlanCache cache_;
  HotSwapSlot<lqo::LearnedOptimizer> model_;

  /// Serializes model inference; models mutate internal state when
  /// planning, and the original systems run one model-server process.
  std::mutex inference_mu_;
  std::unique_ptr<engine::Database> planning_db_;  // guarded by inference_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // workers: ticket available / stopping
  std::condition_variable space_cv_;  // submitters: queue has room
  std::condition_variable idle_cv_;   // Drain: queue empty and none in flight
  std::deque<Ticket> queue_;
  std::unordered_map<uint64_t, uint64_t> occurrences_;
  int64_t next_ticket_ = 0;
  int64_t in_flight_ = 0;
  bool stopping_ = false;

  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> workers_;
};

}  // namespace lqolab::serve

#endif  // LQOLAB_SERVE_QUERY_SERVER_H_
