#include "serve/dispatcher.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.h"

namespace lqolab::serve {

using util::VirtualNanos;

VirtualDispatcher::VirtualDispatcher(int32_t virtual_workers) {
  LQOLAB_CHECK_GT(virtual_workers, 0);
  free_heap_.assign(static_cast<size_t>(virtual_workers), 0);
}

void VirtualDispatcher::PlaceLocked(OpenLoopCompletion* completion) {
  // Earliest-free worker under FIFO admission order.
  std::pop_heap(free_heap_.begin(), free_heap_.end(),
                std::greater<VirtualNanos>());
  const VirtualNanos free_at = free_heap_.back();
  const VirtualNanos start = std::max(completion->arrival_vt, free_at);
  const VirtualNanos done = start + completion->service_ns;
  free_heap_.back() = done;
  std::push_heap(free_heap_.begin(), free_heap_.end(),
                 std::greater<VirtualNanos>());

  ServedQuery& served = completion->served;
  served.queue_wait_ns = start - completion->arrival_vt;
  served.completion_vt = done;
  if (completion->deadline_vt > 0 && done > completion->deadline_vt) {
    served.deadline_missed = true;
    deadline_missed_.fetch_add(1, std::memory_order_relaxed);
  }
  finalized_.fetch_add(1, std::memory_order_relaxed);
  VirtualNanos seen = horizon_.load(std::memory_order_relaxed);
  while (done > seen &&
         !horizon_.compare_exchange_weak(seen, done,
                                         std::memory_order_relaxed)) {
  }
  completion->promise.set_value(std::move(served));
}

void VirtualDispatcher::Complete(uint64_t seq, OpenLoopCompletion completion) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seq != next_seq_) {
    // Ahead of its turn (a racing worker finished a later admission first):
    // buffer until the gap closes. Behind next_seq_ would be a double
    // report — the admission protocol makes that impossible.
    LQOLAB_CHECK_GT(seq, next_seq_);
    pending_.emplace(seq, std::move(completion));
    return;
  }
  PlaceLocked(&completion);
  ++next_seq_;
  // Flush every buffered successor that is now contiguous.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_seq_;
       it = pending_.erase(it), ++next_seq_) {
    PlaceLocked(&it->second);
  }
}

}  // namespace lqolab::serve
