#include "serve/plan_cache.h"

#include <utility>

#include "exec/oracle.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::serve {

namespace {

/// Mixes every configuration knob the planner reads (plus the model
/// version) into `key`; shared by the per-query and per-template keys so
/// both invalidate identically on config changes and model swaps.
uint64_t MixConfig(uint64_t key, const engine::DbConfig& config,
                   uint64_t model_version) {
  // Pack the boolean planner switches into one word; mix the numeric knobs
  // in separately. DbConfig::name is display-only and deliberately ignored,
  // as are the execution-engine knobs (vectorized_exec, predicate_transfer):
  // the planner never reads them and both paths return byte-identical row
  // sets, so a cached plan stays valid across flips of either flag.
  uint64_t flags = 0;
  const bool bools[] = {
      config.geqo,           config.enable_seqscan,  config.enable_indexscan,
      config.enable_bitmapscan, config.enable_tidscan, config.enable_nestloop,
      config.enable_hashjoin, config.enable_mergejoin, config.enable_bushy,
  };
  for (const bool b : bools) flags = (flags << 1) | (b ? 1u : 0u);

  key = util::MixSeed(key, flags);
  key = util::MixSeed(key, static_cast<uint64_t>(config.geqo_threshold),
                      static_cast<uint64_t>(config.join_collapse_limit));
  key = util::MixSeed(key, config.geqo_seed);
  key = util::MixSeed(key, static_cast<uint64_t>(config.work_mem_mb),
                      static_cast<uint64_t>(config.shared_buffers_mb));
  key = util::MixSeed(key, static_cast<uint64_t>(config.effective_cache_size_mb),
                      static_cast<uint64_t>(config.ram_mb));
  key = util::MixSeed(key, static_cast<uint64_t>(config.estimator_mode),
                      static_cast<uint64_t>(config.join_selectivity_scale *
                                            1024.0));
  key = util::MixSeed(key, static_cast<uint64_t>(config.cost_model_backend));
  return util::MixSeed(key, model_version);
}

}  // namespace

uint64_t PlanCacheKey(const query::Query& q, const engine::DbConfig& config,
                      uint64_t model_version) {
  return MixConfig(exec::QueryFingerprint(q), config, model_version);
}

uint64_t PlanCacheKeyForTemplate(uint64_t template_fingerprint,
                                 const engine::DbConfig& config,
                                 uint64_t model_version) {
  // An extra mix step separates the template-key domain from the
  // per-query domain: a raw QueryFingerprint equal to a template
  // fingerprint must not alias the same cache slot.
  return MixConfig(util::MixSeed(template_fingerprint, 0x5ca1ab1e5ca1ab1eULL),
                   config, model_version);
}

PlanCache::PlanCache(const PlanCacheOptions& options)
    : capacity_per_shard_(options.capacity_per_shard) {
  LQOLAB_CHECK_GT(options.shards, 0);
  LQOLAB_CHECK_GE(options.capacity_per_shard, 0);
  shards_.reserve(static_cast<size_t>(options.shards));
  for (int32_t s = 0; s < options.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(capacity_per_shard_));
  }
}

PlanCache::Shard& PlanCache::ShardFor(uint64_t key) {
  // The low bits key the LRU hash map; stripe on an independent mix so the
  // shard index and the in-shard distribution don't correlate.
  const uint64_t h = util::MixSeed(key, 0x9e3779b97f4a7c15ULL);
  return *shards_[static_cast<size_t>(h % shards_.size())];
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(uint64_t key) {
  if (!enabled()) {
    obs::Count(obs::Counter::kPlanCacheMisses);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.plans.find(key);
  if (it == shard.plans.end()) {
    obs::Count(obs::Counter::kPlanCacheMisses);
    return nullptr;
  }
  // Present in the payload map implies present in the LRU, so this Touch is
  // a pure recency refresh, never an insert.
  shard.lru.Touch(key);
  obs::Count(obs::Counter::kPlanCacheHits);
  return it->second;
}

void PlanCache::Insert(uint64_t key, std::shared_ptr<const CachedPlan> plan) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const int64_t evictions_before = shard.lru.evictions();
  uint64_t evicted_key = 0;
  const bool present = shard.lru.Touch(key, &evicted_key);
  if (!present && shard.lru.evictions() > evictions_before) {
    // Touch inserted `key` and pushed out the shard's LRU entry; drop the
    // matching payload.
    shard.plans.erase(evicted_key);
    obs::Count(obs::Counter::kPlanCacheEvictions);
  }
  shard.plans[key] = std::move(plan);
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    obs::Count(obs::Counter::kPlanCacheEvictions,
               static_cast<int64_t>(shard->plans.size()));
    shard->lru.Clear();
    shard->plans.clear();
  }
}

int64_t PlanCache::size() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<int64_t>(shard->plans.size());
  }
  return total;
}

int64_t PlanCache::evictions() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.evictions();
  }
  return total;
}

}  // namespace lqolab::serve
