#ifndef LQOLAB_ML_MATRIX_H_
#define LQOLAB_ML_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace lqolab::ml {

/// Dense row-major float matrix; the value type of the autodiff graph.
/// Row vectors (1 x n) represent feature encodings and embeddings.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int32_t rows, int32_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
    LQOLAB_CHECK_GE(rows, 0);
    LQOLAB_CHECK_GE(cols, 0);
  }

  static Matrix Zeros(int32_t rows, int32_t cols) { return {rows, cols}; }

  /// Kaiming-uniform initialization for a layer with `fan_in` inputs.
  static Matrix KaimingUniform(int32_t rows, int32_t cols, int32_t fan_in,
                               util::Rng* rng);

  /// 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  float at(int32_t r, int32_t c) const {
    LQOLAB_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  float& at(int32_t r, int32_t c) {
    LQOLAB_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  void Fill(float value) {
    for (float& x : data_) x = value;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace lqolab::ml

#endif  // LQOLAB_ML_MATRIX_H_
