#include "ml/autodiff.h"

#include <cmath>

namespace lqolab::ml {

namespace {

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  LQOLAB_CHECK_EQ(a.cols(), b.rows());
  for (int32_t i = 0; i < a.rows(); ++i) {
    for (int32_t k = 0; k < a.cols(); ++k) {
      const float av = a.at(i, k);
      if (av == 0.0f) continue;
      for (int32_t j = 0; j < b.cols(); ++j) {
        out->at(i, j) += av * b.at(k, j);
      }
    }
  }
}

/// out += a * b^T  (used for dA = dOut * B^T).
void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  LQOLAB_CHECK_EQ(a.cols(), b.cols());
  for (int32_t i = 0; i < a.rows(); ++i) {
    for (int32_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (int32_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(j, k);
      out->at(i, j) += acc;
    }
  }
}

/// out += a^T * b  (used for dB = A^T * dOut).
void MatMulTransposeAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  LQOLAB_CHECK_EQ(a.rows(), b.rows());
  for (int32_t i = 0; i < a.cols(); ++i) {
    for (int32_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int32_t k = 0; k < a.rows(); ++k) acc += a.at(k, i) * b.at(k, j);
      out->at(i, j) += acc;
    }
  }
}

float StableSoftplus(float x) {
  if (x > 20.0f) return x;
  if (x < -20.0f) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace

NodeId Graph::Emplace(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

const Matrix& Graph::value(NodeId id) const {
  return nodes_[static_cast<size_t>(id)].value;
}

float Graph::scalar(NodeId id) const {
  const Matrix& v = value(id);
  LQOLAB_CHECK_EQ(v.rows(), 1);
  LQOLAB_CHECK_EQ(v.cols(), 1);
  return v.at(0, 0);
}

Matrix& Graph::grad(NodeId id) {
  Node& node = nodes_[static_cast<size_t>(id)];
  if (node.grad.rows() == 0 && node.value.rows() != 0) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
  }
  return node.grad;
}

NodeId Graph::Input(Matrix value) {
  Node node;
  node.op = Op::kInput;
  node.value = std::move(value);
  return Emplace(std::move(node));
}

NodeId Graph::Parameter(const Matrix* value, Matrix* grad) {
  LQOLAB_CHECK(value != nullptr);
  LQOLAB_CHECK(grad != nullptr);
  LQOLAB_CHECK(value->SameShape(*grad));
  Node node;
  node.op = Op::kParameter;
  node.value = *value;
  node.param_grad = grad;
  return Emplace(std::move(node));
}

NodeId Graph::MatMul(NodeId a, NodeId b) {
  Node node;
  node.op = Op::kMatMul;
  node.a = a;
  node.b = b;
  node.value = Matrix(value(a).rows(), value(b).cols());
  MatMulInto(value(a), value(b), &node.value);
  return Emplace(std::move(node));
}

NodeId Graph::Add(NodeId a, NodeId b) {
  const Matrix& va = value(a);
  const Matrix& vb = value(b);
  Node node;
  node.a = a;
  node.b = b;
  node.value = va;
  if (va.SameShape(vb)) {
    node.op = Op::kAdd;
    for (int64_t i = 0; i < va.size(); ++i) {
      node.value.data()[static_cast<size_t>(i)] +=
          vb.data()[static_cast<size_t>(i)];
    }
  } else {
    LQOLAB_CHECK_EQ(vb.rows(), 1);
    LQOLAB_CHECK_EQ(vb.cols(), va.cols());
    node.op = Op::kAddBroadcast;
    for (int32_t r = 0; r < va.rows(); ++r) {
      for (int32_t c = 0; c < va.cols(); ++c) {
        node.value.at(r, c) += vb.at(0, c);
      }
    }
  }
  return Emplace(std::move(node));
}

NodeId Graph::Sub(NodeId a, NodeId b) {
  const Matrix& va = value(a);
  const Matrix& vb = value(b);
  LQOLAB_CHECK(va.SameShape(vb));
  Node node;
  node.op = Op::kSub;
  node.a = a;
  node.b = b;
  node.value = va;
  for (int64_t i = 0; i < va.size(); ++i) {
    node.value.data()[static_cast<size_t>(i)] -=
        vb.data()[static_cast<size_t>(i)];
  }
  return Emplace(std::move(node));
}

NodeId Graph::Mul(NodeId a, NodeId b) {
  const Matrix& va = value(a);
  const Matrix& vb = value(b);
  LQOLAB_CHECK(va.SameShape(vb));
  Node node;
  node.op = Op::kMul;
  node.a = a;
  node.b = b;
  node.value = va;
  for (int64_t i = 0; i < va.size(); ++i) {
    node.value.data()[static_cast<size_t>(i)] *=
        vb.data()[static_cast<size_t>(i)];
  }
  return Emplace(std::move(node));
}

NodeId Graph::Relu(NodeId a) {
  Node node;
  node.op = Op::kRelu;
  node.a = a;
  node.value = value(a);
  for (float& x : node.value.data()) x = x > 0.0f ? x : 0.0f;
  return Emplace(std::move(node));
}

NodeId Graph::Tanh(NodeId a) {
  Node node;
  node.op = Op::kTanh;
  node.a = a;
  node.value = value(a);
  for (float& x : node.value.data()) x = std::tanh(x);
  return Emplace(std::move(node));
}

NodeId Graph::Sigmoid(NodeId a) {
  Node node;
  node.op = Op::kSigmoid;
  node.a = a;
  node.value = value(a);
  for (float& x : node.value.data()) x = 1.0f / (1.0f + std::exp(-x));
  return Emplace(std::move(node));
}

NodeId Graph::Softplus(NodeId a) {
  Node node;
  node.op = Op::kSoftplus;
  node.a = a;
  node.value = value(a);
  for (float& x : node.value.data()) x = StableSoftplus(x);
  return Emplace(std::move(node));
}

NodeId Graph::ConcatCols(NodeId a, NodeId b) {
  const Matrix& va = value(a);
  const Matrix& vb = value(b);
  LQOLAB_CHECK_EQ(va.rows(), vb.rows());
  Node node;
  node.op = Op::kConcatCols;
  node.a = a;
  node.b = b;
  node.value = Matrix(va.rows(), va.cols() + vb.cols());
  for (int32_t r = 0; r < va.rows(); ++r) {
    for (int32_t c = 0; c < va.cols(); ++c) node.value.at(r, c) = va.at(r, c);
    for (int32_t c = 0; c < vb.cols(); ++c) {
      node.value.at(r, va.cols() + c) = vb.at(r, c);
    }
  }
  return Emplace(std::move(node));
}

NodeId Graph::Sum(NodeId a) {
  Node node;
  node.op = Op::kSum;
  node.a = a;
  node.value = Matrix(1, 1);
  for (float x : value(a).data()) node.value.at(0, 0) += x;
  return Emplace(std::move(node));
}

NodeId Graph::Mean(NodeId a) {
  Node node;
  node.op = Op::kMean;
  node.a = a;
  node.value = Matrix(1, 1);
  const Matrix& va = value(a);
  LQOLAB_CHECK_GT(va.size(), 0);
  for (float x : va.data()) node.value.at(0, 0) += x;
  node.value.at(0, 0) /= static_cast<float>(va.size());
  return Emplace(std::move(node));
}

NodeId Graph::MeanRows(NodeId a) {
  const Matrix& va = value(a);
  LQOLAB_CHECK_GT(va.rows(), 0);
  Node node;
  node.op = Op::kMeanRows;
  node.a = a;
  node.value = Matrix(1, va.cols());
  for (int32_t r = 0; r < va.rows(); ++r) {
    for (int32_t c = 0; c < va.cols(); ++c) {
      node.value.at(0, c) += va.at(r, c);
    }
  }
  for (int32_t c = 0; c < va.cols(); ++c) {
    node.value.at(0, c) /= static_cast<float>(va.rows());
  }
  return Emplace(std::move(node));
}

void Graph::Backward(NodeId loss) {
  LQOLAB_CHECK_EQ(value(loss).rows(), 1);
  LQOLAB_CHECK_EQ(value(loss).cols(), 1);
  grad(loss).at(0, 0) = 1.0f;

  for (NodeId id = loss; id >= 0; --id) {
    Node& node = nodes_[static_cast<size_t>(id)];
    if (node.grad.rows() == 0) continue;  // not on any path to the loss
    const Matrix& g = node.grad;
    switch (node.op) {
      case Op::kInput:
        break;
      case Op::kParameter:
        for (int64_t i = 0; i < g.size(); ++i) {
          node.param_grad->data()[static_cast<size_t>(i)] +=
              g.data()[static_cast<size_t>(i)];
        }
        break;
      case Op::kMatMul:
        MatMulTransposeBInto(g, value(node.b), &grad(node.a));
        MatMulTransposeAInto(value(node.a), g, &grad(node.b));
        break;
      case Op::kAdd: {
        Matrix& ga = grad(node.a);
        Matrix& gb = grad(node.b);
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[static_cast<size_t>(i)] += g.data()[static_cast<size_t>(i)];
          gb.data()[static_cast<size_t>(i)] += g.data()[static_cast<size_t>(i)];
        }
        break;
      }
      case Op::kAddBroadcast: {
        Matrix& ga = grad(node.a);
        Matrix& gb = grad(node.b);
        for (int32_t r = 0; r < g.rows(); ++r) {
          for (int32_t c = 0; c < g.cols(); ++c) {
            ga.at(r, c) += g.at(r, c);
            gb.at(0, c) += g.at(r, c);
          }
        }
        break;
      }
      case Op::kSub: {
        Matrix& ga = grad(node.a);
        Matrix& gb = grad(node.b);
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[static_cast<size_t>(i)] += g.data()[static_cast<size_t>(i)];
          gb.data()[static_cast<size_t>(i)] -= g.data()[static_cast<size_t>(i)];
        }
        break;
      }
      case Op::kMul: {
        Matrix& ga = grad(node.a);
        Matrix& gb = grad(node.b);
        const Matrix& va = value(node.a);
        const Matrix& vb = value(node.b);
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[static_cast<size_t>(i)] +=
              g.data()[static_cast<size_t>(i)] *
              vb.data()[static_cast<size_t>(i)];
          gb.data()[static_cast<size_t>(i)] +=
              g.data()[static_cast<size_t>(i)] *
              va.data()[static_cast<size_t>(i)];
        }
        break;
      }
      case Op::kRelu: {
        Matrix& ga = grad(node.a);
        const Matrix& va = value(node.a);
        for (int64_t i = 0; i < g.size(); ++i) {
          if (va.data()[static_cast<size_t>(i)] > 0.0f) {
            ga.data()[static_cast<size_t>(i)] +=
                g.data()[static_cast<size_t>(i)];
          }
        }
        break;
      }
      case Op::kTanh: {
        Matrix& ga = grad(node.a);
        for (int64_t i = 0; i < g.size(); ++i) {
          const float y = node.value.data()[static_cast<size_t>(i)];
          ga.data()[static_cast<size_t>(i)] +=
              g.data()[static_cast<size_t>(i)] * (1.0f - y * y);
        }
        break;
      }
      case Op::kSigmoid: {
        Matrix& ga = grad(node.a);
        for (int64_t i = 0; i < g.size(); ++i) {
          const float y = node.value.data()[static_cast<size_t>(i)];
          ga.data()[static_cast<size_t>(i)] +=
              g.data()[static_cast<size_t>(i)] * y * (1.0f - y);
        }
        break;
      }
      case Op::kSoftplus: {
        Matrix& ga = grad(node.a);
        const Matrix& va = value(node.a);
        for (int64_t i = 0; i < g.size(); ++i) {
          const float x = va.data()[static_cast<size_t>(i)];
          const float s = 1.0f / (1.0f + std::exp(-x));
          ga.data()[static_cast<size_t>(i)] +=
              g.data()[static_cast<size_t>(i)] * s;
        }
        break;
      }
      case Op::kConcatCols: {
        Matrix& ga = grad(node.a);
        Matrix& gb = grad(node.b);
        for (int32_t r = 0; r < g.rows(); ++r) {
          for (int32_t c = 0; c < ga.cols(); ++c) ga.at(r, c) += g.at(r, c);
          for (int32_t c = 0; c < gb.cols(); ++c) {
            gb.at(r, c) += g.at(r, ga.cols() + c);
          }
        }
        break;
      }
      case Op::kSum: {
        Matrix& ga = grad(node.a);
        for (float& x : ga.data()) x += g.at(0, 0);
        break;
      }
      case Op::kMean: {
        Matrix& ga = grad(node.a);
        const float scale = g.at(0, 0) / static_cast<float>(ga.size());
        for (float& x : ga.data()) x += scale;
        break;
      }
      case Op::kMeanRows: {
        Matrix& ga = grad(node.a);
        const float scale = 1.0f / static_cast<float>(ga.rows());
        for (int32_t r = 0; r < ga.rows(); ++r) {
          for (int32_t c = 0; c < ga.cols(); ++c) {
            ga.at(r, c) += g.at(0, c) * scale;
          }
        }
        break;
      }
    }
  }
}

}  // namespace lqolab::ml
