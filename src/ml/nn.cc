#include "ml/nn.h"

#include <cmath>

#include "util/check.h"

namespace lqolab::ml {

Mlp::Mlp(const std::vector<int32_t>& sizes, util::Rng* rng) {
  LQOLAB_CHECK_GE(sizes.size(), 2u);
  in_features_ = sizes.front();
  out_features_ = sizes.back();
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
}

NodeId Mlp::Apply(Graph* g, NodeId x) {
  NodeId h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Apply(g, h);
    if (i + 1 < layers_.size()) h = g->Relu(h);
  }
  return h;
}

std::vector<Param*> Mlp::Params() {
  std::vector<Param*> params;
  for (auto& layer : layers_) layer.CollectParams(&params);
  return params;
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {}

void Adam::Step() {
  ++step_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (Param* p : params_) {
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const size_t idx = static_cast<size_t>(i);
      const double g = p->grad.data()[idx];
      const double m = beta1_ * p->m.data()[idx] + (1.0 - beta1_) * g;
      const double v = beta2_ * p->v.data()[idx] + (1.0 - beta2_) * g * g;
      p->m.data()[idx] = static_cast<float>(m);
      p->v.data()[idx] = static_cast<float>(v);
      const double m_hat = m / bias1;
      const double v_hat = v / bias2;
      p->value.data()[idx] -=
          static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
      p->grad.data()[idx] = 0.0f;
    }
  }
}

void Adam::ZeroGrad() {
  for (Param* p : params_) p->grad.Fill(0.0f);
}

NodeId MseLoss(Graph* g, NodeId prediction, NodeId target) {
  const NodeId diff = g->Sub(prediction, target);
  return g->Mean(g->Mul(diff, diff));
}

NodeId PairwiseRankLoss(Graph* g, NodeId better_score, NodeId worse_score) {
  return g->Mean(g->Softplus(g->Sub(better_score, worse_score)));
}

}  // namespace lqolab::ml
