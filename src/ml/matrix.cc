#include "ml/matrix.h"

#include <cmath>

namespace lqolab::ml {

Matrix Matrix::KaimingUniform(int32_t rows, int32_t cols, int32_t fan_in,
                              util::Rng* rng) {
  Matrix m(rows, cols);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(std::max(1, fan_in)));
  for (float& x : m.data()) {
    x = static_cast<float>(rng->Uniform() * 2.0 - 1.0) * bound;
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, static_cast<int32_t>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    m.at(0, static_cast<int32_t>(i)) = values[i];
  }
  return m;
}

}  // namespace lqolab::ml
