#ifndef LQOLAB_ML_NN_H_
#define LQOLAB_ML_NN_H_

#include <cstdint>
#include <vector>

#include "ml/autodiff.h"
#include "ml/matrix.h"
#include "util/rng.h"

namespace lqolab::ml {

/// A trainable parameter: value, gradient accumulator, Adam moments.
struct Param {
  Matrix value;
  Matrix grad;
  Matrix m;
  Matrix v;

  explicit Param(Matrix initial)
      : value(std::move(initial)),
        grad(value.rows(), value.cols()),
        m(value.rows(), value.cols()),
        v(value.rows(), value.cols()) {}

  /// Registers the parameter in a graph.
  NodeId Node(Graph* g) { return g->Parameter(&value, &grad); }
};

/// Fully-connected layer y = x W + b.
struct Linear {
  Param weight;
  Param bias;

  Linear(int32_t in_features, int32_t out_features, util::Rng* rng)
      : weight(Matrix::KaimingUniform(in_features, out_features, in_features,
                                      rng)),
        bias(Matrix(1, out_features)) {}

  NodeId Apply(Graph* g, NodeId x) {
    return g->Add(g->MatMul(x, weight.Node(g)), bias.Node(g));
  }

  void CollectParams(std::vector<Param*>* out) {
    out->push_back(&weight);
    out->push_back(&bias);
  }
};

/// Multi-layer perceptron with ReLU activations between layers (none after
/// the final layer).
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}.
  Mlp(const std::vector<int32_t>& sizes, util::Rng* rng);

  NodeId Apply(Graph* g, NodeId x);

  std::vector<Param*> Params();

  int32_t in_features() const { return in_features_; }
  int32_t out_features() const { return out_features_; }

 private:
  std::vector<Linear> layers_;
  int32_t in_features_ = 0;
  int32_t out_features_ = 0;
};

/// Adam optimizer over a fixed parameter set.
class Adam {
 public:
  explicit Adam(std::vector<Param*> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes gradients without updating.
  void ZeroGrad();

  int64_t step_count() const { return step_; }

 private:
  std::vector<Param*> params_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t step_ = 0;
};

/// Mean-squared-error loss between a prediction node and a target input.
NodeId MseLoss(Graph* g, NodeId prediction, NodeId target);

/// Pairwise logistic ranking loss: softplus(worse_score - better_score).
/// Minimized when the model scores `better` below `worse` (scores are
/// predicted latencies: smaller = better).
NodeId PairwiseRankLoss(Graph* g, NodeId better_score, NodeId worse_score);

}  // namespace lqolab::ml

#endif  // LQOLAB_ML_NN_H_
