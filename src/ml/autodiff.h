#ifndef LQOLAB_ML_AUTODIFF_H_
#define LQOLAB_ML_AUTODIFF_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace lqolab::ml {

/// Node handle within a Graph.
using NodeId = int32_t;

/// Define-by-run reverse-mode autodiff over matrices. Each training step
/// builds a fresh Graph (tree-structured plan networks have per-example
/// topology), computes values eagerly on construction, and calls Backward()
/// once; gradients accumulate into the Matrix buffers registered through
/// Parameter().
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Constant leaf (no gradient).
  NodeId Input(Matrix value);

  /// Trainable leaf: `value` is read at creation; gradients accumulate into
  /// `*grad` (same shape) during Backward. Both must outlive the graph.
  NodeId Parameter(const Matrix* value, Matrix* grad);

  /// out = a * b (matrix product).
  NodeId MatMul(NodeId a, NodeId b);
  /// out = a + b; b may be a 1 x n row vector broadcast over a's rows.
  NodeId Add(NodeId a, NodeId b);
  /// out = a - b (same shapes).
  NodeId Sub(NodeId a, NodeId b);
  /// Elementwise product (same shapes).
  NodeId Mul(NodeId a, NodeId b);
  /// Elementwise max(0, x).
  NodeId Relu(NodeId a);
  /// Elementwise tanh.
  NodeId Tanh(NodeId a);
  /// Elementwise logistic sigmoid.
  NodeId Sigmoid(NodeId a);
  /// Elementwise softplus log(1 + e^x) (numerically stabilized).
  NodeId Softplus(NodeId a);
  /// Concatenation of two row-compatible matrices along columns.
  NodeId ConcatCols(NodeId a, NodeId b);
  /// Sum of all entries (1x1).
  NodeId Sum(NodeId a);
  /// Mean of all entries (1x1).
  NodeId Mean(NodeId a);
  /// Row-wise mean: n x c -> 1 x c.
  NodeId MeanRows(NodeId a);

  const Matrix& value(NodeId id) const;

  /// Scalar value of a 1x1 node.
  float scalar(NodeId id) const;

  /// Reverse pass from a scalar (1x1) node; seeds d(loss)/d(loss) = 1 and
  /// accumulates parameter gradients.
  void Backward(NodeId loss);

  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  enum class Op {
    kInput, kParameter, kMatMul, kAdd, kAddBroadcast, kSub, kMul, kRelu,
    kTanh, kSigmoid, kSoftplus, kConcatCols, kSum, kMean, kMeanRows,
  };
  struct Node {
    Op op;
    NodeId a = -1;
    NodeId b = -1;
    Matrix value;
    Matrix grad;        // allocated lazily during Backward
    Matrix* param_grad = nullptr;
  };

  NodeId Emplace(Node node);
  Matrix& grad(NodeId id);

  std::vector<Node> nodes_;
};

}  // namespace lqolab::ml

#endif  // LQOLAB_ML_AUTODIFF_H_
