#ifndef LQOLAB_CATALOG_TPCH_SCHEMA_H_
#define LQOLAB_CATALOG_TPCH_SCHEMA_H_

#include "catalog/schema.h"

namespace lqolab::catalog {

/// Table ids of the 8-table TPC-H-lite schema, in the order
/// BuildTpchSchema() registers them. The layout follows the TPC-H
/// star/snowflake — lineitem fans out to orders/part/supplier, orders to
/// customer, customer and supplier to nation to region — adapted to this
/// engine's conventions: every primary key is column 0 named "id", foreign
/// keys are single-column, dates are YYYYMMDD integers, and prices are
/// integer cents.
namespace tpch {

enum Table : TableId {
  kRegion = 0,
  kNation,
  kSupplier,
  kCustomer,
  kPart,
  kPartsupp,
  kOrders,
  kLineitem,
  kTableCount,
};

}  // namespace tpch

/// Builds the TPC-H-lite schema (8 tables with primary and foreign keys).
Schema BuildTpchSchema();

/// Conventional TPC-H alias for a table ("l" for lineitem, "o" for
/// orders, ...); used in query displays.
const char* TpchShortAlias(TableId table);

}  // namespace lqolab::catalog

#endif  // LQOLAB_CATALOG_TPCH_SCHEMA_H_
