#include "catalog/schema.h"

#include "util/check.h"

namespace lqolab::catalog {

ColumnId TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<ColumnId>(i);
  }
  return kInvalidColumn;
}

TableId Schema::AddTable(TableDef table) {
  LQOLAB_CHECK(!table.columns.empty());
  LQOLAB_CHECK_EQ(table.columns[0].name, std::string("id"));
  tables_.push_back(std::move(table));
  return static_cast<TableId>(tables_.size()) - 1;
}

TableId Schema::FindTable(const std::string& table_name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == table_name) return static_cast<TableId>(i);
  }
  return kInvalidTable;
}

const TableDef& Schema::table(TableId id) const {
  LQOLAB_CHECK_GE(id, 0);
  LQOLAB_CHECK_LT(id, table_count());
  return tables_[static_cast<size_t>(id)];
}

}  // namespace lqolab::catalog
