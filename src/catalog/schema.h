#ifndef LQOLAB_CATALOG_SCHEMA_H_
#define LQOLAB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lqolab::catalog {

/// Index of a table within a Schema.
using TableId = int32_t;
/// Index of a column within a table.
using ColumnId = int32_t;

constexpr TableId kInvalidTable = -1;
constexpr ColumnId kInvalidColumn = -1;

/// Storage type of a column. Strings are dictionary-encoded at the storage
/// layer, so every value is physically a 32-bit integer.
enum class ColumnType {
  kInt,     ///< Plain integer (ids, years, counters).
  kString,  ///< Dictionary-encoded text.
};

/// Definition of one column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

/// Single-column foreign key: `column` references the primary key (column 0,
/// always "id") of `referenced_table`.
struct ForeignKey {
  ColumnId column = kInvalidColumn;
  TableId referenced_table = kInvalidTable;
};

/// Definition of one table. Column 0 is always the integer primary key "id".
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<ForeignKey> foreign_keys;

  /// Returns the index of the named column or kInvalidColumn.
  ColumnId FindColumn(const std::string& column_name) const;
};

/// A database schema: an ordered list of table definitions.
class Schema {
 public:
  Schema() = default;

  /// Adds a table and returns its id.
  TableId AddTable(TableDef table);

  /// Returns the id of the named table or kInvalidTable.
  TableId FindTable(const std::string& table_name) const;

  const TableDef& table(TableId id) const;
  int32_t table_count() const { return static_cast<int32_t>(tables_.size()); }
  const std::vector<TableDef>& tables() const { return tables_; }

 private:
  std::vector<TableDef> tables_;
};

}  // namespace lqolab::catalog

#endif  // LQOLAB_CATALOG_SCHEMA_H_
