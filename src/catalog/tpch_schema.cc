#include "catalog/tpch_schema.h"

#include "util/check.h"

namespace lqolab::catalog {

namespace {

using tpch::Table;

ColumnDef Int(const char* name) { return {name, ColumnType::kInt}; }
ColumnDef Str(const char* name) { return {name, ColumnType::kString}; }

TableDef MakeTable(const char* name, std::vector<ColumnDef> columns,
                   std::vector<ForeignKey> fks = {}) {
  TableDef def;
  def.name = name;
  def.columns = std::move(columns);
  def.foreign_keys = std::move(fks);
  return def;
}

}  // namespace

Schema BuildTpchSchema() {
  Schema schema;

  // Snowflake dimensions.
  TableId id = schema.AddTable(MakeTable("region", {Int("id"), Str("name")}));
  LQOLAB_CHECK_EQ(id, Table::kRegion);
  id = schema.AddTable(MakeTable(
      "nation", {Int("id"), Str("name"), Int("region_id")},
      {{2, Table::kRegion}}));
  LQOLAB_CHECK_EQ(id, Table::kNation);
  id = schema.AddTable(MakeTable(
      "supplier", {Int("id"), Int("nation_id"), Int("acctbal")},
      {{1, Table::kNation}}));
  LQOLAB_CHECK_EQ(id, Table::kSupplier);
  id = schema.AddTable(MakeTable(
      "customer",
      {Int("id"), Int("nation_id"), Str("mktsegment"), Int("acctbal")},
      {{1, Table::kNation}}));
  LQOLAB_CHECK_EQ(id, Table::kCustomer);
  id = schema.AddTable(MakeTable(
      "part",
      {Int("id"), Str("brand"), Str("type"), Str("container"), Int("size"),
       Int("retailprice")}));
  LQOLAB_CHECK_EQ(id, Table::kPart);
  id = schema.AddTable(MakeTable(
      "partsupp",
      {Int("id"), Int("part_id"), Int("supplier_id"), Int("availqty"),
       Int("supplycost")},
      {{1, Table::kPart}, {2, Table::kSupplier}}));
  LQOLAB_CHECK_EQ(id, Table::kPartsupp);

  // Fact tables. Dates are YYYYMMDD integers, prices integer cents.
  id = schema.AddTable(MakeTable(
      "orders",
      {Int("id"), Int("customer_id"), Str("orderstatus"), Str("orderpriority"),
       Int("orderdate"), Int("totalprice")},
      {{1, Table::kCustomer}}));
  LQOLAB_CHECK_EQ(id, Table::kOrders);
  id = schema.AddTable(MakeTable(
      "lineitem",
      {Int("id"), Int("order_id"), Int("part_id"), Int("supplier_id"),
       Int("quantity"), Int("extendedprice"), Int("discount"),
       Str("returnflag"), Str("linestatus"), Int("shipdate"), Str("shipmode")},
      {{1, Table::kOrders}, {2, Table::kPart}, {3, Table::kSupplier}}));
  LQOLAB_CHECK_EQ(id, Table::kLineitem);

  return schema;
}

const char* TpchShortAlias(TableId table) {
  switch (table) {
    case Table::kRegion: return "r";
    case Table::kNation: return "n";
    case Table::kSupplier: return "s";
    case Table::kCustomer: return "c";
    case Table::kPart: return "p";
    case Table::kPartsupp: return "ps";
    case Table::kOrders: return "o";
    case Table::kLineitem: return "l";
    default: return "x";
  }
}

}  // namespace lqolab::catalog
