#include "catalog/imdb_schema.h"

#include "util/check.h"

namespace lqolab::catalog {

namespace {

using imdb::Table;

ColumnDef Int(const char* name) { return {name, ColumnType::kInt}; }
ColumnDef Str(const char* name) { return {name, ColumnType::kString}; }

TableDef MakeTable(const char* name, std::vector<ColumnDef> columns,
                   std::vector<ForeignKey> fks = {}) {
  TableDef def;
  def.name = name;
  def.columns = std::move(columns);
  def.foreign_keys = std::move(fks);
  return def;
}

}  // namespace

Schema BuildImdbSchema() {
  Schema schema;

  // Dimension tables (small lookup tables).
  TableId id = schema.AddTable(MakeTable("kind_type", {Int("id"), Str("kind")}));
  LQOLAB_CHECK_EQ(id, Table::kKindType);
  id = schema.AddTable(MakeTable("info_type", {Int("id"), Str("info")}));
  LQOLAB_CHECK_EQ(id, Table::kInfoType);
  id = schema.AddTable(MakeTable("company_type", {Int("id"), Str("kind")}));
  LQOLAB_CHECK_EQ(id, Table::kCompanyType);
  id = schema.AddTable(MakeTable("link_type", {Int("id"), Str("link")}));
  LQOLAB_CHECK_EQ(id, Table::kLinkType);
  id = schema.AddTable(MakeTable("role_type", {Int("id"), Str("role")}));
  LQOLAB_CHECK_EQ(id, Table::kRoleType);
  id = schema.AddTable(MakeTable("comp_cast_type", {Int("id"), Str("kind")}));
  LQOLAB_CHECK_EQ(id, Table::kCompCastType);

  // Entity tables.
  id = schema.AddTable(MakeTable(
      "keyword", {Int("id"), Str("keyword"), Str("phonetic_code")}));
  LQOLAB_CHECK_EQ(id, Table::kKeyword);
  id = schema.AddTable(MakeTable(
      "company_name", {Int("id"), Str("name"), Str("country_code")}));
  LQOLAB_CHECK_EQ(id, Table::kCompanyName);
  id = schema.AddTable(MakeTable(
      "name", {Int("id"), Str("name"), Str("gender"), Str("name_pcode_cf")}));
  LQOLAB_CHECK_EQ(id, Table::kName);
  id = schema.AddTable(MakeTable("char_name", {Int("id"), Str("name")}));
  LQOLAB_CHECK_EQ(id, Table::kCharName);
  id = schema.AddTable(MakeTable(
      "aka_name", {Int("id"), Int("person_id"), Str("name")},
      {{1, Table::kName}}));
  LQOLAB_CHECK_EQ(id, Table::kAkaName);
  id = schema.AddTable(MakeTable(
      "title",
      {Int("id"), Str("title"), Int("kind_id"), Int("production_year"),
       Int("season_nr"), Int("episode_nr"), Str("phonetic_code")},
      {{2, Table::kKindType}}));
  LQOLAB_CHECK_EQ(id, Table::kTitle);
  id = schema.AddTable(MakeTable(
      "aka_title", {Int("id"), Int("movie_id"), Str("title"), Int("kind_id")},
      {{1, Table::kTitle}, {3, Table::kKindType}}));
  LQOLAB_CHECK_EQ(id, Table::kAkaTitle);

  // Relationship (fact) tables.
  id = schema.AddTable(MakeTable(
      "cast_info",
      {Int("id"), Int("person_id"), Int("movie_id"), Int("person_role_id"),
       Int("role_id"), Str("note"), Int("nr_order")},
      {{1, Table::kName},
       {2, Table::kTitle},
       {3, Table::kCharName},
       {4, Table::kRoleType}}));
  LQOLAB_CHECK_EQ(id, Table::kCastInfo);
  id = schema.AddTable(MakeTable(
      "complete_cast",
      {Int("id"), Int("movie_id"), Int("subject_id"), Int("status_id")},
      {{1, Table::kTitle},
       {2, Table::kCompCastType},
       {3, Table::kCompCastType}}));
  LQOLAB_CHECK_EQ(id, Table::kCompleteCast);
  id = schema.AddTable(MakeTable(
      "movie_companies",
      {Int("id"), Int("movie_id"), Int("company_id"), Int("company_type_id"),
       Str("note")},
      {{1, Table::kTitle},
       {2, Table::kCompanyName},
       {3, Table::kCompanyType}}));
  LQOLAB_CHECK_EQ(id, Table::kMovieCompanies);
  id = schema.AddTable(MakeTable(
      "movie_info",
      {Int("id"), Int("movie_id"), Int("info_type_id"), Str("info")},
      {{1, Table::kTitle}, {2, Table::kInfoType}}));
  LQOLAB_CHECK_EQ(id, Table::kMovieInfo);
  id = schema.AddTable(MakeTable(
      "movie_info_idx",
      {Int("id"), Int("movie_id"), Int("info_type_id"), Str("info")},
      {{1, Table::kTitle}, {2, Table::kInfoType}}));
  LQOLAB_CHECK_EQ(id, Table::kMovieInfoIdx);
  id = schema.AddTable(MakeTable(
      "movie_keyword", {Int("id"), Int("movie_id"), Int("keyword_id")},
      {{1, Table::kTitle}, {2, Table::kKeyword}}));
  LQOLAB_CHECK_EQ(id, Table::kMovieKeyword);
  id = schema.AddTable(MakeTable(
      "movie_link",
      {Int("id"), Int("movie_id"), Int("linked_movie_id"), Int("link_type_id")},
      {{1, Table::kTitle}, {2, Table::kTitle}, {3, Table::kLinkType}}));
  LQOLAB_CHECK_EQ(id, Table::kMovieLink);
  id = schema.AddTable(MakeTable(
      "person_info",
      {Int("id"), Int("person_id"), Int("info_type_id"), Str("info"),
       Str("note")},
      {{1, Table::kName}, {2, Table::kInfoType}}));
  LQOLAB_CHECK_EQ(id, Table::kPersonInfo);

  LQOLAB_CHECK_EQ(schema.table_count(), Table::kTableCount);
  return schema;
}

const char* ImdbShortAlias(TableId table) {
  switch (table) {
    case Table::kKindType: return "kt";
    case Table::kInfoType: return "it";
    case Table::kCompanyType: return "ct";
    case Table::kLinkType: return "lt";
    case Table::kRoleType: return "rt";
    case Table::kCompCastType: return "cct";
    case Table::kKeyword: return "k";
    case Table::kCompanyName: return "cn";
    case Table::kName: return "n";
    case Table::kCharName: return "chn";
    case Table::kAkaName: return "an";
    case Table::kTitle: return "t";
    case Table::kAkaTitle: return "at";
    case Table::kCastInfo: return "ci";
    case Table::kCompleteCast: return "cc";
    case Table::kMovieCompanies: return "mc";
    case Table::kMovieInfo: return "mi";
    case Table::kMovieInfoIdx: return "midx";
    case Table::kMovieKeyword: return "mk";
    case Table::kMovieLink: return "ml";
    case Table::kPersonInfo: return "pi";
    default: return "?";
  }
}

}  // namespace lqolab::catalog
