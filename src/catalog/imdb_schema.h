#ifndef LQOLAB_CATALOG_IMDB_SCHEMA_H_
#define LQOLAB_CATALOG_IMDB_SCHEMA_H_

#include "catalog/schema.h"

namespace lqolab::catalog {

/// Table ids of the 21-table IMDB schema, in the order BuildImdbSchema()
/// registers them. The schema mirrors the real IMDB dump used by the Join
/// Order Benchmark (tables, key columns and foreign keys); see DESIGN.md §1
/// for the data substitution.
namespace imdb {

enum Table : TableId {
  kKindType = 0,
  kInfoType,
  kCompanyType,
  kLinkType,
  kRoleType,
  kCompCastType,
  kKeyword,
  kCompanyName,
  kName,
  kCharName,
  kAkaName,
  kTitle,
  kAkaTitle,
  kCastInfo,
  kCompleteCast,
  kMovieCompanies,
  kMovieInfo,
  kMovieInfoIdx,
  kMovieKeyword,
  kMovieLink,
  kPersonInfo,
  kTableCount,
};

}  // namespace imdb

/// Builds the IMDB schema (21 tables with primary and foreign keys).
Schema BuildImdbSchema();

/// Conventional JOB alias for a table ("t" for title, "mc" for
/// movie_companies, ...); used in query displays.
const char* ImdbShortAlias(TableId table);

}  // namespace lqolab::catalog

#endif  // LQOLAB_CATALOG_IMDB_SCHEMA_H_
