#ifndef LQOLAB_STORAGE_SHARDED_TABLE_H_
#define LQOLAB_STORAGE_SHARDED_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "storage/table.h"

namespace lqolab::storage {

/// Hash-partitioned read-only view over a set of built tables (opt-in via
/// engine::DbConfig::table_shards). Every row of every table is assigned to
/// exactly one of `num_shards` shards by a stable hash of its row id, and
/// each shard materializes its rows as contiguous per-column value segments
/// plus the ascending list of global row ids it owns. Scan kernels can then
/// run shard-at-a-time over dense memory and the merged result is
/// byte-identical to an unsharded scan (exec::kernels::MergeShardRows).
///
/// The set is immutable after construction and lives in
/// engine::SharedContext, so worker replicas share one copy; the per-shard
/// page spaces it defines (shard-local heap page numbers) are what the
/// executor routes to the per-shard buffer pools.
class ShardedTableSet {
 public:
  /// Hard cap on the shard count (shard ids are stored per row as one byte;
  /// far above any sensible partitioning of this database).
  static constexpr int32_t kMaxShards = 64;

  /// Stable shard assignment: a pure function of (table, row, num_shards),
  /// independent of build order and platform. Exposed so tests and the
  /// executor's random-probe model agree with the build.
  static int32_t ShardOfRow(catalog::TableId table, RowId row,
                            int32_t num_shards);

  /// Partitions every table into `num_shards` shards (2 <= num_shards <=
  /// kMaxShards). The source tables are only read during construction.
  ShardedTableSet(const std::vector<std::shared_ptr<Table>>& tables,
                  int32_t num_shards);

  ShardedTableSet(const ShardedTableSet&) = delete;
  ShardedTableSet& operator=(const ShardedTableSet&) = delete;

  /// One shard of one table: column segments in local-row order plus the
  /// owned global row ids (ascending — partitioning preserves row order
  /// within a shard).
  struct Shard {
    std::vector<RowId> row_ids;
    /// Per-column contiguous segment, parallel to row_ids:
    /// columns[c][i] == table.column(c).at(row_ids[i]).
    std::vector<std::vector<Value>> columns;

    int64_t row_count() const {
      return static_cast<int64_t>(row_ids.size());
    }
    /// Shard-local heap pages (the unit of the per-shard buffer pools).
    int64_t page_count() const {
      const int64_t n = row_count();
      return n == 0 ? 0 : (n + kRowsPerPage - 1) / kRowsPerPage;
    }
    const Value* column_data(catalog::ColumnId c) const {
      return columns[static_cast<size_t>(c)].data();
    }
  };

  int32_t num_shards() const { return num_shards_; }

  const Shard& shard(catalog::TableId table, int32_t s) const {
    return tables_[static_cast<size_t>(table)][static_cast<size_t>(s)];
  }

  /// Owning shard of a global row (O(1), reads the per-row byte map).
  int32_t shard_of_row(catalog::TableId table, RowId row) const {
    return shard_map_[static_cast<size_t>(table)][static_cast<size_t>(row)];
  }

  /// Shard-local heap page of a global row (O(1)).
  int64_t local_page(catalog::TableId table, RowId row) const {
    return local_index_[static_cast<size_t>(table)][static_cast<size_t>(row)] /
           kRowsPerPage;
  }

  /// Sum of per-shard heap pages of `table` (>= the unsharded page count by
  /// at most num_shards - 1 rounding pages).
  int64_t total_pages(catalog::TableId table) const;

 private:
  int32_t num_shards_;
  std::vector<std::vector<Shard>> tables_;            // [table][shard]
  std::vector<std::vector<uint8_t>> shard_map_;       // [table][global row]
  std::vector<std::vector<int32_t>> local_index_;     // [table][global row]
};

}  // namespace lqolab::storage

#endif  // LQOLAB_STORAGE_SHARDED_TABLE_H_
