#ifndef LQOLAB_STORAGE_INDEX_H_
#define LQOLAB_STORAGE_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "storage/table.h"

namespace lqolab::storage {

/// Secondary index over one column: a (value, row) list sorted by value,
/// supporting equality and range lookups — the moral equivalent of a B-tree
/// leaf level. Index pages participate in the buffer-cache model through
/// leaf_page_count().
class Index {
 public:
  /// Builds the index from the current table contents. NULLs are skipped.
  Index(const Table& table, catalog::ColumnId column);

  catalog::ColumnId column() const { return column_; }

  /// Rows with exactly this value (sorted by value then row).
  std::span<const RowId> EqualRange(Value value) const;

  /// Rows with value in [lo, hi] inclusive.
  std::span<const RowId> Range(Value lo, Value hi) const;

  /// Number of rows matching [lo, hi] without materializing them.
  int64_t CountRange(Value lo, Value hi) const;

  /// Entries in the index.
  int64_t entry_count() const { return static_cast<int64_t>(rows_.size()); }

  /// Simulated leaf pages (~256 entries per 8 KiB leaf).
  int64_t leaf_page_count() const {
    return entry_count() == 0 ? 1 : (entry_count() + 255) / 256;
  }

  /// Simulated B-tree height (root-to-leaf descent length).
  int32_t height() const;

  /// Smallest / largest indexed value; kNullValue when empty.
  Value min_value() const;
  Value max_value() const;

 private:
  // Parallel arrays sorted by (value, row).
  std::vector<Value> values_;
  std::vector<RowId> rows_;
  catalog::ColumnId column_;
};

}  // namespace lqolab::storage

#endif  // LQOLAB_STORAGE_INDEX_H_
