#include "storage/index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace lqolab::storage {

Index::Index(const Table& table, catalog::ColumnId column) : column_(column) {
  const Column& data = table.column(column);
  const int64_t n = data.size();
  std::vector<std::pair<Value, RowId>> entries;
  entries.reserve(static_cast<size_t>(n));
  for (RowId row = 0; row < n; ++row) {
    const Value value = data.at(row);
    if (value == kNullValue) continue;
    entries.emplace_back(value, row);
  }
  std::sort(entries.begin(), entries.end());
  values_.reserve(entries.size());
  rows_.reserve(entries.size());
  for (const auto& [value, row] : entries) {
    values_.push_back(value);
    rows_.push_back(row);
  }
}

std::span<const RowId> Index::EqualRange(Value value) const {
  return Range(value, value);
}

std::span<const RowId> Index::Range(Value lo, Value hi) const {
  if (lo > hi || rows_.empty()) return {};
  const auto begin = std::lower_bound(values_.begin(), values_.end(), lo);
  const auto end = std::upper_bound(begin, values_.end(), hi);
  const size_t offset = static_cast<size_t>(begin - values_.begin());
  const size_t count = static_cast<size_t>(end - begin);
  return {rows_.data() + offset, count};
}

int64_t Index::CountRange(Value lo, Value hi) const {
  if (lo > hi || rows_.empty()) return 0;
  const auto begin = std::lower_bound(values_.begin(), values_.end(), lo);
  const auto end = std::upper_bound(begin, values_.end(), hi);
  return end - begin;
}

int32_t Index::height() const {
  // Fanout ~256: height = ceil(log_256(leaf pages)) + 1.
  int64_t pages = leaf_page_count();
  int32_t height = 1;
  while (pages > 1) {
    pages = (pages + 255) / 256;
    ++height;
  }
  return height;
}

Value Index::min_value() const {
  return values_.empty() ? kNullValue : values_.front();
}

Value Index::max_value() const {
  return values_.empty() ? kNullValue : values_.back();
}

}  // namespace lqolab::storage
