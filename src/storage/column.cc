#include "storage/column.h"

namespace lqolab::storage {

Value Column::InternString(const std::string& text) {
  LQOLAB_CHECK(type_ == catalog::ColumnType::kString);
  auto it = dictionary_codes_.find(text);
  if (it != dictionary_codes_.end()) return it->second;
  const Value code = static_cast<Value>(dictionary_.size());
  dictionary_.push_back(text);
  dictionary_codes_.emplace(text, code);
  return code;
}

Value Column::LookupString(const std::string& text) const {
  auto it = dictionary_codes_.find(text);
  return it == dictionary_codes_.end() ? kNullValue : it->second;
}

const std::string& Column::StringAt(Value code) const {
  LQOLAB_CHECK_GE(code, 0);
  LQOLAB_CHECK_LT(code, static_cast<Value>(dictionary_.size()));
  return dictionary_[static_cast<size_t>(code)];
}

}  // namespace lqolab::storage
