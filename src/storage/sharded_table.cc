#include "storage/sharded_table.h"

#include "util/check.h"

namespace lqolab::storage {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int32_t ShardedTableSet::ShardOfRow(catalog::TableId table, RowId row,
                                    int32_t num_shards) {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(table))
                        << 32) |
                       static_cast<uint32_t>(row);
  return static_cast<int32_t>(Mix64(key) %
                              static_cast<uint64_t>(num_shards));
}

ShardedTableSet::ShardedTableSet(
    const std::vector<std::shared_ptr<Table>>& tables, int32_t num_shards)
    : num_shards_(num_shards) {
  LQOLAB_CHECK(num_shards >= 2 && num_shards <= kMaxShards);
  tables_.resize(tables.size());
  shard_map_.resize(tables.size());
  local_index_.resize(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    const Table& table = *tables[t];
    const auto table_id = static_cast<catalog::TableId>(t);
    const int64_t rows = table.row_count();
    const int32_t cols = table.column_count();
    auto& shards = tables_[t];
    shards.resize(static_cast<size_t>(num_shards));
    for (auto& shard : shards) {
      shard.columns.resize(static_cast<size_t>(cols));
    }
    auto& shard_of = shard_map_[t];
    auto& local = local_index_[t];
    shard_of.resize(static_cast<size_t>(rows));
    local.resize(static_cast<size_t>(rows));
    for (RowId row = 0; row < rows; ++row) {
      const int32_t s = ShardOfRow(table_id, row, num_shards);
      Shard& shard = shards[static_cast<size_t>(s)];
      shard_of[static_cast<size_t>(row)] = static_cast<uint8_t>(s);
      local[static_cast<size_t>(row)] =
          static_cast<int32_t>(shard.row_ids.size());
      shard.row_ids.push_back(row);
      for (int32_t c = 0; c < cols; ++c) {
        shard.columns[static_cast<size_t>(c)].push_back(
            table.column(static_cast<catalog::ColumnId>(c)).at(row));
      }
    }
  }
}

int64_t ShardedTableSet::total_pages(catalog::TableId table) const {
  int64_t pages = 0;
  for (const Shard& shard : tables_[static_cast<size_t>(table)]) {
    pages += shard.page_count();
  }
  return pages;
}

}  // namespace lqolab::storage
