#ifndef LQOLAB_STORAGE_LRU_CACHE_H_
#define LQOLAB_STORAGE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "util/check.h"
#include "util/status.h"

namespace lqolab::storage {

/// Exact LRU set of 64-bit keys with O(1) touch. Used for both tiers of the
/// buffer-cache model.
class LruCache {
 public:
  explicit LruCache(int64_t capacity) : capacity_(capacity) {
    LQOLAB_CHECK_GE(capacity, 0);
  }

  /// Looks up `key`; on hit moves it to the front and returns true, on miss
  /// inserts it (evicting the LRU entry if full) and returns false. When an
  /// eviction occurs and `evicted` is non-null, stores the evicted key (so
  /// callers keeping a payload per key — e.g. serve::PlanCache — can drop
  /// the matching entry).
  bool Touch(uint64_t key, uint64_t* evicted = nullptr) {
    if (capacity_ == 0) return false;
    auto it = positions_.find(key);
    if (it != positions_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (static_cast<int64_t>(positions_.size()) >= capacity_) {
      if (evicted != nullptr) *evicted = order_.back();
      positions_.erase(order_.back());
      order_.pop_back();
      ++evictions_;
    }
    order_.push_front(key);
    positions_[key] = order_.begin();
    return false;
  }

  /// True when `key` is resident; does not update recency.
  bool Contains(uint64_t key) const { return positions_.count(key) > 0; }

  /// Drops every entry. Dropped entries count as evictions: the lifetime
  /// counter tracks every removal, whether capacity-driven or bulk.
  void Clear() {
    evictions_ += static_cast<int64_t>(positions_.size());
    order_.clear();
    positions_.clear();
  }

  /// Changes the capacity; clears contents (a resized cache is cold).
  /// Aborts on a negative capacity; use TryResize where allocation pressure
  /// must degrade to a typed error instead.
  void Resize(int64_t capacity) {
    LQOLAB_CHECK(TryResize(capacity).ok());
  }

  /// Like Resize, but an unsatisfiable capacity (negative — e.g. an
  /// overflowed bytes->pages computation under allocation pressure) returns
  /// kResourceExhausted and leaves the cache untouched.
  util::Status TryResize(int64_t capacity) {
    if (capacity < 0) {
      return util::Status(util::StatusCode::kResourceExhausted,
                          "lru capacity " + std::to_string(capacity) +
                              " not satisfiable");
    }
    capacity_ = capacity;
    Clear();
    return util::Status::Ok();
  }

  int64_t size() const { return static_cast<int64_t>(positions_.size()); }
  int64_t capacity() const { return capacity_; }
  /// Entries evicted over the cache's lifetime, including entries dropped
  /// by Clear() and capacity changes (Resize()).
  int64_t evictions() const { return evictions_; }

 private:
  int64_t capacity_;
  int64_t evictions_ = 0;
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> positions_;
};

}  // namespace lqolab::storage

#endif  // LQOLAB_STORAGE_LRU_CACHE_H_
