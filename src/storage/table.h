#ifndef LQOLAB_STORAGE_TABLE_H_
#define LQOLAB_STORAGE_TABLE_H_

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "storage/column.h"

namespace lqolab::storage {

/// Number of heap rows per simulated 8 KiB page. Pages are the unit of the
/// buffer-cache model; see BufferPool.
constexpr int64_t kRowsPerPage = 32;

/// Simulated page size in bytes (used to convert the memory settings of
/// Table 2, which are expressed in MB, into page capacities).
constexpr int64_t kPageSizeBytes = 8 * 1024;

/// An in-memory columnar table.
class Table {
 public:
  Table(catalog::TableId id, const catalog::TableDef& def);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  catalog::TableId id() const { return id_; }
  const catalog::TableDef& def() const { return *def_; }
  int64_t row_count() const { return row_count_; }

  /// Heap pages occupied by the table (>= 1 for non-empty tables).
  int64_t page_count() const {
    return row_count_ == 0 ? 0 : (row_count_ + kRowsPerPage - 1) / kRowsPerPage;
  }

  Column& column(catalog::ColumnId id);
  const Column& column(catalog::ColumnId id) const;
  int32_t column_count() const { return static_cast<int32_t>(columns_.size()); }

  /// Appends one row; `values` must have one entry per column (string values
  /// already interned by the caller through column(id).InternString()).
  void AppendRow(const std::vector<Value>& values);

  /// Heap page holding a row.
  static int64_t PageOfRow(RowId row) { return row / kRowsPerPage; }

 private:
  catalog::TableId id_;
  const catalog::TableDef* def_;
  std::vector<std::unique_ptr<Column>> columns_;
  int64_t row_count_ = 0;
};

}  // namespace lqolab::storage

#endif  // LQOLAB_STORAGE_TABLE_H_
