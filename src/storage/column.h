#ifndef LQOLAB_STORAGE_COLUMN_H_
#define LQOLAB_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "util/check.h"

namespace lqolab::storage {

/// Physical row identifier within a table (0-based, dense).
using RowId = int32_t;

/// Physical value. String columns are dictionary-encoded, so every stored
/// value is a 32-bit integer; kNullValue marks SQL NULL.
using Value = int32_t;

constexpr Value kNullValue = INT32_MIN;

/// One column of a table: a dense value vector plus, for string columns, a
/// dictionary mapping codes to strings.
class Column {
 public:
  explicit Column(catalog::ColumnType type) : type_(type) {}

  catalog::ColumnType type() const { return type_; }

  void Append(Value value) { values_.push_back(value); }

  Value at(RowId row) const {
    LQOLAB_DCHECK(row >= 0 &&
                  static_cast<size_t>(row) < values_.size());
    return values_[static_cast<size_t>(row)];
  }

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  const std::vector<Value>& values() const { return values_; }

  /// Raw value array for batch kernels (exec/kernels.h): lets selection
  /// loops index contiguous memory without the at() bounds check per row.
  const Value* data() const { return values_.data(); }

  /// Interns `text` into the dictionary and returns its code. Only valid for
  /// string columns.
  Value InternString(const std::string& text);

  /// Returns the code of `text` or kNullValue when absent.
  Value LookupString(const std::string& text) const;

  /// Returns the string for a dictionary code.
  const std::string& StringAt(Value code) const;

  int64_t dictionary_size() const {
    return static_cast<int64_t>(dictionary_.size());
  }

 private:
  catalog::ColumnType type_;
  std::vector<Value> values_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, Value> dictionary_codes_;
};

}  // namespace lqolab::storage

#endif  // LQOLAB_STORAGE_COLUMN_H_
