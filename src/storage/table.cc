#include "storage/table.h"

#include "util/check.h"

namespace lqolab::storage {

Table::Table(catalog::TableId id, const catalog::TableDef& def)
    : id_(id), def_(&def) {
  columns_.reserve(def.columns.size());
  for (const auto& column_def : def.columns) {
    columns_.push_back(std::make_unique<Column>(column_def.type));
  }
}

Column& Table::column(catalog::ColumnId id) {
  LQOLAB_DCHECK(id >= 0 && static_cast<size_t>(id) < columns_.size());
  return *columns_[static_cast<size_t>(id)];
}

const Column& Table::column(catalog::ColumnId id) const {
  LQOLAB_DCHECK(id >= 0 && static_cast<size_t>(id) < columns_.size());
  return *columns_[static_cast<size_t>(id)];
}

void Table::AppendRow(const std::vector<Value>& values) {
  LQOLAB_CHECK_EQ(values.size(), columns_.size());
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->Append(values[i]);
  }
  ++row_count_;
}

}  // namespace lqolab::storage
