#ifndef LQOLAB_STORAGE_BUFFER_POOL_H_
#define LQOLAB_STORAGE_BUFFER_POOL_H_

#include <cstdint>

#include "catalog/schema.h"
#include "storage/lru_cache.h"
#include "util/status.h"

namespace lqolab::storage {

/// Which tier served a page access. The executor charges different virtual
/// costs per tier (see exec/cost_constants.h).
enum class AccessTier {
  kSharedHit,  ///< Found in shared buffers.
  kOsHit,      ///< Found in the OS page cache, promoted to shared buffers.
  kDisk,       ///< Read from disk, inserted into both tiers.
};

/// Kind of page for key derivation.
enum class PageKind { kHeap, kIndexLeaf };

/// Two-tier page-cache model: PostgreSQL shared buffers in front of the OS
/// page cache. Successive executions of the same query migrate its pages
/// disk -> OS cache -> shared buffers, which is the mechanism behind the
/// hot/cold-cache convergence the paper measures in Fig. 4.
class BufferPool {
 public:
  /// Capacities in pages for the two tiers.
  BufferPool(int64_t shared_pages, int64_t os_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Encodes a page identity. `index_column` distinguishes index trees of
  /// the same table; pass kInvalidColumn for heap pages.
  static uint64_t PageKey(catalog::TableId table, PageKind kind,
                          catalog::ColumnId index_column, int64_t page_no);

  /// Touches a page; returns the tier that served it and updates both LRUs.
  AccessTier Access(uint64_t page_key);

  /// Drops both tiers (full cold cache).
  void DropCaches();

  /// Drops shared buffers only (restart of the DBMS process; the OS cache
  /// survives).
  void DropSharedBuffers() { shared_.Clear(); }

  /// Reconfigures tier capacities; clears both tiers. Aborts on an
  /// unsatisfiable sizing; use TryResize where allocation pressure must
  /// degrade to a typed error.
  void Resize(int64_t shared_pages, int64_t os_pages);

  /// Like Resize, but validates both capacities first and returns
  /// kResourceExhausted — leaving the pool fully unchanged, contents
  /// included — when either cannot be satisfied.
  util::Status TryResize(int64_t shared_pages, int64_t os_pages);

  int64_t shared_capacity() const { return shared_.capacity(); }
  int64_t os_capacity() const { return os_.capacity(); }

  int64_t shared_hits() const { return shared_hits_; }
  int64_t os_hits() const { return os_hits_; }
  int64_t disk_reads() const { return disk_reads_; }
  /// Pages evicted from either tier over the pool's lifetime.
  int64_t evictions() const { return shared_.evictions() + os_.evictions(); }

 private:
  LruCache shared_;
  LruCache os_;
  int64_t shared_hits_ = 0;
  int64_t os_hits_ = 0;
  int64_t disk_reads_ = 0;
};

}  // namespace lqolab::storage

#endif  // LQOLAB_STORAGE_BUFFER_POOL_H_
