#include "storage/buffer_pool.h"

#include "obs/metrics.h"

namespace lqolab::storage {

BufferPool::BufferPool(int64_t shared_pages, int64_t os_pages)
    : shared_(shared_pages), os_(os_pages) {}

uint64_t BufferPool::PageKey(catalog::TableId table, PageKind kind,
                             catalog::ColumnId index_column, int64_t page_no) {
  // Layout: [table:8][kind:2][column:6][page:48].
  const uint64_t table_bits = static_cast<uint64_t>(table) & 0xffu;
  const uint64_t kind_bits = static_cast<uint64_t>(kind) & 0x3u;
  const uint64_t column_bits =
      static_cast<uint64_t>(index_column < 0 ? 63 : index_column) & 0x3fu;
  const uint64_t page_bits = static_cast<uint64_t>(page_no) & 0xffffffffffffULL;
  return (table_bits << 56) | (kind_bits << 54) | (column_bits << 48) |
         page_bits;
}

AccessTier BufferPool::Access(uint64_t page_key) {
  const int64_t evictions_before = evictions();
  AccessTier tier;
  if (shared_.Touch(page_key)) {
    ++shared_hits_;
    // Keep the OS tier's recency roughly in sync: a page hot in shared
    // buffers stays resident in the OS cache model as well.
    os_.Touch(page_key);
    tier = AccessTier::kSharedHit;
    obs::Count(obs::Counter::kBufferSharedHits);
  } else if (os_.Touch(page_key)) {
    // Missed shared buffers; Touch() above already inserted it there.
    ++os_hits_;
    tier = AccessTier::kOsHit;
    obs::Count(obs::Counter::kBufferOsHits);
  } else {
    ++disk_reads_;
    tier = AccessTier::kDisk;
    obs::Count(obs::Counter::kBufferDiskReads);
  }
  if (const int64_t evicted = evictions() - evictions_before; evicted > 0) {
    obs::Count(obs::Counter::kBufferEvictions, evicted);
  }
  return tier;
}

void BufferPool::DropCaches() {
  shared_.Clear();
  os_.Clear();
}

void BufferPool::Resize(int64_t shared_pages, int64_t os_pages) {
  LQOLAB_CHECK(TryResize(shared_pages, os_pages).ok());
}

util::Status BufferPool::TryResize(int64_t shared_pages, int64_t os_pages) {
  // Validate both tiers before mutating either, so a failed resize never
  // leaves the pool half-resized (or even half-cleared).
  if (shared_pages < 0 || os_pages < 0) {
    return util::Status(util::StatusCode::kResourceExhausted,
                        "buffer pool sizing not satisfiable");
  }
  util::Status status = shared_.TryResize(shared_pages);
  if (status.ok()) status = os_.TryResize(os_pages);
  return status;
}

}  // namespace lqolab::storage
