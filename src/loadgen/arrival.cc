#include "loadgen/arrival.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace lqolab::loadgen {

using util::VirtualNanos;

double RateProfile::QpsAt(VirtualNanos t) const {
  switch (kind) {
    case Kind::kConstant:
      return base_qps;
    case Kind::kDiurnal: {
      const double phase = 2.0 * M_PI * static_cast<double>(t) /
                           static_cast<double>(diurnal_period_ns);
      return base_qps * (1.0 + diurnal_amplitude * std::sin(phase));
    }
    case Kind::kBurst: {
      const VirtualNanos into = t % burst_every_ns;
      return into < burst_duration_ns ? base_qps * burst_multiplier : base_qps;
    }
  }
  return base_qps;
}

double RateProfile::MaxQps() const {
  switch (kind) {
    case Kind::kConstant:
      return base_qps;
    case Kind::kDiurnal:
      return base_qps * (1.0 + diurnal_amplitude);
    case Kind::kBurst:
      return base_qps * std::max(1.0, burst_multiplier);
  }
  return base_qps;
}

RateProfile RateProfile::Constant(double qps) {
  RateProfile p;
  p.kind = Kind::kConstant;
  p.base_qps = qps;
  return p;
}

RateProfile RateProfile::Diurnal(double qps, double amplitude,
                                 VirtualNanos period_ns) {
  LQOLAB_CHECK_GE(amplitude, 0.0);
  LQOLAB_CHECK_LE(amplitude, 1.0);
  LQOLAB_CHECK_GT(period_ns, 0);
  RateProfile p;
  p.kind = Kind::kDiurnal;
  p.base_qps = qps;
  p.diurnal_amplitude = amplitude;
  p.diurnal_period_ns = period_ns;
  return p;
}

RateProfile RateProfile::Burst(double qps, double multiplier,
                               VirtualNanos every_ns,
                               VirtualNanos duration_ns) {
  LQOLAB_CHECK_GE(multiplier, 1.0);
  LQOLAB_CHECK_GT(every_ns, 0);
  LQOLAB_CHECK_GT(duration_ns, 0);
  LQOLAB_CHECK_LE(duration_ns, every_ns);
  RateProfile p;
  p.kind = Kind::kBurst;
  p.base_qps = qps;
  p.burst_multiplier = multiplier;
  p.burst_every_ns = every_ns;
  p.burst_duration_ns = duration_ns;
  return p;
}

const char* RateProfileKindName(RateProfile::Kind kind) {
  switch (kind) {
    case RateProfile::Kind::kConstant:
      return "constant";
    case RateProfile::Kind::kDiurnal:
      return "diurnal";
    case RateProfile::Kind::kBurst:
      return "burst";
  }
  return "unknown";
}

ArrivalGenerator::ArrivalGenerator(const RateProfile& profile,
                                   std::vector<TenantSpec> tenants,
                                   int32_t workload_size, uint64_t seed)
    : profile_(profile),
      tenants_(std::move(tenants)),
      workload_size_(workload_size),
      seed_(seed) {
  LQOLAB_CHECK_GT(profile_.base_qps, 0.0);
  LQOLAB_CHECK_GT(workload_size_, 0);
  LQOLAB_CHECK(!tenants_.empty());

  double total_weight = 0.0;
  for (const TenantSpec& t : tenants_) {
    LQOLAB_CHECK_GT(t.weight, 0.0);
    LQOLAB_CHECK_GE(t.zipf_s, 0.0);
    total_weight += t.weight;
  }
  double acc = 0.0;
  tenant_cdf_.reserve(tenants_.size());
  for (const TenantSpec& t : tenants_) {
    acc += t.weight / total_weight;
    tenant_cdf_.push_back(acc);
  }
  tenant_cdf_.back() = 1.0;

  // Per-tenant popularity: a seeded permutation of the workload (so tenants
  // disagree about which queries are hot) with Zipf mass over ranks.
  rank_to_query_.resize(tenants_.size());
  rank_mass_.resize(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    std::vector<int32_t>& perm = rank_to_query_[t];
    perm.resize(static_cast<size_t>(workload_size_));
    std::iota(perm.begin(), perm.end(), 0);
    util::Rng perm_rng(util::MixSeed(seed_, 0x7e4a17u, static_cast<uint64_t>(t)));
    perm_rng.Shuffle(&perm);

    std::vector<double>& mass = rank_mass_[t];
    mass.resize(static_cast<size_t>(workload_size_));
    double norm = 0.0;
    for (int32_t r = 0; r < workload_size_; ++r) {
      mass[static_cast<size_t>(r)] =
          1.0 / std::pow(static_cast<double>(r + 1), tenants_[t].zipf_s);
      norm += mass[static_cast<size_t>(r)];
    }
    for (double& m : mass) m /= norm;
  }
}

std::vector<Arrival> ArrivalGenerator::Generate(VirtualNanos horizon_ns) {
  LQOLAB_CHECK_GT(horizon_ns, 0);
  // Independent streams so the arrival-time process is unchanged when the
  // tenant mix or workload changes, and vice versa.
  util::Rng time_rng(util::MixSeed(seed_, 0x41a5u));
  util::Rng mix_rng(util::MixSeed(seed_, 0x9b1du));

  const double max_qps = profile_.MaxQps();
  std::vector<util::ZipfTable> zipf;
  zipf.reserve(tenants_.size());
  for (const TenantSpec& t : tenants_) {
    zipf.emplace_back(static_cast<int64_t>(workload_size_), t.zipf_s);
  }

  std::vector<Arrival> arrivals;
  double t_ns = 0.0;
  while (true) {
    // Homogeneous Poisson at the envelope rate, thinned down to QpsAt(t).
    const double u = std::max(1e-12, 1.0 - time_rng.Uniform());
    t_ns += -std::log(u) / max_qps * static_cast<double>(util::kNanosPerSecond);
    if (t_ns >= static_cast<double>(horizon_ns)) break;
    const VirtualNanos at = static_cast<VirtualNanos>(t_ns);
    if (time_rng.Uniform() >= profile_.QpsAt(at) / max_qps) continue;

    Arrival a;
    a.at = at;
    const double pick = mix_rng.Uniform();
    size_t tenant = 0;
    while (tenant + 1 < tenant_cdf_.size() && pick >= tenant_cdf_[tenant]) {
      ++tenant;
    }
    a.tenant = static_cast<int32_t>(tenant);
    const int64_t rank = zipf[tenant].Sample(&mix_rng);
    a.query_index = rank_to_query_[tenant][static_cast<size_t>(rank)];
    arrivals.push_back(a);
  }
  return arrivals;
}

double ArrivalGenerator::QueryProbability(int32_t tenant,
                                          int32_t query_index) const {
  LQOLAB_CHECK_GE(tenant, 0);
  LQOLAB_CHECK_LT(static_cast<size_t>(tenant), tenants_.size());
  LQOLAB_CHECK_GE(query_index, 0);
  LQOLAB_CHECK_LT(query_index, workload_size_);
  const std::vector<int32_t>& perm = rank_to_query_[static_cast<size_t>(tenant)];
  for (size_t r = 0; r < perm.size(); ++r) {
    if (perm[r] == query_index) {
      return rank_mass_[static_cast<size_t>(tenant)][r];
    }
  }
  return 0.0;
}

double ArrivalGenerator::TenantShare(int32_t tenant) const {
  LQOLAB_CHECK_GE(tenant, 0);
  LQOLAB_CHECK_LT(static_cast<size_t>(tenant), tenants_.size());
  const size_t t = static_cast<size_t>(tenant);
  return t == 0 ? tenant_cdf_[0] : tenant_cdf_[t] - tenant_cdf_[t - 1];
}

}  // namespace lqolab::loadgen
