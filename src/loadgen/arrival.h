#ifndef LQOLAB_LOADGEN_ARRIVAL_H_
#define LQOLAB_LOADGEN_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/virtual_clock.h"

namespace lqolab::loadgen {

/// Offered-load rate as a function of virtual time. Three shapes:
///   kConstant — flat base_qps.
///   kDiurnal  — base_qps * (1 + amplitude * sin(2*pi * t / period)):
///               the day/night swing of a user-facing service.
///   kBurst    — base_qps, multiplied by burst_multiplier inside periodic
///               burst windows (flash crowds, retry storms).
struct RateProfile {
  enum class Kind : int32_t { kConstant = 0, kDiurnal, kBurst };

  Kind kind = Kind::kConstant;
  /// Baseline arrival rate in queries per virtual second.
  double base_qps = 100.0;
  /// kDiurnal: relative swing in [0, 1] and the full cycle length.
  double diurnal_amplitude = 0.5;
  util::VirtualNanos diurnal_period_ns = 60 * util::kNanosPerSecond;
  /// kBurst: rate multiplier inside a window, window spacing and width.
  double burst_multiplier = 4.0;
  util::VirtualNanos burst_every_ns = 10 * util::kNanosPerSecond;
  util::VirtualNanos burst_duration_ns = util::kNanosPerSecond;

  /// Instantaneous rate at virtual time `t` (>= 0).
  double QpsAt(util::VirtualNanos t) const;
  /// Upper bound of QpsAt over all t — the thinning envelope.
  double MaxQps() const;

  static RateProfile Constant(double qps);
  static RateProfile Diurnal(double qps, double amplitude,
                             util::VirtualNanos period_ns);
  static RateProfile Burst(double qps, double multiplier,
                           util::VirtualNanos every_ns,
                           util::VirtualNanos duration_ns);
};

const char* RateProfileKindName(RateProfile::Kind kind);

/// One tenant class in a multi-tenant mix: a share of the arrival stream,
/// its own Zipf skew over the workload (each tenant favours a *different*
/// seeded permutation of the queries — millions-of-users style hot sets
/// that do not overlap), and an SLO deadline budget.
struct TenantSpec {
  std::string name = "default";
  /// Relative share of arrivals (normalized across tenants).
  double weight = 1.0;
  /// Zipf exponent over the workload's queries; 0 = uniform.
  double zipf_s = 1.0;
  /// Deadline budget from arrival (0 = no deadline / best effort).
  util::VirtualNanos deadline_budget_ns = 0;
};

/// One generated arrival: when, who, and which workload query.
struct Arrival {
  util::VirtualNanos at = 0;
  int32_t tenant = 0;
  int32_t query_index = 0;
};

/// Seeded open-loop arrival process: a (possibly non-homogeneous) Poisson
/// stream shaped by a RateProfile, with each arrival assigned a tenant by
/// weight and a workload query by that tenant's Zipf-permuted popularity.
/// Deterministic: the same (profile, tenants, workload_size, seed) always
/// generates the same arrival sequence. Time-varying rates are realized by
/// thinning a homogeneous MaxQps() stream, so changing the profile shape
/// does not reshuffle the underlying randomness wholesale.
class ArrivalGenerator {
 public:
  ArrivalGenerator(const RateProfile& profile, std::vector<TenantSpec> tenants,
                   int32_t workload_size, uint64_t seed);

  /// All arrivals in [0, horizon_ns), in nondecreasing time order.
  std::vector<Arrival> Generate(util::VirtualNanos horizon_ns);

  const std::vector<TenantSpec>& tenants() const { return tenants_; }

  /// Probability that one arrival of tenant `t` is workload query `i`
  /// (the tenant's Zipf mass on its permuted rank of `i`).
  double QueryProbability(int32_t tenant, int32_t query_index) const;
  /// Normalized arrival share of tenant `t`.
  double TenantShare(int32_t tenant) const;

 private:
  RateProfile profile_;
  std::vector<TenantSpec> tenants_;
  int32_t workload_size_;
  uint64_t seed_;
  /// Cumulative tenant weights (normalized).
  std::vector<double> tenant_cdf_;
  /// Per tenant: rank -> query index (seeded permutation) and the Zipf
  /// mass per rank.
  std::vector<std::vector<int32_t>> rank_to_query_;
  std::vector<std::vector<double>> rank_mass_;
};

}  // namespace lqolab::loadgen

#endif  // LQOLAB_LOADGEN_ARRIVAL_H_
