#include "loadgen/slo.h"

#include <sstream>

#include "util/check.h"
#include "util/statistics.h"

namespace lqolab::loadgen {

using util::VirtualNanos;

namespace {
constexpr double kNsPerMs = 1e6;
}  // namespace

SloAccountant::SloAccountant(std::vector<std::string> tenant_names) {
  LQOLAB_CHECK(!tenant_names.empty());
  buckets_.resize(tenant_names.size());
  for (size_t i = 0; i < tenant_names.size(); ++i) {
    buckets_[i].slo.name = std::move(tenant_names[i]);
  }
}

void SloAccountant::Record(const serve::ServedQuery& served) {
  LQOLAB_CHECK_GE(served.tenant, 0);
  LQOLAB_CHECK_LT(static_cast<size_t>(served.tenant), buckets_.size());
  TenantBucket& bucket = buckets_[static_cast<size_t>(served.tenant)];
  TenantSlo& slo = bucket.slo;
  ++slo.offered;
  ++recorded_;

  if (served.shed) {
    ++slo.shed;
    return;
  }
  if (served.rejected) {
    ++slo.rejected;
    return;
  }
  if (served.timed_out ||
      served.status.code() == util::StatusCode::kDeadlineExceeded) {
    ++slo.timed_out;
    return;
  }
  if (!served.status.ok()) {
    ++slo.failed;
    return;
  }
  ++slo.ok;
  slo.replans += served.replans;
  if (served.deadline_missed) ++slo.deadline_missed;
  bucket.total_ms.push_back(
      static_cast<double>(served.total_latency_ns()) / kNsPerMs);
  bucket.queue_ms.push_back(
      static_cast<double>(served.queue_wait_ns) / kNsPerMs);
}

void SloAccountant::Finalize(TenantBucket* bucket, VirtualNanos horizon_ns) {
  TenantSlo& slo = bucket->slo;
  if (!bucket->total_ms.empty()) {
    slo.p50_total_ms = util::Percentile(bucket->total_ms, 50.0);
    slo.p95_total_ms = util::Percentile(bucket->total_ms, 95.0);
    slo.p99_total_ms = util::Percentile(bucket->total_ms, 99.0);
    slo.p99_queue_ms = util::Percentile(bucket->queue_ms, 99.0);
  }
  const double horizon_s =
      static_cast<double>(horizon_ns) / util::kNanosPerSecond;
  slo.offered_qps = static_cast<double>(slo.offered) / horizon_s;
  slo.goodput_qps =
      static_cast<double>(slo.ok - slo.deadline_missed) / horizon_s;
  slo.miss_rate = slo.ok > 0
                      ? static_cast<double>(slo.deadline_missed) /
                            static_cast<double>(slo.ok)
                      : 0.0;
}

SloReport SloAccountant::Report(VirtualNanos horizon_ns) const {
  LQOLAB_CHECK_GT(horizon_ns, 0);
  SloReport report;
  report.horizon_ns = horizon_ns;
  report.aggregate.name = "all";

  TenantBucket aggregate;
  aggregate.slo.name = "all";
  for (const TenantBucket& bucket : buckets_) {
    TenantBucket copy = bucket;
    Finalize(&copy, horizon_ns);
    report.tenants.push_back(copy.slo);

    TenantSlo& agg = aggregate.slo;
    const TenantSlo& slo = bucket.slo;
    agg.offered += slo.offered;
    agg.ok += slo.ok;
    agg.shed += slo.shed;
    agg.rejected += slo.rejected;
    agg.timed_out += slo.timed_out;
    agg.failed += slo.failed;
    agg.deadline_missed += slo.deadline_missed;
    agg.replans += slo.replans;
    aggregate.total_ms.insert(aggregate.total_ms.end(),
                              bucket.total_ms.begin(), bucket.total_ms.end());
    aggregate.queue_ms.insert(aggregate.queue_ms.end(),
                              bucket.queue_ms.begin(), bucket.queue_ms.end());
  }
  Finalize(&aggregate, horizon_ns);
  report.aggregate = aggregate.slo;
  return report;
}

std::string SloReport::ToString() const {
  std::ostringstream out;
  auto line = [&out](const TenantSlo& slo) {
    out << "  " << slo.name << ": offered=" << slo.offered << " ok=" << slo.ok
        << " shed=" << slo.shed << " rejected=" << slo.rejected
        << " timed_out=" << slo.timed_out << " failed=" << slo.failed
        << " missed=" << slo.deadline_missed << " replans=" << slo.replans
        << " p99=" << slo.p99_total_ms << "ms goodput=" << slo.goodput_qps
        << "qps miss_rate=" << slo.miss_rate << "\n";
  };
  out << "slo report (horizon "
      << static_cast<double>(horizon_ns) / util::kNanosPerSecond << "s)\n";
  line(aggregate);
  for (const TenantSlo& slo : tenants) line(slo);
  return out.str();
}

}  // namespace lqolab::loadgen
