#include "loadgen/open_loop.h"

#include <future>
#include <utility>

#include "serve/query_server.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::loadgen {

using util::VirtualNanos;

OpenLoopRunner::OpenLoopRunner(engine::Database* db,
                               std::vector<query::Query> workload)
    : db_(db), workload_(std::move(workload)) {
  LQOLAB_CHECK(db_ != nullptr);
  LQOLAB_CHECK(!workload_.empty());
}

OpenLoopResult OpenLoopRunner::Run(const OpenLoopOptions& options) {
  LQOLAB_CHECK_GT(options.horizon_ns, 0);
  LQOLAB_CHECK_GT(options.virtual_workers, 0);
  std::vector<TenantSpec> tenants = options.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{});

  serve::ServerOptions sopts;
  sopts.workers = options.real_workers;
  sopts.queue_capacity = options.queue_capacity;
  sopts.route = serve::RouteMode::kPglite;
  sopts.deterministic_replay = true;
  sopts.seed = options.seed;
  sopts.virtual_workers = options.virtual_workers;
  sopts.shed_on_predicted_miss = options.shed_on_predicted_miss;
  serve::QueryServer server(db_, sopts);

  OpenLoopResult result;
  // Warmup pass 1 warms the plan cache; pass 2 measures warm virtual
  // service times — the estimates SubmitAt's shedding predictor runs on.
  result.service_estimate_ns.assign(workload_.size(), 0);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < workload_.size(); ++i) {
      serve::ServedQuery served = server.Submit(workload_[i]).get();
      LQOLAB_CHECK_MSG(served.status.ok(),
                       "warmup failed for " << served.query_id << ": "
                                            << served.status.ToString());
      if (pass == 1) result.service_estimate_ns[i] = served.latency_ns();
    }
  }

  // Capacity: k virtual workers over the mix-weighted mean service time.
  ArrivalGenerator mix_probe(options.profile, tenants,
                             static_cast<int32_t>(workload_.size()),
                             options.seed);
  double mean_service_ns = 0.0;
  for (size_t t = 0; t < tenants.size(); ++t) {
    double tenant_mean = 0.0;
    for (size_t i = 0; i < workload_.size(); ++i) {
      tenant_mean += mix_probe.QueryProbability(static_cast<int32_t>(t),
                                               static_cast<int32_t>(i)) *
                     static_cast<double>(result.service_estimate_ns[i]);
    }
    mean_service_ns +=
        mix_probe.TenantShare(static_cast<int32_t>(t)) * tenant_mean;
  }
  LQOLAB_CHECK_GT(mean_service_ns, 0.0);
  result.capacity_qps = static_cast<double>(options.virtual_workers) *
                        static_cast<double>(util::kNanosPerSecond) /
                        mean_service_ns;

  RateProfile profile = options.profile;
  if (options.offered_multiple > 0.0) {
    profile.base_qps = options.offered_multiple * result.capacity_qps;
  }
  result.offered_qps = profile.base_qps;

  VirtualNanos horizon_ns = options.horizon_ns;
  if (options.target_arrivals > 0) {
    horizon_ns = static_cast<VirtualNanos>(
        static_cast<double>(options.target_arrivals) / profile.base_qps *
        static_cast<double>(util::kNanosPerSecond));
    LQOLAB_CHECK_GT(horizon_ns, 0);
  }
  if (options.deadline_service_multiple > 0.0) {
    const auto budget = static_cast<VirtualNanos>(
        options.deadline_service_multiple * mean_service_ns);
    for (TenantSpec& t : tenants) {
      if (t.deadline_budget_ns == 0) t.deadline_budget_ns = budget;
    }
  }

  ArrivalGenerator generator(profile, tenants,
                             static_cast<int32_t>(workload_.size()),
                             options.seed);
  const std::vector<Arrival> arrivals = generator.Generate(horizon_ns);
  result.arrivals = static_cast<int64_t>(arrivals.size());

  std::vector<std::future<serve::ServedQuery>> futures;
  futures.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    serve::OpenLoopArrival admission;
    admission.arrival_vt = a.at;
    admission.deadline_budget_ns =
        tenants[static_cast<size_t>(a.tenant)].deadline_budget_ns;
    admission.estimated_service_ns =
        result.service_estimate_ns[static_cast<size_t>(a.query_index)];
    admission.tenant = a.tenant;
    futures.push_back(
        server.SubmitAt(workload_[static_cast<size_t>(a.query_index)],
                        admission));
  }

  std::vector<std::string> tenant_names;
  tenant_names.reserve(tenants.size());
  for (const TenantSpec& t : tenants) tenant_names.push_back(t.name);
  SloAccountant accountant(std::move(tenant_names));

  // Futures resolve in admission order (the dispatcher finalizes strictly
  // by sequence), so collecting in order never deadlocks.
  uint64_t fingerprint = 0;
  for (std::future<serve::ServedQuery>& f : futures) {
    const serve::ServedQuery served = f.get();
    accountant.Record(served);
    fingerprint = util::MixSeed(
        fingerprint,
        util::MixSeed(static_cast<uint64_t>(served.result_rows),
                      static_cast<uint64_t>(served.completion_vt),
                      static_cast<uint64_t>(served.status.code())));
  }
  result.fingerprint = fingerprint;
  result.report = accountant.Report(horizon_ns);
  server.Shutdown();
  return result;
}

}  // namespace lqolab::loadgen
