#ifndef LQOLAB_LOADGEN_SLO_H_
#define LQOLAB_LOADGEN_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/query_server.h"
#include "util/virtual_clock.h"

namespace lqolab::loadgen {

/// Per-tenant SLO scorecard over one open-loop run. Every offered arrival
/// lands in exactly one outcome bucket:
///   ok           — completed successfully (may still have missed deadline),
///   shed         — refused at admission by the deadline-aware shedder,
///   rejected     — refused because the queue was full,
///   timed_out    — admitted but exceeded its execution timeout,
///   failed       — admitted but errored (breaker open, execution fault, ...).
/// `deadline_missed` counts completed queries whose virtual completion time
/// exceeded arrival + budget; goodput only credits on-time completions.
struct TenantSlo {
  std::string name;
  int64_t offered = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t failed = 0;
  int64_t deadline_missed = 0;
  int64_t replans = 0;

  /// Total (queue wait + service) virtual latency of completed queries.
  double p50_total_ms = 0.0;
  double p95_total_ms = 0.0;
  double p99_total_ms = 0.0;
  /// Queue wait alone, p99 — the congestion signal.
  double p99_queue_ms = 0.0;

  double offered_qps = 0.0;
  /// Completed-on-time per virtual second. The headline overload metric.
  double goodput_qps = 0.0;
  /// deadline_missed / max(1, ok): miss rate among completions.
  double miss_rate = 0.0;
};

/// Aggregate + per-tenant scorecards for one run.
struct SloReport {
  TenantSlo aggregate;
  std::vector<TenantSlo> tenants;
  util::VirtualNanos horizon_ns = 0;

  std::string ToString() const;
};

/// Accumulates ServedQuery outcomes (from QueryServer::SubmitAt futures)
/// and folds them into an SloReport. Not thread-safe; record from the
/// collection loop only.
class SloAccountant {
 public:
  explicit SloAccountant(std::vector<std::string> tenant_names);

  void Record(const serve::ServedQuery& served);

  /// Builds the report; percentiles and rates are computed here.
  /// `horizon_ns` is the offered-load window (rates = counts / horizon).
  SloReport Report(util::VirtualNanos horizon_ns) const;

  int64_t recorded() const { return recorded_; }

 private:
  struct TenantBucket {
    TenantSlo slo;
    std::vector<double> total_ms;
    std::vector<double> queue_ms;
  };

  static void Finalize(TenantBucket* bucket, util::VirtualNanos horizon_ns);

  std::vector<TenantBucket> buckets_;
  int64_t recorded_ = 0;
};

}  // namespace lqolab::loadgen

#endif  // LQOLAB_LOADGEN_SLO_H_
