#ifndef LQOLAB_LOADGEN_OPEN_LOOP_H_
#define LQOLAB_LOADGEN_OPEN_LOOP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/database.h"
#include "loadgen/arrival.h"
#include "loadgen/slo.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::loadgen {

/// One open-loop overload experiment (docs/overload.md).
struct OpenLoopOptions {
  /// Arrival shape. When `offered_multiple` > 0, base_qps is overridden
  /// with offered_multiple * measured capacity (the usual way to sweep
  /// offered load as a fraction of what the server can actually serve).
  RateProfile profile = RateProfile::Constant(100.0);
  double offered_multiple = 0.0;
  std::vector<TenantSpec> tenants;
  util::VirtualNanos horizon_ns = 10 * util::kNanosPerSecond;
  /// When > 0, `horizon_ns` is recomputed so the expected arrival count is
  /// this value regardless of capacity/multiple — keeps wall-clock cost
  /// predictable across machines and LQOLAB_SCALE settings.
  int64_t target_arrivals = 0;
  /// When > 0, every tenant whose deadline_budget_ns is 0 gets a budget of
  /// this multiple of the mix-weighted mean warm service time — an SLO
  /// that self-calibrates to the database scale.
  double deadline_service_multiple = 0.0;
  /// Virtual service capacity k (dispatcher + shedding predictor).
  int32_t virtual_workers = 4;
  /// Real worker threads (wall-clock only; 0 = hardware default).
  int32_t real_workers = 0;
  int32_t queue_capacity = 4096;
  /// Deadline-aware admission shedding (ServerOptions::shed_on_predicted_miss).
  bool shed_on_predicted_miss = false;
  uint64_t seed = 42;
};

/// Outcome of one OpenLoopRunner::Run.
struct OpenLoopResult {
  SloReport report;
  /// Virtual queries/second the server can complete at 100% utilization:
  /// virtual_workers / mix-weighted mean service time (from the warmup
  /// pass). The denominator of every "offered multiple".
  double capacity_qps = 0.0;
  /// base_qps the run actually offered (after offered_multiple scaling).
  double offered_qps = 0.0;
  int64_t arrivals = 0;
  /// Warm per-query virtual service estimates (index = workload index);
  /// these were handed to SubmitAt as the shedding predictor's input.
  std::vector<util::VirtualNanos> service_estimate_ns;
  /// Order-independent digest of every completion's (rows, completion_vt):
  /// two runs with the same options must produce the same fingerprint —
  /// the reproducibility assertion of tests and benches.
  uint64_t fingerprint = 0;
};

/// Drives a QueryServer with a seeded open-loop arrival stream and scores
/// the outcome against per-tenant SLOs. The runner owns the full protocol:
///   1. a closed-loop warmup pass over every distinct workload query (twice:
///      once to warm the plan cache, once to measure warm virtual service
///      times, which become the shedding predictor's estimates),
///   2. capacity calibration from those estimates and the tenant mix,
///   3. arrival generation (ArrivalGenerator) over the horizon,
///   4. SubmitAt for every arrival, future collection, SLO accounting.
/// Deterministic end to end: virtual metrics depend only on (options,
/// workload, database seed), never on real thread scheduling.
class OpenLoopRunner {
 public:
  /// `db` must outlive the runner; it is never executed on directly
  /// (QueryServer replicates it per worker).
  OpenLoopRunner(engine::Database* db, std::vector<query::Query> workload);

  OpenLoopResult Run(const OpenLoopOptions& options);

  const std::vector<query::Query>& workload() const { return workload_; }

 private:
  engine::Database* db_;
  std::vector<query::Query> workload_;
};

}  // namespace lqolab::loadgen

#endif  // LQOLAB_LOADGEN_OPEN_LOOP_H_
