#include "query/query.h"

#include <sstream>

#include "util/check.h"

namespace lqolab::query {

std::string Predicate::Signature() const {
  std::ostringstream os;
  os << alias << "." << column << ":" << static_cast<int>(kind) << ":";
  for (storage::Value v : int_values) os << v << ",";
  for (const auto& s : str_values) os << s << ",";
  return os.str();
}

AliasMask Query::AdjacencyMask(AliasId alias) const {
  AliasMask mask = 0;
  for (const auto& edge : edges) {
    if (edge.left_alias == alias) mask |= MaskOf(edge.right_alias);
    if (edge.right_alias == alias) mask |= MaskOf(edge.left_alias);
  }
  return mask;
}

bool Query::IsConnected(AliasMask mask) const {
  if (mask == 0) return false;
  // BFS over bits starting from the lowest set bit.
  const AliasMask start = mask & (~mask + 1);
  AliasMask visited = start;
  AliasMask frontier = start;
  while (frontier != 0) {
    AliasMask next = 0;
    AliasMask bits = frontier;
    while (bits != 0) {
      const AliasId alias = static_cast<AliasId>(__builtin_ctz(bits));
      bits &= bits - 1;
      next |= AdjacencyMask(alias) & mask & ~visited;
    }
    visited |= next;
    frontier = next;
  }
  return visited == mask;
}

bool Query::HasEdgeBetween(AliasMask a, AliasMask b) const {
  LQOLAB_DCHECK((a & b) == 0);
  for (const auto& edge : edges) {
    const AliasMask l = MaskOf(edge.left_alias);
    const AliasMask r = MaskOf(edge.right_alias);
    if (((l & a) && (r & b)) || ((l & b) && (r & a))) return true;
  }
  return false;
}

std::vector<JoinEdge> Query::EdgesBetween(AliasMask a, AliasMask b) const {
  std::vector<JoinEdge> out;
  for (const auto& edge : edges) {
    const AliasMask l = MaskOf(edge.left_alias);
    const AliasMask r = MaskOf(edge.right_alias);
    if ((l & a) && (r & b)) {
      out.push_back(edge);
    } else if ((l & b) && (r & a)) {
      // Normalize so that the left side is in `a`.
      JoinEdge flipped;
      flipped.left_alias = edge.right_alias;
      flipped.left_column = edge.right_column;
      flipped.right_alias = edge.left_alias;
      flipped.right_column = edge.left_column;
      out.push_back(flipped);
    }
  }
  return out;
}

std::vector<const Predicate*> Query::PredicatesFor(AliasId alias) const {
  std::vector<const Predicate*> out;
  for (const auto& pred : predicates) {
    if (pred.alias == alias) out.push_back(&pred);
  }
  return out;
}

namespace {

/// Renders a string literal in single quotes, doubling embedded quotes
/// (standard SQL escaping), so every rendered query re-parses.
std::string QuoteSqlString(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

}  // namespace

std::string Query::ToSql(const catalog::Schema& schema) const {
  std::ostringstream os;
  os << "SELECT COUNT(*) FROM ";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) os << ", ";
    os << schema.table(relations[i].table).name << " AS "
       << relations[i].alias;
  }
  if (edges.empty() && predicates.empty()) return os.str();
  os << " WHERE ";
  bool first = true;
  auto sep = [&]() {
    if (!first) os << " AND ";
    first = false;
  };
  for (const auto& edge : edges) {
    sep();
    os << relations[static_cast<size_t>(edge.left_alias)].alias << "."
       << schema.table(relations[static_cast<size_t>(edge.left_alias)].table)
              .columns[static_cast<size_t>(edge.left_column)]
              .name
       << " = "
       << relations[static_cast<size_t>(edge.right_alias)].alias << "."
       << schema.table(relations[static_cast<size_t>(edge.right_alias)].table)
              .columns[static_cast<size_t>(edge.right_column)]
              .name;
  }
  for (const auto& pred : predicates) {
    sep();
    const auto& rel = relations[static_cast<size_t>(pred.alias)];
    os << rel.alias << "."
       << schema.table(rel.table).columns[static_cast<size_t>(pred.column)].name;
    switch (pred.kind) {
      case Predicate::Kind::kEq:
        if (!pred.str_values.empty()) {
          os << " = " << QuoteSqlString(pred.str_values[0]);
        } else {
          os << " = " << pred.int_values[0];
        }
        break;
      case Predicate::Kind::kIn: {
        os << " IN (";
        bool first_value = true;
        for (const auto& s : pred.str_values) {
          if (!first_value) os << ", ";
          first_value = false;
          os << QuoteSqlString(s);
        }
        for (storage::Value v : pred.int_values) {
          if (!first_value) os << ", ";
          first_value = false;
          os << v;
        }
        os << ")";
        break;
      }
      case Predicate::Kind::kRange:
        os << " BETWEEN " << pred.int_values[0] << " AND "
           << pred.int_values[1];
        break;
      case Predicate::Kind::kIsNull:
        os << " IS NULL";
        break;
      case Predicate::Kind::kNotNull:
        os << " IS NOT NULL";
        break;
      case Predicate::Kind::kLikePrefix:
        os << " LIKE " << QuoteSqlString(pred.str_values[0] + "%");
        break;
    }
  }
  return os.str();
}

}  // namespace lqolab::query
