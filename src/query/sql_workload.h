#ifndef LQOLAB_QUERY_SQL_WORKLOAD_H_
#define LQOLAB_QUERY_SQL_WORKLOAD_H_

#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "query/query.h"
#include "util/status.h"

namespace lqolab::query {

/// Loads a workload from SQL text. The format is a sequence of entries
///
///   -- <id>
///   SELECT COUNT(*) FROM ... WHERE ...;
///
/// where the header comment names the query ("c3a", "h12b", ...) and
/// everything up to the next header is one statement (newlines and extra
/// `--` comments allowed). Each statement is parsed and bound against
/// `schema` via sql::ParseAndBindSql; ids map to template/variant through
/// sql::AssignQueryId, so variants of one family share a template_id and
/// the benchkit splits group them correctly. The first malformed entry
/// aborts the load with a diagnostic prefixed "<source>:<id>".
util::Status LoadSqlWorkloadText(std::string_view text,
                                 const std::string& source_name,
                                 const catalog::Schema& schema,
                                 std::vector<Query>* out);

/// LoadSqlWorkloadText over the contents of `path`.
util::Status LoadSqlWorkloadFile(const std::string& path,
                                 const catalog::Schema& schema,
                                 std::vector<Query>* out);

}  // namespace lqolab::query

#endif  // LQOLAB_QUERY_SQL_WORKLOAD_H_
