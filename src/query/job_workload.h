#ifndef LQOLAB_QUERY_JOB_WORKLOAD_H_
#define LQOLAB_QUERY_JOB_WORKLOAD_H_

#include <vector>

#include "catalog/schema.h"
#include "query/query.h"

namespace lqolab::query {

/// Number of base-query templates and total queries in the JOB-lite
/// workload; these match the real Join Order Benchmark (33 templates whose
/// 2-6 filter variants add up to 113 queries, paper §7.2).
constexpr int32_t kJobTemplateCount = 33;
constexpr int32_t kJobQueryCount = 113;

/// Number of variants of each template (index 0 = template 1). Matches the
/// real JOB's family sizes.
const std::vector<int32_t>& JobVariantCounts();

/// Builds the full JOB-lite workload against the IMDB schema: 33 join
/// templates over 3-16 joins (up to 17 aliased tables in template 29, like
/// JOB's 29a), each with 2-6 filter variants, 113 queries total. Queries are
/// named "1a".."33c" and are deterministic.
std::vector<Query> BuildJobLiteWorkload(const catalog::Schema& schema);

/// Builds a single query by template id (1-based) and variant letter.
Query BuildJobQuery(const catalog::Schema& schema, int32_t template_id,
                    char variant);

/// Ext-JOB-lite: previously UNSEEN query templates for generalization
/// testing (paper §6.1 discusses Neo's Ext-JOB; this is the equivalent
/// harder-than-base-query-split level: entirely novel join shapes, e.g.
/// person-centric queries without `title` and two-hop movie-link chains).
/// Templates are numbered 101+, query ids "e1a".."e10b".
std::vector<Query> BuildExtJobWorkload(const catalog::Schema& schema);

}  // namespace lqolab::query

#endif  // LQOLAB_QUERY_JOB_WORKLOAD_H_
