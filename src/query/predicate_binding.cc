#include "query/predicate_binding.h"

#include <algorithm>

#include "util/check.h"

namespace lqolab::query {

using storage::kNullValue;
using storage::Value;

bool BoundPredicate::Matches(Value value) const {
  switch (kind) {
    case Predicate::Kind::kIsNull:
      return value == kNullValue;
    case Predicate::Kind::kNotNull:
      return value != kNullValue;
    case Predicate::Kind::kRange:
      return value != kNullValue && value >= lo && value <= hi;
    case Predicate::Kind::kEq:
    case Predicate::Kind::kIn:
    case Predicate::Kind::kLikePrefix:
      return value != kNullValue &&
             std::binary_search(values.begin(), values.end(), value);
  }
  return false;
}

BoundPredicate BindPredicate(const Predicate& pred,
                             const storage::Table& table) {
  BoundPredicate bound;
  bound.column = pred.column;
  bound.kind = pred.kind;
  switch (pred.kind) {
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kNotNull:
      break;
    case Predicate::Kind::kRange:
      LQOLAB_CHECK_EQ(pred.int_values.size(), 2u);
      bound.lo = pred.int_values[0];
      bound.hi = pred.int_values[1];
      break;
    case Predicate::Kind::kEq:
    case Predicate::Kind::kIn: {
      bound.values = pred.int_values;
      const storage::Column& column = table.column(pred.column);
      for (const auto& text : pred.str_values) {
        const Value code = column.LookupString(text);
        if (code != kNullValue) bound.values.push_back(code);
      }
      std::sort(bound.values.begin(), bound.values.end());
      bound.values.erase(
          std::unique(bound.values.begin(), bound.values.end()),
          bound.values.end());
      break;
    }
    case Predicate::Kind::kLikePrefix: {
      // Expand the prefix against the dictionary: codes are dense 0..n-1,
      // so a full sweep finds every matching string. After expansion the
      // bound form is an ordinary sorted membership set (kIn semantics);
      // a prefix matching nothing yields the correct empty match set.
      LQOLAB_CHECK_EQ(pred.str_values.size(), 1u);
      const storage::Column& column = table.column(pred.column);
      const std::string& prefix = pred.str_values[0];
      for (Value code = 0; code < column.dictionary_size(); ++code) {
        const std::string& text = column.StringAt(code);
        if (text.size() >= prefix.size() &&
            text.compare(0, prefix.size(), prefix) == 0) {
          bound.values.push_back(code);
        }
      }
      std::sort(bound.values.begin(), bound.values.end());
      break;
    }
  }
  return bound;
}

std::vector<BoundPredicate> BindAliasPredicates(const Query& q, AliasId alias,
                                                const storage::Table& table) {
  std::vector<BoundPredicate> bound;
  for (const Predicate* pred : q.PredicatesFor(alias)) {
    bound.push_back(BindPredicate(*pred, table));
  }
  return bound;
}

}  // namespace lqolab::query
