#include "query/predicate_binding.h"

#include <algorithm>

#include "util/check.h"

namespace lqolab::query {

using storage::kNullValue;
using storage::Value;

bool BoundPredicate::Matches(Value value) const {
  switch (kind) {
    case Predicate::Kind::kIsNull:
      return value == kNullValue;
    case Predicate::Kind::kNotNull:
      return value != kNullValue;
    case Predicate::Kind::kRange:
      return value != kNullValue && value >= lo && value <= hi;
    case Predicate::Kind::kEq:
    case Predicate::Kind::kIn:
      return value != kNullValue &&
             std::binary_search(values.begin(), values.end(), value);
  }
  return false;
}

BoundPredicate BindPredicate(const Predicate& pred,
                             const storage::Table& table) {
  BoundPredicate bound;
  bound.column = pred.column;
  bound.kind = pred.kind;
  switch (pred.kind) {
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kNotNull:
      break;
    case Predicate::Kind::kRange:
      LQOLAB_CHECK_EQ(pred.int_values.size(), 2u);
      bound.lo = pred.int_values[0];
      bound.hi = pred.int_values[1];
      break;
    case Predicate::Kind::kEq:
    case Predicate::Kind::kIn: {
      bound.values = pred.int_values;
      const storage::Column& column = table.column(pred.column);
      for (const auto& text : pred.str_values) {
        const Value code = column.LookupString(text);
        if (code != kNullValue) bound.values.push_back(code);
      }
      std::sort(bound.values.begin(), bound.values.end());
      bound.values.erase(
          std::unique(bound.values.begin(), bound.values.end()),
          bound.values.end());
      break;
    }
  }
  return bound;
}

std::vector<BoundPredicate> BindAliasPredicates(const Query& q, AliasId alias,
                                                const storage::Table& table) {
  std::vector<BoundPredicate> bound;
  for (const Predicate* pred : q.PredicatesFor(alias)) {
    bound.push_back(BindPredicate(*pred, table));
  }
  return bound;
}

}  // namespace lqolab::query
