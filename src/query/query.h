#ifndef LQOLAB_QUERY_QUERY_H_
#define LQOLAB_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/column.h"

namespace lqolab::query {

/// Index of a relation (alias) within one query; queries have at most 32
/// aliases, so relation subsets are uint32_t bitmasks.
using AliasId = int32_t;
using AliasMask = uint32_t;

inline AliasMask MaskOf(AliasId alias) { return 1u << alias; }

/// One FROM item: a base table under an alias (self-joins use the same
/// table under two aliases, as in JOB's `title t, title t2`).
struct QueryRelation {
  catalog::TableId table = catalog::kInvalidTable;
  std::string alias;
};

/// Equi-join predicate `left_alias.left_column = right_alias.right_column`.
struct JoinEdge {
  AliasId left_alias = -1;
  catalog::ColumnId left_column = catalog::kInvalidColumn;
  AliasId right_alias = -1;
  catalog::ColumnId right_column = catalog::kInvalidColumn;
};

/// Single-relation filter predicate. String literals are stored as text and
/// resolved against a concrete database's dictionary at bind time, so the
/// same workload runs against both the full and the subsampled database.
struct Predicate {
  enum class Kind {
    kEq,          ///< column = literal
    kIn,          ///< column IN (literals)
    kRange,       ///< int_lo <= column <= int_hi (integer columns only)
    kIsNull,      ///< column IS NULL
    kNotNull,     ///< column IS NOT NULL
    kLikePrefix,  ///< column LIKE 'prefix%' (string columns only); the
                  ///< prefix is str_values[0] and is expanded against the
                  ///< table dictionary at bind time, after which the bound
                  ///< form evaluates exactly like kIn.
  };

  AliasId alias = -1;
  catalog::ColumnId column = catalog::kInvalidColumn;
  Kind kind = Kind::kEq;

  /// For kEq/kIn on integer columns; for kRange: {lo, hi} inclusive.
  std::vector<storage::Value> int_values;
  /// For kEq/kIn on string columns.
  std::vector<std::string> str_values;

  /// Stable textual signature used as a memoization key.
  std::string Signature() const;
};

/// A join query: SELECT COUNT(*) over a connected equi-join graph with
/// per-relation filters. This mirrors the JOB queries, which are star/chain
/// joins around `title` with conjunctive filters.
struct Query {
  std::string id;          ///< e.g. "13a"
  int32_t template_id = 0; ///< base-query family, e.g. 13
  char variant = 'a';      ///< variant letter within the family
  std::vector<QueryRelation> relations;
  std::vector<JoinEdge> edges;
  std::vector<Predicate> predicates;

  int32_t relation_count() const {
    return static_cast<int32_t>(relations.size());
  }

  /// "Number of joins" as the paper counts it (FROM items minus one).
  int32_t join_count() const { return relation_count() - 1; }

  /// Mask containing every relation.
  AliasMask FullMask() const { return (1u << relation_count()) - 1; }

  /// Aliases adjacent to `alias` in the join graph.
  AliasMask AdjacencyMask(AliasId alias) const;

  /// True when the relations in `mask` form a connected join subgraph.
  bool IsConnected(AliasMask mask) const;

  /// True when some join edge connects `a` and `b` (disjoint masks).
  bool HasEdgeBetween(AliasMask a, AliasMask b) const;

  /// Edges with one side in `a` and the other in `b`.
  std::vector<JoinEdge> EdgesBetween(AliasMask a, AliasMask b) const;

  /// Predicates that apply to `alias`.
  std::vector<const Predicate*> PredicatesFor(AliasId alias) const;

  /// SQL rendering (display only; the engine consumes the structure).
  std::string ToSql(const catalog::Schema& schema) const;
};

}  // namespace lqolab::query

#endif  // LQOLAB_QUERY_QUERY_H_
