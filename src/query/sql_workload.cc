#include "query/sql_workload.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "sql/binder.h"

namespace lqolab::query {

using util::Status;
using util::StatusCode;

namespace {

/// Returns the id when `line` is a `-- <id>` header (exactly one token
/// after the dashes), empty otherwise. Ordinary comments with several words
/// stay comments.
std::string HeaderId(const std::string& line) {
  size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  if (line.compare(i, 2, "--") != 0) return "";
  i += 2;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  size_t end = i;
  while (end < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  if (end == i) return "";
  size_t rest = end;
  while (rest < line.size() &&
         std::isspace(static_cast<unsigned char>(line[rest]))) {
    ++rest;
  }
  if (rest != line.size()) return "";
  return line.substr(i, end - i);
}

bool IsBlankOrComment(const std::string& line) {
  size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  return i == line.size() || line.compare(i, 2, "--") == 0;
}

Status Flush(const std::string& id, const std::string& statement,
             const std::string& source_name, const catalog::Schema& schema,
             std::vector<Query>* out) {
  Query q;
  const Status bound = sql::ParseAndBindSql(statement, schema, &q);
  if (!bound.ok()) {
    return Status(bound.code(), source_name + ":" + id + ": " +
                                    bound.message());
  }
  sql::AssignQueryId(id, &q);
  out->push_back(std::move(q));
  return Status::Ok();
}

}  // namespace

Status LoadSqlWorkloadText(std::string_view text,
                           const std::string& source_name,
                           const catalog::Schema& schema,
                           std::vector<Query>* out) {
  out->clear();
  std::istringstream in{std::string(text)};
  std::string line;
  std::string id;
  std::string statement;
  while (std::getline(in, line)) {
    const std::string header = HeaderId(line);
    if (!header.empty()) {
      if (!id.empty()) {
        const Status status =
            Flush(id, statement, source_name, schema, out);
        if (!status.ok()) return status;
      }
      id = header;
      statement.clear();
      continue;
    }
    if (id.empty()) {
      if (IsBlankOrComment(line)) continue;
      return Status(StatusCode::kInvalidArgument,
                    source_name + ": statement before the first '-- <id>' "
                                  "header");
    }
    statement += line;
    statement += '\n';
  }
  if (!id.empty()) {
    const Status status = Flush(id, statement, source_name, schema, out);
    if (!status.ok()) return status;
  }
  for (size_t i = 0; i < out->size(); ++i) {
    for (size_t j = i + 1; j < out->size(); ++j) {
      if ((*out)[i].id == (*out)[j].id) {
        return Status(StatusCode::kInvalidArgument,
                      source_name + ": duplicate query id '" + (*out)[i].id +
                          "'");
      }
    }
  }
  return Status::Ok();
}

Status LoadSqlWorkloadFile(const std::string& path,
                           const catalog::Schema& schema,
                           std::vector<Query>* out) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot open workload file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // The diagnostic source name is the basename; full paths differ between
  // build and install trees.
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return LoadSqlWorkloadText(buffer.str(), name, schema, out);
}

}  // namespace lqolab::query
