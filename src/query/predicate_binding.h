#ifndef LQOLAB_QUERY_PREDICATE_BINDING_H_
#define LQOLAB_QUERY_PREDICATE_BINDING_H_

#include <vector>

#include "query/query.h"
#include "storage/table.h"

namespace lqolab::query {

/// A predicate bound to a concrete table: string literals are resolved to
/// dictionary codes, so evaluation is pure integer comparison. Literals
/// absent from the dictionary resolve to an empty match set — the correct
/// semantics for a value that does not occur in the data.
struct BoundPredicate {
  catalog::ColumnId column = catalog::kInvalidColumn;
  Predicate::Kind kind = Predicate::Kind::kEq;
  storage::Value lo = 0;               ///< kRange only
  storage::Value hi = 0;               ///< kRange only
  std::vector<storage::Value> values;  ///< kEq/kIn, sorted

  /// Whether a stored value satisfies the predicate.
  bool Matches(storage::Value value) const;
};

/// Binds `pred` against `table`'s dictionaries.
BoundPredicate BindPredicate(const Predicate& pred,
                             const storage::Table& table);

/// Binds all predicates of `alias` in `q`.
std::vector<BoundPredicate> BindAliasPredicates(const Query& q, AliasId alias,
                                                const storage::Table& table);

}  // namespace lqolab::query

#endif  // LQOLAB_QUERY_PREDICATE_BINDING_H_
