#include "query/job_workload.h"

#include <string>

#include "catalog/imdb_schema.h"
#include "util/check.h"

namespace lqolab::query {

namespace {

using catalog::Schema;
using catalog::TableId;
using catalog::imdb::Table;

constexpr storage::Value kOpenLo = -2000000000;
constexpr storage::Value kOpenHi = 2000000000;

/// Small builder used by the template definitions below.
class QB {
 public:
  QB(const Schema& schema, int32_t template_id, char variant)
      : schema_(schema) {
    query_.template_id = template_id;
    query_.variant = variant;
    query_.id = std::to_string(template_id) + variant;
  }

  /// Adds a FROM item; the alias defaults to the conventional short alias.
  AliasId R(TableId table, const char* alias = nullptr) {
    QueryRelation rel;
    rel.table = table;
    rel.alias = alias != nullptr ? alias : catalog::ImdbShortAlias(table);
    query_.relations.push_back(rel);
    return static_cast<AliasId>(query_.relations.size()) - 1;
  }

  /// Adds a join edge a.col_a = b.col_b.
  QB& J(AliasId a, const char* col_a, AliasId b, const char* col_b) {
    JoinEdge edge;
    edge.left_alias = a;
    edge.left_column = Col(a, col_a);
    edge.right_alias = b;
    edge.right_column = Col(b, col_b);
    query_.edges.push_back(edge);
    return *this;
  }

  QB& EqS(AliasId a, const char* col, const std::string& value) {
    Predicate p = Base(a, col, Predicate::Kind::kEq);
    p.str_values = {value};
    query_.predicates.push_back(std::move(p));
    return *this;
  }

  QB& EqI(AliasId a, const char* col, storage::Value value) {
    Predicate p = Base(a, col, Predicate::Kind::kEq);
    p.int_values = {value};
    query_.predicates.push_back(std::move(p));
    return *this;
  }

  QB& InS(AliasId a, const char* col, std::vector<std::string> values) {
    Predicate p = Base(a, col, Predicate::Kind::kIn);
    p.str_values = std::move(values);
    query_.predicates.push_back(std::move(p));
    return *this;
  }

  QB& InI(AliasId a, const char* col, std::vector<storage::Value> values) {
    Predicate p = Base(a, col, Predicate::Kind::kIn);
    p.int_values = std::move(values);
    query_.predicates.push_back(std::move(p));
    return *this;
  }

  QB& Between(AliasId a, const char* col, storage::Value lo,
              storage::Value hi) {
    Predicate p = Base(a, col, Predicate::Kind::kRange);
    p.int_values = {lo, hi};
    query_.predicates.push_back(std::move(p));
    return *this;
  }

  QB& Gt(AliasId a, const char* col, storage::Value lo) {
    return Between(a, col, lo + 1, kOpenHi);
  }

  QB& Lt(AliasId a, const char* col, storage::Value hi) {
    return Between(a, col, kOpenLo, hi - 1);
  }

  QB& Null(AliasId a, const char* col) {
    query_.predicates.push_back(Base(a, col, Predicate::Kind::kIsNull));
    return *this;
  }

  QB& NotNull(AliasId a, const char* col) {
    query_.predicates.push_back(Base(a, col, Predicate::Kind::kNotNull));
    return *this;
  }

  Query Build() {
    LQOLAB_CHECK_MSG(query_.IsConnected(query_.FullMask()),
                     "query " << query_.id << " join graph not connected");
    return std::move(query_);
  }

 private:
  catalog::ColumnId Col(AliasId alias, const char* name) const {
    const TableId table =
        query_.relations[static_cast<size_t>(alias)].table;
    const catalog::ColumnId col = schema_.table(table).FindColumn(name);
    LQOLAB_CHECK_MSG(col != catalog::kInvalidColumn,
                     schema_.table(table).name << "." << name);
    return col;
  }

  Predicate Base(AliasId alias, const char* col, Predicate::Kind kind) const {
    Predicate p;
    p.alias = alias;
    p.column = Col(alias, col);
    p.kind = kind;
    return p;
  }

  const Schema& schema_;
  Query query_;
};

int VariantIndex(char variant) { return variant - 'a'; }

/// Cyclic pick from a per-template option list.
template <typename T>
const T& Pick(const std::vector<T>& options, char variant) {
  return options[static_cast<size_t>(VariantIndex(variant)) % options.size()];
}

struct YearRange {
  storage::Value lo;
  storage::Value hi;
};

// Shared option lists (values must exist in the generated data pools).
const std::vector<YearRange> kYearRanges = {
    {1950, 2010}, {1995, 2015}, {2005, kOpenHi}, {1980, 2005},
    {2010, kOpenHi}, {kOpenLo, 2000}};
const std::vector<std::string> kHeadKeywords = {"kw_0", "kw_1", "kw_2",
                                                "kw_3", "kw_5"};
const std::vector<std::vector<std::string>> kKeywordSets = {
    {"kw_1", "kw_4", "kw_9"},
    {"kw_0", "kw_12"},
    {"kw_5", "kw_200", "kw_311", "kw_977"},
    {"kw_2", "kw_6", "kw_30", "kw_88"},
    {"kw_0", "kw_7", "kw_5000"},
    {"kw_3", "kw_41", "kw_11"}};
const std::vector<std::vector<std::string>> kGenreSets = {
    {"drama", "comedy", "romance", "family"},
    {"horror", "thriller", "crime", "mystery"},
    {"documentary", "biography", "history", "short"},
    {"action", "adventure", "sci-fi", "fantasy"},
    {"drama", "thriller", "crime"},
    {"comedy", "music", "musical", "animation"}};
const std::vector<std::string> kCountries = {"[us]", "[gb]", "[de]", "[fr]",
                                             "[jp]", "[it]"};
const std::vector<std::vector<std::string>> kCountrySets = {
    {"[us]"},
    {"[de]", "[fr]", "[it]", "[es]"},
    {"[jp]", "[kr]", "[cn]", "[hk]"},
    {"[gb]", "[ie]", "[au]", "[ca]"},
    {"[se]", "[dk]", "[no]", "[fi]"}};
const std::vector<std::vector<std::string>> kRatingSets = {
    {"rating_5", "rating_6", "rating_7", "rating_8", "rating_9"},
    {"rating_0", "rating_1", "rating_2", "rating_3", "rating_4"},
    {"rating_4", "rating_5", "rating_6", "rating_7"},
    {"rating_7", "rating_8", "rating_9"}};
const std::vector<std::vector<std::string>> kVotesSets = {
    {"votes_6", "votes_7", "votes_8", "votes_9", "votes_10", "votes_11"},
    {"votes_0", "votes_1", "votes_2", "votes_3", "votes_4", "votes_5"},
    {"votes_3", "votes_4", "votes_5", "votes_6", "votes_7", "votes_8"},
    {"votes_9", "votes_10", "votes_11"}};
const std::vector<std::string> kMovieLangs = {"lang_0", "lang_1", "lang_2",
                                              "lang_4", "lang_7"};
const std::vector<std::string> kMovieCountries = {
    "country_0", "country_1", "country_2", "country_3", "country_8"};
const std::vector<std::string> kPcodes = {"np_0", "np_1", "np_3", "np_7",
                                          "np_15", "np_40"};
const std::vector<std::string> kLinkTypes = {"follows", "remake of",
                                             "features", "references"};
const std::vector<std::vector<std::string>> kLinkSets = {
    {"follows", "followed by"},
    {"remake of", "remade as"},
    {"features", "featured in"},
    {"references", "referenced in"}};
const std::vector<std::string> kCastNotes = {"(voice)", "(uncredited)",
                                             "(credit only)",
                                             "(archive footage)"};
const std::vector<std::string> kKinds = {"movie", "episode", "tv series",
                                         "tv movie", "video movie"};

}  // namespace

const std::vector<int32_t>& JobVariantCounts() {
  // Family sizes of the real JOB (113 queries over 33 templates).
  static const std::vector<int32_t> counts = {
      4, 4, 3, 3, 3, 6, 3, 4, 4, 3,  // 1-10
      4, 3, 4, 3, 4, 4, 6, 3, 4, 3,  // 11-20
      3, 4, 3, 2, 3, 3, 3, 3, 3, 3,  // 21-30
      3, 2, 3};                      // 31-33
  return counts;
}

Query BuildJobQuery(const catalog::Schema& schema, int32_t template_id,
                    char variant) {
  QB b(schema, template_id, variant);
  const char v = variant;
  switch (template_id) {
    case 1: {  // 5 relations: production-company movies by ranking info.
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it = b.R(Table::kInfoType);
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it, "id");
      b.EqS(ct, "kind", "production companies");
      const std::vector<std::string> infos = {"top 250 rank", "votes",
                                              "rating", "votes"};
      b.EqS(it, "info", Pick(infos, v));
      if (v == 'a' || v == 'c') b.NotNull(mc, "note");
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 2: {  // 5 relations: keyworded movies by company country.
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(mc, "movie_id", mk, "movie_id");  // cycle edge, as in JOB 2
      b.EqS(cn, "country_code", Pick(kCountries, v));
      b.EqS(k, "keyword", Pick(kHeadKeywords, v));
      break;
    }
    case 3: {  // 4 relations (3 joins): genre movies with a keyword.
      AliasId t = b.R(Table::kTitle);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId mi = b.R(Table::kMovieInfo);
      b.J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", mi, "movie_id");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.Gt(t, "production_year", 1990 + 10 * VariantIndex(v));
      break;
    }
    case 4: {  // 5 relations: rated keyworded movies.
      AliasId t = b.R(Table::kTitle);
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it = b.R(Table::kInfoType);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(it, "info", "rating");
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      break;
    }
    case 5: {  // 5 relations: language of production-company releases.
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it = b.R(Table::kInfoType);
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it, "id");
      const std::vector<std::string> ct_kinds = {"production companies",
                                                 "distributors",
                                                 "production companies"};
      b.EqS(ct, "kind", Pick(ct_kinds, v));
      b.EqS(it, "info", "languages");
      b.EqS(mi, "info", Pick(kMovieLangs, v));
      if (v == 'b') b.NotNull(mc, "note");
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 6: {  // 5 relations: cast of keyworded movies (6 variants).
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.EqS(n, "name_pcode_cf", Pick(kPcodes, v));
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 7: {  // 8 relations: biographies of people in linked movies.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId pi = b.R(Table::kPersonInfo);
      AliasId it = b.R(Table::kInfoType);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(n, "id", pi, "person_id")
          .J(pi, "info_type_id", it, "id")
          .J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id");
      b.EqS(it, "info", "mini biography");
      b.EqS(lt, "link", Pick(kLinkTypes, v));
      const std::vector<std::string> genders = {"m", "f", "m"};
      b.EqS(n, "gender", Pick(genders, v));
      b.Gt(t, "production_year", 1975 + 15 * VariantIndex(v));
      break;
    }
    case 8: {  // 7 relations: roles in company-backed movies.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id");
      const std::vector<std::string> roles = {"actress", "actor", "writer",
                                              "producer"};
      b.EqS(rt, "role", Pick(roles, v));
      b.EqS(cn, "country_code", Pick(kCountries, v));
      if (v == 'a' || v == 'd') b.EqS(ci, "note", "(voice)");
      break;
    }
    case 9: {  // 8 relations: characters played by gendered actors.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id");
      b.EqS(rt, "role", v == 'b' ? "actor" : "actress");
      b.EqS(n, "gender", v == 'b' ? "m" : "f");
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 10: {  // 7 relations: voiced characters in typed companies.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId cn = b.R(Table::kCompanyName);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_type_id", ct, "id")
          .J(mc, "company_id", cn, "id");
      b.EqS(ci, "note", Pick(kCastNotes, v));
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      const std::vector<std::string> roles = {"actor", "actress", "producer"};
      b.EqS(rt, "role", Pick(roles, v));
      break;
    }
    case 11: {  // 8 relations: linked keyworded movies by company.
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id");
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(lt, "link", Pick(kLinkSets, v));
      b.Gt(t, "production_year", 1950 + 20 * VariantIndex(v));
      break;
    }
    case 12: {  // 8 relations: genre + rating with two info_type aliases.
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(mi, "movie_id", midx, "movie_id");  // cycle edge
      b.EqS(it1, "info", "genres");
      b.EqS(it2, "info", "rating");
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.EqS(cn, "country_code", Pick(kCountries, v));
      break;
    }
    case 13: {  // 9 relations: template 12 + kind_type.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id");
      b.EqS(kt, "kind", Pick(kKinds, v));
      b.EqS(it1, "info", "release dates");
      b.EqS(it2, "info", "rating");
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.EqS(cn, "country_code", Pick(kCountries, v));
      b.EqS(ct, "kind", "production companies");
      break;
    }
    case 14: {  // 8 relations: rated genre movies of a kind.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(kt, "kind", Pick(kKinds, v));
      b.EqS(it1, "info", "countries");
      b.EqS(it2, "info", "rating");
      b.InS(mi, "info", {Pick(kMovieCountries, v)});
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      break;
    }
    case 15: {  // 9 relations: releases with alternate titles (cycle edge).
      AliasId t = b.R(Table::kTitle);
      AliasId at = b.R(Table::kAkaTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId ct = b.R(Table::kCompanyType);
      b.J(t, "id", at, "movie_id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(mc, "movie_id", mi, "movie_id");  // cycle edge
      b.EqS(cn, "country_code", "[us]");
      b.EqS(it1, "info", "release dates");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 16: {  // 8 relations: episodes by cast and keyword.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.EqS(cn, "country_code", Pick(kCountries, v));
      if (v == 'a' || v == 'c') {
        b.Between(t, "episode_nr", 1, 10);
      } else {
        b.Gt(t, "season_nr", 2);
      }
      break;
    }
    case 17: {  // 9 relations: characters in keyworded company movies.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId chn = b.R(Table::kCharName);
      AliasId n = b.R(Table::kName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "person_id", n, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(n, "name_pcode_cf", Pick(kPcodes, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      break;
    }
    case 18: {  // 7 relations: votes for gendered casts.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id");
      b.EqS(n, "gender", v == 'b' ? "f" : "m");
      b.EqS(it1, "info", "genres");
      b.EqS(it2, "info", "votes");
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.InS(midx, "info", Pick(kVotesSets, v));
      break;
    }
    case 19: {  // 10 relations: voiced actresses in US releases.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it = b.R(Table::kInfoType);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it, "id");
      b.EqS(it, "info", "release dates");
      b.EqS(n, "gender", "f");
      b.EqS(rt, "role", "actress");
      b.EqS(cn, "country_code", Pick(kCountries, v));
      if (v == 'a') b.EqS(ci, "note", "(voice)");
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 20: {  // 10 relations: complete casts of kind-typed movies.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId cct2 = b.R(Table::kCompCastType, "cct2");
      AliasId ci = b.R(Table::kCastInfo);
      AliasId chn = b.R(Table::kCharName);
      AliasId n = b.R(Table::kName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", cc, "movie_id")
          .J(cc, "subject_id", cct1, "id")
          .J(cc, "status_id", cct2, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "person_id", n, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(kt, "kind", "movie");
      b.EqS(cct1, "kind", v == 'c' ? "crew" : "cast");
      b.EqS(cct2, "kind", v == 'b' ? "complete+verified" : "complete");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      break;
    }
    case 21: {  // 10 relations: linked movies of companies with info.
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      AliasId t2 = b.R(Table::kTitle, "t2");
      AliasId mi = b.R(Table::kMovieInfo);
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id")
          .J(ml, "linked_movie_id", t2, "id")
          .J(t, "id", mi, "movie_id");
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(lt, "link", Pick(kLinkSets, v));
      b.InS(mi, "info", {Pick(kMovieCountries, v)});
      break;
    }
    case 22: {  // 11 relations: rated genre movies of companies.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(mi, "movie_id", mc, "movie_id");  // cycle edge
      b.EqS(kt, "kind", Pick(kKinds, v));
      b.EqS(it1, "info", "countries");
      b.EqS(it2, "info", "votes");
      b.InS(mi, "info", {Pick(kMovieCountries, v)});
      b.InS(midx, "info", Pick(kVotesSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      b.Gt(t, "production_year", 1970 + 5 * VariantIndex(v));
      break;
    }
    case 23: {  // 11 relations: complete casts of US releases.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", cc, "movie_id")
          .J(cc, "status_id", cct1, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(cct1, "kind", "complete");
      b.EqS(kt, "kind", Pick(kKinds, v));
      b.EqS(it1, "info", "release dates");
      b.EqS(cn, "country_code", "[us]");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.Gt(t, "production_year", 1985 + 5 * VariantIndex(v));
      break;
    }
    case 24: {  // 12 relations (GEQO range): cast of keyworded US releases.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it = b.R(Table::kInfoType);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(n, "name_pcode_cf", Pick(kPcodes, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.EqS(rt, "role", v == 'b' ? "actor" : "actress");
      b.EqS(it, "info", "release dates");
      b.EqS(cn, "country_code", "[us]");
      b.Gt(t, "production_year", 1990);
      break;
    }
    case 25: {  // 12 relations: horror casts with ratings.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(it1, "info", "genres");
      b.EqS(it2, "info", "rating");
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.EqS(n, "gender", "m");
      break;
    }
    case 26: {  // 12 relations: complete casts of rated kind movies.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId ci = b.R(Table::kCastInfo);
      AliasId chn = b.R(Table::kCharName);
      AliasId n = b.R(Table::kName);
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId mc = b.R(Table::kMovieCompanies);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", cc, "movie_id")
          .J(cc, "status_id", cct1, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "person_id", n, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", mc, "movie_id");
      b.EqS(cct1, "kind", v == 'b' ? "complete" : "complete+verified");
      b.EqS(kt, "kind", "movie");
      b.EqS(it2, "info", "rating");
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      break;
    }
    case 27: {  // 13 relations: linked complete-cast movies of companies.
      AliasId t = b.R(Table::kTitle);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId cct2 = b.R(Table::kCompCastType, "cct2");
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      AliasId t2 = b.R(Table::kTitle, "t2");
      b.J(t, "id", cc, "movie_id")
          .J(cc, "subject_id", cct1, "id")
          .J(cc, "status_id", cct2, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id")
          .J(ml, "linked_movie_id", t2, "id");
      b.EqS(cct1, "kind", "cast");
      b.EqS(cct2, "kind", "complete");
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(lt, "link", Pick(kLinkSets, v));
      b.InS(mi, "info", {Pick(kMovieLangs, v)});
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 28: {  // 13 relations: votes for complete-cast releases.
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId cct2 = b.R(Table::kCompCastType, "cct2");
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId ct = b.R(Table::kCompanyType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", cc, "movie_id")
          .J(cc, "subject_id", cct1, "id")
          .J(cc, "status_id", cct2, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(mc, "company_type_id", ct, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(mi, "movie_id", midx, "movie_id");  // cycle edge
      b.InS(kt, "kind", {"movie", "episode"});
      b.EqS(cct1, "kind", "crew");
      b.EqS(cct2, "kind", v == 'a' ? "complete" : "complete+verified");
      b.EqS(it1, "info", "countries");
      b.InS(mi, "info", {Pick(kMovieCountries, v)});
      b.InS(midx, "info", Pick(kVotesSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.Gt(t, "production_year", 1985 + 5 * VariantIndex(v));
      break;
    }
    case 29: {  // 17 relations: the giant query (like JOB 29a).
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId cct2 = b.R(Table::kCompCastType, "cct2");
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId an = b.R(Table::kAkaName);
      AliasId pi = b.R(Table::kPersonInfo);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", cc, "movie_id")
          .J(cc, "subject_id", cct1, "id")
          .J(cc, "status_id", cct2, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(n, "id", an, "person_id")
          .J(n, "id", pi, "person_id")
          .J(pi, "info_type_id", it2, "id");
      b.EqS(cct1, "kind", "cast");
      b.EqS(cct2, "kind", "complete");
      b.EqS(it1, "info", "release dates");
      b.EqS(it2, "info", "mini biography");
      b.EqS(cn, "country_code", "[us]");
      b.EqS(n, "gender", "f");
      b.EqS(rt, "role", "actress");
      // Like JOB's 29a ("Shrek 2"), the title side is filtered to a narrow
      // window, which keeps the 17-relation join tractable.
      b.EqS(k, "keyword", v == 'a' ? "kw_0" : (v == 'b' ? "kw_1" : "kw_2"));
      const std::vector<YearRange> narrow = {
          {2016, 2024}, {2010, 2015}, {2000, 2009}};
      const YearRange year = Pick(narrow, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 30: {  // 14 relations: the slow family (like JOB 30).
      AliasId t = b.R(Table::kTitle);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId cct2 = b.R(Table::kCompCastType, "cct2");
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", cc, "movie_id")
          .J(cc, "subject_id", cct1, "id")
          .J(cc, "status_id", cct2, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(cct1, "kind", "cast");
      b.EqS(cct2, "kind", "complete");
      b.EqS(it1, "info", "genres");
      b.EqS(it2, "info", "rating");
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.EqS(n, "gender", "m");
      break;
    }
    case 31: {  // 14 relations: like 30 with companies instead of casts.
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId chn = b.R(Table::kCharName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it1 = b.R(Table::kInfoType, "it1");
      AliasId midx = b.R(Table::kMovieInfoIdx);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(ci, "person_role_id", chn, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it1, "id")
          .J(t, "id", midx, "movie_id")
          .J(midx, "info_type_id", it2, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(it1, "info", "genres");
      b.EqS(it2, "info", "rating");
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.InS(midx, "info", Pick(kRatingSets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      b.EqS(n, "gender", "m");
      break;
    }
    case 32: {  // 6 relations: movie links by keyword.
      AliasId t = b.R(Table::kTitle);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      AliasId t2 = b.R(Table::kTitle, "t2");
      b.J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id")
          .J(ml, "linked_movie_id", t2, "id");
      b.EqS(k, "keyword", v == 'a' ? "kw_0" : "kw_42");
      b.InS(lt, "link", Pick(kLinkSets, v));
      break;
    }
    case 33: {  // 10 relations: two linked movie subtrees (self-join heavy).
      AliasId t1 = b.R(Table::kTitle, "t1");
      AliasId mc1 = b.R(Table::kMovieCompanies, "mc1");
      AliasId cn1 = b.R(Table::kCompanyName, "cn1");
      AliasId kt1 = b.R(Table::kKindType, "kt1");
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      AliasId t2 = b.R(Table::kTitle, "t2");
      AliasId mc2 = b.R(Table::kMovieCompanies, "mc2");
      AliasId cn2 = b.R(Table::kCompanyName, "cn2");
      AliasId kt2 = b.R(Table::kKindType, "kt2");
      b.J(t1, "id", mc1, "movie_id")
          .J(mc1, "company_id", cn1, "id")
          .J(t1, "kind_id", kt1, "id")
          .J(t1, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id")
          .J(ml, "linked_movie_id", t2, "id")
          .J(t2, "id", mc2, "movie_id")
          .J(mc2, "company_id", cn2, "id")
          .J(t2, "kind_id", kt2, "id");
      b.EqS(cn1, "country_code", Pick(kCountries, v));
      b.EqS(kt1, "kind", "movie");
      b.InS(kt2, "kind", {"movie", "episode", "tv series"});
      b.InS(lt, "link", Pick(kLinkSets, v));
      break;
    }
    default:
      LQOLAB_CHECK_MSG(false, "unknown template " << template_id);
  }
  return b.Build();
}

std::vector<Query> BuildJobLiteWorkload(const catalog::Schema& schema) {
  std::vector<Query> workload;
  workload.reserve(kJobQueryCount);
  const auto& counts = JobVariantCounts();
  LQOLAB_CHECK_EQ(static_cast<int32_t>(counts.size()), kJobTemplateCount);
  for (int32_t t = 1; t <= kJobTemplateCount; ++t) {
    for (int32_t i = 0; i < counts[static_cast<size_t>(t - 1)]; ++i) {
      workload.push_back(
          BuildJobQuery(schema, t, static_cast<char>('a' + i)));
    }
  }
  LQOLAB_CHECK_EQ(static_cast<int32_t>(workload.size()), kJobQueryCount);
  return workload;
}


namespace {

/// One Ext-JOB template (ids 101+). These join shapes do not occur in the
/// base workload, so no split of JOB leaks their structure.
Query BuildExtTemplate(const catalog::Schema& schema, int32_t ext_id,
                       char v) {
  QB b(schema, 100 + ext_id, v);
  switch (ext_id) {
    case 1: {  // person -> credits -> movie -> alternate title + kind (5)
      AliasId n = b.R(Table::kName);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId t = b.R(Table::kTitle);
      AliasId at = b.R(Table::kAkaTitle);
      AliasId kt = b.R(Table::kKindType);
      b.J(n, "id", ci, "person_id")
          .J(ci, "movie_id", t, "id")
          .J(t, "id", at, "movie_id")
          .J(t, "kind_id", kt, "id");
      b.EqS(n, "gender", v == 'a' ? "f" : "m");
      b.EqS(kt, "kind", Pick(kKinds, v));
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    case 2: {  // person-centric, no title at all (6)
      AliasId n = b.R(Table::kName);
      AliasId pi = b.R(Table::kPersonInfo);
      AliasId it = b.R(Table::kInfoType);
      AliasId an = b.R(Table::kAkaName);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId rt = b.R(Table::kRoleType);
      b.J(n, "id", pi, "person_id")
          .J(pi, "info_type_id", it, "id")
          .J(n, "id", an, "person_id")
          .J(n, "id", ci, "person_id")
          .J(ci, "role_id", rt, "id");
      b.EqS(it, "info", v == 'a' ? "mini biography" : "birth date");
      b.EqS(rt, "role", v == 'a' ? "actor" : "producer");
      b.EqS(n, "name_pcode_cf", Pick(kPcodes, v));
      break;
    }
    case 3: {  // keyworded movie -> link -> target's alternate titles (7)
      AliasId t = b.R(Table::kTitle);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType);
      AliasId t2 = b.R(Table::kTitle, "t2");
      AliasId at = b.R(Table::kAkaTitle);
      b.J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id")
          .J(ml, "linked_movie_id", t2, "id")
          .J(t2, "id", at, "movie_id");
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(lt, "link", Pick(kLinkSets, v));
      break;
    }
    case 4: {  // two-hop movie-link chain (8), a shape JOB never uses
      AliasId t = b.R(Table::kTitle);
      AliasId ml = b.R(Table::kMovieLink);
      AliasId lt = b.R(Table::kLinkType, "lt1");
      AliasId t2 = b.R(Table::kTitle, "t2");
      AliasId ml2 = b.R(Table::kMovieLink, "ml2");
      AliasId lt2 = b.R(Table::kLinkType, "lt2");
      AliasId t3 = b.R(Table::kTitle, "t3");
      AliasId kt = b.R(Table::kKindType);
      b.J(t, "id", ml, "movie_id")
          .J(ml, "link_type_id", lt, "id")
          .J(ml, "linked_movie_id", t2, "id")
          .J(t2, "id", ml2, "movie_id")
          .J(ml2, "link_type_id", lt2, "id")
          .J(ml2, "linked_movie_id", t3, "id")
          .J(t3, "kind_id", kt, "id");
      b.InS(lt, "link", Pick(kLinkSets, v));
      b.EqS(kt, "kind", "movie");
      b.Gt(t, "production_year", v == 'a' ? 1990 : 2005);
      break;
    }
    case 5: {  // complete-cast movies with alternate titles and votes (6)
      AliasId t = b.R(Table::kTitle);
      AliasId cc = b.R(Table::kCompleteCast);
      AliasId cct1 = b.R(Table::kCompCastType, "cct1");
      AliasId at = b.R(Table::kAkaTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId midx = b.R(Table::kMovieInfoIdx);
      b.J(t, "id", cc, "movie_id")
          .J(cc, "subject_id", cct1, "id")
          .J(t, "id", at, "movie_id")
          .J(t, "kind_id", kt, "id")
          .J(t, "id", midx, "movie_id");
      b.EqS(cct1, "kind", v == 'a' ? "cast" : "crew");
      b.InS(midx, "info", Pick(kVotesSets, v));
      b.EqS(kt, "kind", "movie");
      break;
    }
    case 6: {  // company & keyword & language star without info_type dims (7)
      AliasId t = b.R(Table::kTitle);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId at = b.R(Table::kAkaTitle);
      b.J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(t, "id", mi, "movie_id")
          .J(t, "id", at, "movie_id")
          .J(mk, "movie_id", mi, "movie_id");  // cycle edge
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(mi, "info", Pick(kGenreSets, v));
      break;
    }
    case 7: {  // episodes of a season range with cast and keywords (9)
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId rt = b.R(Table::kRoleType);
      AliasId chn = b.R(Table::kCharName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      AliasId pi = b.R(Table::kPersonInfo);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(ci, "role_id", rt, "id")
          .J(ci, "person_role_id", chn, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id")
          .J(n, "id", pi, "person_id");
      b.EqS(kt, "kind", "episode");
      b.Between(t, "season_nr", 1, v == 'a' ? 3 : 10);
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.EqS(rt, "role", v == 'a' ? "guest" : "actor");
      break;
    }
    case 8: {  // person double-fact: credits AND info, with movie genre (8)
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId pi = b.R(Table::kPersonInfo);
      AliasId it = b.R(Table::kInfoType, "it1");
      AliasId ci = b.R(Table::kCastInfo);
      AliasId t = b.R(Table::kTitle);
      AliasId mi = b.R(Table::kMovieInfo);
      AliasId it2 = b.R(Table::kInfoType, "it2");
      b.J(n, "id", an, "person_id")
          .J(n, "id", pi, "person_id")
          .J(pi, "info_type_id", it, "id")
          .J(n, "id", ci, "person_id")
          .J(ci, "movie_id", t, "id")
          .J(t, "id", mi, "movie_id")
          .J(mi, "info_type_id", it2, "id");
      b.EqS(it, "info", "height");
      b.EqS(it2, "info", "genres");
      b.InS(mi, "info", Pick(kGenreSets, v));
      b.EqS(n, "gender", v == 'a' ? "f" : "m");
      break;
    }
    case 9: {  // broad 11-relation star with person and company sides
      AliasId t = b.R(Table::kTitle);
      AliasId kt = b.R(Table::kKindType);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId pi = b.R(Table::kPersonInfo);
      AliasId it = b.R(Table::kInfoType, "it1");
      AliasId rt = b.R(Table::kRoleType);
      AliasId mc = b.R(Table::kMovieCompanies);
      AliasId cn = b.R(Table::kCompanyName);
      AliasId mk = b.R(Table::kMovieKeyword);
      AliasId k = b.R(Table::kKeyword);
      b.J(t, "kind_id", kt, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", pi, "person_id")
          .J(pi, "info_type_id", it, "id")
          .J(ci, "role_id", rt, "id")
          .J(t, "id", mc, "movie_id")
          .J(mc, "company_id", cn, "id")
          .J(t, "id", mk, "movie_id")
          .J(mk, "keyword_id", k, "id");
      b.EqS(it, "info", "mini biography");
      b.EqS(kt, "kind", Pick(kKinds, v));
      b.InS(k, "keyword", Pick(kKeywordSets, v));
      b.InS(cn, "country_code", Pick(kCountrySets, v));
      break;
    }
    case 10: {  // aka-title to aka-name bridge (7): unusual dimension mix
      AliasId at = b.R(Table::kAkaTitle);
      AliasId t = b.R(Table::kTitle);
      AliasId ci = b.R(Table::kCastInfo);
      AliasId n = b.R(Table::kName);
      AliasId an = b.R(Table::kAkaName);
      AliasId kt = b.R(Table::kKindType);
      AliasId chn = b.R(Table::kCharName);
      b.J(at, "movie_id", t, "id")
          .J(t, "id", ci, "movie_id")
          .J(ci, "person_id", n, "id")
          .J(n, "id", an, "person_id")
          .J(at, "kind_id", kt, "id")
          .J(ci, "person_role_id", chn, "id");
      b.EqS(kt, "kind", v == 'a' ? "movie" : "episode");
      const YearRange year = Pick(kYearRanges, v);
      b.Between(t, "production_year", year.lo, year.hi);
      break;
    }
    default:
      LQOLAB_CHECK_MSG(false, "unknown ext template " << ext_id);
  }
  return b.Build();
}

}  // namespace

std::vector<Query> BuildExtJobWorkload(const catalog::Schema& schema) {
  std::vector<Query> workload;
  for (int32_t ext_id = 1; ext_id <= 10; ++ext_id) {
    for (char v : {'a', 'b'}) {
      Query q = BuildExtTemplate(schema, ext_id, v);
      q.id = "e" + std::to_string(ext_id) + v;
      workload.push_back(std::move(q));
    }
  }
  return workload;
}

}  // namespace lqolab::query
