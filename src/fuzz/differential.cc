#include "fuzz/differential.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "exec/oracle.h"
#include "fuzz/corpus.h"
#include "optimizer/plan_hint.h"
#include "query/predicate_binding.h"
#include "sql/binder.h"
#include "serve/plan_cache.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::fuzz {

using optimizer::kImpossibleCost;
using optimizer::PhysicalPlan;
using optimizer::PlanningResult;
using query::AliasId;
using query::AliasMask;
using query::Query;

namespace {

/// Relative tolerance for cost comparisons: the DP planner and the
/// reference enumeration evaluate identical formulas, but may associate
/// floating-point products differently.
bool CostsClose(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

std::string FormatCost(double cost) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", cost);
  return buffer;
}

/// Best bushy plan cost over `mask` by brute-force recursion over every
/// connected (s1, s2) split — an independent re-derivation of the DP
/// recurrence (same cost model, separately written enumeration). Memoized
/// per subset; exponential but fine for n <= 7.
class ExhaustiveCost {
 public:
  ExhaustiveCost(const optimizer::Planner& planner, const Query& q)
      : planner_(planner), q_(q) {}

  double Best(AliasMask mask) {
    const auto it = memo_.find(mask);
    if (it != memo_.end()) return it->second;
    const optimizer::CostModel& cm = planner_.cost_model();
    const stats::CardinalityEstimator& est = planner_.estimator();
    double best = kImpossibleCost;
    if (std::popcount(mask) == 1) {
      const AliasId alias = static_cast<AliasId>(std::countr_zero(mask));
      best = cm.BestScan(q_, alias).cost;
    } else {
      const double rows_out = est.EstimateJoinRows(q_, mask);
      for (AliasMask s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
        const AliasMask s2 = mask ^ s1;
        if (!q_.IsConnected(s1) || !q_.IsConnected(s2)) continue;
        if (!q_.HasEdgeBetween(s1, s2)) continue;
        const double left = Best(s1);
        const double right = Best(s2);
        const double rows_l = est.EstimateJoinRows(q_, s1);
        const double rows_r = est.EstimateJoinRows(q_, s2);
        for (optimizer::JoinAlgo algo :
             {optimizer::JoinAlgo::kHash, optimizer::JoinAlgo::kNestLoop,
              optimizer::JoinAlgo::kMerge}) {
          best = std::min(best, left + right +
                                    cm.JoinCost(q_, algo, rows_l, rows_r,
                                                rows_out));
        }
        if (std::popcount(s2) == 1) {
          const AliasId inner = static_cast<AliasId>(std::countr_zero(s2));
          catalog::ColumnId probe = catalog::kInvalidColumn;
          if (cm.CanIndexNlj(q_, s1, inner, &probe)) {
            best = std::min(
                best, left + cm.JoinCost(q_, optimizer::JoinAlgo::kIndexNlj,
                                         rows_l, rows_r, rows_out, inner,
                                         probe));
          }
        }
      }
    }
    memo_[mask] = best;
    return best;
  }

 private:
  const optimizer::Planner& planner_;
  const Query& q_;
  std::unordered_map<AliasMask, double> memo_;
};

}  // namespace

bool ReferenceCount(const exec::DbContext& ctx, const Query& q,
                    int64_t work_cap, int64_t* rows) {
  const int32_t n = q.relation_count();
  int64_t work = 0;

  std::vector<std::vector<storage::RowId>> filtered(
      static_cast<size_t>(n));
  for (AliasId a = 0; a < n; ++a) {
    const storage::Table& table =
        ctx.table(q.relations[static_cast<size_t>(a)].table);
    const auto preds = query::BindAliasPredicates(q, a, table);
    work += table.row_count();
    if (work > work_cap) return false;
    for (storage::RowId r = 0; r < table.row_count(); ++r) {
      bool match = true;
      for (const auto& pred : preds) {
        if (!pred.Matches(table.column(pred.column).at(r))) {
          match = false;
          break;
        }
      }
      if (match) filtered[static_cast<size_t>(a)].push_back(r);
    }
  }

  // Join order: start from the smallest filtered list, extend by the
  // smallest connected unused alias (keeps the backtracking fan-out low).
  std::vector<AliasId> order;
  std::vector<char> used(static_cast<size_t>(n), 0);
  AliasId start = 0;
  for (AliasId a = 1; a < n; ++a) {
    if (filtered[static_cast<size_t>(a)].size() <
        filtered[static_cast<size_t>(start)].size()) {
      start = a;
    }
  }
  order.push_back(start);
  used[static_cast<size_t>(start)] = 1;
  AliasMask covered = query::MaskOf(start);
  while (static_cast<int32_t>(order.size()) < n) {
    AliasId next = -1;
    for (AliasId a = 0; a < n; ++a) {
      if (used[static_cast<size_t>(a)]) continue;
      if ((q.AdjacencyMask(a) & covered) == 0) continue;
      if (next < 0 || filtered[static_cast<size_t>(a)].size() <
                          filtered[static_cast<size_t>(next)].size()) {
        next = a;
      }
    }
    if (next < 0) return false;  // disconnected; not a fuzzer query
    order.push_back(next);
    used[static_cast<size_t>(next)] = 1;
    covered |= query::MaskOf(next);
  }

  std::vector<storage::RowId> assignment(static_cast<size_t>(n), -1);
  int64_t count = 0;
  std::function<bool(size_t)> extend = [&](size_t depth) {
    if (depth == order.size()) {
      ++count;
      return true;
    }
    const AliasId a = order[depth];
    const storage::Table& table =
        ctx.table(q.relations[static_cast<size_t>(a)].table);
    for (storage::RowId r : filtered[static_cast<size_t>(a)]) {
      if (++work > work_cap) return false;
      bool match = true;
      for (const query::JoinEdge& edge : q.edges) {
        AliasId other;
        catalog::ColumnId my_col, other_col;
        if (edge.left_alias == a) {
          other = edge.right_alias;
          my_col = edge.left_column;
          other_col = edge.right_column;
        } else if (edge.right_alias == a) {
          other = edge.left_alias;
          my_col = edge.right_column;
          other_col = edge.left_column;
        } else {
          continue;
        }
        const storage::RowId other_row =
            assignment[static_cast<size_t>(other)];
        if (other_row < 0) continue;  // joins later in the order
        const storage::Value mine = table.column(my_col).at(r);
        const storage::Value theirs =
            ctx.table(q.relations[static_cast<size_t>(other)].table)
                .column(other_col)
                .at(other_row);
        if (mine == storage::kNullValue || mine != theirs) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      assignment[static_cast<size_t>(a)] = r;
      const bool ok = extend(depth + 1);
      assignment[static_cast<size_t>(a)] = -1;
      if (!ok) return false;
    }
    return true;
  };
  if (!extend(0)) return false;
  *rows = count;
  return true;
}

DifferentialOracle::DifferentialOracle(engine::Database* db,
                                       const DifferentialOptions& options)
    : db_(db), options_(options) {
  LQOLAB_CHECK(db != nullptr);
  if (options_.shard_twin > 1) {
    // The twin adopts the main database's table objects (shared_ptr copies,
    // no data copy) and hash-partitions them into a ShardedTableSet; only
    // the physical layout differs, so any row-count divergence is a sharding
    // bug by construction.
    engine::Database::Options twin_options;
    twin_options.config = db->config();
    twin_options.config.table_shards = options_.shard_twin;
    twin_options.config.vectorized_exec = true;  // sharded scans live there
    shard_twin_ =
        engine::Database::FromTables(twin_options, db->context().tables());
  }
}

void DifferentialOracle::AddLqoArm(lqo::LearnedOptimizer* arm) {
  LQOLAB_CHECK(arm != nullptr);
  arms_.push_back(arm);
}

std::vector<DifferentialOracle::ArmPlan> DifferentialOracle::BuildPlans(
    const Query& q, CheckReport* report) {
  const optimizer::Planner& planner = db_->planner();
  const engine::DbConfig& cfg = db_->config();
  std::vector<ArmPlan> plans;

  const PlanningResult dp =
      planner.PlanDynamicProgramming(q, cfg.enable_bushy);
  plans.push_back({"dp", dp.plan, dp.estimated_cost});

  if (q.relation_count() >= 2) {
    optimizer::GeqoParams params;
    params.seed = cfg.geqo_seed;
    params.pool_size = options_.geqo_pool_size;
    params.generations = options_.geqo_generations;
    const PlanningResult geqo = planner.PlanGenetic(q, params);
    plans.push_back({"geqo", geqo.plan, geqo.estimated_cost});

    // Shuffled-hint arm: a random but query-deterministic connected join
    // order handed to the engine as a hint, the way an LQO would. Keyed
    // only on (seed, fingerprint) so a replayed reproducer exercises the
    // exact order that originally failed.
    util::Rng rng(
        util::MixSeed(options_.exec_seed, exec::QueryFingerprint(q)));
    const int32_t n = q.relation_count();
    std::vector<AliasId> order;
    order.push_back(static_cast<AliasId>(rng.UniformInt(0, n - 1)));
    AliasMask mask = query::MaskOf(order[0]);
    while (static_cast<int32_t>(order.size()) < n) {
      std::vector<AliasId> candidates;
      for (AliasId a = 0; a < n; ++a) {
        if ((mask & query::MaskOf(a)) == 0 &&
            (q.AdjacencyMask(a) & mask) != 0) {
          candidates.push_back(a);
        }
      }
      LQOLAB_CHECK(!candidates.empty());
      const AliasId pick = candidates[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(candidates.size()) - 1))];
      order.push_back(pick);
      mask |= query::MaskOf(pick);
    }
    ArmPlan shuffled;
    shuffled.name = "shuffled_hint";
    shuffled.estimated_cost =
        planner.CostJoinOrder(q, order, &shuffled.plan, nullptr);
    if (shuffled.estimated_cost >= kImpossibleCost) {
      report->discrepancies.push_back(
          {"cost_enumeration",
           "connected shuffled order costed as impossible for " + q.id});
    } else {
      plans.push_back(std::move(shuffled));
    }
  }

  for (lqo::LearnedOptimizer* arm : arms_) {
    lqo::Prediction prediction = arm->Plan(q, db_);
    // LQO costs are not comparable to planner costs; mark with -1 so cost
    // checks skip these plans.
    plans.push_back({arm->name(), std::move(prediction.plan), -1.0});
  }
  for (const ArmPlan& arm : plans) arm.plan.Validate(q);
  return plans;
}

void DifferentialOracle::CheckCostEnumeration(const Query& q,
                                              const std::vector<ArmPlan>& plans,
                                              CheckReport* report) {
  if (q.relation_count() > options_.exhaustive_max_relations) return;
  const optimizer::Planner& planner = db_->planner();
  ++report->checks.cost_enumeration;

  ExhaustiveCost reference(planner, q);
  const double best = reference.Best(q.FullMask());
  const PlanningResult dp_bushy = planner.PlanDynamicProgramming(q, true);
  if (!CostsClose(dp_bushy.estimated_cost, best)) {
    report->discrepancies.push_back(
        {"cost_enumeration",
         "DP cost " + FormatCost(dp_bushy.estimated_cost) +
             " != exhaustive optimum " + FormatCost(best) + " for " + q.id});
  }
  // The DP optimum lower-bounds every left-deep order costed by the same
  // model (GEQO's and the shuffled hint's plans are such orders).
  for (const ArmPlan& arm : plans) {
    if (arm.estimated_cost < 0.0 || arm.name == "dp") continue;
    if (arm.estimated_cost < dp_bushy.estimated_cost &&
        !CostsClose(arm.estimated_cost, dp_bushy.estimated_cost)) {
      report->discrepancies.push_back(
          {"cost_enumeration",
           arm.name + " cost " + FormatCost(arm.estimated_cost) +
               " beats the DP optimum " + FormatCost(dp_bushy.estimated_cost) +
               " for " + q.id});
    }
  }
}

void DifferentialOracle::CheckEstimatorInvariants(const Query& q,
                                                  CheckReport* report) {
  const stats::CardinalityEstimator& est = db_->planner().estimator();
  ++report->checks.estimator;
  auto flag = [&](const std::string& detail) {
    report->discrepancies.push_back({"estimator", detail + " for " + q.id});
  };

  for (AliasId a = 0; a < q.relation_count(); ++a) {
    const double rows = est.EstimateBaseRows(q, a);
    if (!std::isfinite(rows) || rows < 1.0) {
      flag("base rows " + FormatCost(rows) + " of alias " +
           q.relations[static_cast<size_t>(a)].alias);
    }
  }
  for (size_t i = 0; i < q.predicates.size(); ++i) {
    const double sel = est.PredicateSelectivity(q, q.predicates[i]);
    if (!std::isfinite(sel) || sel < 0.0 || sel > 1.0) {
      flag("predicate selectivity " + FormatCost(sel) + " of predicate " +
           q.predicates[i].Signature());
    }
    // Monotonicity under added conjuncts: dropping any predicate must not
    // shrink its alias's estimate.
    Query relaxed = q;
    relaxed.predicates.erase(relaxed.predicates.begin() +
                             static_cast<long>(i));
    const double with_pred = est.EstimateBaseRows(q, q.predicates[i].alias);
    const double without_pred =
        est.EstimateBaseRows(relaxed, q.predicates[i].alias);
    if (without_pred < with_pred * (1.0 - 1e-9)) {
      flag("base rows grew from " + FormatCost(without_pred) + " to " +
           FormatCost(with_pred) + " when adding conjunct " +
           q.predicates[i].Signature());
    }
  }
  for (const query::JoinEdge& edge : q.edges) {
    const double sel = est.EdgeSelectivity(q, edge);
    if (!std::isfinite(sel) || sel <= 0.0 || sel > 1.0) {
      flag("edge selectivity " + FormatCost(sel));
    }
  }
  const double join_rows = est.EstimateJoinRows(q, q.FullMask());
  if (!std::isfinite(join_rows) || join_rows < 1.0) {
    flag("join rows " + FormatCost(join_rows));
  }
}

void DifferentialOracle::CheckExecution(const Query& q,
                                        const std::vector<ArmPlan>& plans,
                                        CheckReport* report) {
  if (q.relation_count() > options_.exec_max_relations) return;
  if (static_cast<int32_t>(q.edges.size()) > options_.exec_max_edges) return;
  ++report->checks.execution;

  struct Outcome {
    std::string name;
    int64_t rows = 0;
  };
  std::vector<Outcome> outcomes;
  for (const ArmPlan& arm : plans) {
    // A fresh replica per plan: each execution recomputes cardinalities
    // through its own oracle along its own plan structure, so agreement is
    // a genuine cross-check rather than a memo hit.
    const std::unique_ptr<engine::Database> replica =
        db_->CloneContextForWorker();
    replica->BeginQueryReplay(options_.exec_seed, q);
    const engine::QueryRun run =
        replica->ExecutePlan(q, arm.plan, 0, options_.exec_timeout_ns);
    ++report->plans_executed;
    if (run.timed_out) {
      ++report->timeouts;
      continue;
    }
    outcomes.push_back({arm.name, run.result_rows});
  }
  if (outcomes.empty()) return;

  for (const Outcome& outcome : outcomes) {
    if (outcome.rows != outcomes.front().rows) {
      std::ostringstream os;
      os << "plans disagree on result rows for " << q.id << ":";
      for (const Outcome& o : outcomes) {
        os << " " << o.name << "=" << o.rows;
      }
      report->discrepancies.push_back({"execution", os.str()});
      break;
    }
  }

  int64_t reference = 0;
  if (ReferenceCount(db_->context(), q, options_.reference_work_cap,
                     &reference)) {
    if (reference != outcomes.front().rows) {
      report->discrepancies.push_back(
          {"execution",
           "nested-loop reference count " + std::to_string(reference) +
               " != executed " + std::to_string(outcomes.front().rows) +
               " for " + q.id});
    }
  }

  // Engine differential: re-run one plan with DbConfig::vectorized_exec
  // flipped relative to the main database. The batched kernels and the
  // tuple-at-a-time reference must report identical result rows — only the
  // rows are compared, never virtual times, since the engines are
  // deliberately charged different per-tuple costs.
  {
    ++report->checks.engine_differential;
    const std::unique_ptr<engine::Database> replica =
        db_->CloneContextForWorker();
    engine::DbConfig flipped = db_->config();
    flipped.vectorized_exec = !flipped.vectorized_exec;
    replica->SetConfig(flipped);
    replica->BeginQueryReplay(options_.exec_seed, q);
    const engine::QueryRun run =
        replica->ExecutePlan(q, plans.front().plan, 0, options_.exec_timeout_ns);
    ++report->plans_executed;
    if (run.timed_out) {
      ++report->timeouts;
    } else if (run.result_rows != outcomes.front().rows) {
      report->discrepancies.push_back(
          {"engine_differential",
           std::string(flipped.vectorized_exec ? "vectorized" : "scalar") +
               " engine reported " + std::to_string(run.result_rows) +
               " rows != " + std::to_string(outcomes.front().rows) + " for " +
               q.id});
    }
  }

  // Storage differential: re-run one plan on the hash-sharded twin. Shard-
  // at-a-time selection plus the k-way row-id merge must reproduce the
  // unsharded engine's rows exactly (docs/parallelism.md); as with the
  // engine arm only rows are compared — per-shard buffer pools partition
  // the LRU space, so virtual times may legitimately differ.
  if (shard_twin_ != nullptr) {
    ++report->checks.shard_differential;
    const std::unique_ptr<engine::Database> replica =
        shard_twin_->CloneContextForWorker();
    replica->BeginQueryReplay(options_.exec_seed, q);
    const engine::QueryRun run = replica->ExecutePlan(
        q, plans.front().plan, 0, options_.exec_timeout_ns);
    ++report->plans_executed;
    if (run.timed_out) {
      ++report->timeouts;
    } else if (run.result_rows != outcomes.front().rows) {
      report->discrepancies.push_back(
          {"shard_differential",
           "sharded storage (" + std::to_string(options_.shard_twin) +
               " shards) reported " + std::to_string(run.result_rows) +
               " rows != " + std::to_string(outcomes.front().rows) + " for " +
               q.id});
    }
  }

  // Replan differential: one plan re-runs with mid-query adaptive
  // re-optimization enabled, under a keyed estimator poison that forces
  // q-error divergences mid-plan. The cancel/replan/resume protocol
  // (Database::ExecutePlanAdaptive) must never change result rows — replans
  // may only cost time, exactly like the paper's timeout fallbacks.
  if (options_.replan_twin) {
    ++report->checks.replan_differential;
    faultlib::FaultPlan poison;
    poison.name = "replan_twin";
    poison.seed =
        util::MixSeed(options_.exec_seed, exec::QueryFingerprint(q));
    faultlib::FaultRule rule;
    rule.point = "stats.estimate";
    rule.kind = faultlib::FaultKind::kPoison;
    rule.probability = 0.5;
    rule.poison_scale = 1e-4;
    poison.Add(rule);
    faultlib::FaultInjector injector(poison);
    faultlib::ScopedFaultInjection inject(&injector);

    const std::unique_ptr<engine::Database> replica =
        db_->CloneContextForWorker();
    engine::DbConfig adaptive = db_->config();
    adaptive.adaptive_replan = true;
    adaptive.replan_qerror_threshold = 4.0;
    adaptive.replan_min_rows = 1;
    replica->SetConfig(adaptive);
    replica->BeginQueryReplay(options_.exec_seed, q);
    const engine::QueryRun run = replica->ExecutePlanAdaptive(
        q, plans.front().plan, 0, options_.exec_timeout_ns);
    ++report->plans_executed;
    if (run.timed_out) {
      ++report->timeouts;
    } else if (run.result_rows != outcomes.front().rows) {
      report->discrepancies.push_back(
          {"replan_differential",
           "adaptive replan (" + std::to_string(run.replans) +
               " rounds) reported " + std::to_string(run.result_rows) +
               " rows != " + std::to_string(outcomes.front().rows) + " for " +
               q.id});
    }
  }

  // Fault mode: replay every arm under injected faults. Faults are allowed
  // to cost availability (typed error, timeout) but never correctness — a
  // faulted run that completes must report the clean cardinality.
  if (options_.fault_plan.empty()) return;
  ++report->checks.fault_execution;
  faultlib::FaultPlan per_query = options_.fault_plan;
  per_query.seed =
      util::MixSeed(options_.fault_plan.seed, exec::QueryFingerprint(q));
  for (const ArmPlan& arm : plans) {
    faultlib::FaultInjector injector(per_query);
    faultlib::ScopedFaultInjection inject(&injector);
    const std::unique_ptr<engine::Database> replica =
        db_->CloneContextForWorker();
    replica->BeginQueryReplay(options_.exec_seed, q);
    const engine::QueryRun run =
        replica->ExecutePlan(q, arm.plan, 0, options_.exec_timeout_ns);
    ++report->plans_executed;
    if (!run.status.ok() || run.timed_out) continue;  // Availability loss.
    if (run.result_rows != outcomes.front().rows) {
      report->discrepancies.push_back(
          {"fault_execution",
           "injected faults changed result rows of " + q.id + " (" +
               arm.name + "): " + std::to_string(run.result_rows) +
               " != clean " + std::to_string(outcomes.front().rows)});
    }
  }
}

void DifferentialOracle::CheckPlanRoundTrips(const Query& q,
                                             const std::vector<ArmPlan>& plans,
                                             CheckReport* report) {
  serve::PlanCache cache({/*shards=*/1, /*capacity_per_shard=*/
                          static_cast<int64_t>(plans.size()) + 1});
  for (size_t i = 0; i < plans.size(); ++i) {
    const ArmPlan& arm = plans[i];

    ++report->checks.hint_roundtrip;
    const std::string hint = optimizer::RenderPlanHint(arm.plan, q);
    PhysicalPlan reparsed;
    std::string error;
    if (!optimizer::ParsePlanHint(hint, q, &reparsed, &error)) {
      report->discrepancies.push_back(
          {"hint_roundtrip",
           "hint '" + hint + "' failed to parse: " + error});
    } else if (!(reparsed == arm.plan)) {
      report->discrepancies.push_back(
          {"hint_roundtrip", "hint '" + hint +
                                 "' re-parsed to a different plan: " +
                                 optimizer::RenderPlanHint(reparsed, q)});
    }

    ++report->checks.plan_cache;
    // Distinct model_version per arm keeps the entries distinct even when
    // two arms produce the same plan.
    const uint64_t key = serve::PlanCacheKey(q, db_->config(), i);
    auto cached = std::make_shared<serve::CachedPlan>();
    cached->plan = arm.plan;
    cached->estimated_cost = arm.estimated_cost;
    cache.Insert(key, std::move(cached));
    const std::shared_ptr<const serve::CachedPlan> hit = cache.Lookup(key);
    if (hit == nullptr) {
      report->discrepancies.push_back(
          {"plan_cache", "lookup missed just-inserted plan of " + arm.name});
    } else if (!(hit->plan == arm.plan) ||
               optimizer::RenderPlanHint(hit->plan, q) != hint) {
      report->discrepancies.push_back(
          {"plan_cache", "cache hit is not byte-identical for " + arm.name});
    }
  }
}

void DifferentialOracle::CheckCorpusRoundTrip(const Query& q,
                                              CheckReport* report) {
  ++report->checks.corpus_roundtrip;
  const catalog::Schema& schema = db_->schema();
  const std::string text = SerializeQuery(q, schema);
  Query reparsed;
  std::string error;
  if (!ParseQuery(text, schema, &reparsed, &error)) {
    report->discrepancies.push_back(
        {"corpus_roundtrip", "serialized query failed to parse: " + error});
    return;
  }
  if (exec::QueryFingerprint(reparsed) != exec::QueryFingerprint(q) ||
      SerializeQuery(reparsed, schema) != text) {
    report->discrepancies.push_back(
        {"corpus_roundtrip", "corpus round trip changed " + q.id});
  }
}

void DifferentialOracle::CheckSqlRoundTrip(const Query& q,
                                           CheckReport* report) {
  if (!options_.sql_round_trip) return;
  ++report->checks.sql_round_trip;
  const catalog::Schema& schema = db_->schema();
  const std::string sql = q.ToSql(schema);
  Query rebound;
  const util::Status bound = sql::ParseAndBindSql(sql, schema, &rebound);
  if (!bound.ok()) {
    report->discrepancies.push_back(
        {"sql_round_trip",
         "rendered SQL failed to bind: " + bound.ToString() + "\n" + sql});
    return;
  }
  // The fingerprint hashes the id; the SQL text deliberately does not
  // carry it, so copy the identity before comparing.
  rebound.id = q.id;
  rebound.template_id = q.template_id;
  rebound.variant = q.variant;
  if (exec::QueryFingerprint(rebound) != exec::QueryFingerprint(q)) {
    report->discrepancies.push_back(
        {"sql_round_trip", "rebound query fingerprint diverged for " + q.id});
    return;
  }
  if (rebound.ToSql(schema) != sql) {
    report->discrepancies.push_back(
        {"sql_round_trip", "re-rendered SQL is not byte-identical for " +
                               q.id + "\nA: " + sql +
                               "\nB: " + rebound.ToSql(schema)});
    return;
  }
  // Plan byte-identity with the struct-built original. Both queries are
  // planned here, back to back: the cost model reads live buffer-cache
  // state (CachedFraction), so comparing against the DP arm planned before
  // CheckExecution warmed the cache would flag phantom divergences.
  const auto planned_struct = db_->PlanQuery(q);
  const auto planned_sql = db_->PlanQuery(rebound);
  if (!(planned_sql.plan == planned_struct.plan) ||
      planned_sql.plan.ToString(rebound) !=
          planned_struct.plan.ToString(q)) {
    report->discrepancies.push_back(
        {"sql_round_trip",
         "DP plan of the rebound query diverged for " + q.id});
  }
}

CheckReport DifferentialOracle::Check(const Query& q) {
  CheckReport report;
  const std::vector<ArmPlan> plans = BuildPlans(q, &report);
  CheckCostEnumeration(q, plans, &report);
  CheckEstimatorInvariants(q, &report);
  CheckExecution(q, plans, &report);
  CheckPlanRoundTrips(q, plans, &report);
  CheckCorpusRoundTrip(q, &report);
  CheckSqlRoundTrip(q, &report);
  return report;
}

}  // namespace lqolab::fuzz
