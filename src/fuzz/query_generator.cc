#include "fuzz/query_generator.h"

#include <algorithm>
#include <string>

#include "catalog/imdb_schema.h"
#include "util/check.h"

namespace lqolab::fuzz {

using catalog::ColumnId;
using catalog::TableId;
using query::AliasId;
using query::JoinEdge;
using query::Predicate;
using query::Query;
using stats::ColumnStats;
using storage::Value;

const char* JoinShapeName(JoinShape shape) {
  switch (shape) {
    case JoinShape::kChain: return "chain";
    case JoinShape::kStar: return "star";
    case JoinShape::kClique: return "clique";
  }
  return "?";
}

QueryGenerator::QueryGenerator(const exec::DbContext* ctx,
                               const GeneratorOptions& options, uint64_t seed)
    : ctx_(ctx), options_(options), rng_(seed) {
  LQOLAB_CHECK(ctx != nullptr);
  LQOLAB_CHECK_GE(options.min_relations, 1);
  LQOLAB_CHECK_LE(options.min_relations, options.max_relations);
  LQOLAB_CHECK_LE(options.max_relations, 12);

  const catalog::Schema& schema = *ctx_->schema;
  refs_to_.resize(static_cast<size_t>(schema.table_count()));
  for (TableId t = 0; t < schema.table_count(); ++t) {
    for (const catalog::ForeignKey& fk : schema.table(t).foreign_keys) {
      refs_to_[static_cast<size_t>(fk.referenced_table)].push_back(
          {t, fk.column});
    }
  }
  for (TableId t = 0; t < schema.table_count(); ++t) {
    if (!NeighborsOf(t).empty()) seed_tables_.push_back(t);
    if (refs_to_[static_cast<size_t>(t)].size() >= 2) {
      clique_anchors_.push_back(t);
    }
  }
  LQOLAB_CHECK(!seed_tables_.empty());
  LQOLAB_CHECK(!clique_anchors_.empty());
}

std::vector<QueryGenerator::Neighbor> QueryGenerator::NeighborsOf(
    TableId table) const {
  const catalog::Schema& schema = *ctx_->schema;
  std::vector<Neighbor> neighbors;
  // Forward: my fk column = partner's primary key.
  for (const catalog::ForeignKey& fk : schema.table(table).foreign_keys) {
    neighbors.push_back({fk.referenced_table, fk.column, 0});
  }
  // Backward: my primary key = partner's fk column.
  for (const FkSide& ref : refs_to_[static_cast<size_t>(table)]) {
    neighbors.push_back({ref.table, 0, ref.column});
  }
  // Sibling: my fk column = partner's fk column into the same table
  // (mk.movie_id = mc.movie_id without going through title).
  for (const catalog::ForeignKey& fk : schema.table(table).foreign_keys) {
    for (const FkSide& ref :
         refs_to_[static_cast<size_t>(fk.referenced_table)]) {
      if (ref.table == table && ref.column == fk.column) continue;
      neighbors.push_back({ref.table, fk.column, ref.column});
    }
  }
  return neighbors;
}

void QueryGenerator::AddRelation(Query* q, TableId table) const {
  std::string alias = catalog::ImdbShortAlias(table);
  int suffix = 1;
  auto taken = [&](const std::string& a) {
    for (const auto& rel : q->relations) {
      if (rel.alias == a) return true;
    }
    return false;
  };
  while (taken(alias)) {
    ++suffix;
    alias = std::string(catalog::ImdbShortAlias(table)) +
            std::to_string(suffix);
  }
  q->relations.push_back({table, alias});
}

void QueryGenerator::BuildChain(Query* q, int32_t n) {
  const TableId start = seed_tables_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(seed_tables_.size()) - 1))];
  AddRelation(q, start);
  while (q->relation_count() < n) {
    const AliasId last = q->relation_count() - 1;
    const std::vector<Neighbor> neighbors =
        NeighborsOf(q->relations[static_cast<size_t>(last)].table);
    if (neighbors.empty()) break;
    const Neighbor& pick = neighbors[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(neighbors.size()) - 1))];
    AddRelation(q, pick.table);
    q->edges.push_back(
        {last, pick.my_column, q->relation_count() - 1, pick.their_column});
  }
}

void QueryGenerator::BuildStar(Query* q, int32_t n) {
  const TableId hub = seed_tables_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(seed_tables_.size()) - 1))];
  AddRelation(q, hub);
  const std::vector<Neighbor> neighbors = NeighborsOf(hub);
  while (q->relation_count() < n) {
    const Neighbor& pick = neighbors[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(neighbors.size()) - 1))];
    AddRelation(q, pick.table);
    q->edges.push_back(
        {0, pick.my_column, q->relation_count() - 1, pick.their_column});
  }
}

void QueryGenerator::BuildClique(Query* q, int32_t n) {
  // Members all reference the anchor table's primary key with their fk
  // columns, so each pair shares a key domain: every pair gets an edge.
  // Half the time the anchor itself joins as the first relation.
  const TableId anchor = clique_anchors_[static_cast<size_t>(rng_.UniformInt(
      0, static_cast<int64_t>(clique_anchors_.size()) - 1))];
  const std::vector<FkSide>& refs = refs_to_[static_cast<size_t>(anchor)];
  std::vector<ColumnId> key_columns;  // parallel to q->relations
  if (rng_.Bernoulli(0.5)) {
    AddRelation(q, anchor);
    key_columns.push_back(0);
  }
  while (q->relation_count() < n) {
    const FkSide& pick = refs[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(refs.size()) - 1))];
    AddRelation(q, pick.table);
    key_columns.push_back(pick.column);
  }
  for (AliasId a = 0; a < q->relation_count(); ++a) {
    for (AliasId b = a + 1; b < q->relation_count(); ++b) {
      q->edges.push_back({a, key_columns[static_cast<size_t>(a)], b,
                          key_columns[static_cast<size_t>(b)]});
    }
  }
}

Value QueryGenerator::SampleValue(const ColumnStats& cs) {
  if (rng_.Bernoulli(options_.adversarial_rate)) {
    // Out-of-domain constant: must estimate to ~0 and match nothing.
    return rng_.Bernoulli(0.5) ? cs.max_value + 1000 : cs.min_value - 1000;
  }
  if (!cs.mcv_values.empty() && rng_.Bernoulli(0.5)) {
    return cs.mcv_values[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(cs.mcv_values.size()) - 1))];
  }
  if (!cs.histogram_bounds.empty() && rng_.Bernoulli(0.5)) {
    return cs.histogram_bounds[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(cs.histogram_bounds.size()) - 1))];
  }
  return static_cast<Value>(rng_.UniformInt(cs.min_value, cs.max_value));
}

void QueryGenerator::AddPredicate(Query* q, AliasId alias) {
  const TableId table_id = q->relations[static_cast<size_t>(alias)].table;
  const catalog::TableDef& def = ctx_->schema->table(table_id);
  const ColumnId column = static_cast<ColumnId>(
      rng_.UniformInt(0, static_cast<int64_t>(def.columns.size()) - 1));
  const ColumnStats& cs = ctx_->column_stats(table_id, column);
  if (cs.row_count == 0) return;
  const bool is_int = def.columns[static_cast<size_t>(column)].type ==
                      catalog::ColumnType::kInt;
  const bool all_null = cs.row_count == cs.null_count;

  Predicate pred;
  pred.alias = alias;
  pred.column = column;

  const double roll = rng_.Uniform();
  if (all_null || roll < 0.12) {
    pred.kind = cs.null_count > 0 && rng_.Bernoulli(0.5)
                    ? Predicate::Kind::kIsNull
                    : Predicate::Kind::kNotNull;
    q->predicates.push_back(pred);
    return;
  }
  if (is_int && roll < 0.45) {
    pred.kind = Predicate::Kind::kRange;
    Value lo = SampleValue(cs);
    Value hi = SampleValue(cs);
    if (lo > hi && !rng_.Bernoulli(options_.adversarial_rate)) {
      std::swap(lo, hi);  // keep the occasional empty range as-is
    }
    pred.int_values = {lo, hi};
    q->predicates.push_back(pred);
    return;
  }
  const bool in_list = roll > 0.8;
  pred.kind = in_list ? Predicate::Kind::kIn : Predicate::Kind::kEq;
  const int64_t count = in_list ? rng_.UniformInt(2, 5) : 1;
  for (int64_t i = 0; i < count; ++i) {
    const Value v = SampleValue(cs);
    if (is_int) {
      pred.int_values.push_back(v);
    } else if (v >= 0 &&
               v < ctx_->table(table_id)
                       .column(column)
                       .dictionary_size()) {
      // String literals go through the dictionary so replays rebind them;
      // sampled codes outside it (adversarial draws) are dropped.
      pred.str_values.push_back(
          ctx_->table(table_id).column(column).StringAt(v));
    }
  }
  if (pred.int_values.empty() && pred.str_values.empty()) return;
  q->predicates.push_back(pred);
}

void QueryGenerator::AddPredicates(Query* q) {
  for (AliasId a = 0; a < q->relation_count(); ++a) {
    if (!rng_.Bernoulli(options_.predicate_rate)) continue;
    const int64_t count =
        rng_.UniformInt(1, options_.max_predicates_per_relation);
    for (int64_t i = 0; i < count; ++i) AddPredicate(q, a);
  }
}

Query QueryGenerator::Next() {
  Query q;
  q.id = "fz" + std::to_string(generated_);
  q.template_id = static_cast<int32_t>(generated_);
  ++generated_;

  const double roll = rng_.Uniform();
  const JoinShape shape = roll < 0.4   ? JoinShape::kChain
                          : roll < 0.8 ? JoinShape::kStar
                                       : JoinShape::kClique;
  int32_t n = static_cast<int32_t>(
      rng_.UniformInt(options_.min_relations, options_.max_relations));
  switch (shape) {
    case JoinShape::kChain:
      BuildChain(&q, n);
      break;
    case JoinShape::kStar:
      BuildStar(&q, n);
      break;
    case JoinShape::kClique:
      n = std::min(n, options_.max_clique_relations);
      BuildClique(&q, std::max(n, 2));
      break;
  }
  AddPredicates(&q);
  LQOLAB_CHECK_GE(q.relation_count(), 1);
  LQOLAB_CHECK(q.relation_count() < 2 || q.IsConnected(q.FullMask()));
  return q;
}

}  // namespace lqolab::fuzz
