#ifndef LQOLAB_FUZZ_QUERY_GENERATOR_H_
#define LQOLAB_FUZZ_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "exec/db_context.h"
#include "query/query.h"
#include "util/rng.h"

namespace lqolab::fuzz {

/// Join-graph shapes the generator draws from. Chains and stars mirror the
/// JOB templates; cliques (every pair of relations sharing a key column)
/// exercise the cyclic-subset paths of the oracle and estimator that the
/// curated workload never reaches.
enum class JoinShape { kChain, kStar, kClique };

const char* JoinShapeName(JoinShape shape);

struct GeneratorOptions {
  int32_t min_relations = 2;
  int32_t max_relations = 12;
  /// Cliques get quadratically many edges; cap their size separately so a
  /// 12-relation draw doesn't produce a 66-edge join graph.
  int32_t max_clique_relations = 6;
  /// Probability that a relation receives at least one filter predicate.
  double predicate_rate = 0.6;
  int32_t max_predicates_per_relation = 2;
  /// Rate of deliberately adversarial literals: out-of-domain constants and
  /// empty (inverted) ranges, which must flow through the estimator and
  /// executor without tripping anything.
  double adversarial_rate = 0.05;
};

/// Seeded random query generator over the IMDB-like catalog. Join graphs
/// are derived from the schema's foreign keys — forward (fk -> pk),
/// backward (pk <- fk) and sibling (two fks referencing the same table)
/// joins — so every generated edge is a plausible equi-join over real key
/// columns. Filter literals are drawn from the database's own column
/// statistics (MCVs, histogram bounds, min/max), so predicates hit real
/// data distributions. The sequence of queries is a pure function of
/// (schema, stats, options, seed).
class QueryGenerator {
 public:
  QueryGenerator(const exec::DbContext* ctx, const GeneratorOptions& options,
                 uint64_t seed);

  /// Generates the next query; ids are "fz<n>" in generation order.
  query::Query Next();

  int64_t generated() const { return generated_; }

 private:
  /// One (table, column) pair holding a foreign key.
  struct FkSide {
    catalog::TableId table = catalog::kInvalidTable;
    catalog::ColumnId column = catalog::kInvalidColumn;
  };

  /// A joinable neighbor of a relation: adding `table` connected through
  /// `my_column` = `table`.`their_column`.
  struct Neighbor {
    catalog::TableId table = catalog::kInvalidTable;
    catalog::ColumnId my_column = catalog::kInvalidColumn;
    catalog::ColumnId their_column = catalog::kInvalidColumn;
  };

  std::vector<Neighbor> NeighborsOf(catalog::TableId table) const;
  void AddRelation(query::Query* q, catalog::TableId table) const;
  void BuildChain(query::Query* q, int32_t n);
  void BuildStar(query::Query* q, int32_t n);
  void BuildClique(query::Query* q, int32_t n);
  void AddPredicates(query::Query* q);
  void AddPredicate(query::Query* q, query::AliasId alias);
  storage::Value SampleValue(const stats::ColumnStats& cs);

  const exec::DbContext* ctx_;
  GeneratorOptions options_;
  util::Rng rng_;
  int64_t generated_ = 0;
  /// refs_to_[t]: every (table, column) with a foreign key into t.
  std::vector<std::vector<FkSide>> refs_to_;
  /// Tables usable as chain/star seeds (at least one join partner).
  std::vector<catalog::TableId> seed_tables_;
  /// Tables with enough referencing fks to anchor a clique.
  std::vector<catalog::TableId> clique_anchors_;
};

}  // namespace lqolab::fuzz

#endif  // LQOLAB_FUZZ_QUERY_GENERATOR_H_
