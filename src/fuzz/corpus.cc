#include "fuzz/corpus.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace lqolab::fuzz {

using query::AliasId;
using query::Predicate;
using query::Query;

namespace {

const char* KindName(Predicate::Kind kind) {
  switch (kind) {
    case Predicate::Kind::kEq: return "eq";
    case Predicate::Kind::kIn: return "in";
    case Predicate::Kind::kRange: return "range";
    case Predicate::Kind::kIsNull: return "isnull";
    case Predicate::Kind::kNotNull: return "notnull";
    case Predicate::Kind::kLikePrefix: return "likeprefix";
  }
  return "?";
}

bool ParseKind(const std::string& name, Predicate::Kind* kind) {
  for (Predicate::Kind k :
       {Predicate::Kind::kEq, Predicate::Kind::kIn, Predicate::Kind::kRange,
        Predicate::Kind::kIsNull, Predicate::Kind::kNotNull,
        Predicate::Kind::kLikePrefix}) {
    if (name == KindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

AliasId FindAlias(const Query& q, const std::string& alias) {
  for (size_t i = 0; i < q.relations.size(); ++i) {
    if (q.relations[i].alias == alias) return static_cast<AliasId>(i);
  }
  return -1;
}

/// Splits "alias.column" and resolves both against the query/schema.
bool ResolveColumnRef(const Query& q, const catalog::Schema& schema,
                      const std::string& ref, AliasId* alias,
                      catalog::ColumnId* column, std::string* error) {
  const size_t dot = ref.find('.');
  if (dot == std::string::npos) {
    *error = "expected alias.column, got '" + ref + "'";
    return false;
  }
  *alias = FindAlias(q, ref.substr(0, dot));
  if (*alias < 0) {
    *error = "unknown alias in '" + ref + "'";
    return false;
  }
  const catalog::TableDef& def =
      schema.table(q.relations[static_cast<size_t>(*alias)].table);
  *column = def.FindColumn(ref.substr(dot + 1));
  if (*column == catalog::kInvalidColumn) {
    *error = "unknown column in '" + ref + "' (table " + def.name + ")";
    return false;
  }
  return true;
}

/// Tokenizes one line: whitespace-separated words, with single-quoted
/// strings (no escapes; quotes cannot appear inside literals) kept as one
/// token tagged by `quoted`.
struct Token {
  std::string text;
  bool quoted = false;
};

bool TokenizeLine(const std::string& line, std::vector<Token>* tokens,
                  std::string* error) {
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '\'') {
      const size_t close = line.find('\'', i + 1);
      if (close == std::string::npos) {
        *error = "unterminated string literal";
        return false;
      }
      tokens->push_back({line.substr(i + 1, close - i - 1), true});
      i = close + 1;
      continue;
    }
    size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    tokens->push_back({line.substr(i, j - i), false});
    i = j;
  }
  return true;
}

}  // namespace

std::string SerializeQuery(const Query& q, const catalog::Schema& schema) {
  std::ostringstream os;
  os << "query " << q.id << "\n";
  for (const auto& rel : q.relations) {
    os << "relation " << schema.table(rel.table).name << " " << rel.alias
       << "\n";
  }
  auto column_ref = [&](AliasId alias, catalog::ColumnId column) {
    const auto& rel = q.relations[static_cast<size_t>(alias)];
    return rel.alias + "." +
           schema.table(rel.table).columns[static_cast<size_t>(column)].name;
  };
  for (const auto& edge : q.edges) {
    os << "edge " << column_ref(edge.left_alias, edge.left_column) << " "
       << column_ref(edge.right_alias, edge.right_column) << "\n";
  }
  for (const auto& pred : q.predicates) {
    os << "pred " << column_ref(pred.alias, pred.column) << " "
       << KindName(pred.kind);
    for (storage::Value v : pred.int_values) os << " " << v;
    for (const std::string& s : pred.str_values) {
      LQOLAB_CHECK_MSG(s.find('\'') == std::string::npos,
                       "corpus cannot quote literal containing ': " << s);
      os << " '" << s << "'";
    }
    os << "\n";
  }
  return os.str();
}

bool ParseQuery(const std::string& text, const catalog::Schema& schema,
                Query* out, std::string* error) {
  *out = Query();
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<Token> tokens;
    if (!TokenizeLine(line, &tokens, error)) {
      *error += " (line " + std::to_string(line_no) + ")";
      return false;
    }
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0].text;
    auto fail = [&](const std::string& message) {
      *error = message + " (line " + std::to_string(line_no) + ")";
      return false;
    };
    if (verb == "query") {
      if (tokens.size() != 2) return fail("query expects one id");
      out->id = tokens[1].text;
    } else if (verb == "relation") {
      if (tokens.size() != 3) return fail("relation expects <table> <alias>");
      const catalog::TableId table = schema.FindTable(tokens[1].text);
      if (table == catalog::kInvalidTable) {
        return fail("unknown table '" + tokens[1].text + "'");
      }
      if (FindAlias(*out, tokens[2].text) >= 0) {
        return fail("duplicate alias '" + tokens[2].text + "'");
      }
      if (out->relations.size() >= 32) return fail("too many relations");
      out->relations.push_back({table, tokens[2].text});
    } else if (verb == "edge") {
      if (tokens.size() != 3) return fail("edge expects two column refs");
      query::JoinEdge edge;
      if (!ResolveColumnRef(*out, schema, tokens[1].text, &edge.left_alias,
                            &edge.left_column, error) ||
          !ResolveColumnRef(*out, schema, tokens[2].text, &edge.right_alias,
                            &edge.right_column, error)) {
        return fail(*error);
      }
      out->edges.push_back(edge);
    } else if (verb == "pred") {
      if (tokens.size() < 3) return fail("pred expects <ref> <kind> ...");
      Predicate pred;
      if (!ResolveColumnRef(*out, schema, tokens[1].text, &pred.alias,
                            &pred.column, error)) {
        return fail(*error);
      }
      if (!ParseKind(tokens[2].text, &pred.kind)) {
        return fail("unknown predicate kind '" + tokens[2].text + "'");
      }
      for (size_t i = 3; i < tokens.size(); ++i) {
        if (tokens[i].quoted) {
          pred.str_values.push_back(tokens[i].text);
        } else {
          try {
            pred.int_values.push_back(
                static_cast<storage::Value>(std::stol(tokens[i].text)));
          } catch (...) {
            return fail("bad integer literal '" + tokens[i].text + "'");
          }
        }
      }
      if (pred.kind == Predicate::Kind::kRange && pred.int_values.size() != 2) {
        return fail("range expects exactly <lo> <hi>");
      }
      out->predicates.push_back(pred);
    } else {
      return fail("unknown declaration '" + verb + "'");
    }
  }
  if (out->relations.empty()) {
    *error = "no relations";
    return false;
  }
  return true;
}

std::string WriteReproducer(const std::string& dir, const Query& q,
                            const catalog::Schema& schema,
                            const std::string& note) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + q.id + ".repro";
  std::ofstream out(path);
  if (!out.is_open()) return "";
  out << "# lqolab fuzz reproducer — replay with:\n";
  out << "#   ./build/tests/test_fuzz --replay " << q.id << ".repro\n";
  std::istringstream note_lines(note);
  std::string note_line;
  while (std::getline(note_lines, note_line)) {
    out << "# " << note_line << "\n";
  }
  out << SerializeQuery(q, schema);
  return out.good() ? path : "";
}

bool LoadReproducer(const std::string& path, const catalog::Schema& schema,
                    Query* out, std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseQuery(text.str(), schema, out, error);
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".repro") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace lqolab::fuzz
