#ifndef LQOLAB_FUZZ_FUZZER_H_
#define LQOLAB_FUZZ_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/database.h"
#include "fuzz/differential.h"
#include "fuzz/query_generator.h"
#include "lqo/interface.h"
#include "query/query.h"

namespace lqolab::fuzz {

struct FuzzOptions {
  uint64_t seed = 42;
  /// Stop after this many generated queries.
  int64_t num_queries = 500;
  /// Also stop once this much wall-clock time has passed (0 = no limit).
  /// Checked between queries, so the overshoot is one query's worth.
  int64_t time_budget_ms = 0;
  GeneratorOptions generator;
  DifferentialOptions differential;
  /// Where reproducers for failing queries are written ("" disables).
  std::string corpus_dir;
  /// Shrink failing queries to minimal reproducers before writing them.
  bool shrink = true;
};

/// Aggregate outcome of a fuzzing run (the numbers behind BENCH_fuzz.json).
struct FuzzStats {
  int64_t queries = 0;
  CheckCounts checks;
  std::vector<Discrepancy> discrepancies;
  int64_t plans_executed = 0;
  int64_t timeouts = 0;
  int64_t elapsed_ms = 0;
  /// Reproducer files written this run (one per failing query).
  std::vector<std::string> reproducers;

  bool failed() const { return !discrepancies.empty(); }
};

/// Drives QueryGenerator through DifferentialOracle: generates queries,
/// checks each, and on failure shrinks the query to a minimal form that
/// still trips the same oracle and writes a replayable reproducer under
/// `corpus_dir`. Fully deterministic for a fixed (options, database,
/// registered arms) triple.
class Fuzzer {
 public:
  Fuzzer(engine::Database* db, const FuzzOptions& options);

  /// Registers an LQO arm for the oracle's execution cross-check.
  void AddLqoArm(lqo::LearnedOptimizer* arm);

  FuzzStats Run();

  /// Re-checks one reproducer file. Returns the oracle's report; `error`
  /// receives a parse diagnostic when loading fails (report then counts a
  /// corpus_roundtrip discrepancy).
  CheckReport Replay(const std::string& path, std::string* error);

  /// Greedily removes predicates, then relations (keeping the join graph
  /// connected), while `q` still fails the oracle. Run() applies this to
  /// every failing query before writing its reproducer.
  query::Query Shrink(const query::Query& q);

  /// Shrink against an arbitrary failure predicate (the oracle overload
  /// passes `Check(q).failed()`). `still_fails(q)` must be true on entry.
  static query::Query Shrink(
      const query::Query& q,
      const std::function<bool(const query::Query&)>& still_fails);

 private:
  engine::Database* db_;
  FuzzOptions options_;
  DifferentialOracle oracle_;
};

}  // namespace lqolab::fuzz

#endif  // LQOLAB_FUZZ_FUZZER_H_
