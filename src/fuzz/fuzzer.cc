#include "fuzz/fuzzer.h"

#include <chrono>
#include <utility>

#include "fuzz/corpus.h"
#include "util/check.h"

namespace lqolab::fuzz {

using query::AliasId;
using query::Query;

namespace {

/// `q` without relation `victim`: drops its edges and predicates and
/// renumbers the aliases above it. The caller checks connectivity.
Query WithoutRelation(const Query& q, AliasId victim) {
  Query out;
  out.id = q.id;
  out.template_id = q.template_id;
  out.variant = q.variant;
  for (size_t i = 0; i < q.relations.size(); ++i) {
    if (static_cast<AliasId>(i) != victim) {
      out.relations.push_back(q.relations[i]);
    }
  }
  auto renumber = [victim](AliasId a) {
    return a > victim ? static_cast<AliasId>(a - 1) : a;
  };
  for (const query::JoinEdge& edge : q.edges) {
    if (edge.left_alias == victim || edge.right_alias == victim) continue;
    query::JoinEdge copy = edge;
    copy.left_alias = renumber(copy.left_alias);
    copy.right_alias = renumber(copy.right_alias);
    out.edges.push_back(copy);
  }
  for (const query::Predicate& pred : q.predicates) {
    if (pred.alias == victim) continue;
    query::Predicate copy = pred;
    copy.alias = renumber(copy.alias);
    out.predicates.push_back(copy);
  }
  return out;
}

}  // namespace

Fuzzer::Fuzzer(engine::Database* db, const FuzzOptions& options)
    : db_(db), options_(options), oracle_(db, options.differential) {}

void Fuzzer::AddLqoArm(lqo::LearnedOptimizer* arm) { oracle_.AddLqoArm(arm); }

Query Fuzzer::Shrink(const Query& q) {
  return Shrink(q, [this](const Query& candidate) {
    return oracle_.Check(candidate).failed();
  });
}

Query Fuzzer::Shrink(
    const Query& q,
    const std::function<bool(const Query&)>& still_fails) {
  Query current = q;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < current.predicates.size(); ++i) {
      Query candidate = current;
      candidate.predicates.erase(candidate.predicates.begin() +
                                 static_cast<long>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    for (AliasId a = 0; a < current.relation_count(); ++a) {
      if (current.relation_count() <= 1) break;
      Query candidate = WithoutRelation(current, a);
      if (candidate.relation_count() >= 2 &&
          !candidate.IsConnected(candidate.FullMask())) {
        continue;
      }
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return current;
}

FuzzStats Fuzzer::Run() {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  QueryGenerator generator(&db_->context(), options_.generator,
                           options_.seed);
  FuzzStats stats;
  while (stats.queries < options_.num_queries) {
    if (options_.time_budget_ms > 0 &&
        elapsed_ms() >= options_.time_budget_ms) {
      break;
    }
    const Query q = generator.Next();
    const CheckReport report = oracle_.Check(q);
    ++stats.queries;
    stats.checks += report.checks;
    stats.plans_executed += report.plans_executed;
    stats.timeouts += report.timeouts;
    if (!report.failed()) continue;

    for (const Discrepancy& d : report.discrepancies) {
      stats.discrepancies.push_back(d);
    }
    if (options_.corpus_dir.empty()) continue;
    const Query minimal = options_.shrink ? Shrink(q) : q;
    // Note the (possibly re-derived) failure on the minimal form.
    const CheckReport minimal_report = oracle_.Check(minimal);
    std::string note = "seed " + std::to_string(options_.seed) + ", query " +
                       std::to_string(stats.queries - 1) + "\n";
    const std::vector<Discrepancy>& details =
        minimal_report.failed() ? minimal_report.discrepancies
                                : report.discrepancies;
    for (const Discrepancy& d : details) {
      note += d.check + ": " + d.detail + "\n";
    }
    const std::string path =
        WriteReproducer(options_.corpus_dir, minimal, db_->schema(), note);
    if (!path.empty()) stats.reproducers.push_back(path);
  }
  stats.elapsed_ms = elapsed_ms();
  return stats;
}

CheckReport Fuzzer::Replay(const std::string& path, std::string* error) {
  Query q;
  if (!LoadReproducer(path, db_->schema(), &q, error)) {
    CheckReport report;
    ++report.checks.corpus_roundtrip;
    report.discrepancies.push_back(
        {"corpus_roundtrip", "failed to load " + path + ": " + *error});
    return report;
  }
  return oracle_.Check(q);
}

}  // namespace lqolab::fuzz
