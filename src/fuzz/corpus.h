#ifndef LQOLAB_FUZZ_CORPUS_H_
#define LQOLAB_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "query/query.h"

namespace lqolab::fuzz {

/// Text form of a query, stable across database rebuilds: tables and
/// columns by name, string literals as text (they rebind against whatever
/// dictionary the replaying database has). One declaration per line:
///
///   query <id>
///   relation <table> <alias>
///   edge <alias>.<column> <alias>.<column>
///   pred <alias>.<column> eq|in <int>... | 's'...
///   pred <alias>.<column> range <lo> <hi>
///   pred <alias>.<column> isnull|notnull
///
/// '#' starts a comment. SerializeQuery + ParseQuery round-trip every
/// generated query to an identical structure (same fingerprint).
std::string SerializeQuery(const query::Query& q,
                           const catalog::Schema& schema);

bool ParseQuery(const std::string& text, const catalog::Schema& schema,
                query::Query* out, std::string* error);

/// Writes `q` (with `note` as a leading comment) to
/// `<dir>/<id>.repro`, creating `dir` if needed. Returns the path, or ""
/// on I/O failure.
std::string WriteReproducer(const std::string& dir, const query::Query& q,
                            const catalog::Schema& schema,
                            const std::string& note);

/// Loads one reproducer file.
bool LoadReproducer(const std::string& path, const catalog::Schema& schema,
                    query::Query* out, std::string* error);

/// All *.repro files under `dir`, sorted by name; empty when the directory
/// does not exist.
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace lqolab::fuzz

#endif  // LQOLAB_FUZZ_CORPUS_H_
