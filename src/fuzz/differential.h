#ifndef LQOLAB_FUZZ_DIFFERENTIAL_H_
#define LQOLAB_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "faultlib/faultlib.h"
#include "lqo/interface.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::fuzz {

/// How many of each oracle check ran (one unit = one assertion batch on one
/// query or plan).
struct CheckCounts {
  int64_t cost_enumeration = 0;  ///< DP cost vs exhaustive enumeration.
  int64_t execution = 0;         ///< Cross-plan result-row comparisons.
  int64_t estimator = 0;         ///< Estimator invariant sweeps.
  int64_t plan_cache = 0;        ///< PlanCache round trips.
  int64_t hint_roundtrip = 0;    ///< Hint render/parse round trips.
  int64_t corpus_roundtrip = 0;  ///< Corpus serialize/parse round trips.
  int64_t fault_execution = 0;   ///< Fault-mode re-executions (availability
                                 ///< may drop, cardinality must not change).
  int64_t engine_differential = 0;  ///< Vectorized-vs-scalar engine arm:
                                    ///< the same plan re-run with
                                    ///< vectorized_exec flipped must report
                                    ///< the same result rows.
  int64_t shard_differential = 0;   ///< Sharded-vs-unsharded storage arm:
                                    ///< the same plan re-run on the
                                    ///< hash-sharded twin database must
                                    ///< report the same result rows.
  int64_t sql_round_trip = 0;       ///< SQL-emission arm: render the query
                                    ///< to SQL, parse+bind it back, and the
                                    ///< rebound query must fingerprint,
                                    ///< render and plan byte-identically.
  int64_t replan_differential = 0;  ///< Adaptive-replan twin arm: the same
                                    ///< plan re-run with mid-query
                                    ///< re-optimization enabled under a
                                    ///< keyed estimator poison must report
                                    ///< the same result rows.

  int64_t total() const {
    return cost_enumeration + execution + estimator + plan_cache +
           hint_roundtrip + corpus_roundtrip + fault_execution +
           engine_differential + shard_differential + sql_round_trip +
           replan_differential;
  }
  CheckCounts& operator+=(const CheckCounts& o) {
    cost_enumeration += o.cost_enumeration;
    execution += o.execution;
    estimator += o.estimator;
    plan_cache += o.plan_cache;
    hint_roundtrip += o.hint_roundtrip;
    corpus_roundtrip += o.corpus_roundtrip;
    fault_execution += o.fault_execution;
    engine_differential += o.engine_differential;
    shard_differential += o.shard_differential;
    sql_round_trip += o.sql_round_trip;
    replan_differential += o.replan_differential;
    return *this;
  }
};

/// One violated invariant: which check tripped and a human-readable detail
/// (also the note written into reproducer files).
struct Discrepancy {
  std::string check;
  std::string detail;
};

/// Outcome of running every applicable check on one query.
struct CheckReport {
  CheckCounts checks;
  std::vector<Discrepancy> discrepancies;
  int64_t plans_executed = 0;
  int64_t timeouts = 0;

  bool failed() const { return !discrepancies.empty(); }
};

struct DifferentialOptions {
  /// Exhaustive plan enumeration is exponential; cap it (paper-style n<=7).
  int32_t exhaustive_max_relations = 7;
  /// GEQO-arm population knobs. Far smaller than the production defaults:
  /// the oracle checks every GEQO plan for correctness, not plan quality,
  /// and it runs GEQO on every query instead of only the 12-relation ones.
  int32_t geqo_pool_size = 16;
  int32_t geqo_generations = 12;
  /// Executing every arm's plan on a fresh replica is the most expensive
  /// check; cap the relation count it applies to.
  int32_t exec_max_relations = 8;
  /// Also cap the edge count: dense cliques force the oracle off its
  /// linear-time acyclic path into materialization, which can take seconds
  /// per plan. 9 keeps every tree (<= 7 edges at 8 relations) and cyclic
  /// queries up to a 4-clique in the execution check.
  int32_t exec_max_edges = 9;
  /// Pair-iteration budget of the independent nested-loop reference count
  /// (checked against every executed plan's result on small queries).
  int64_t reference_work_cap = 4'000'000;
  /// Virtual-time execution budget per plan; far above any sane plan on the
  /// fuzzing profile, so only oracle-overflow queries time out.
  util::VirtualNanos exec_timeout_ns = 600'000'000'000;  // 10 virtual min
  /// Replay seed used for every differential execution.
  uint64_t exec_seed = 42;
  /// Shard count of the sharded-storage twin arm: the oracle builds a
  /// second database over the SAME table objects with
  /// DbConfig::table_shards set to this (and vectorized_exec on, which the
  /// sharded scan path requires) and re-runs one plan per query on it —
  /// hash-partitioned storage must never change result rows. 0 or 1
  /// disables the arm.
  int32_t shard_twin = 4;
  /// SQL-emission arm (on by default): every checked query is rendered to
  /// SQL (query::Query::ToSql), parsed and bound back through the sql/
  /// frontend, and the rebound query must have the same fingerprint, render
  /// to the same bytes, and DP-plan to a byte-identical tree.
  bool sql_round_trip = true;
  /// Adaptive-replan twin arm (on by default): one plan per query re-runs
  /// with DbConfig::adaptive_replan enabled under a keyed "stats.estimate"
  /// poison schedule (catastrophic underestimates on a seeded half of the
  /// key space) that drives the mid-query q-error monitor over its
  /// threshold. Cancel + replan-with-pinned-truths + re-execute must report
  /// result rows byte-identical to the straight-through run
  /// (docs/overload.md).
  bool replan_twin = true;
  /// Optional fault mode: when the plan has rules, every arm that passed
  /// the clean execution check re-runs under a per-query FaultInjector
  /// seeded from (fault_plan.seed, query fingerprint). A faulted run may
  /// lose availability (typed error, timeout) but a faulted run that
  /// SUCCEEDS must report the clean run's result cardinality — injected
  /// faults must never silently corrupt answers.
  faultlib::FaultPlan fault_plan;
};

/// Counts the join result by plain backtracking over filtered base rows —
/// no hash joins, no semi-join reduction, no memoization — as an
/// implementation-independent ground truth for exec::Oracle. Returns false
/// (and leaves `*rows` alone) when the row-pair work exceeds `work_cap`.
bool ReferenceCount(const exec::DbContext& ctx, const query::Query& q,
                    int64_t work_cap, int64_t* rows);

/// The differential oracle. Per query it (a) re-derives the optimal plan
/// cost by independent exhaustive enumeration and compares it to the DP
/// planner's, (b) executes the DP, GEQO, shuffled-hint and every registered
/// LQO arm's plan on isolated replicas and asserts they produce the same
/// row count (and, on small queries, that an independent nested-loop count
/// agrees), (c) sweeps estimator invariants (finite, >= 1 row, selectivity
/// in (0,1], base rows monotone under added conjuncts), and (d) round-trips
/// every plan through serve::PlanCache and the plan-hint grammar asserting
/// byte identity, plus the query itself through the corpus text format.
class DifferentialOracle {
 public:
  DifferentialOracle(engine::Database* db, const DifferentialOptions& options);

  /// Registers an LQO arm whose plans join the execution cross-check.
  /// `arm` must outlive this oracle; it may be untrained (planning must
  /// still be deterministic and correct).
  void AddLqoArm(lqo::LearnedOptimizer* arm);

  CheckReport Check(const query::Query& q);

 private:
  struct ArmPlan {
    std::string name;
    optimizer::PhysicalPlan plan;
    double estimated_cost = 0.0;
  };

  std::vector<ArmPlan> BuildPlans(const query::Query& q,
                                  CheckReport* report);
  void CheckCostEnumeration(const query::Query& q,
                            const std::vector<ArmPlan>& plans,
                            CheckReport* report);
  void CheckEstimatorInvariants(const query::Query& q, CheckReport* report);
  void CheckExecution(const query::Query& q,
                      const std::vector<ArmPlan>& plans, CheckReport* report);
  void CheckPlanRoundTrips(const query::Query& q,
                           const std::vector<ArmPlan>& plans,
                           CheckReport* report);
  void CheckCorpusRoundTrip(const query::Query& q, CheckReport* report);
  void CheckSqlRoundTrip(const query::Query& q, CheckReport* report);

  engine::Database* db_;
  DifferentialOptions options_;
  std::vector<lqo::LearnedOptimizer*> arms_;
  /// Sharded-storage twin (shares `db_`'s table objects; nullptr when the
  /// arm is disabled via DifferentialOptions::shard_twin).
  std::unique_ptr<engine::Database> shard_twin_;
};

}  // namespace lqolab::fuzz

#endif  // LQOLAB_FUZZ_DIFFERENTIAL_H_
