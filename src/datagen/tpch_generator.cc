#include "datagen/tpch_generator.h"

#include <algorithm>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace lqolab::datagen {

namespace {

using catalog::Schema;
using catalog::TableId;
using catalog::tpch::Table;
using storage::Value;
using util::Rng;
using util::ZipfTable;

/// Days per month lookup good enough for synthetic data (no leap days; the
/// estimator only ever sees the YYYYMMDD integers as ordered values).
constexpr int32_t kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                      31, 31, 30, 31, 30, 31};

/// Maps a day offset in the 1992..1998 window to a YYYYMMDD integer.
int32_t DateFromOffset(int32_t offset) {
  int32_t year = 1992;
  while (true) {
    int32_t month = 0;
    for (; month < 12; ++month) {
      if (offset < kDaysInMonth[month]) {
        return year * 10000 + (month + 1) * 100 + (offset + 1);
      }
      offset -= kDaysInMonth[month];
    }
    ++year;
  }
}

constexpr int32_t kWindowDays = 365 * 7;

/// Deterministic generator for the full database. Keeps cross-table context
/// (per-order date and customer, per-part brand index, popularity
/// permutations) so lineitem can be generated with realistic correlations.
class TpchGenerator {
 public:
  TpchGenerator(const Schema& schema, const TpchScaleProfile& profile,
                uint64_t seed)
      : schema_(schema), profile_(profile), rng_(seed) {
    tables_.reserve(static_cast<size_t>(schema.table_count()));
    for (TableId t = 0; t < schema.table_count(); ++t) {
      tables_.push_back(std::make_unique<storage::Table>(t, schema.table(t)));
    }
  }

  std::vector<std::unique_ptr<storage::Table>> Generate() {
    GenerateRegionNation();
    GenerateSupplier();
    GenerateCustomer();
    GeneratePart();
    GeneratePartsupp();
    GenerateOrders();
    GenerateLineitem();
    return std::move(tables_);
  }

 private:
  storage::Table& table(TableId id) {
    return *tables_[static_cast<size_t>(id)];
  }

  Value Str(TableId t, catalog::ColumnId col, const std::string& text) {
    return table(t).column(col).InternString(text);
  }

  /// A day offset skewed toward the end of the window (business grows), so
  /// recent-date filters are the high-selectivity ones.
  int32_t SkewedDay(Rng* rng) {
    const double u = rng->Uniform();
    return static_cast<int32_t>(u * u * (kWindowDays - 1));
  }

  void GenerateRegionNation();
  void GenerateSupplier();
  void GenerateCustomer();
  void GeneratePart();
  void GeneratePartsupp();
  void GenerateOrders();
  void GenerateLineitem();

  const Schema& schema_;
  TpchScaleProfile profile_;
  Rng rng_;
  std::vector<std::unique_ptr<storage::Table>> tables_;

  // Cross-table generation context.
  std::vector<int32_t> customer_segment_;  // per customer row, segment idx
  std::vector<int32_t> order_customer_;    // per order row, customer row
  std::vector<int32_t> order_day_;         // per order row, day offset
  std::vector<int32_t> part_brand_;        // per part row, brand idx
};

const char* const kSegments[] = {"BUILDING", "AUTOMOBILE", "MACHINERY",
                                 "HOUSEHOLD", "FURNITURE"};
const char* const kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                   "4-NOT SPECIFIED", "5-LOW"};
const char* const kContainers[] = {"SM CASE", "SM BOX", "MED BOX", "MED BAG",
                                   "LG CASE", "LG BOX", "JUMBO PKG",
                                   "WRAP JAR"};
const char* const kModes[] = {"TRUCK", "MAIL", "SHIP", "AIR", "RAIL",
                              "REG AIR", "FOB"};
const char* const kTypes[] = {"ECONOMY", "STANDARD", "MEDIUM", "PROMO",
                              "SMALL", "LARGE"};
const char* const kFinish[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                               "BRUSHED"};

void TpchGenerator::GenerateRegionNation() {
  const std::vector<std::string> regions = {"AFRICA", "AMERICA", "ASIA",
                                            "EUROPE", "MIDDLE EAST"};
  for (size_t i = 0; i < regions.size(); ++i) {
    table(Table::kRegion)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kRegion, 1, regions[i])});
  }
  const std::vector<std::pair<std::string, int32_t>> nations = {
      {"ALGERIA", 1},   {"ARGENTINA", 2}, {"BRAZIL", 2},     {"CANADA", 2},
      {"EGYPT", 5},     {"ETHIOPIA", 1},  {"FRANCE", 4},     {"GERMANY", 4},
      {"INDIA", 3},     {"INDONESIA", 3}, {"IRAN", 5},       {"IRAQ", 5},
      {"JAPAN", 3},     {"JORDAN", 5},    {"KENYA", 1},      {"MOROCCO", 1},
      {"MOZAMBIQUE", 1},{"PERU", 2},      {"CHINA", 3},      {"ROMANIA", 4},
      {"SAUDI ARABIA", 5}, {"VIETNAM", 3}, {"RUSSIA", 4},    {"UNITED KINGDOM", 4},
      {"UNITED STATES", 2}};
  for (size_t i = 0; i < nations.size(); ++i) {
    table(Table::kNation)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kNation, 1, nations[i].first),
                    nations[i].second});
  }
}

void TpchGenerator::GenerateSupplier() {
  Rng rng = rng_.Fork();
  // Suppliers cluster in a few nations (Zipf), mirroring how IMDB company
  // countries are head-heavy.
  ZipfTable nation_zipf(25, 0.8);
  for (int64_t i = 0; i < profile_.supplier; ++i) {
    const Value nation = static_cast<Value>(nation_zipf.Sample(&rng) + 1);
    const Value acctbal = static_cast<Value>(rng.UniformInt(-99999, 999999));
    table(Table::kSupplier)
        .AppendRow({static_cast<Value>(i + 1), nation, acctbal});
  }
}

void TpchGenerator::GenerateCustomer() {
  Rng rng = rng_.Fork();
  ZipfTable nation_zipf(25, 0.6);
  // Segment shares are deliberately uneven so segment filters differ in
  // selectivity.
  const std::vector<double> segment_weights = {0.35, 0.25, 0.2, 0.12, 0.08};
  customer_segment_.resize(static_cast<size_t>(profile_.customer));
  for (int64_t i = 0; i < profile_.customer; ++i) {
    double u = rng.Uniform();
    int32_t segment = 0;
    for (; segment < 4; ++segment) {
      u -= segment_weights[static_cast<size_t>(segment)];
      if (u <= 0.0) break;
    }
    customer_segment_[static_cast<size_t>(i)] = segment;
    const Value nation = static_cast<Value>(nation_zipf.Sample(&rng) + 1);
    table(Table::kCustomer)
        .AppendRow({static_cast<Value>(i + 1), nation,
                    Str(Table::kCustomer, 2, kSegments[segment]),
                    static_cast<Value>(rng.UniformInt(-99999, 999999))});
  }
}

void TpchGenerator::GeneratePart() {
  Rng rng = rng_.Fork();
  part_brand_.resize(static_cast<size_t>(profile_.part));
  ZipfTable brand_zipf(25, 0.7);
  for (int64_t i = 0; i < profile_.part; ++i) {
    const int32_t brand = static_cast<int32_t>(brand_zipf.Sample(&rng));
    part_brand_[static_cast<size_t>(i)] = brand;
    // Type correlates with brand: each brand leans toward one type family,
    // so brand+type conjunctions are non-independent (the estimator's
    // independence assumption misfires, as with IMDB genre x kind).
    const int32_t type_base = brand % 6;
    const int32_t type_idx = rng.Bernoulli(0.7)
                                 ? type_base
                                 : static_cast<int32_t>(rng.UniformInt(0, 5));
    const std::string type = std::string(kTypes[type_idx]) + " " +
                             kFinish[static_cast<size_t>(
                                 rng.UniformInt(0, 4))];
    table(Table::kPart)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kPart, 1, "Brand#" + std::to_string(brand + 10)),
                    Str(Table::kPart, 2, type),
                    Str(Table::kPart, 3, kContainers[static_cast<size_t>(
                                             rng.UniformInt(0, 7))]),
                    static_cast<Value>(rng.UniformInt(1, 50)),
                    static_cast<Value>(rng.UniformInt(90000, 200000))});
  }
}

void TpchGenerator::GeneratePartsupp() {
  Rng rng = rng_.Fork();
  // Popular parts get more suppliers (Zipf over parts).
  ZipfTable part_zipf(profile_.part, 0.5);
  for (int64_t i = 0; i < profile_.partsupp; ++i) {
    const Value part = static_cast<Value>(part_zipf.Sample(&rng) + 1);
    const Value supplier =
        static_cast<Value>(rng.UniformInt(1, profile_.supplier));
    table(Table::kPartsupp)
        .AppendRow({static_cast<Value>(i + 1), part, supplier,
                    static_cast<Value>(rng.UniformInt(1, 9999)),
                    static_cast<Value>(rng.UniformInt(100, 100000))});
  }
}

void TpchGenerator::GenerateOrders() {
  Rng rng = rng_.Fork();
  ZipfTable customer_zipf(profile_.customer, 0.9);
  order_customer_.resize(static_cast<size_t>(profile_.orders));
  order_day_.resize(static_cast<size_t>(profile_.orders));
  for (int64_t i = 0; i < profile_.orders; ++i) {
    const int32_t customer = static_cast<int32_t>(customer_zipf.Sample(&rng));
    const int32_t day = SkewedDay(&rng);
    order_customer_[static_cast<size_t>(i)] = customer;
    order_day_[static_cast<size_t>(i)] = day;
    // Status follows date: old orders are finished, recent ones open.
    const char* status = day < kWindowDays - 500
                             ? "F"
                             : (rng.Bernoulli(0.5) ? "O" : "P");
    // Priority correlates with segment: BUILDING customers order urgently.
    const int32_t segment =
        customer_segment_[static_cast<size_t>(customer)];
    const int32_t priority =
        rng.Bernoulli(0.5) ? segment
                           : static_cast<int32_t>(rng.UniformInt(0, 4));
    table(Table::kOrders)
        .AppendRow({static_cast<Value>(i + 1),
                    static_cast<Value>(customer + 1),
                    Str(Table::kOrders, 2, status),
                    Str(Table::kOrders, 3, kPriorities[priority]),
                    DateFromOffset(day),
                    static_cast<Value>(rng.UniformInt(100000, 40000000))});
  }
}

void TpchGenerator::GenerateLineitem() {
  Rng rng = rng_.Fork();
  ZipfTable part_zipf(profile_.part, 0.9);
  for (int64_t i = 0; i < profile_.lineitem; ++i) {
    // Spread lines over orders round-robin so every order has some and line
    // counts stay realistic; which parts appear is heavily skewed.
    const int64_t order = i % profile_.orders;
    const Value part = static_cast<Value>(part_zipf.Sample(&rng) + 1);
    const Value supplier =
        static_cast<Value>(rng.UniformInt(1, profile_.supplier));
    const int32_t order_day = order_day_[static_cast<size_t>(order)];
    const int32_t ship_day =
        std::min<int32_t>(kWindowDays - 1,
                          order_day + static_cast<int32_t>(
                                          rng.UniformInt(1, 120)));
    // returnflag correlates with shipdate: only sufficiently old lines can
    // have been returned.
    const char* flag;
    if (ship_day > kWindowDays - 400) {
      flag = "N";
    } else {
      flag = rng.Bernoulli(0.25) ? "R" : (rng.Bernoulli(0.5) ? "A" : "N");
    }
    const char* line_status = ship_day < kWindowDays - 500 ? "F" : "O";
    const Value quantity = static_cast<Value>(rng.UniformInt(1, 50));
    const Value price = static_cast<Value>(rng.UniformInt(90000, 200000));
    table(Table::kLineitem)
        .AppendRow({static_cast<Value>(i + 1),
                    static_cast<Value>(order + 1), part, supplier, quantity,
                    quantity * price / 100,
                    static_cast<Value>(rng.UniformInt(0, 10)),
                    Str(Table::kLineitem, 7, flag),
                    Str(Table::kLineitem, 8, line_status),
                    DateFromOffset(ship_day),
                    Str(Table::kLineitem, 10, kModes[static_cast<size_t>(
                                                  rng.UniformInt(0, 6))])});
  }
}

}  // namespace

TpchScaleProfile TpchScaleProfile::Small() { return Medium().Scaled(0.05); }

TpchScaleProfile TpchScaleProfile::Scaled(double factor) const {
  LQOLAB_CHECK_GT(factor, 0.0);
  auto scale = [factor](int64_t n) {
    return std::max<int64_t>(8, static_cast<int64_t>(n * factor));
  };
  TpchScaleProfile p = *this;
  p.supplier = scale(supplier);
  p.customer = scale(customer);
  p.part = scale(part);
  p.partsupp = scale(partsupp);
  p.orders = scale(orders);
  p.lineitem = scale(lineitem);
  return p;
}

std::vector<std::unique_ptr<storage::Table>> GenerateTpch(
    const catalog::Schema& schema, const TpchScaleProfile& profile,
    uint64_t seed) {
  TpchGenerator generator(schema, profile, seed);
  return generator.Generate();
}

}  // namespace lqolab::datagen
