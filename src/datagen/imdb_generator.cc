#include "datagen/imdb_generator.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace lqolab::datagen {

namespace {

using catalog::ColumnType;
using catalog::Schema;
using catalog::TableId;
using catalog::imdb::Table;
using storage::kNullValue;
using storage::Value;
using util::Rng;
using util::ZipfTable;

std::vector<std::string> Pool(const std::string& prefix, int64_t n) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(prefix + "_" + std::to_string(i));
  }
  return out;
}

/// Picks an index in [0, weights.size()) proportional to `weights`.
size_t WeightedPick(Rng* rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng->Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

/// Deterministic generator for the full database. Keeps cross-table context
/// (per-title kind/year, per-person gender, per-company country, popularity
/// permutations) so that fact tables can be generated with realistic
/// correlations.
class ImdbGenerator {
 public:
  ImdbGenerator(const Schema& schema, const ScaleProfile& profile,
                uint64_t seed)
      : schema_(schema), profile_(profile), rng_(seed) {
    tables_.reserve(static_cast<size_t>(schema.table_count()));
    for (TableId t = 0; t < schema.table_count(); ++t) {
      tables_.push_back(std::make_unique<storage::Table>(t, schema.table(t)));
    }
  }

  std::vector<std::unique_ptr<storage::Table>> Generate() {
    GenerateDimensions();
    GenerateKeyword();
    GenerateCompanyName();
    GenerateName();
    GenerateCharName();
    GenerateTitle();
    GenerateAkaName();
    GenerateAkaTitle();
    GenerateCastInfo();
    GenerateCompleteCast();
    GenerateMovieCompanies();
    GenerateMovieInfo();
    GenerateMovieInfoIdx();
    GenerateMovieKeyword();
    GenerateMovieLink();
    GeneratePersonInfo();
    return std::move(tables_);
  }

 private:
  storage::Table& table(TableId id) { return *tables_[static_cast<size_t>(id)]; }

  /// Interns `text` into column `col` of `t` and returns the code.
  Value Str(TableId t, catalog::ColumnId col, const std::string& text) {
    return table(t).column(col).InternString(text);
  }

  /// Fills a small dimension table with the given values.
  void FillDimension(TableId t, const std::vector<std::string>& values) {
    for (size_t i = 0; i < values.size(); ++i) {
      table(t).AppendRow(
          {static_cast<Value>(i + 1), Str(t, 1, values[i])});
    }
  }

  /// A shuffled identity permutation: popularity rank -> row index.
  std::vector<int32_t> PopularityPermutation(int64_t n, Rng* rng) {
    std::vector<int32_t> perm(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    rng->Shuffle(&perm);
    return perm;
  }

  void GenerateDimensions();
  void GenerateKeyword();
  void GenerateCompanyName();
  void GenerateName();
  void GenerateCharName();
  void GenerateTitle();
  void GenerateAkaName();
  void GenerateAkaTitle();
  void GenerateCastInfo();
  void GenerateCompleteCast();
  void GenerateMovieCompanies();
  void GenerateMovieInfo();
  void GenerateMovieInfoIdx();
  void GenerateMovieKeyword();
  void GenerateMovieLink();
  void GeneratePersonInfo();

  const Schema& schema_;
  ScaleProfile profile_;
  Rng rng_;
  std::vector<std::unique_ptr<storage::Table>> tables_;

  // Cross-table generation context.
  std::vector<int32_t> title_kind_;      // per title row, 1-based kind id
  std::vector<int32_t> title_year_;      // per title row
  std::vector<int32_t> name_gender_;     // per name row: 0=m, 1=f, 2=null
  std::vector<int32_t> company_country_; // per company row, country pool idx
  std::vector<int32_t> movie_pop_;       // popularity rank -> title row
  std::vector<int32_t> person_pop_;      // popularity rank -> name row
  std::vector<int32_t> movie_pop_rank_;  // title row -> popularity rank
};

void ImdbGenerator::GenerateDimensions() {
  FillDimension(Table::kKindType,
                {"movie", "episode", "tv series", "tv movie", "video movie",
                 "tv mini series", "video game"});
  FillDimension(Table::kCompanyType,
                {"production companies", "distributors",
                 "special effects companies", "miscellaneous companies"});
  FillDimension(Table::kLinkType,
                {"follows", "followed by", "remake of", "remade as",
                 "references", "referenced in", "spoofs", "spoofed in",
                 "features", "featured in", "spin off from", "spin off",
                 "version of", "similar to", "edited into", "edited from",
                 "alternate language version of", "unknown link"});
  FillDimension(Table::kRoleType,
                {"actor", "actress", "producer", "writer", "cinematographer",
                 "composer", "costume designer", "director", "editor",
                 "miscellaneous crew", "production designer", "guest"});
  FillDimension(Table::kCompCastType,
                {"cast", "crew", "complete", "complete+verified"});

  // info_type has 113 rows like real IMDB; well-known ids get real names.
  std::vector<std::string> infos;
  infos.reserve(113);
  for (int i = 1; i <= 113; ++i) infos.push_back("info_type_" + std::to_string(i));
  infos[info_types::kGenre - 1] = "genres";
  infos[info_types::kCountry - 1] = "countries";
  infos[info_types::kLanguage - 1] = "languages";
  infos[info_types::kRuntime - 1] = "runtimes";
  infos[info_types::kReleaseDates - 1] = "release dates";
  infos[info_types::kBirthDate - 1] = "birth date";
  infos[info_types::kHeight - 1] = "height";
  infos[info_types::kBiography - 1] = "mini biography";
  infos[info_types::kRating - 1] = "rating";
  infos[info_types::kVotes - 1] = "votes";
  infos[info_types::kTop250Rank - 1] = "top 250 rank";
  FillDimension(Table::kInfoType, infos);
}

void ImdbGenerator::GenerateKeyword() {
  Rng rng = rng_.Fork();
  const auto codes = Pool("pc", 200);
  ZipfTable code_zipf(200, 1.1);
  for (int64_t i = 0; i < profile_.keyword; ++i) {
    table(Table::kKeyword)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kKeyword, 1, "kw_" + std::to_string(i)),
                    Str(Table::kKeyword, 2, codes[static_cast<size_t>(
                                                code_zipf.Sample(&rng))])});
  }
}

void ImdbGenerator::GenerateCompanyName() {
  Rng rng = rng_.Fork();
  std::vector<std::string> countries = {
      "[us]", "[gb]", "[de]", "[fr]", "[jp]", "[it]", "[ca]", "[es]", "[in]",
      "[au]", "[se]", "[dk]", "[nl]", "[br]", "[mx]", "[ru]", "[cn]", "[kr]",
      "[ar]", "[be]", "[fi]", "[no]", "[pl]", "[at]", "[ch]", "[ie]", "[hk]",
      "[cz]", "[hu]", "[pt]"};
  ZipfTable country_zipf(static_cast<int64_t>(countries.size()), 1.2);
  company_country_.resize(static_cast<size_t>(profile_.company_name));
  for (int64_t i = 0; i < profile_.company_name; ++i) {
    const int32_t country =
        static_cast<int32_t>(country_zipf.Sample(&rng));
    company_country_[static_cast<size_t>(i)] = country;
    table(Table::kCompanyName)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kCompanyName, 1, "co_" + std::to_string(i)),
                    Str(Table::kCompanyName, 2,
                        countries[static_cast<size_t>(country)])});
  }
}

void ImdbGenerator::GenerateName() {
  Rng rng = rng_.Fork();
  const auto pcodes = Pool("np", 400);
  ZipfTable pcode_zipf(400, 1.0);
  name_gender_.resize(static_cast<size_t>(profile_.name));
  for (int64_t i = 0; i < profile_.name; ++i) {
    const double u = rng.Uniform();
    const int32_t gender = u < 0.55 ? 0 : (u < 0.90 ? 1 : 2);
    name_gender_[static_cast<size_t>(i)] = gender;
    const Value gender_code =
        gender == 2 ? kNullValue
                    : Str(Table::kName, 2, gender == 0 ? "m" : "f");
    table(Table::kName)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kName, 1, "person_" + std::to_string(i)),
                    gender_code,
                    Str(Table::kName, 3, pcodes[static_cast<size_t>(
                                             pcode_zipf.Sample(&rng))])});
  }
  person_pop_ = PopularityPermutation(profile_.name, &rng);
}

void ImdbGenerator::GenerateCharName() {
  for (int64_t i = 0; i < profile_.char_name; ++i) {
    table(Table::kCharName)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kCharName, 1, "char_" + std::to_string(i))});
  }
}

void ImdbGenerator::GenerateTitle() {
  Rng rng = rng_.Fork();
  // kind weights: movie, episode, tv series, tv movie, video movie,
  // tv mini series, video game.
  const std::vector<double> kind_weights = {45, 25, 10, 8, 6, 3, 3};
  const auto pcodes = Pool("tp", 300);
  ZipfTable pcode_zipf(300, 1.0);
  ZipfTable year_zipf(125, 0.6);  // rank 0 -> most recent year
  title_kind_.resize(static_cast<size_t>(profile_.title));
  title_year_.resize(static_cast<size_t>(profile_.title));
  for (int64_t i = 0; i < profile_.title; ++i) {
    const int32_t kind = static_cast<int32_t>(WeightedPick(&rng, kind_weights)) + 1;
    int32_t min_year = 1900;
    if (kind == 7) min_year = 1980;       // video games
    else if (kind == 2) min_year = 1950;  // episodes
    int32_t year =
        2024 - static_cast<int32_t>(year_zipf.Sample(&rng));
    year = std::max(year, min_year);
    // ~4% of titles have NULL production_year (like real IMDB).
    const bool year_null = rng.Uniform() < 0.04;
    title_kind_[static_cast<size_t>(i)] = kind;
    title_year_[static_cast<size_t>(i)] = year_null ? 0 : year;
    Value season = kNullValue;
    Value episode = kNullValue;
    if (kind == 2) {
      season = static_cast<Value>(rng.Zipf(30, 1.0) + 1);
      episode = static_cast<Value>(rng.UniformInt(1, 24));
    }
    table(Table::kTitle)
        .AppendRow({static_cast<Value>(i + 1),
                    Str(Table::kTitle, 1, "t_" + std::to_string(i)),
                    static_cast<Value>(kind),
                    year_null ? kNullValue : static_cast<Value>(year), season,
                    episode,
                    Str(Table::kTitle, 6, pcodes[static_cast<size_t>(
                                              pcode_zipf.Sample(&rng))])});
  }
  // Popularity correlates with recency: sort rows by (year desc + noise).
  movie_pop_.resize(static_cast<size_t>(profile_.title));
  for (int64_t i = 0; i < profile_.title; ++i) {
    movie_pop_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  std::vector<double> pop_score(static_cast<size_t>(profile_.title));
  for (int64_t i = 0; i < profile_.title; ++i) {
    pop_score[static_cast<size_t>(i)] =
        static_cast<double>(title_year_[static_cast<size_t>(i)]) +
        rng.Gaussian(0.0, 25.0);
  }
  std::sort(movie_pop_.begin(), movie_pop_.end(),
            [&](int32_t a, int32_t b) {
              return pop_score[static_cast<size_t>(a)] >
                     pop_score[static_cast<size_t>(b)];
            });
  movie_pop_rank_.resize(static_cast<size_t>(profile_.title));
  for (size_t rank = 0; rank < movie_pop_.size(); ++rank) {
    movie_pop_rank_[static_cast<size_t>(movie_pop_[rank])] =
        static_cast<int32_t>(rank);
  }
}

void ImdbGenerator::GenerateAkaName() {
  Rng rng = rng_.Fork();
  ZipfTable person_zipf(profile_.name, 0.4);
  for (int64_t i = 0; i < profile_.aka_name; ++i) {
    const int32_t person =
        person_pop_[static_cast<size_t>(person_zipf.Sample(&rng))];
    table(Table::kAkaName)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(person + 1),
                    Str(Table::kAkaName, 2, "aka_" + std::to_string(i))});
  }
}

void ImdbGenerator::GenerateAkaTitle() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.35);
  for (int64_t i = 0; i < profile_.aka_title; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    // 90% of alternate titles keep the original kind.
    const Value kind =
        rng.Uniform() < 0.9
            ? static_cast<Value>(title_kind_[static_cast<size_t>(movie)])
            : static_cast<Value>(rng.UniformInt(1, 7));
    table(Table::kAkaTitle)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    Str(Table::kAkaTitle, 2, "akat_" + std::to_string(i)),
                    kind});
  }
}

void ImdbGenerator::GenerateCastInfo() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.3);
  ZipfTable person_zipf(profile_.name, 0.35);
  ZipfTable char_zipf(profile_.char_name, 0.4);
  // Role weights by gender: male-heavy roles vs actress for women.
  const std::vector<double> male_roles = {40, 1, 8, 9, 4, 4, 1, 7, 5, 15, 3, 3};
  const std::vector<double> female_roles = {2, 45, 5, 7, 2, 2, 6, 4, 5, 15, 4, 3};
  const std::vector<std::string> notes = {"(voice)", "(uncredited)",
                                          "(credit only)", "(archive footage)"};
  for (int64_t i = 0; i < profile_.cast_info; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    const int32_t person =
        person_pop_[static_cast<size_t>(person_zipf.Sample(&rng))];
    const int32_t gender = name_gender_[static_cast<size_t>(person)];
    const auto& weights = gender == 1 ? female_roles : male_roles;
    const Value role = static_cast<Value>(WeightedPick(&rng, weights)) + 1;
    const Value person_role =
        rng.Uniform() < 0.4
            ? kNullValue
            : static_cast<Value>(char_zipf.Sample(&rng) + 1);
    const Value note =
        rng.Uniform() < 0.6
            ? kNullValue
            : Str(Table::kCastInfo, 5,
                  notes[static_cast<size_t>(rng.UniformInt(0, 3))]);
    const Value nr_order = rng.Uniform() < 0.3
                               ? kNullValue
                               : static_cast<Value>(rng.Zipf(50, 1.0) + 1);
    table(Table::kCastInfo)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(person + 1),
                    static_cast<Value>(movie + 1), person_role, role, note,
                    nr_order});
  }
}

void ImdbGenerator::GenerateCompleteCast() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.3);
  for (int64_t i = 0; i < profile_.complete_cast; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    const Value subject = static_cast<Value>(rng.UniformInt(1, 2));
    const Value status = static_cast<Value>(rng.UniformInt(3, 4));
    table(Table::kCompleteCast)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    subject, status});
  }
}

void ImdbGenerator::GenerateMovieCompanies() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.3);
  ZipfTable company_zipf(profile_.company_name, 0.8);
  const std::vector<std::string> notes = {"(2006) (worldwide)",
                                          "(presents)", "(co-production)",
                                          "(as distributor)"};
  for (int64_t i = 0; i < profile_.movie_companies; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    const int32_t company =
        static_cast<int32_t>(company_zipf.Sample(&rng));
    // Company type correlates with the company's country: US companies are
    // mostly production companies, foreign ones mostly distributors.
    const bool is_us = company_country_[static_cast<size_t>(company)] == 0;
    const std::vector<double> us_weights = {70, 18, 6, 6};
    const std::vector<double> other_weights = {28, 55, 7, 10};
    const Value company_type = static_cast<Value>(WeightedPick(
                                   &rng, is_us ? us_weights : other_weights)) +
                               1;
    const Value note =
        rng.Uniform() < 0.5
            ? kNullValue
            : Str(Table::kMovieCompanies, 4,
                  notes[static_cast<size_t>(rng.UniformInt(0, 3))]);
    table(Table::kMovieCompanies)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    static_cast<Value>(company + 1), company_type, note});
  }
}

void ImdbGenerator::GenerateMovieInfo() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.3);
  const std::vector<int32_t> info_ids = {
      info_types::kGenre,    info_types::kCountry, info_types::kLanguage,
      info_types::kRuntime,  info_types::kReleaseDates, 6, 7, 8, 16, 18};
  const std::vector<double> info_weights = {30, 20, 15, 12, 10, 4, 3, 3, 2, 1};
  const std::vector<std::string> genres = {
      "drama",   "comedy",    "documentary", "action", "thriller", "romance",
      "horror",  "crime",     "adventure",   "family", "animation", "music",
      "mystery", "fantasy",   "sci-fi",      "short",  "biography", "history",
      "war",     "western",   "sport",       "musical", "film-noir", "news"};
  const auto countries = Pool("country", 30);
  const auto languages = Pool("lang", 25);
  const auto runtimes = Pool("rt", 12);
  const auto releases = Pool("rel", 36);
  const auto misc = Pool("minfo", 40);
  ZipfTable genre_zipf(24, 0.9);
  ZipfTable country_zipf(30, 1.2);
  ZipfTable lang_zipf(25, 1.3);
  for (int64_t i = 0; i < profile_.movie_info; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    const size_t pick = WeightedPick(&rng, info_weights);
    const int32_t info_type = info_ids[pick];
    std::string info;
    switch (info_type) {
      case info_types::kGenre: {
        // Genre depends on the title's kind and era: rotating the Zipf head
        // by a (kind, era) offset creates strong conditional correlation
        // that an independence-based estimator cannot see.
        const int32_t kind = title_kind_[static_cast<size_t>(movie)];
        const int32_t year = title_year_[static_cast<size_t>(movie)];
        const int32_t era = year == 0 ? 0 : (year - 1900) / 25;
        const size_t offset = static_cast<size_t>((kind * 5 + era * 3) % 24);
        const size_t rank = static_cast<size_t>(genre_zipf.Sample(&rng));
        info = genres[(rank + offset) % 24];
        break;
      }
      case info_types::kCountry:
        info = countries[static_cast<size_t>(country_zipf.Sample(&rng))];
        break;
      case info_types::kLanguage:
        info = languages[static_cast<size_t>(lang_zipf.Sample(&rng))];
        break;
      case info_types::kRuntime:
        info = runtimes[static_cast<size_t>(rng.Zipf(12, 0.8))];
        break;
      case info_types::kReleaseDates:
        info = releases[static_cast<size_t>(rng.UniformInt(0, 35))];
        break;
      default:
        info = misc[static_cast<size_t>(rng.UniformInt(0, 39))];
        break;
    }
    table(Table::kMovieInfo)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    static_cast<Value>(info_type),
                    Str(Table::kMovieInfo, 3, info)});
  }
}

void ImdbGenerator::GenerateMovieInfoIdx() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.3);
  const std::vector<double> type_weights = {50, 42, 8};
  const std::vector<int32_t> type_ids = {info_types::kRating,
                                         info_types::kVotes,
                                         info_types::kTop250Rank};
  const auto ratings = Pool("rating", 10);   // rating_0 (lowest) .. rating_9
  const auto votes = Pool("votes", 12);      // votes_0 (fewest) .. votes_11
  for (int64_t i = 0; i < profile_.movie_info_idx; ++i) {
    const int64_t rank = movie_zipf.Sample(&rng);
    const int32_t movie = movie_pop_[static_cast<size_t>(rank)];
    const size_t pick = WeightedPick(&rng, type_weights);
    const int32_t info_type = type_ids[pick];
    // Popular movies get more votes and slightly better ratings: the
    // popularity rank shifts the bucket.
    const double pop_frac = 1.0 - static_cast<double>(rank) /
                                      static_cast<double>(profile_.title);
    std::string info;
    if (info_type == info_types::kRating) {
      const int32_t bucket = std::clamp(
          static_cast<int32_t>(rng.Gaussian(4.0 + 4.0 * pop_frac, 1.8)), 0, 9);
      info = ratings[static_cast<size_t>(bucket)];
    } else if (info_type == info_types::kVotes) {
      const int32_t bucket = std::clamp(
          static_cast<int32_t>(rng.Gaussian(10.0 * pop_frac, 1.5)), 0, 11);
      info = votes[static_cast<size_t>(bucket)];
    } else {
      info = "top250_" + std::to_string(rng.UniformInt(1, 250));
    }
    table(Table::kMovieInfoIdx)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    static_cast<Value>(info_type),
                    Str(Table::kMovieInfoIdx, 3, info)});
  }
}

void ImdbGenerator::GenerateMovieKeyword() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.35);
  ZipfTable keyword_zipf(profile_.keyword, 1.05);
  for (int64_t i = 0; i < profile_.movie_keyword; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    const Value keyword = static_cast<Value>(keyword_zipf.Sample(&rng) + 1);
    table(Table::kMovieKeyword)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    keyword});
  }
}

void ImdbGenerator::GenerateMovieLink() {
  Rng rng = rng_.Fork();
  ZipfTable movie_zipf(profile_.title, 0.3);
  ZipfTable link_zipf(18, 1.0);
  for (int64_t i = 0; i < profile_.movie_link; ++i) {
    const int32_t movie =
        movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    int32_t linked = movie;
    while (linked == movie) {
      linked = movie_pop_[static_cast<size_t>(movie_zipf.Sample(&rng))];
    }
    table(Table::kMovieLink)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(movie + 1),
                    static_cast<Value>(linked + 1),
                    static_cast<Value>(link_zipf.Sample(&rng) + 1)});
  }
}

void ImdbGenerator::GeneratePersonInfo() {
  Rng rng = rng_.Fork();
  ZipfTable person_zipf(profile_.name, 0.35);
  const std::vector<double> type_weights = {40, 20, 40};
  const std::vector<int32_t> type_ids = {info_types::kBirthDate,
                                         info_types::kHeight,
                                         info_types::kBiography};
  const auto birth_decades = Pool("born", 14);
  const auto heights = Pool("cm", 20);
  const auto bios = Pool("bio", 50);
  for (int64_t i = 0; i < profile_.person_info; ++i) {
    const int32_t person =
        person_pop_[static_cast<size_t>(person_zipf.Sample(&rng))];
    const size_t pick = WeightedPick(&rng, type_weights);
    const int32_t info_type = type_ids[pick];
    std::string info;
    if (info_type == info_types::kBirthDate) {
      info = birth_decades[static_cast<size_t>(rng.Zipf(14, 0.5))];
    } else if (info_type == info_types::kHeight) {
      info = heights[static_cast<size_t>(rng.UniformInt(0, 19))];
    } else {
      info = bios[static_cast<size_t>(rng.UniformInt(0, 49))];
    }
    const Value note = rng.Uniform() < 0.8
                           ? kNullValue
                           : Str(Table::kPersonInfo, 4, "pi_note");
    table(Table::kPersonInfo)
        .AppendRow({static_cast<Value>(i + 1), static_cast<Value>(person + 1),
                    static_cast<Value>(info_type),
                    Str(Table::kPersonInfo, 3, info), note});
  }
}

}  // namespace

ScaleProfile ScaleProfile::Small() { return Medium().Scaled(0.05); }

ScaleProfile ScaleProfile::Scaled(double factor) const {
  LQOLAB_CHECK_GT(factor, 0.0);
  auto scale = [factor](int64_t n) {
    return std::max<int64_t>(8, static_cast<int64_t>(n * factor));
  };
  ScaleProfile p = *this;
  p.keyword = scale(keyword);
  p.company_name = scale(company_name);
  p.name = scale(name);
  p.char_name = scale(char_name);
  p.aka_name = scale(aka_name);
  p.title = scale(title);
  p.aka_title = scale(aka_title);
  p.cast_info = scale(cast_info);
  p.complete_cast = scale(complete_cast);
  p.movie_companies = scale(movie_companies);
  p.movie_info = scale(movie_info);
  p.movie_info_idx = scale(movie_info_idx);
  p.movie_keyword = scale(movie_keyword);
  p.movie_link = scale(movie_link);
  p.person_info = scale(person_info);
  return p;
}

std::vector<std::unique_ptr<storage::Table>> GenerateImdb(
    const catalog::Schema& schema, const ScaleProfile& profile,
    uint64_t seed) {
  ImdbGenerator generator(schema, profile, seed);
  return generator.Generate();
}

std::vector<std::shared_ptr<storage::Table>> SubsampleCascade(
    const catalog::Schema& schema,
    const std::vector<std::shared_ptr<storage::Table>>& full,
    catalog::TableId root, double keep_fraction, uint64_t seed) {
  LQOLAB_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0);
  Rng rng(seed);

  // Decide which root-table ids survive.
  const storage::Table& root_table = *full[static_cast<size_t>(root)];
  std::unordered_set<Value> kept_ids;
  for (storage::RowId row = 0; row < root_table.row_count(); ++row) {
    if (rng.Bernoulli(keep_fraction)) {
      kept_ids.insert(root_table.column(0).at(row));
    }
  }

  std::vector<std::shared_ptr<storage::Table>> out;
  out.reserve(full.size());
  for (TableId t = 0; t < schema.table_count(); ++t) {
    const catalog::TableDef& def = schema.table(t);
    const storage::Table& src = *full[static_cast<size_t>(t)];
    auto dst = std::make_unique<storage::Table>(t, def);

    // Columns whose values must exist in the surviving root set.
    std::vector<catalog::ColumnId> root_fks;
    for (const auto& fk : def.foreign_keys) {
      if (fk.referenced_table == root) root_fks.push_back(fk.column);
    }
    const bool is_root = t == root;

    for (storage::RowId row = 0; row < src.row_count(); ++row) {
      bool keep = true;
      if (is_root) {
        keep = kept_ids.count(src.column(0).at(row)) > 0;
      } else {
        for (catalog::ColumnId fk_col : root_fks) {
          const Value v = src.column(fk_col).at(row);
          if (v != kNullValue && kept_ids.count(v) == 0) {
            keep = false;
            break;
          }
        }
      }
      if (!keep) continue;
      std::vector<Value> values(static_cast<size_t>(src.column_count()));
      for (int32_t c = 0; c < src.column_count(); ++c) {
        const Value v = src.column(c).at(row);
        if (v != kNullValue && def.columns[static_cast<size_t>(c)].type ==
                                   ColumnType::kString) {
          values[static_cast<size_t>(c)] =
              dst->column(c).InternString(src.column(c).StringAt(v));
        } else {
          values[static_cast<size_t>(c)] = v;
        }
      }
      dst->AppendRow(values);
    }
    out.push_back(std::move(dst));
  }
  return out;
}

std::vector<std::shared_ptr<storage::Table>> SubsampleTitleCascade(
    const catalog::Schema& schema,
    const std::vector<std::shared_ptr<storage::Table>>& full,
    double keep_fraction, uint64_t seed) {
  return SubsampleCascade(schema, full, Table::kTitle, keep_fraction, seed);
}

}  // namespace lqolab::datagen
