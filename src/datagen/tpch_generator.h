#ifndef LQOLAB_DATAGEN_TPCH_GENERATOR_H_
#define LQOLAB_DATAGEN_TPCH_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tpch_schema.h"
#include "storage/table.h"

namespace lqolab::datagen {

/// Row counts for the synthetic TPC-H-lite database. Defaults give ~0.43M
/// rows total — the same order of magnitude as the IMDB ScaleProfile, so
/// the two workloads stress the engine comparably. region and nation are
/// fixed at the TPC-H 5/25.
struct TpchScaleProfile {
  int64_t supplier = 500;
  int64_t customer = 7500;
  int64_t part = 10000;
  int64_t partsupp = 40000;  ///< ~4 suppliers per part
  int64_t orders = 75000;
  int64_t lineitem = 300000;  ///< ~4 lines per order

  /// Default profile.
  static TpchScaleProfile Medium() { return {}; }

  /// ~20x smaller; used by unit tests.
  static TpchScaleProfile Small();

  /// Uniformly scales all row counts by `factor` (every table keeps at
  /// least 8 rows).
  TpchScaleProfile Scaled(double factor) const;
};

/// YYYYMMDD bounds of the generated order/ship dates (TPC-H's 1992..1998
/// window). Workload templates filter inside this range.
namespace tpch_dates {
constexpr int32_t kFirstOrder = 19920101;
constexpr int32_t kLastOrder = 19981231;
}  // namespace tpch_dates

/// Generates all 8 TPC-H-lite tables deterministically from `seed`. Like
/// the IMDB generator, the data is skewed and correlated so the histogram
/// estimator makes realistic errors: Zipfian customer/part popularity,
/// order dates that grow denser toward recent years, returnflag correlated
/// with shipdate, brand correlated with type, and priority correlated with
/// market segment.
std::vector<std::unique_ptr<storage::Table>> GenerateTpch(
    const catalog::Schema& schema, const TpchScaleProfile& profile,
    uint64_t seed);

}  // namespace lqolab::datagen

#endif  // LQOLAB_DATAGEN_TPCH_GENERATOR_H_
