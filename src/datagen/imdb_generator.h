#ifndef LQOLAB_DATAGEN_IMDB_GENERATOR_H_
#define LQOLAB_DATAGEN_IMDB_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/imdb_schema.h"
#include "catalog/schema.h"
#include "storage/table.h"

namespace lqolab::datagen {

/// Row counts for the synthetic IMDB database. Defaults give ~0.66M rows
/// total (~165 MB of simulated heap pages), small enough to train learned
/// optimizers on one core yet large enough for cache pressure and realistic
/// join fanouts.
struct ScaleProfile {
  int64_t keyword = 15000;
  int64_t company_name = 12000;
  int64_t name = 50000;
  int64_t char_name = 30000;
  int64_t aka_name = 15000;
  int64_t title = 40000;
  int64_t aka_title = 8000;
  int64_t cast_info = 140000;
  int64_t complete_cast = 14000;
  int64_t movie_companies = 52000;
  int64_t movie_info = 110000;
  int64_t movie_info_idx = 60000;
  int64_t movie_keyword = 70000;
  int64_t movie_link = 6000;
  int64_t person_info = 60000;

  /// Default profile.
  static ScaleProfile Medium() { return {}; }

  /// ~20x smaller; used by unit tests.
  static ScaleProfile Small();

  /// Uniformly scales all row counts by `factor` (>= such that every table
  /// keeps at least 8 rows).
  ScaleProfile Scaled(double factor) const;

  /// The scale-factor knob of the parallelism benchmarks: sf x Medium().
  /// sf 1 is the default ~0.66M-row database; sf 16 crosses 10M rows
  /// (~10.6M) while keeping the same skew and correlation structure, so
  /// storage-layer changes (table sharding, per-shard buffer pools) can be
  /// benchmarked against a heap that dwarfs every cache tier.
  static ScaleProfile ForScaleFactor(double sf) {
    return Medium().Scaled(sf);
  }
};

/// Well-known info_type ids used by generated movie_info / movie_info_idx /
/// person_info rows and referenced by the workload's filters.
namespace info_types {
constexpr int32_t kGenre = 1;
constexpr int32_t kCountry = 2;
constexpr int32_t kLanguage = 3;
constexpr int32_t kRuntime = 4;
constexpr int32_t kReleaseDates = 5;
constexpr int32_t kRating = 99;       // movie_info_idx
constexpr int32_t kVotes = 100;       // movie_info_idx
constexpr int32_t kTop250Rank = 101;  // movie_info_idx
constexpr int32_t kBirthDate = 21;    // person_info
constexpr int32_t kHeight = 22;       // person_info
constexpr int32_t kBiography = 23;    // person_info
}  // namespace info_types

/// Generates all 21 IMDB tables deterministically from `seed`. The data is
/// skewed (Zipfian movie/person popularity, head-heavy keywords and
/// companies) and correlated across columns (genre x kind x year, company
/// country x company type, role x gender), so that the histogram-based
/// estimator makes realistic errors — the property that makes JOB hard
/// (paper §3.1).
std::vector<std::unique_ptr<storage::Table>> GenerateImdb(
    const catalog::Schema& schema, const ScaleProfile& profile, uint64_t seed);

/// Schema-generic subsample for the paper's covariate-shift experiment
/// (§8.3): keeps each row of `root` with probability `keep_fraction`
/// (Bernoulli) and cascades the deletion through every table with a foreign
/// key into `root`, preserving referential integrity. Tables without such a
/// foreign key are copied unchanged. Works for any schema built on this
/// catalog's conventions (IMDB around `title`, TPC-H-lite around `orders`).
std::vector<std::shared_ptr<storage::Table>> SubsampleCascade(
    const catalog::Schema& schema,
    const std::vector<std::shared_ptr<storage::Table>>& full,
    catalog::TableId root, double keep_fraction, uint64_t seed);

/// SubsampleCascade rooted at IMDB's `title` (the Fig. 7 IMDB-p% variant).
std::vector<std::shared_ptr<storage::Table>> SubsampleTitleCascade(
    const catalog::Schema& schema,
    const std::vector<std::shared_ptr<storage::Table>>& full,
    double keep_fraction, uint64_t seed);

}  // namespace lqolab::datagen

#endif  // LQOLAB_DATAGEN_IMDB_GENERATOR_H_
