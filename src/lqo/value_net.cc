#include "lqo/value_net.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace lqolab::lqo {

using ml::Graph;
using ml::Matrix;
using ml::NodeId;
using optimizer::PhysicalPlan;
using optimizer::PlanNode;
using query::Query;

float LatencyToTarget(util::VirtualNanos latency) {
  const double ms =
      static_cast<double>(latency) / static_cast<double>(util::kNanosPerMilli);
  return static_cast<float>(std::log1p(std::max(0.0, ms)) / 10.0);
}

util::VirtualNanos TargetToLatency(float target) {
  const double ms = std::expm1(static_cast<double>(target) * 10.0);
  return static_cast<util::VirtualNanos>(
      std::max(0.0, ms) * static_cast<double>(util::kNanosPerMilli));
}

namespace {

util::Rng MakeRng(uint64_t seed) { return util::Rng(seed); }

}  // namespace

TreeValueNet::TreeValueNet(int32_t node_dim, int32_t query_dim, int32_t hidden,
                           uint64_t seed)
    : node_dim_(node_dim),
      query_dim_(query_dim),
      leaf_([&] {
        util::Rng rng = MakeRng(seed);
        return ml::Linear(node_dim, hidden, &rng);
      }()),
      join_([&] {
        util::Rng rng = MakeRng(seed ^ 0x9e3779b9ULL);
        return ml::Linear(node_dim + 2 * hidden, hidden, &rng);
      }()),
      head_([&] {
        util::Rng rng = MakeRng(seed ^ 0x85ebca6bULL);
        return ml::Mlp({query_dim + hidden, 64, 32, 1}, &rng);
      }()) {}

NodeId TreeValueNet::EmbedNode(Graph* g, const Query& q,
                               const PhysicalPlan& plan, int32_t node_index,
                               const PlanEncoder& encoder) {
  const PlanNode& node = plan.node(node_index);
  const NodeId features =
      g->Input(Matrix::RowVector(encoder.EncodeNode(q, plan, node_index)));
  if (node.type == PlanNode::Type::kScan) {
    return g->Relu(leaf_.Apply(g, features));
  }
  const NodeId left = EmbedNode(g, q, plan, node.left, encoder);
  const NodeId right = EmbedNode(g, q, plan, node.right, encoder);
  const NodeId concat =
      g->ConcatCols(g->ConcatCols(features, left), right);
  return g->Relu(join_.Apply(g, concat));
}

NodeId TreeValueNet::BuildScore(Graph* g, const std::vector<float>& query_enc,
                                const Query& q, const PhysicalPlan& plan,
                                const PlanEncoder& encoder) {
  ++eval_count_;
  LQOLAB_CHECK(!plan.empty());
  NodeId embedding = EmbedNode(g, q, plan, plan.root, encoder);
  if (query_dim_ > 0) {
    LQOLAB_CHECK_EQ(static_cast<int32_t>(query_enc.size()), query_dim_);
    embedding =
        g->ConcatCols(g->Input(Matrix::RowVector(query_enc)), embedding);
  }
  return head_.Apply(g, embedding);
}

double TreeValueNet::Score(const std::vector<float>& query_enc, const Query& q,
                           const PhysicalPlan& plan,
                           const PlanEncoder& encoder) {
  Graph g;
  return g.scalar(BuildScore(&g, query_enc, q, plan, encoder));
}

double TreeValueNet::TrainRegression(const std::vector<float>& query_enc,
                                     const Query& q, const PhysicalPlan& plan,
                                     const PlanEncoder& encoder, float target,
                                     ml::Adam* optimizer) {
  Graph g;
  const NodeId score = BuildScore(&g, query_enc, q, plan, encoder);
  const NodeId loss =
      ml::MseLoss(&g, score, g.Input(Matrix::RowVector({target})));
  const double loss_value = g.scalar(loss);
  g.Backward(loss);
  optimizer->Step();
  return loss_value;
}

double TreeValueNet::TrainPairwise(const std::vector<float>& query_enc,
                                   const Query& q, const PhysicalPlan& better,
                                   const PhysicalPlan& worse,
                                   const PlanEncoder& encoder,
                                   ml::Adam* optimizer) {
  Graph g;
  const NodeId score_better = BuildScore(&g, query_enc, q, better, encoder);
  const NodeId score_worse = BuildScore(&g, query_enc, q, worse, encoder);
  const NodeId loss = ml::PairwiseRankLoss(&g, score_better, score_worse);
  const double loss_value = g.scalar(loss);
  g.Backward(loss);
  optimizer->Step();
  return loss_value;
}

std::vector<ml::Param*> TreeValueNet::Params() {
  std::vector<ml::Param*> params;
  leaf_.CollectParams(&params);
  join_.CollectParams(&params);
  for (ml::Param* p : head_.Params()) params.push_back(p);
  return params;
}

}  // namespace lqolab::lqo
