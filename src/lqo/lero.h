#ifndef LQOLAB_LQO_LERO_H_
#define LQOLAB_LQO_LERO_H_

#include <memory>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/interface.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified Lero (Zhu et al., VLDB 2023): a learning-to-rank optimizer
/// that generates candidate plans from the NATIVE optimizer by sweeping the
/// engine's internal cardinality estimates (join_selectivity_scale — Lero's
/// row-count scaling factors), then lets a pairwise plan comparator pick
/// the best candidate. Like Bao it has no query encoding (Table 1), but it
/// keeps table identities and outputs full plans. DBMS-integrated: its
/// candidate generation runs inside the engine.
class LeroOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    /// Selectivity scaling sweep used to diversify candidates.
    std::vector<double> scale_factors = {0.01, 0.1, 1.0, 10.0, 100.0};
    int32_t epochs = 3;
    int32_t pair_epochs = 10;
    int32_t hidden = 48;
    double learning_rate = 1e-3;
    uint64_t seed = 6;
  };

  LeroOptimizer();
  explicit LeroOptimizer(Options options);
  ~LeroOptimizer() override;

  std::string name() const override { return "lero"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

 private:
  struct Candidate {
    optimizer::PhysicalPlan plan;
    util::VirtualNanos planning_ns = 0;
  };
  struct Pair {
    query::Query query;
    optimizer::PhysicalPlan better;
    optimizer::PhysicalPlan worse;
  };

  void EnsureModel(engine::Database* db);
  /// Plans the query under every scaling factor; deduplicates plans.
  std::vector<Candidate> GenerateCandidates(const query::Query& q,
                                            engine::Database* db,
                                            TrainReport* report);
  /// Comparator: true when `a` is predicted faster than `b`.
  bool Prefer(const query::Query& q, const optimizer::PhysicalPlan& a,
              const optimizer::PhysicalPlan& b);

  Options options_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_;
  std::unique_ptr<ml::Adam> adam_;
  std::vector<Pair> pairs_;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_LERO_H_
