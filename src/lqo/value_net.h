#ifndef LQOLAB_LQO_VALUE_NET_H_
#define LQOLAB_LQO_VALUE_NET_H_

#include <vector>

#include "lqo/encoding.h"
#include "ml/nn.h"
#include "util/virtual_clock.h"

namespace lqolab::lqo {

/// Converts a latency into the network's regression target
/// (log-milliseconds, scaled to ~[0, 2]).
float LatencyToTarget(util::VirtualNanos latency);
/// Inverse of LatencyToTarget.
util::VirtualNanos TargetToLatency(float target);

/// Tree-structured value network: a recursive embedding over plan nodes
/// (leaf = ReLU(W_l x), internal = ReLU(W_j [x; emb_left; emb_right])) — the
/// simplified stand-in for Tree-CNN / Tree-LSTM plan processing (Table 1) —
/// followed by an MLP head over [query encoding; root embedding].
/// A query_dim of 0 drops the query encoding (Bao-style plan-only models,
/// §4.2's "missing the query encoding part").
class TreeValueNet {
 public:
  TreeValueNet(int32_t node_dim, int32_t query_dim, int32_t hidden,
               uint64_t seed);

  /// Builds the score subgraph for a plan; callers compose losses on top.
  ml::NodeId BuildScore(ml::Graph* g, const std::vector<float>& query_enc,
                        const query::Query& q,
                        const optimizer::PhysicalPlan& plan,
                        const PlanEncoder& encoder);

  /// Predicted target (LatencyToTarget scale) for one plan.
  double Score(const std::vector<float>& query_enc, const query::Query& q,
               const optimizer::PhysicalPlan& plan,
               const PlanEncoder& encoder);

  /// One regression step (MSE against `target`); returns the loss.
  double TrainRegression(const std::vector<float>& query_enc,
                         const query::Query& q,
                         const optimizer::PhysicalPlan& plan,
                         const PlanEncoder& encoder, float target,
                         ml::Adam* optimizer);

  /// One pairwise step: pushes score(better) below score(worse).
  double TrainPairwise(const std::vector<float>& query_enc,
                       const query::Query& q,
                       const optimizer::PhysicalPlan& better,
                       const optimizer::PhysicalPlan& worse,
                       const PlanEncoder& encoder, ml::Adam* optimizer);

  std::vector<ml::Param*> Params();

  int32_t query_dim() const { return query_dim_; }

  /// Cumulative forward evaluations (drives modeled inference time).
  int64_t eval_count() const { return eval_count_; }

 private:
  ml::NodeId EmbedNode(ml::Graph* g, const query::Query& q,
                       const optimizer::PhysicalPlan& plan, int32_t node_index,
                       const PlanEncoder& encoder);

  int32_t node_dim_;
  int32_t query_dim_;
  ml::Linear leaf_;
  ml::Linear join_;
  ml::Mlp head_;
  int64_t eval_count_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_VALUE_NET_H_
