#include "lqo/balsa.h"

#include <algorithm>
#include <memory>

#include "engine/exec_batch.h"
#include "exec/oracle.h"
#include "lqo/plan_search.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using query::Query;
using util::VirtualNanos;

BalsaOptimizer::BalsaOptimizer() : BalsaOptimizer(Options()) {}

BalsaOptimizer::BalsaOptimizer(Options options) : options_(options) {}
BalsaOptimizer::~BalsaOptimizer() = default;

void BalsaOptimizer::EnsureModel(Database* db) {
  if (net_ != nullptr) return;
  const auto& ctx = db->context();
  query_encoder_ = std::make_unique<QueryEncoder>(&ctx,
                                                  &db->planner().estimator());
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &ctx, &db->planner().estimator(), PlanEncodingStyle::kWithTableIdentity);
  net_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(),
                                        query_encoder_->dim(), options_.hidden,
                                        options_.seed);
  adam_ = std::make_unique<ml::Adam>(net_->Params(), options_.learning_rate);
  rng_state_ = options_.seed ^ 0xb5297a4dULL;
}

double BalsaOptimizer::Fit(const std::vector<Sample>& samples, int32_t epochs,
                           TrainReport* report) {
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double loss_sum = 0.0;
  int64_t updates = 0;
  for (int32_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      std::swap(order[i - 1], order[(rng_state_ >> 33) % i]);
    }
    for (size_t idx : order) {
      const Sample& sample = samples[idx];
      const std::vector<float> qenc = query_encoder_->Encode(sample.query);
      loss_sum +=
          net_->TrainRegression(qenc, sample.query, sample.plan,
                                *plan_encoder_, sample.target, adam_.get());
      ++report->nn_updates;
      ++updates;
    }
  }
  return updates > 0 ? loss_sum / static_cast<double>(updates) : 0.0;
}

SearchResult BalsaOptimizer::SearchPlan(const Query& q, Database* db,
                                        double epsilon) {
  const std::vector<float> qenc = query_encoder_->Encode(q);
  return GreedyBottomUpSearch(
      q, db->planner().cost_model(),
      [&](const optimizer::PhysicalPlan& candidate) {
        double score = net_->Score(qenc, q, candidate, *plan_encoder_);
        if (epsilon > 0.0) {
          rng_state_ =
              rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
          const double u =
              static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;
          score += (u - 0.5) * epsilon;
        }
        return score;
      });
}

TrainReport BalsaOptimizer::Train(const std::vector<Query>& train_set,
                                  Database* db) {
  EnsureModel(db);
  TrainReport report;

  // Episode telemetry: the cost-model pretrain is episode 0, each
  // fine-tuning iteration is one episode after it.
  auto record_episode = [&report](int32_t episode, double loss,
                                  const TrainReport& before) {
    EpisodeStats stats;
    stats.episode = episode;
    stats.loss = loss;
    stats.plans_executed = report.plans_executed - before.plans_executed;
    stats.execution_ns = report.execution_ns - before.execution_ns;
    stats.nn_updates = report.nn_updates - before.nn_updates;
    stats.nn_evals = report.nn_evals - before.nn_evals;
    stats.training_time_ns =
        stats.execution_ns +
        stats.plans_executed * timing::kTrainPlanOverheadNs +
        stats.nn_updates * timing::kNnUpdateNs +
        stats.nn_evals * timing::kNnEvalNs;
    report.episodes.push_back(stats);
    obs::Count(obs::Counter::kTrainEpisodes);
  };

  // --- Phase 1: pretrain on the cost model (no execution, no expertise).
  std::vector<Sample> pretrain;
  for (const Query& q : train_set) {
    for (int32_t s = 0; s < options_.pretrain_samples_per_query; ++s) {
      optimizer::PhysicalPlan plan =
          RandomPlan(q, db->planner().cost_model(), &rng_state_);
      const double cost = db->planner().EstimatePlanCost(q, plan);
      ++report.planner_calls;
      pretrain.push_back(
          {q, std::move(plan),
           LatencyToTarget(static_cast<VirtualNanos>(
               std::min(cost, 1.0e18)))});
    }
  }
  {
    const TrainReport before = report;
    const double loss = Fit(pretrain, options_.pretrain_epochs, &report);
    record_episode(0, loss, before);
  }

  // --- Phase 2: on-policy fine-tuning with safe timeouts.
  std::unique_ptr<engine::BatchExecutor> batch_exec;
  if (options_.parallelism > 0) {
    batch_exec = std::make_unique<engine::BatchExecutor>(
        db, options_.seed, options_.parallelism);
  }
  // A query's safe timeout derives from its best latency in EARLIER
  // candidate rounds only, so a round is an independent batch: searches and
  // timeouts are fixed serially (preserving the rng_state_ draw sequence
  // within the round), then the round's plans execute concurrently.
  // Note the serial path interleaves per query instead (q-major, not
  // c-major) — the parallel trajectory is deterministic but intentionally
  // its own history.
  auto run_round = [&](const std::vector<Query>& queries, int32_t c,
                       std::vector<Sample>* fresh) {
    const double epsilon = c == 0 ? 0.0 : 0.05;
    std::vector<optimizer::PhysicalPlan> plans;
    std::vector<engine::PlanExec> batch;
    plans.reserve(queries.size());
    batch.reserve(queries.size());
    for (const Query& q : queries) {
      SearchResult search = SearchPlan(q, db, epsilon);
      report.nn_evals += search.evals;
      plans.push_back(std::move(search.plan));
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      VirtualNanos timeout = 0;
      auto best = best_latency_.find(exec::QueryFingerprint(queries[i]));
      if (best != best_latency_.end()) {
        timeout = static_cast<VirtualNanos>(
            static_cast<double>(best->second) * options_.timeout_factor);
        timeout = std::max<VirtualNanos>(timeout, util::kNanosPerMilli);
      }
      batch.push_back({&queries[i], &plans[i], timeout});
    }
    const std::vector<engine::QueryRun> runs = batch_exec->Execute(batch);
    for (size_t i = 0; i < runs.size(); ++i) {
      const uint64_t fp = exec::QueryFingerprint(queries[i]);
      ++report.plans_executed;
      report.execution_ns += runs[i].execution_ns;
      if (!runs[i].timed_out) {
        auto [it, inserted] = best_latency_.emplace(fp, runs[i].execution_ns);
        if (!inserted && runs[i].execution_ns < it->second) {
          it->second = runs[i].execution_ns;
        }
      }
      fresh->push_back({queries[i], std::move(plans[i]),
                        LatencyToTarget(runs[i].execution_ns)});
    }
  };
  for (int32_t iter = 0; iter < options_.iterations; ++iter) {
    const TrainReport before = report;
    std::vector<Sample> fresh;
    if (batch_exec != nullptr) {
      for (int32_t c = 0; c <= options_.exploration_plans; ++c) {
        run_round(train_set, c, &fresh);
      }
    } else {
      for (const Query& q : train_set) {
        const uint64_t fp = exec::QueryFingerprint(q);
        for (int32_t c = 0; c <= options_.exploration_plans; ++c) {
          const double epsilon = c == 0 ? 0.0 : 0.05;
          SearchResult search = SearchPlan(q, db, epsilon);
          report.nn_evals += search.evals;
          VirtualNanos timeout = 0;
          auto best = best_latency_.find(fp);
          if (best != best_latency_.end()) {
            timeout = static_cast<VirtualNanos>(
                static_cast<double>(best->second) * options_.timeout_factor);
            timeout = std::max<VirtualNanos>(timeout, util::kNanosPerMilli);
          }
          const engine::QueryRun run =
              db->ExecutePlan(q, search.plan, 0, timeout);
          ++report.plans_executed;
          report.execution_ns += run.execution_ns;
          if (!run.timed_out) {
            auto [it, inserted] = best_latency_.emplace(fp, run.execution_ns);
            if (!inserted && run.execution_ns < it->second) {
              it->second = run.execution_ns;
            }
          }
          fresh.push_back({q, std::move(search.plan),
                           LatencyToTarget(run.execution_ns)});
        }
      }
    }
    // Balsa trains on the most recent data, not a replay buffer.
    const double loss = Fit(fresh, options_.train_epochs, &report);
    record_episode(iter + 1, loss, before);
  }

  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction BalsaOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  SearchResult search = SearchPlan(q, db, 0.0);
  Prediction prediction;
  prediction.plan = std::move(search.plan);
  prediction.nn_evals = search.evals;
  prediction.inference_ns = search.evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec BalsaOptimizer::encoding_spec() const {
  return {"Balsa",    "yes",  "cardinality", "cardinality", "stacking",
          "yes",      "yes",  "yes",         "-",           "Regression",
          "Tree-CNN", "Plan", "Static",      "-"};
}

}  // namespace lqolab::lqo
