#include "lqo/encoding.h"

#include <cmath>

#include "util/check.h"

namespace lqolab::lqo {

using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::PlanNode;
using optimizer::ScanType;
using query::Query;

namespace {

float LogFeature(double rows) {
  return static_cast<float>(std::log1p(std::max(0.0, rows)) / 20.0);
}

}  // namespace

QueryEncoder::QueryEncoder(const exec::DbContext* ctx,
                           const stats::CardinalityEstimator* estimator)
    : ctx_(ctx), estimator_(estimator) {
  LQOLAB_CHECK(ctx != nullptr);
  LQOLAB_CHECK(estimator != nullptr);
}

int32_t QueryEncoder::dim() const {
  return 2 * ctx_->schema->table_count() + 2;
}

std::vector<float> QueryEncoder::Encode(const Query& q) const {
  const int32_t tables = ctx_->schema->table_count();
  std::vector<float> features(static_cast<size_t>(dim()), 0.0f);
  for (query::AliasId a = 0; a < q.relation_count(); ++a) {
    const catalog::TableId t = q.relations[static_cast<size_t>(a)].table;
    features[static_cast<size_t>(t)] += 0.5f;  // alias count (0.5 per alias)
    const double est = estimator_->EstimateBaseRows(q, a);
    float& slot = features[static_cast<size_t>(tables + t)];
    slot = std::max(slot, LogFeature(est));
  }
  features[static_cast<size_t>(2 * tables)] =
      static_cast<float>(q.join_count()) / 16.0f;
  features[static_cast<size_t>(2 * tables + 1)] =
      static_cast<float>(q.edges.size()) / 20.0f;
  return features;
}

PlanEncoder::PlanEncoder(const exec::DbContext* ctx,
                         const stats::CardinalityEstimator* estimator,
                         PlanEncodingStyle style)
    : ctx_(ctx), estimator_(estimator), style_(style) {
  LQOLAB_CHECK(ctx != nullptr);
  LQOLAB_CHECK(estimator != nullptr);
}

int32_t PlanEncoder::node_dim() const {
  // 4 join-algo one-hots + 4 scan-type one-hots + log est rows, then either
  // a table identifier one-hot or a log estimated-cost slot.
  const int32_t base = 4 + 4 + 1;
  return style_ == PlanEncodingStyle::kWithTableIdentity
             ? base + ctx_->schema->table_count()
             : base + 1;
}

std::vector<float> PlanEncoder::EncodeNode(const Query& q,
                                           const PhysicalPlan& plan,
                                           int32_t node_index) const {
  const PlanNode& node = plan.node(node_index);
  std::vector<float> features(static_cast<size_t>(node_dim()), 0.0f);
  if (node.type == PlanNode::Type::kJoin) {
    features[static_cast<size_t>(node.algo)] = 1.0f;
  } else {
    features[4 + static_cast<size_t>(node.scan_type)] = 1.0f;
  }
  const double est_rows = estimator_->EstimateJoinRows(q, node.mask);
  features[8] = LogFeature(est_rows);
  if (style_ == PlanEncodingStyle::kWithTableIdentity) {
    if (node.type == PlanNode::Type::kScan) {
      const catalog::TableId t =
          q.relations[static_cast<size_t>(node.alias)].table;
      features[static_cast<size_t>(9 + t)] = 1.0f;
    }
  } else {
    // Bao-style: estimated cost stands in for identity. A crude per-node
    // cost proxy: rows scaled by an operator weight.
    const double weight =
        node.type == PlanNode::Type::kScan
            ? 1.0
            : (node.algo == JoinAlgo::kHash ? 2.0
               : node.algo == JoinAlgo::kMerge ? 2.5 : 3.0);
    features[9] = LogFeature(est_rows * weight * 40.0);
  }
  return features;
}

}  // namespace lqolab::lqo
