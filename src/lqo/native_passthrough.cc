#include "lqo/native_passthrough.h"

namespace lqolab::lqo {

TrainReport NativePassthroughOptimizer::Train(
    const std::vector<query::Query>& train_set, engine::Database* db) {
  (void)train_set;
  (void)db;
  return TrainReport{};
}

Prediction NativePassthroughOptimizer::Plan(const query::Query& q,
                                            engine::Database* db) {
  const engine::Database::Planned planned = db->PlanQuery(q);
  Prediction prediction;
  prediction.plan = planned.plan;
  prediction.planning_ns = planned.planning_ns;
  prediction.inference_ns = 0;
  prediction.nn_evals = 0;
  return prediction;
}

EncodingSpec NativePassthroughOptimizer::encoding_spec() const {
  return {"NativePassthrough",
          "-", "-", "-", "-", "-", "-", "-", "-",
          "none", "none", "Plan", "Static", "yes"};
}

}  // namespace lqolab::lqo
