#ifndef LQOLAB_LQO_LOGER_H_
#define LQOLAB_LQO_LOGER_H_

#include <memory>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/interface.h"
#include "lqo/plan_search.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified LOGER (Chen et al., VLDB 2023): RTOS's conceptual pipeline
/// with the action space extended by the JOIN TYPE — each search step picks
/// both the next relation and which join operator to use (its "hint" is a
/// join-type restriction rather than a full physical plan; scans stay with
/// the engine). Plan construction uses an epsilon-beam search over
/// (relation, algorithm) actions guided by the value network.
class LogerOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t iterations = 2;
    int32_t train_epochs = 10;
    int32_t beam_width = 3;
    double epsilon = 0.1;  ///< epsilon-beam exploration during training
    int32_t hidden = 48;
    double learning_rate = 1e-3;
    uint64_t seed = 7;
  };

  LogerOptimizer();
  explicit LogerOptimizer(Options options);
  ~LogerOptimizer() override;

  std::string name() const override { return "loger"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

 private:
  struct Sample {
    query::Query query;
    optimizer::PhysicalPlan plan;
    float target = 0.0f;
  };

  void EnsureModel(engine::Database* db);
  /// Epsilon-beam search over (next relation, join algorithm) actions.
  SearchResult BeamSearch(const query::Query& q, engine::Database* db,
                          double epsilon);
  void Fit(engine::Database* db, int32_t epochs, TrainReport* report);

  Options options_;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_;
  std::unique_ptr<ml::Adam> adam_;
  std::vector<Sample> replay_;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_LOGER_H_
