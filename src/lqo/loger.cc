#include "lqo/loger.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::ScanType;
using query::AliasId;
using query::AliasMask;
using query::Query;

LogerOptimizer::LogerOptimizer() : LogerOptimizer(Options()) {}
LogerOptimizer::LogerOptimizer(Options options) : options_(options) {}
LogerOptimizer::~LogerOptimizer() = default;

void LogerOptimizer::EnsureModel(Database* db) {
  if (net_ != nullptr) return;
  const auto& ctx = db->context();
  query_encoder_ = std::make_unique<QueryEncoder>(&ctx,
                                                  &db->planner().estimator());
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &ctx, &db->planner().estimator(), PlanEncodingStyle::kWithTableIdentity);
  net_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(),
                                        query_encoder_->dim(), options_.hidden,
                                        options_.seed);
  adam_ = std::make_unique<ml::Adam>(net_->Params(), options_.learning_rate);
  rng_state_ = options_.seed ^ 0x41c64e6dULL;
}

SearchResult LogerOptimizer::BeamSearch(const Query& q, Database* db,
                                        double epsilon) {
  SearchResult result;
  const std::vector<float> qenc = query_encoder_->Encode(q);
  const auto& cm = db->planner().cost_model();

  struct State {
    PhysicalPlan plan;  // left-deep, grows one (relation, algo) per step
    AliasMask mask = 0;
    double score = 0.0;
  };
  auto leaf = [&](AliasId a) {
    const auto scan = cm.BestScan(q, a);
    PhysicalPlan plan;
    plan.AddScan(a, scan.type, scan.index_column);
    return plan;
  };
  auto uniform = [&]() {
    rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;
  };

  // Initial beam: every relation as the starting leaf, ranked by score of
  // its engine-completed greedy extension (cheap proxy: base estimate).
  std::vector<State> beam;
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    State state;
    state.plan = leaf(a);
    state.mask = query::MaskOf(a);
    state.score = db->planner().estimator().EstimateBaseRows(q, a);
    beam.push_back(std::move(state));
  }
  std::sort(beam.begin(), beam.end(),
            [](const State& x, const State& y) { return x.score < y.score; });
  if (static_cast<int32_t>(beam.size()) > options_.beam_width) {
    beam.resize(static_cast<size_t>(options_.beam_width));
  }

  for (int32_t step = 1; step < q.relation_count(); ++step) {
    std::vector<State> expanded;
    for (const State& state : beam) {
      for (AliasId a = 0; a < q.relation_count(); ++a) {
        if ((state.mask & query::MaskOf(a)) != 0 ||
            (q.AdjacencyMask(a) & state.mask) == 0) {
          continue;
        }
        // The extended action space: relation AND join type.
        for (JoinAlgo algo :
             {JoinAlgo::kHash, JoinAlgo::kMerge, JoinAlgo::kNestLoop}) {
          State next;
          next.plan = CombinePlans(state.plan, leaf(a), algo);
          next.mask = state.mask | query::MaskOf(a);
          next.score = net_->Score(qenc, q, next.plan, *plan_encoder_);
          ++result.evals;
          if (epsilon > 0.0 && uniform() < epsilon) {
            next.score -= uniform();  // epsilon-beam: random promotion
          }
          expanded.push_back(std::move(next));
        }
        catalog::ColumnId probe = catalog::kInvalidColumn;
        if (cm.CanIndexNlj(q, state.mask, a, &probe)) {
          State next;
          PhysicalPlan inner;
          inner.AddScan(a, ScanType::kIndex, probe);
          next.plan = CombinePlans(state.plan, inner, JoinAlgo::kIndexNlj);
          next.mask = state.mask | query::MaskOf(a);
          next.score = net_->Score(qenc, q, next.plan, *plan_encoder_);
          ++result.evals;
          expanded.push_back(std::move(next));
        }
      }
    }
    LQOLAB_CHECK(!expanded.empty());
    std::sort(expanded.begin(), expanded.end(),
              [](const State& x, const State& y) { return x.score < y.score; });
    if (static_cast<int32_t>(expanded.size()) > options_.beam_width) {
      expanded.resize(static_cast<size_t>(options_.beam_width));
    }
    beam = std::move(expanded);
  }
  result.plan = std::move(beam.front().plan);
  result.plan.Validate(q);
  return result;
}

void LogerOptimizer::Fit(Database* db, int32_t epochs, TrainReport* report) {
  (void)db;
  std::vector<size_t> idx(replay_.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (int32_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = idx.size(); i > 1; --i) {
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      std::swap(idx[i - 1], idx[(rng_state_ >> 33) % i]);
    }
    for (size_t i : idx) {
      const Sample& sample = replay_[i];
      net_->TrainRegression(query_encoder_->Encode(sample.query), sample.query,
                            sample.plan, *plan_encoder_, sample.target,
                            adam_.get());
      ++report->nn_updates;
    }
  }
}

TrainReport LogerOptimizer::Train(const std::vector<Query>& train_set,
                                  Database* db) {
  EnsureModel(db);
  TrainReport report;
  // Bootstrap from the native optimizer.
  for (const Query& q : train_set) {
    const Database::Planned planned = db->PlanQuery(q);
    ++report.planner_calls;
    const engine::QueryRun run = db->ExecutePlan(q, planned.plan);
    ++report.plans_executed;
    report.execution_ns += run.execution_ns;
    replay_.push_back({q, planned.plan, LatencyToTarget(run.execution_ns)});
  }
  for (int32_t iter = 0; iter < options_.iterations; ++iter) {
    Fit(db, options_.train_epochs, &report);
    for (const Query& q : train_set) {
      SearchResult search = BeamSearch(q, db, options_.epsilon);
      report.nn_evals += search.evals;
      const engine::QueryRun run = db->ExecutePlan(q, search.plan);
      ++report.plans_executed;
      report.execution_ns += run.execution_ns;
      replay_.push_back(
          {q, std::move(search.plan), LatencyToTarget(run.execution_ns)});
    }
  }
  Fit(db, options_.train_epochs, &report);
  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction LogerOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  SearchResult search = BeamSearch(q, db, 0.0);
  Prediction prediction;
  prediction.plan = std::move(search.plan);
  prediction.nn_evals = search.evals;
  prediction.inference_ns = search.evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec LogerOptimizer::encoding_spec() const {
  return {"LOGER",     "yes",  "filters", "cardinality", "FC + pooling + GT",
          "yes",       "-",    "yes",     "-",           "Regression",
          "Tree-LSTM", "Hint", "Static",  "-"};
}

}  // namespace lqolab::lqo
