#include "lqo/rtos.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using optimizer::PhysicalPlan;
using query::AliasId;
using query::AliasMask;
using query::Query;

RtosOptimizer::RtosOptimizer() : RtosOptimizer(Options()) {}
RtosOptimizer::RtosOptimizer(Options options) : options_(options) {}
RtosOptimizer::~RtosOptimizer() = default;

void RtosOptimizer::EnsureModel(Database* db) {
  if (net_ != nullptr) return;
  const auto& ctx = db->context();
  query_encoder_ = std::make_unique<QueryEncoder>(&ctx,
                                                  &db->planner().estimator());
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &ctx, &db->planner().estimator(), PlanEncodingStyle::kWithTableIdentity);
  net_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(),
                                        query_encoder_->dim(), options_.hidden,
                                        options_.seed);
  adam_ = std::make_unique<ml::Adam>(net_->Params(), options_.learning_rate);
  rng_state_ = options_.seed ^ 0x7f4a7c15ULL;
}

PhysicalPlan RtosOptimizer::PlanForOrder(
    const Query& q, Database* db,
    const std::vector<AliasId>& order) const {
  PhysicalPlan plan;
  const double cost =
      db->planner().CostJoinOrder(q, order, &plan, nullptr);
  LQOLAB_CHECK_LT(cost, optimizer::kImpossibleCost);
  return plan;
}

std::vector<AliasId> RtosOptimizer::SearchOrder(const Query& q, Database* db,
                                                int64_t* evals) {
  const std::vector<float> qenc = query_encoder_->Encode(q);
  std::vector<AliasId> order;
  AliasMask mask = 0;
  // First relation: the smallest estimated base (RTOS also starts from the
  // filtered relation).
  AliasId start = 0;
  double best_rows = std::numeric_limits<double>::infinity();
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    const double rows = db->planner().estimator().EstimateBaseRows(q, a);
    if (rows < best_rows) {
      best_rows = rows;
      start = a;
    }
  }
  order.push_back(start);
  mask = query::MaskOf(start);
  while (static_cast<int32_t>(order.size()) < q.relation_count()) {
    AliasId best = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      if ((mask & query::MaskOf(a)) != 0 ||
          (q.AdjacencyMask(a) & mask) == 0) {
        continue;
      }
      std::vector<AliasId> candidate = order;
      candidate.push_back(a);
      // Score the engine-completed plan for this prefix (the value net
      // predicts final latency given the partial decision, Neo-style).
      PhysicalPlan partial;
      const double cost = db->planner().CostJoinOrder(
          q, ExtendGreedily(q, candidate), &partial, nullptr);
      (void)cost;
      const double score = net_->Score(qenc, q, partial, *plan_encoder_);
      ++*evals;
      if (score < best_score) {
        best_score = score;
        best = a;
      }
    }
    LQOLAB_CHECK_GE(best, 0);
    order.push_back(best);
    mask |= query::MaskOf(best);
  }
  return order;
}

double RtosOptimizer::TrainOn(const std::vector<Sample>& samples, Database* db,
                              int32_t epochs, TrainReport* report) {
  double last_loss = 0.0;
  std::vector<size_t> idx(samples.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (int32_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = idx.size(); i > 1; --i) {
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      std::swap(idx[i - 1], idx[(rng_state_ >> 33) % i]);
    }
    for (size_t i : idx) {
      const Sample& sample = samples[i];
      const PhysicalPlan plan = PlanForOrder(sample.query, db, sample.order);
      last_loss = net_->TrainRegression(query_encoder_->Encode(sample.query),
                                        sample.query, plan, *plan_encoder_,
                                        sample.target, adam_.get());
      if (report != nullptr) ++report->nn_updates;
    }
  }
  return last_loss;
}

TrainReport RtosOptimizer::Train(const std::vector<Query>& train_set,
                                 Database* db) {
  EnsureModel(db);
  TrainReport report;

  // Bootstrap orders from the native planner's plans (their leaf order).
  for (const Query& q : train_set) {
    const auto planned = db->PlanQuery(q);
    ++report.planner_calls;
    std::vector<AliasId> order;
    for (const auto& node : planned.plan.nodes) {
      if (node.type == optimizer::PlanNode::Type::kScan) {
        order.push_back(node.alias);
      }
    }
    // The leaf sequence of a plan is not always a valid left-deep order;
    // repair by greedy connectivity.
    order = RepairOrder(q, order);
    const engine::QueryRun run = db->ExecutePlan(q, PlanForOrder(q, db, order));
    ++report.plans_executed;
    report.execution_ns += run.execution_ns;
    replay_.push_back({q, std::move(order),
                       LatencyToTarget(run.execution_ns)});
  }

  for (int32_t iter = 0; iter < options_.iterations; ++iter) {
    TrainOn(replay_, db, options_.train_epochs, &report);
    for (const Query& q : train_set) {
      int64_t evals = 0;
      std::vector<AliasId> order = SearchOrder(q, db, &evals);
      report.nn_evals += evals;
      const engine::QueryRun run =
          db->ExecutePlan(q, PlanForOrder(q, db, order));
      ++report.plans_executed;
      report.execution_ns += run.execution_ns;
      replay_.push_back({q, std::move(order),
                         LatencyToTarget(run.execution_ns)});
    }
  }
  TrainOn(replay_, db, options_.train_epochs, &report);

  // Table 1: RTOS measures final aggregated performance via
  // cross-validation. Compute a k-fold holdout loss over the replay data.
  double cv_total = 0.0;
  const int32_t folds = std::max<int32_t>(2, options_.cv_folds);
  int32_t measured = 0;
  for (int32_t fold = 0; fold < folds; ++fold) {
    double fold_loss = 0.0;
    int32_t fold_count = 0;
    for (size_t i = static_cast<size_t>(fold); i < replay_.size();
         i += static_cast<size_t>(folds)) {
      const Sample& sample = replay_[i];
      const PhysicalPlan plan = PlanForOrder(sample.query, db, sample.order);
      const double predicted = net_->Score(
          query_encoder_->Encode(sample.query), sample.query, plan,
          *plan_encoder_);
      ++report.nn_evals;
      fold_loss += (predicted - sample.target) * (predicted - sample.target);
      ++fold_count;
    }
    if (fold_count > 0) {
      cv_total += fold_loss / fold_count;
      ++measured;
    }
  }
  last_cv_loss_ = measured > 0 ? cv_total / measured : 0.0;

  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction RtosOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  Prediction prediction;
  int64_t evals = 0;
  const std::vector<AliasId> order = SearchOrder(q, db, &evals);
  prediction.plan = PlanForOrder(q, db, order);
  prediction.nn_evals = evals;
  prediction.inference_ns = evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec RtosOptimizer::encoding_spec() const {
  return {"RTOS",      "yes",  "filters", "cardinality", "FC + pooling",
          "-",         "-",    "yes",     "-",           "Regression",
          "Tree-LSTM", "Plan", "CV",      "-"};
}

}  // namespace lqolab::lqo
