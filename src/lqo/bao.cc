#include "lqo/bao.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "engine/exec_batch.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using engine::DbConfig;
using query::Query;

std::vector<HintSet> DefaultHintSets() {
  std::vector<HintSet> sets(6);
  sets[0].name = "all_on";
  sets[1].name = "no_nestloop";
  sets[1].enable_nestloop = false;
  sets[2].name = "no_hashjoin";
  sets[2].enable_hashjoin = false;
  sets[3].name = "no_mergejoin";
  sets[3].enable_mergejoin = false;
  sets[4].name = "no_index";
  sets[4].enable_indexscan = false;
  sets[4].enable_bitmapscan = false;
  sets[5].name = "no_nl_merge";
  sets[5].enable_nestloop = false;
  sets[5].enable_mergejoin = false;
  return sets;
}

namespace {

DbConfig ApplyHintSet(DbConfig config, const HintSet& hints) {
  config.enable_nestloop = hints.enable_nestloop;
  config.enable_hashjoin = hints.enable_hashjoin;
  config.enable_mergejoin = hints.enable_mergejoin;
  config.enable_indexscan = hints.enable_indexscan;
  config.enable_bitmapscan = hints.enable_bitmapscan;
  config.enable_seqscan = hints.enable_seqscan;
  return config;
}

// PostgreSQL enable_* settings are soft: when no permitted plan exists the
// planner falls back to a "disabled" operator anyway. A hint failure is a
// returned plan containing an operator its hint set switched off.
bool ViolatesHintSet(const optimizer::PhysicalPlan& plan,
                     const HintSet& hints) {
  using optimizer::JoinAlgo;
  using optimizer::PlanNode;
  using optimizer::ScanType;
  for (const PlanNode& node : plan.nodes) {
    if (node.type == PlanNode::Type::kJoin) {
      if (node.algo == JoinAlgo::kHash && !hints.enable_hashjoin) return true;
      if ((node.algo == JoinAlgo::kNestLoop ||
           node.algo == JoinAlgo::kIndexNlj) &&
          !hints.enable_nestloop) {
        return true;
      }
      if (node.algo == JoinAlgo::kMerge && !hints.enable_mergejoin) return true;
    } else {
      if (node.scan_type == ScanType::kSeq && !hints.enable_seqscan)
        return true;
      if (node.scan_type == ScanType::kIndex && !hints.enable_indexscan)
        return true;
      if (node.scan_type == ScanType::kBitmap && !hints.enable_bitmapscan)
        return true;
    }
  }
  return false;
}

}  // namespace

BaoOptimizer::BaoOptimizer() : BaoOptimizer(Options()) {}

BaoOptimizer::BaoOptimizer(Options options)
    : options_(options), hint_sets_(DefaultHintSets()) {}
BaoOptimizer::~BaoOptimizer() = default;

void BaoOptimizer::EnsureModel(Database* db) {
  if (net_ != nullptr) return;
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &db->context(), &db->planner().estimator(),
      PlanEncodingStyle::kCardinalityOnly);
  // query_dim = 0: Bao has no query encoding (Table 1).
  net_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(), 0,
                                        options_.hidden, options_.seed);
  adam_ = std::make_unique<ml::Adam>(net_->Params(), options_.learning_rate);
  rng_state_ = options_.seed ^ 0x2545f491ULL;
}

std::vector<BaoOptimizer::ArmCandidate> BaoOptimizer::PlanArms(
    const Query& q, Database* db, TrainReport* report) {
  const DbConfig saved = db->config();
  std::vector<ArmCandidate> candidates;
  candidates.reserve(hint_sets_.size());
  for (const HintSet& hints : hint_sets_) {
    db->SetConfig(ApplyHintSet(saved, hints));
    Database::Planned planned = db->PlanQuery(q);
    if (report != nullptr) ++report->planner_calls;
    obs::Count(obs::Counter::kHintSetsPlanned);
    if (ViolatesHintSet(planned.plan, hints)) {
      obs::Count(obs::Counter::kHintFailures);
    }
    ArmCandidate candidate;
    candidate.plan = std::move(planned.plan);
    candidate.planning_ns = planned.planning_ns;
    candidate.score = net_->Score({}, q, candidate.plan, *plan_encoder_);
    candidates.push_back(std::move(candidate));
  }
  db->SetConfig(saved);
  return candidates;
}

double BaoOptimizer::Fit(TrainReport* report) {
  std::vector<size_t> order(experience_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double loss_sum = 0.0;
  int64_t updates = 0;
  for (int32_t epoch = 0; epoch < options_.train_epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      std::swap(order[i - 1], order[(rng_state_ >> 33) % i]);
    }
    for (size_t idx : order) {
      const Sample& sample = experience_[idx];
      loss_sum +=
          net_->TrainRegression({}, sample.query, sample.plan, *plan_encoder_,
                                sample.target, adam_.get());
      ++report->nn_updates;
      ++updates;
    }
  }
  return updates > 0 ? loss_sum / static_cast<double>(updates) : 0.0;
}

TrainReport BaoOptimizer::Train(const std::vector<Query>& train_set,
                                Database* db) {
  EnsureModel(db);
  TrainReport report;
  std::unique_ptr<engine::BatchExecutor> batch_exec;
  if (options_.parallelism > 0) {
    batch_exec = std::make_unique<engine::BatchExecutor>(
        db, options_.seed, options_.parallelism);
  }
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const TrainReport before = report;
    const double epsilon =
        options_.initial_epsilon / static_cast<double>(epoch + 1);
    // Phase A (serial): per-arm planning, model scoring and the
    // epsilon-greedy arm choice — all the state that must advance in query
    // order (parent config, rng_state_ draws).
    struct ChosenArm {
      const Query* query = nullptr;
      optimizer::PhysicalPlan plan;
    };
    std::vector<ChosenArm> episode;
    episode.reserve(train_set.size());
    for (const Query& q : train_set) {
      std::vector<ArmCandidate> candidates = PlanArms(q, db, &report);
      report.nn_evals += static_cast<int64_t>(candidates.size());
      size_t chosen = 0;
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const double u = static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;
      if (u < epsilon) {
        chosen = (rng_state_ >> 33) % candidates.size();
      } else {
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (candidates[i].score < best) {
            best = candidates[i].score;
            chosen = i;
          }
        }
      }
      episode.push_back({&q, std::move(candidates[chosen].plan)});
    }
    // Phase B: execute the episode's chosen plans — concurrently on worker
    // replicas when parallelism was requested, else serially in place.
    std::vector<engine::QueryRun> runs;
    if (batch_exec != nullptr) {
      std::vector<engine::PlanExec> batch;
      batch.reserve(episode.size());
      for (const ChosenArm& arm : episode) {
        batch.push_back({arm.query, &arm.plan, 0});
      }
      runs = batch_exec->Execute(batch);
    } else {
      runs.reserve(episode.size());
      for (const ChosenArm& arm : episode) {
        runs.push_back(db->ExecutePlan(*arm.query, arm.plan));
      }
    }
    // Phase C (serial): collect experience and fit.
    for (size_t i = 0; i < episode.size(); ++i) {
      ++report.plans_executed;
      report.execution_ns += runs[i].execution_ns;
      experience_.push_back({*episode[i].query, std::move(episode[i].plan),
                             LatencyToTarget(runs[i].execution_ns)});
    }
    const double loss = Fit(&report);
    // Episode telemetry: this epoch's deltas plus its share of the modeled
    // training-time formula below.
    EpisodeStats stats;
    stats.episode = epoch;
    stats.loss = loss;
    stats.plans_executed = report.plans_executed - before.plans_executed;
    stats.execution_ns = report.execution_ns - before.execution_ns;
    stats.nn_updates = report.nn_updates - before.nn_updates;
    stats.nn_evals = report.nn_evals - before.nn_evals;
    stats.training_time_ns =
        stats.execution_ns +
        stats.plans_executed * timing::kTrainPlanOverheadNs +
        stats.nn_updates * timing::kNnUpdateNs +
        stats.nn_evals * timing::kNnEvalNs;
    report.episodes.push_back(stats);
    obs::Count(obs::Counter::kTrainEpisodes);
  }
  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction BaoOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  std::vector<ArmCandidate> candidates = PlanArms(q, db, nullptr);
  size_t chosen = 0;
  double best = std::numeric_limits<double>::infinity();
  util::VirtualNanos planning_total = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    planning_total += candidates[i].planning_ns;
    if (candidates[i].score < best) {
      best = candidates[i].score;
      chosen = i;
    }
  }
  Prediction prediction;
  prediction.plan = std::move(candidates[chosen].plan);
  prediction.nn_evals = static_cast<int64_t>(candidates.size());
  // Bao runs inside the DBMS: model evaluation and the per-hint-set
  // plannings are all reported as planning time (paper Fig. 5 note).
  prediction.inference_ns = 0;
  prediction.planning_ns =
      planning_total +
      static_cast<util::VirtualNanos>(candidates.size()) * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec BaoOptimizer::encoding_spec() const {
  return {"Bao",      "-",        "-",   "-",           "-",
          "yes",      "yes",      "-",   "yes",         "Regression",
          "Tree-CNN", "Hint set", "Time Series", "yes"};
}

}  // namespace lqolab::lqo
