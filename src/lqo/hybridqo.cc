#include "lqo/hybridqo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "lqo/plan_search.h"
#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using optimizer::PhysicalPlan;
using query::AliasId;
using query::AliasMask;
using query::Query;

HybridQoOptimizer::HybridQoOptimizer() : HybridQoOptimizer(Options()) {}
HybridQoOptimizer::HybridQoOptimizer(Options options) : options_(options) {}
HybridQoOptimizer::~HybridQoOptimizer() = default;

void HybridQoOptimizer::EnsureModel(Database* db) {
  if (latency_net_ != nullptr) return;
  const auto& ctx = db->context();
  query_encoder_ = std::make_unique<QueryEncoder>(&ctx,
                                                  &db->planner().estimator());
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &ctx, &db->planner().estimator(), PlanEncodingStyle::kWithTableIdentity);
  latency_net_ = std::make_unique<TreeValueNet>(
      plan_encoder_->node_dim(), query_encoder_->dim(), options_.hidden,
      options_.seed);
  adam_ = std::make_unique<ml::Adam>(latency_net_->Params(),
                                     options_.learning_rate);
  rng_state_ = options_.seed ^ 0x27bb2ee6ULL;
}

std::vector<PhysicalPlan> HybridQoOptimizer::CandidatesFromMcts(
    const Query& q, Database* db, int64_t* cost_calls) {
  const int32_t depth =
      std::min<int32_t>(options_.prefix_depth, q.relation_count());

  // MCTS node statistics keyed by the order prefix.
  struct NodeStats {
    double total_reward = 0.0;
    int32_t visits = 0;
  };
  std::map<std::vector<AliasId>, NodeStats> stats;
  auto uniform = [&]() {
    rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;
  };
  auto children_of = [&](const std::vector<AliasId>& prefix) {
    std::vector<AliasId> children;
    AliasMask mask = 0;
    for (AliasId a : prefix) mask |= query::MaskOf(a);
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      if ((mask & query::MaskOf(a)) == 0 &&
          (mask == 0 || (q.AdjacencyMask(a) & mask) != 0)) {
        children.push_back(a);
      }
    }
    return children;
  };

  // Reward: negative log of the cost of the engine-completed prefix
  // (higher is better), normalized into roughly [0, 1].
  auto rollout_reward = [&](const std::vector<AliasId>& prefix) {
    const double cost = db->planner().CostJoinOrder(
        q, ExtendGreedily(q, prefix), nullptr, nullptr);
    ++*cost_calls;
    return 1.0 / (1.0 + std::log1p(std::max(0.0, cost) / 1e6));
  };

  for (int32_t iter = 0; iter < options_.mcts_iterations; ++iter) {
    // Selection/expansion down to `depth` using UCB over child prefixes.
    std::vector<AliasId> prefix;
    while (static_cast<int32_t>(prefix.size()) < depth) {
      const auto children = children_of(prefix);
      if (children.empty()) break;
      AliasId chosen = children[0];
      double best_ucb = -std::numeric_limits<double>::infinity();
      const double parent_visits =
          std::max(1.0, static_cast<double>(stats[prefix].visits));
      for (AliasId child : children) {
        std::vector<AliasId> next = prefix;
        next.push_back(child);
        const NodeStats& ns = stats[next];
        const double exploit =
            ns.visits > 0 ? ns.total_reward / ns.visits : 0.0;
        const double explore =
            ns.visits > 0
                ? options_.ucb_constant *
                      std::sqrt(std::log(parent_visits) / ns.visits)
                : 10.0 + uniform();  // unvisited first, tie-broken randomly
        if (exploit + explore > best_ucb) {
          best_ucb = exploit + explore;
          chosen = child;
        }
      }
      prefix.push_back(chosen);
    }
    // Simulation + backpropagation.
    const double reward = rollout_reward(prefix);
    for (size_t len = 0; len <= prefix.size(); ++len) {
      std::vector<AliasId> node(prefix.begin(),
                                prefix.begin() + static_cast<long>(len));
      NodeStats& ns = stats[node];
      ns.total_reward += reward;
      ++ns.visits;
    }
  }

  // Top prefixes by mean reward among depth-`depth` nodes.
  std::vector<std::pair<double, std::vector<AliasId>>> ranked;
  for (const auto& [prefix, ns] : stats) {
    if (static_cast<int32_t>(prefix.size()) != depth || ns.visits == 0) {
      continue;
    }
    ranked.emplace_back(ns.total_reward / ns.visits, prefix);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::vector<PhysicalPlan> candidates;
  for (const auto& [reward, prefix] : ranked) {
    if (static_cast<int32_t>(candidates.size()) >= options_.top_prefixes) {
      break;
    }
    PhysicalPlan plan;
    const double cost = db->planner().CostJoinOrder(
        q, ExtendGreedily(q, prefix), &plan, nullptr);
    ++*cost_calls;
    if (cost >= optimizer::kImpossibleCost) continue;
    candidates.push_back(std::move(plan));
  }
  LQOLAB_CHECK(!candidates.empty());
  return candidates;
}

TrainReport HybridQoOptimizer::Train(const std::vector<Query>& train_set,
                                     Database* db) {
  EnsureModel(db);
  TrainReport report;
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const Query& q : train_set) {
      // Cost-guided MCTS proposes candidates; execute the latency-net pick
      // (first epoch: the cost-best candidate) and learn its latency.
      std::vector<PhysicalPlan> candidates =
          CandidatesFromMcts(q, db, &report.planner_calls);
      const std::vector<float> qenc = query_encoder_->Encode(q);
      size_t chosen = 0;
      if (epoch > 0) {
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < candidates.size(); ++i) {
          const double score =
              latency_net_->Score(qenc, q, candidates[i], *plan_encoder_);
          ++report.nn_evals;
          if (score < best) {
            best = score;
            chosen = i;
          }
        }
      }
      const engine::QueryRun run = db->ExecutePlan(q, candidates[chosen]);
      ++report.plans_executed;
      report.execution_ns += run.execution_ns;
      replay_.push_back({q, std::move(candidates[chosen]),
                         LatencyToTarget(run.execution_ns)});
    }
    // Fit the latency model.
    std::vector<size_t> idx(replay_.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (int32_t te = 0; te < options_.train_epochs; ++te) {
      for (size_t i = idx.size(); i > 1; --i) {
        rng_state_ =
            rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
        std::swap(idx[i - 1], idx[(rng_state_ >> 33) % i]);
      }
      for (size_t i : idx) {
        const Sample& sample = replay_[i];
        latency_net_->TrainRegression(query_encoder_->Encode(sample.query),
                                      sample.query, sample.plan,
                                      *plan_encoder_, sample.target,
                                      adam_.get());
        ++report.nn_updates;
      }
    }
  }
  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction HybridQoOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  Prediction prediction;
  int64_t cost_calls = 0;
  std::vector<PhysicalPlan> candidates =
      CandidatesFromMcts(q, db, &cost_calls);
  const std::vector<float> qenc = query_encoder_->Encode(q);
  size_t chosen = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double score =
        latency_net_->Score(qenc, q, candidates[i], *plan_encoder_);
    ++prediction.nn_evals;
    if (score < best) {
      best = score;
      chosen = i;
    }
  }
  prediction.plan = std::move(candidates[chosen]);
  // Inference = MCTS cost rollouts + latency-net evaluations.
  prediction.inference_ns = cost_calls * 2'000'000 +  // 2 ms per rollout
                            prediction.nn_evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec HybridQoOptimizer::encoding_spec() const {
  return {"HybridQO",  "yes",  "cardinality", "cardinality", "stacking + FC",
          "yes",       "yes",  "yes",         "yes",         "Regression",
          "Tree-LSTM", "Plan", "Static",      "-"};
}

}  // namespace lqolab::lqo
