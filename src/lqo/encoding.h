#ifndef LQOLAB_LQO_ENCODING_H_
#define LQOLAB_LQO_ENCODING_H_

#include <vector>

#include "exec/db_context.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "stats/cardinality_estimator.h"

namespace lqolab::lqo {

/// Query-level encoding (the "global context" of §4.2): per-table alias
/// counts, per-table log filtered-cardinality estimates, and join-graph
/// summary features. Dimension = 2 * #tables + 2.
class QueryEncoder {
 public:
  explicit QueryEncoder(const exec::DbContext* ctx,
                        const stats::CardinalityEstimator* estimator);

  int32_t dim() const;

  std::vector<float> Encode(const query::Query& q) const;

 private:
  const exec::DbContext* ctx_;
  const stats::CardinalityEstimator* estimator_;
};

/// Per-plan-node encoding style (Table 1 of the paper).
enum class PlanEncodingStyle {
  /// Full encoding with a one-hot table identifier per scan node (Neo,
  /// Balsa, LEON style).
  kWithTableIdentity,
  /// Bao's schema-agnostic encoding: operator one-hots plus estimated
  /// cardinality and cost only — no table identity. This is the property
  /// the covariate-shift experiment (§8.3 / Fig. 7) stresses.
  kCardinalityOnly,
};

/// Encodes physical plan nodes for tree-structured value networks.
class PlanEncoder {
 public:
  PlanEncoder(const exec::DbContext* ctx,
              const stats::CardinalityEstimator* estimator,
              PlanEncodingStyle style);

  int32_t node_dim() const;
  PlanEncodingStyle style() const { return style_; }

  /// Feature vector of one plan node within its query.
  std::vector<float> EncodeNode(const query::Query& q,
                                const optimizer::PhysicalPlan& plan,
                                int32_t node_index) const;

 private:
  const exec::DbContext* ctx_;
  const stats::CardinalityEstimator* estimator_;
  PlanEncodingStyle style_;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_ENCODING_H_
