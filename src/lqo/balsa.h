#ifndef LQOLAB_LQO_BALSA_H_
#define LQOLAB_LQO_BALSA_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/plan_search.h"
#include "lqo/interface.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified Balsa (Yang et al., SIGMOD 2022): Neo's architecture but
/// bootstrapped WITHOUT expert demonstrations — the value network pretrains
/// on the DBMS cost model over sampled random plans, then fine-tunes
/// on-policy, executing plans under safe timeouts (2x the best known
/// latency per query) and training mostly on the most recent data. Balsa
/// executes considerably more plans than Neo (paper §8.2.2).
class BalsaOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t pretrain_samples_per_query = 15;
    int32_t pretrain_epochs = 3;
    int32_t iterations = 5;
    int32_t exploration_plans = 1;  ///< extra exploratory plans per query
    int32_t train_epochs = 20;
    int32_t hidden = 64;
    double learning_rate = 1e-3;
    double timeout_factor = 2.0;
    uint64_t seed = 2;
    /// Training-execution workers. 0 keeps the serial in-place path
    /// (executions share the parent's cache state); >= 1 executes each
    /// candidate round on isolated worker replicas with deterministic
    /// replay — results are then independent of the worker count. The
    /// safe-timeout dependency (a round's timeouts derive from earlier
    /// rounds' best latencies) is preserved by batching per round.
    int32_t parallelism = 0;
  };

  BalsaOptimizer();
  explicit BalsaOptimizer(Options options);
  ~BalsaOptimizer() override;

  std::string name() const override { return "balsa"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

 private:
  struct Sample {
    query::Query query;
    optimizer::PhysicalPlan plan;
    float target = 0.0f;
  };

  void EnsureModel(engine::Database* db);
  /// Trains `epochs` shuffled passes over `samples`; returns the mean
  /// regression loss over all updates (0 when `samples` is empty).
  double Fit(const std::vector<Sample>& samples, int32_t epochs,
             TrainReport* report);
  SearchResult SearchPlan(const query::Query& q, engine::Database* db,
                          double epsilon);

  Options options_;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_;
  std::unique_ptr<ml::Adam> adam_;
  /// Best observed latency per query fingerprint (drives safe timeouts).
  std::unordered_map<uint64_t, util::VirtualNanos> best_latency_;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_BALSA_H_
