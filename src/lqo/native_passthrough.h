#ifndef LQOLAB_LQO_NATIVE_PASSTHROUGH_H_
#define LQOLAB_LQO_NATIVE_PASSTHROUGH_H_

#include <string>
#include <vector>

#include "lqo/interface.h"

namespace lqolab::lqo {

/// A control "LQO" that defers every decision to the native planner:
/// Plan() returns Database::PlanQuery's plan with the engine's modeled
/// planning time and zero inference cost; Train() is a no-op. It is the
/// zero-regression arm of serving experiments — routing through it must
/// reproduce pglite exactly — and the natural first payload of a hot-swap
/// slot before a trained model is published (serve::QueryServer).
class NativePassthroughOptimizer : public LearnedOptimizer {
 public:
  std::string name() const override { return "native_passthrough"; }

  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;

  Prediction Plan(const query::Query& q, engine::Database* db) override;

  EncodingSpec encoding_spec() const override;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_NATIVE_PASSTHROUGH_H_
