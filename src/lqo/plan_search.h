#ifndef LQOLAB_LQO_PLAN_SEARCH_H_
#define LQOLAB_LQO_PLAN_SEARCH_H_

#include <functional>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"

namespace lqolab::lqo {

/// Merges two standalone plan fragments into one plan joined by `algo`
/// (node indices of `right` are rebased after `left`'s).
optimizer::PhysicalPlan CombinePlans(const optimizer::PhysicalPlan& left,
                                     const optimizer::PhysicalPlan& right,
                                     optimizer::JoinAlgo algo);

/// Scores a candidate (partial) plan; lower is better.
using PlanScorer = std::function<double(const optimizer::PhysicalPlan&)>;

/// Result of a value-guided plan search.
struct SearchResult {
  optimizer::PhysicalPlan plan;
  /// Scorer invocations (drives modeled inference time).
  int64_t evals = 0;
};

/// Neo/Balsa-style greedy bottom-up search: start from one best-scan leaf
/// per alias, repeatedly join the connected fragment pair (x algorithm)
/// whose resulting subtree the scorer likes best, until one tree remains.
/// Only connected combinations are considered; index-NLJ candidates are
/// generated when the inner is a base relation with a usable index.
SearchResult GreedyBottomUpSearch(const query::Query& q,
                                  const optimizer::CostModel& cost_model,
                                  const PlanScorer& scorer);

/// Repairs an arbitrary alias preference sequence into a valid connected
/// join order (earliest preferred connectable alias next).
std::vector<query::AliasId> RepairOrder(
    const query::Query& q, const std::vector<query::AliasId>& preference);

/// Completes a connected prefix to a full connected order by appending the
/// lowest-index connectable alias at each step.
std::vector<query::AliasId> ExtendGreedily(
    const query::Query& q, std::vector<query::AliasId> prefix);

/// Uniformly random valid plan (random connected join order, random
/// algorithms, best-cost scans); used for Balsa's cost-based pretraining
/// sampling. `*rng_state` is a splitmix-style state updated per draw.
optimizer::PhysicalPlan RandomPlan(const query::Query& q,
                                   const optimizer::CostModel& cost_model,
                                   uint64_t* rng_state);

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_PLAN_SEARCH_H_
