#include "lqo/neo.h"

#include <algorithm>
#include <memory>

#include "engine/exec_batch.h"
#include "lqo/plan_search.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using query::Query;

NeoOptimizer::NeoOptimizer() : NeoOptimizer(Options()) {}

NeoOptimizer::NeoOptimizer(Options options) : options_(options) {}
NeoOptimizer::~NeoOptimizer() = default;

void NeoOptimizer::EnsureModel(Database* db) {
  if (net_ != nullptr) return;
  const auto& ctx = db->context();
  query_encoder_ = std::make_unique<QueryEncoder>(&ctx,
                                                  &db->planner().estimator());
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &ctx, &db->planner().estimator(), PlanEncodingStyle::kWithTableIdentity);
  net_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(),
                                        query_encoder_->dim(), options_.hidden,
                                        options_.seed);
  adam_ = std::make_unique<ml::Adam>(net_->Params(), options_.learning_rate);
  shuffle_state_ = options_.seed ^ 0x5deece66dULL;
}

double NeoOptimizer::FitReplay(Database* db, int32_t epochs,
                               TrainReport* report) {
  (void)db;
  if (replay_.empty()) return 0.0;
  std::vector<size_t> order(replay_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double loss_sum = 0.0;
  int64_t updates = 0;
  for (int32_t epoch = 0; epoch < epochs; ++epoch) {
    // Deterministic Fisher-Yates.
    for (size_t i = order.size(); i > 1; --i) {
      shuffle_state_ =
          shuffle_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      std::swap(order[i - 1], order[(shuffle_state_ >> 33) % i]);
    }
    for (size_t idx : order) {
      const Sample& sample = replay_[idx];
      const std::vector<float> qenc = query_encoder_->Encode(sample.query);
      loss_sum +=
          net_->TrainRegression(qenc, sample.query, sample.plan,
                                *plan_encoder_, sample.target, adam_.get());
      ++report->nn_updates;
      ++updates;
    }
  }
  return updates > 0 ? loss_sum / static_cast<double>(updates) : 0.0;
}

SearchResult NeoOptimizer::SearchPlan(const Query& q, Database* db) {
  const std::vector<float> qenc = query_encoder_->Encode(q);
  return GreedyBottomUpSearch(
      q, db->planner().cost_model(),
      [&](const optimizer::PhysicalPlan& candidate) {
        return net_->Score(qenc, q, candidate, *plan_encoder_);
      });
}

double NeoOptimizer::HoldoutLoss(const std::vector<Sample>& holdout) {
  if (holdout.empty()) return 0.0;
  double total = 0.0;
  for (const Sample& sample : holdout) {
    const double predicted =
        net_->Score(query_encoder_->Encode(sample.query), sample.query,
                    sample.plan, *plan_encoder_);
    total += (predicted - sample.target) * (predicted - sample.target);
  }
  return total / static_cast<double>(holdout.size());
}

TrainReport NeoOptimizer::Train(const std::vector<Query>& train_set,
                                Database* db) {
  EnsureModel(db);
  TrainReport report;
  holdout_losses_.clear();
  iterations_run_ = 0;

  std::unique_ptr<engine::BatchExecutor> batch_exec;
  if (options_.parallelism > 0) {
    batch_exec = std::make_unique<engine::BatchExecutor>(
        db, options_.seed, options_.parallelism);
  }
  // Runs a batch of planned candidates: concurrently on worker replicas
  // when parallelism was requested, else serially in place (bit-identical
  // to the historical interleaved loop — plan search never depends on
  // execution state).
  auto execute_all = [&](const std::vector<engine::PlanExec>& batch) {
    if (batch_exec != nullptr) return batch_exec->Execute(batch);
    std::vector<engine::QueryRun> runs;
    runs.reserve(batch.size());
    for (const engine::PlanExec& task : batch) {
      runs.push_back(db->ExecutePlan(*task.query, *task.plan));
    }
    return runs;
  };

  // A FIXED holdout (paper §5.1: comparable measurements require a fixed
  // validation set): every k-th training query, never trained on.
  std::vector<Query> effective_train;
  std::vector<Sample> holdout;
  const int32_t holdout_every =
      options_.holdout_fraction > 0.0
          ? std::max<int32_t>(2, static_cast<int32_t>(
                                     1.0 / options_.holdout_fraction))
          : 0;
  std::vector<optimizer::PhysicalPlan> holdout_plans;
  std::vector<const Query*> holdout_queries;
  for (size_t i = 0; i < train_set.size(); ++i) {
    const Query& q = train_set[i];
    if (holdout_every > 0 &&
        static_cast<int32_t>(i) % holdout_every == holdout_every - 1) {
      Database::Planned planned = db->PlanQuery(q);
      ++report.planner_calls;
      holdout_queries.push_back(&q);
      holdout_plans.push_back(std::move(planned.plan));
    } else {
      effective_train.push_back(q);
    }
  }
  {
    std::vector<engine::PlanExec> batch;
    batch.reserve(holdout_plans.size());
    for (size_t i = 0; i < holdout_plans.size(); ++i) {
      batch.push_back({holdout_queries[i], &holdout_plans[i], 0});
    }
    const std::vector<engine::QueryRun> runs = execute_all(batch);
    for (size_t i = 0; i < runs.size(); ++i) {
      ++report.plans_executed;
      report.execution_ns += runs[i].execution_ns;
      holdout.push_back({*holdout_queries[i], std::move(holdout_plans[i]),
                         LatencyToTarget(runs[i].execution_ns)});
    }
  }

  // Bootstrap with the native optimizer's plans (expert demonstrations).
  {
    std::vector<optimizer::PhysicalPlan> plans;
    plans.reserve(effective_train.size());
    for (const Query& q : effective_train) {
      Database::Planned planned = db->PlanQuery(q);
      ++report.planner_calls;
      plans.push_back(std::move(planned.plan));
    }
    std::vector<engine::PlanExec> batch;
    batch.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      batch.push_back({&effective_train[i], &plans[i], 0});
    }
    const std::vector<engine::QueryRun> runs = execute_all(batch);
    for (size_t i = 0; i < runs.size(); ++i) {
      ++report.plans_executed;
      report.execution_ns += runs[i].execution_ns;
      replay_.push_back({effective_train[i], std::move(plans[i]),
                         LatencyToTarget(runs[i].execution_ns)});
    }
  }

  // Per-iteration episode telemetry: deltas of the report counters plus the
  // iteration's mean replay loss.
  auto record_episode = [&report](int32_t episode, double loss,
                                  const TrainReport& before) {
    EpisodeStats stats;
    stats.episode = episode;
    stats.loss = loss;
    stats.plans_executed = report.plans_executed - before.plans_executed;
    stats.execution_ns = report.execution_ns - before.execution_ns;
    stats.nn_updates = report.nn_updates - before.nn_updates;
    stats.nn_evals = report.nn_evals - before.nn_evals;
    stats.training_time_ns =
        stats.execution_ns +
        stats.plans_executed * timing::kTrainPlanOverheadNs +
        stats.nn_updates * timing::kNnUpdateNs +
        stats.nn_evals * timing::kNnEvalNs;
    report.episodes.push_back(stats);
    obs::Count(obs::Counter::kTrainEpisodes);
  };
  // The bootstrap above (holdout + expert-demonstration executions) is
  // episode 0 — no fitting has happened yet, so its loss is 0 — keeping
  // the invariant that episode deltas partition the report totals.
  record_episode(0, 0.0, TrainReport{});

  double best_holdout = 1e30;
  int32_t worse_streak = 0;
  for (int32_t iter = 0; iter < options_.iterations; ++iter) {
    ++iterations_run_;
    const TrainReport before = report;
    const double iter_loss = FitReplay(db, options_.train_epochs, &report);
    if (!holdout.empty()) {
      const double loss = HoldoutLoss(holdout);
      report.nn_evals += static_cast<int64_t>(holdout.size());
      holdout_losses_.push_back(loss);
      if (loss < best_holdout) {
        best_holdout = loss;
        worse_streak = 0;
      } else if (++worse_streak >= options_.patience) {
        record_episode(iter + 1, iter_loss, before);
        break;  // early stopping on the fixed holdout
      }
    }
    // On-policy collection: plan with the current network (the net is only
    // updated in FitReplay, so the searches of one iteration are mutually
    // independent), execute the batch, learn.
    std::vector<optimizer::PhysicalPlan> plans;
    plans.reserve(effective_train.size());
    for (const Query& q : effective_train) {
      SearchResult search = SearchPlan(q, db);
      report.nn_evals += search.evals;
      plans.push_back(std::move(search.plan));
    }
    std::vector<engine::PlanExec> batch;
    batch.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      batch.push_back({&effective_train[i], &plans[i], 0});
    }
    const std::vector<engine::QueryRun> runs = execute_all(batch);
    for (size_t i = 0; i < runs.size(); ++i) {
      ++report.plans_executed;
      report.execution_ns += runs[i].execution_ns;
      replay_.push_back({effective_train[i], std::move(plans[i]),
                         LatencyToTarget(runs[i].execution_ns)});
      if (static_cast<int64_t>(replay_.size()) > options_.replay_capacity) {
        replay_.erase(replay_.begin(),
                      replay_.begin() +
                          (static_cast<long>(replay_.size()) -
                           options_.replay_capacity));
      }
    }
    record_episode(iter + 1, iter_loss, before);
  }
  {
    const TrainReport before = report;
    const double final_loss = FitReplay(db, options_.train_epochs, &report);
    record_episode(iterations_run_ + 1, final_loss, before);
  }

  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction NeoOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  SearchResult search = SearchPlan(q, db);
  Prediction prediction;
  prediction.plan = std::move(search.plan);
  prediction.nn_evals = search.evals;
  prediction.inference_ns = search.evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec NeoOptimizer::encoding_spec() const {
  return {"Neo",       "yes",      "cardinality", "word2vec",  "stacking",
          "yes",       "yes",      "yes",         "-",         "Regression",
          "Tree-CNN",  "Plan",     "Static",      "-"};
}

}  // namespace lqolab::lqo
