#ifndef LQOLAB_LQO_HYBRIDQO_H_
#define LQOLAB_LQO_HYBRIDQO_H_

#include <memory>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/interface.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified HybridQO (Yu et al., VLDB 2022): a COST/LATENCY hybrid with
/// chained models. A Monte-Carlo tree search with UCB explores the top
/// levels of the join-order space against the COST model and emits a few
/// prefix hints; the engine completes each hinted prefix into a full plan;
/// a separate LATENCY network then picks among the candidates (its
/// "multi-head performance estimator"). Chaining models over different
/// targets avoids the on-the-fly target swap the paper criticizes in §5.2.
class HybridQoOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t mcts_iterations = 60;
    int32_t prefix_depth = 3;    ///< hint = first `depth` relations
    int32_t top_prefixes = 3;    ///< candidate hints handed to the engine
    double ucb_constant = 1.2;
    int32_t train_epochs = 10;
    int32_t epochs = 2;
    int32_t hidden = 48;
    double learning_rate = 1e-3;
    uint64_t seed = 8;
  };

  HybridQoOptimizer();
  explicit HybridQoOptimizer(Options options);
  ~HybridQoOptimizer() override;

  std::string name() const override { return "hybridqo"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

 private:
  struct Sample {
    query::Query query;
    optimizer::PhysicalPlan plan;
    float target = 0.0f;
  };

  void EnsureModel(engine::Database* db);
  /// MCTS-with-UCB over join-order prefixes against the cost model;
  /// returns the engine-completed candidate plans of the best prefixes.
  std::vector<optimizer::PhysicalPlan> CandidatesFromMcts(
      const query::Query& q, engine::Database* db, int64_t* cost_calls);

  Options options_;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  /// The latency model (the cost side is the engine's own cost model).
  std::unique_ptr<TreeValueNet> latency_net_;
  std::unique_ptr<ml::Adam> adam_;
  std::vector<Sample> replay_;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_HYBRIDQO_H_
