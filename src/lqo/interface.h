#ifndef LQOLAB_LQO_INTERFACE_H_
#define LQOLAB_LQO_INTERFACE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::lqo {

/// Modeled per-event latencies used for the paper's inference- and
/// training-time accounting (Figs. 5-6). These stand in for the Python /
/// IPC / GPU overheads of the original implementations; see DESIGN.md §1.
namespace timing {
/// One forward pass of a plan value network.
inline constexpr util::VirtualNanos kNnEvalNs = 1'500'000;  // 1.5 ms
/// One NN parameter update (backward + step).
inline constexpr util::VirtualNanos kNnUpdateNs = 3'000'000;  // 3 ms
/// Per executed training plan: encoding, IPC, bookkeeping.
inline constexpr util::VirtualNanos kTrainPlanOverheadNs =
    150'000'000;  // 150 ms
/// One LEON subplan candidate: a DBMS cost-estimate round trip plus
/// ensemble scoring (the paper measures ~6.5 h for query 29's tens of
/// thousands of subplans).
inline constexpr util::VirtualNanos kLeonSubplanCallNs =
    100'000'000;  // 100 ms
}  // namespace timing

/// One training episode's telemetry (an epoch for Bao, an iteration for
/// Neo/Balsa, one query's pairwise step for LEON). Deltas, not running
/// totals: summing a field over episodes gives the TrainReport total for
/// the phase that emitted them. Exported as JSONL "episode" records by
/// benchkit::WriteWorkloadTrace.
struct EpisodeStats {
  int32_t episode = 0;
  /// Mean training loss of the episode's model updates (0 when the episode
  /// performed none).
  double loss = 0.0;
  int64_t plans_executed = 0;
  util::VirtualNanos execution_ns = 0;
  int64_t nn_updates = 0;
  int64_t nn_evals = 0;
  /// Episode's share of modeled training time.
  util::VirtualNanos training_time_ns = 0;
};

/// End-to-end training accounting (paper §8.2.2: data collection + model
/// updates + ongoing evaluation + pre/postprocessing).
struct TrainReport {
  /// Modeled end-to-end training time.
  util::VirtualNanos training_time_ns = 0;
  int64_t plans_executed = 0;
  int64_t nn_updates = 0;
  int64_t nn_evals = 0;
  /// DBMS cost/plan calls made during training.
  int64_t planner_calls = 0;
  /// Sum of virtual execution time spent collecting training data.
  util::VirtualNanos execution_ns = 0;
  /// Per-episode telemetry in training order (see EpisodeStats).
  std::vector<EpisodeStats> episodes;
};

/// A plan prediction with its modeled inference time (encoding + candidate
/// enumeration + NN evaluations; paper §8.2.1's "Inference Time").
struct Prediction {
  optimizer::PhysicalPlan plan;
  util::VirtualNanos inference_ns = 0;
  int64_t nn_evals = 0;
  /// Planning time already spent inside the engine for hint-based methods
  /// (reported separately, like Bao's in-extension planning).
  util::VirtualNanos planning_ns = 0;
};

/// Row of Table 1 (encoding components of an LQO).
struct EncodingSpec {
  std::string name;
  std::string adjacency_matrix;
  std::string numerical_attributes;
  std::string text_attributes;
  std::string encoding_aggregation;
  std::string join_type;
  std::string scan_type;
  std::string table_identifier;
  std::string extra_data;
  std::string ml_model;
  std::string plan_processing;
  std::string model_output;
  std::string testing;
  std::string dbms_integration;
};

/// All rows of Table 1 (the four reimplemented methods plus the literature
/// rows for RTOS, Lero, LOGER and HybridQO).
std::vector<EncodingSpec> Table1EncodingSpecs();

/// Common interface of learned query optimizers: train on a set of queries
/// against a database, then predict plans for (unseen) queries. The
/// returned plans are executed through Database::ExecutePlan — the
/// pg_hint_plan-style forced-plan path.
class LearnedOptimizer {
 public:
  virtual ~LearnedOptimizer() = default;

  virtual std::string name() const = 0;

  /// Trains from scratch on `train_set`.
  virtual TrainReport Train(const std::vector<query::Query>& train_set,
                            engine::Database* db) = 0;

  /// Predicts a plan for one query.
  virtual Prediction Plan(const query::Query& q, engine::Database* db) = 0;

  /// The method's Table 1 row.
  virtual EncodingSpec encoding_spec() const = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_INTERFACE_H_
