#ifndef LQOLAB_LQO_BAO_H_
#define LQOLAB_LQO_BAO_H_

#include <memory>
#include <string>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/interface.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// A Bao hint set: a named subset of operators the native optimizer may not
/// use. Applied as enable_* overlays on the session configuration.
struct HintSet {
  std::string name;
  bool enable_nestloop = true;
  bool enable_hashjoin = true;
  bool enable_mergejoin = true;
  bool enable_indexscan = true;
  bool enable_bitmapscan = true;
  bool enable_seqscan = true;
};

/// The hint sets used by this Bao reimplementation (the original ships 48
/// and uses ~5 in practice).
std::vector<HintSet> DefaultHintSets();

/// Simplified Bao (Marcus et al., SIGMOD 2021): sits ON TOP of the native
/// optimizer, choosing per query which hint set (disabled-operator subset)
/// the optimizer plans under. The value model is a tree network over a
/// cardinality/cost-only encoding with NO table identities (Table 1) — the
/// property stressed by the covariate-shift experiment (Fig. 7). Runs as an
/// "extension": its inference time is reported inside planning time.
class BaoOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t epochs = 4;
    int32_t train_epochs = 25;
    int32_t hidden = 48;
    double learning_rate = 1e-3;
    double initial_epsilon = 0.5;
    uint64_t seed = 3;
    /// Training-execution workers. 0 keeps the serial in-place path
    /// (executions share the parent's cache state); >= 1 executes each
    /// episode's plans on isolated worker replicas with deterministic
    /// replay — results are then independent of the worker count.
    int32_t parallelism = 0;
  };

  BaoOptimizer();
  explicit BaoOptimizer(Options options);
  ~BaoOptimizer() override;

  std::string name() const override { return "bao"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

 private:
  struct Sample {
    query::Query query;
    optimizer::PhysicalPlan plan;
    float target = 0.0f;
  };
  struct ArmCandidate {
    optimizer::PhysicalPlan plan;
    util::VirtualNanos planning_ns = 0;
    double score = 0.0;
  };

  void EnsureModel(engine::Database* db);
  /// Replays the experience buffer through the value net; returns the mean
  /// regression loss over all updates performed.
  double Fit(TrainReport* report);
  std::vector<ArmCandidate> PlanArms(const query::Query& q,
                                     engine::Database* db,
                                     TrainReport* report);

  Options options_;
  std::vector<HintSet> hint_sets_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_;
  std::unique_ptr<ml::Adam> adam_;
  std::vector<Sample> experience_;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_BAO_H_
