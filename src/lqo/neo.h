#ifndef LQOLAB_LQO_NEO_H_
#define LQOLAB_LQO_NEO_H_

#include <memory>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/plan_search.h"
#include "lqo/interface.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified Neo (Marcus et al., VLDB 2019): a tree value network trained
/// on executed-plan latencies, bootstrapped from the native optimizer's
/// plans ("expert demonstrations"), refined over on-policy iterations with
/// a replay buffer; plans are predicted by greedy bottom-up search guided
/// by the network. Encoding: query one-hots + table identities (Table 1).
class NeoOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t iterations = 3;
    int32_t train_epochs = 30;
    int32_t hidden = 64;
    double learning_rate = 1e-3;
    int64_t replay_capacity = 4000;
    /// When > 0, this fraction of the training queries is held out as a
    /// FIXED validation set (the paper's §5.1 recommendation: fixed
    /// holdout, not CV, not "time series") and training stops early when
    /// the holdout loss worsens for `patience` consecutive iterations.
    double holdout_fraction = 0.0;
    int32_t patience = 2;
    uint64_t seed = 1;
    /// Training-execution workers. 0 keeps the serial in-place path
    /// (executions share the parent's cache state); >= 1 executes each
    /// collection batch on isolated worker replicas with deterministic
    /// replay — results are then independent of the worker count.
    int32_t parallelism = 0;
  };

  NeoOptimizer();
  explicit NeoOptimizer(Options options);
  ~NeoOptimizer() override;

  std::string name() const override { return "neo"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

  /// Holdout loss trajectory of the last Train() (empty without holdout).
  const std::vector<double>& holdout_losses() const {
    return holdout_losses_;
  }

  /// Iterations actually run by the last Train() (early stopping may cut
  /// options.iterations short).
  int32_t iterations_run() const { return iterations_run_; }

 private:
  struct Sample {
    query::Query query;
    optimizer::PhysicalPlan plan;
    float target = 0.0f;
  };

  void EnsureModel(engine::Database* db);
  /// Trains `epochs` shuffled passes over the replay buffer; returns the
  /// mean regression loss over all updates (0 when the buffer is empty).
  double FitReplay(engine::Database* db, int32_t epochs, TrainReport* report);
  SearchResult SearchPlan(const query::Query& q, engine::Database* db);

  double HoldoutLoss(const std::vector<Sample>& holdout);

  Options options_;
  std::vector<double> holdout_losses_;
  int32_t iterations_run_ = 0;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_;
  std::unique_ptr<ml::Adam> adam_;
  std::vector<Sample> replay_;
  uint64_t shuffle_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_NEO_H_
