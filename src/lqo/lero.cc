#include "lqo/lero.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using engine::DbConfig;
using optimizer::PhysicalPlan;
using query::Query;
using util::VirtualNanos;

LeroOptimizer::LeroOptimizer() : LeroOptimizer(Options()) {}
LeroOptimizer::LeroOptimizer(Options options) : options_(std::move(options)) {}
LeroOptimizer::~LeroOptimizer() = default;

void LeroOptimizer::EnsureModel(Database* db) {
  if (net_ != nullptr) return;
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &db->context(), &db->planner().estimator(),
      PlanEncodingStyle::kWithTableIdentity);
  // No query encoding (Table 1): the comparator sees plans only.
  net_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(), 0,
                                        options_.hidden, options_.seed);
  adam_ = std::make_unique<ml::Adam>(net_->Params(), options_.learning_rate);
  rng_state_ = options_.seed ^ 0x6c078965ULL;
}

std::vector<LeroOptimizer::Candidate> LeroOptimizer::GenerateCandidates(
    const Query& q, Database* db, TrainReport* report) {
  const DbConfig saved = db->config();
  std::vector<Candidate> candidates;
  std::set<std::string> seen;
  for (double factor : options_.scale_factors) {
    DbConfig config = saved;
    config.join_selectivity_scale = factor;
    db->SetConfig(config);
    Database::Planned planned = db->PlanQuery(q);
    if (report != nullptr) ++report->planner_calls;
    if (!seen.insert(planned.plan.ToString(q)).second) continue;
    Candidate candidate;
    candidate.plan = std::move(planned.plan);
    candidate.planning_ns = planned.planning_ns;
    candidates.push_back(std::move(candidate));
  }
  db->SetConfig(saved);
  LQOLAB_CHECK(!candidates.empty());
  return candidates;
}

bool LeroOptimizer::Prefer(const Query& q, const PhysicalPlan& a,
                           const PhysicalPlan& b) {
  return net_->Score({}, q, a, *plan_encoder_) <
         net_->Score({}, q, b, *plan_encoder_);
}

TrainReport LeroOptimizer::Train(const std::vector<Query>& train_set,
                                 Database* db) {
  EnsureModel(db);
  TrainReport report;
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const Query& q : train_set) {
      std::vector<Candidate> candidates = GenerateCandidates(q, db, &report);
      // Execute every distinct candidate (Lero explores its candidate set
      // during training) and record pairwise labels by measured latency.
      std::vector<std::pair<VirtualNanos, size_t>> measured;
      for (size_t i = 0; i < candidates.size(); ++i) {
        const engine::QueryRun run = db->ExecutePlan(q, candidates[i].plan);
        ++report.plans_executed;
        report.execution_ns += run.execution_ns;
        measured.emplace_back(run.execution_ns, i);
      }
      std::sort(measured.begin(), measured.end());
      for (size_t i = 0; i + 1 < measured.size(); ++i) {
        // Adjacent ranks give clean comparator pairs.
        pairs_.push_back({q, candidates[measured[i].second].plan,
                          candidates[measured[i + 1].second].plan});
      }
    }
    // Comparator training over accumulated pairs.
    std::vector<size_t> idx(pairs_.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (int32_t pe = 0; pe < options_.pair_epochs; ++pe) {
      for (size_t i = idx.size(); i > 1; --i) {
        rng_state_ =
            rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
        std::swap(idx[i - 1], idx[(rng_state_ >> 33) % i]);
      }
      for (size_t i : idx) {
        const Pair& pair = pairs_[i];
        net_->TrainPairwise({}, pair.query, pair.better, pair.worse,
                            *plan_encoder_, adam_.get());
        ++report.nn_updates;
      }
    }
  }
  report.training_time_ns =
      report.execution_ns +
      report.plans_executed * timing::kTrainPlanOverheadNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs;
  return report;
}

Prediction LeroOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  std::vector<Candidate> candidates = GenerateCandidates(q, db, nullptr);
  // Tournament by pairwise comparison (the plan comparator module).
  size_t best = 0;
  int64_t evals = 0;
  VirtualNanos planning_total = candidates[0].planning_ns;
  for (size_t i = 1; i < candidates.size(); ++i) {
    planning_total += candidates[i].planning_ns;
    if (Prefer(q, candidates[i].plan, candidates[best].plan)) best = i;
    evals += 2;
  }
  Prediction prediction;
  prediction.plan = std::move(candidates[best].plan);
  prediction.nn_evals = evals;
  // DBMS-integrated like Bao: candidate plannings + comparisons count as
  // planning time.
  prediction.inference_ns = 0;
  prediction.planning_ns = planning_total + evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec LeroOptimizer::encoding_spec() const {
  return {"Lero",     "-",    "-",      "-",   "-",
          "yes",      "yes",  "yes",    "yes", "LTR",
          "Tree-CNN", "Plan", "Static", "yes"};
}

}  // namespace lqolab::lqo
