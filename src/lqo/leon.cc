#include "lqo/leon.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>

#include "engine/exec_batch.h"
#include "lqo/plan_search.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::lqo {

using engine::Database;
using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::ScanType;
using query::AliasId;
using query::AliasMask;
using query::Query;
using util::VirtualNanos;

LeonOptimizer::LeonOptimizer() : LeonOptimizer(Options()) {}

LeonOptimizer::LeonOptimizer(Options options) : options_(options) {}
LeonOptimizer::~LeonOptimizer() = default;

void LeonOptimizer::EnsureModel(Database* db) {
  if (net_a_ != nullptr) return;
  const auto& ctx = db->context();
  query_encoder_ = std::make_unique<QueryEncoder>(&ctx,
                                                  &db->planner().estimator());
  plan_encoder_ = std::make_unique<PlanEncoder>(
      &ctx, &db->planner().estimator(), PlanEncodingStyle::kWithTableIdentity);
  net_a_ = std::make_unique<TreeValueNet>(plan_encoder_->node_dim(),
                                          query_encoder_->dim(),
                                          options_.hidden, options_.seed);
  net_b_ = std::make_unique<TreeValueNet>(
      plan_encoder_->node_dim(), query_encoder_->dim(), options_.hidden,
      options_.seed ^ 0xdeadbeefULL);
  adam_a_ = std::make_unique<ml::Adam>(net_a_->Params(),
                                       options_.learning_rate);
  adam_b_ = std::make_unique<ml::Adam>(net_b_->Params(),
                                       options_.learning_rate);
  rng_state_ = options_.seed ^ 0x94d049bbULL;
}

std::vector<LeonOptimizer::Candidate> LeonOptimizer::Enumerate(
    const Query& q, Database* db, int64_t* cost_calls, int64_t* nn_evals) {
  const optimizer::Planner& planner = db->planner();
  const optimizer::CostModel& cm = planner.cost_model();
  const std::vector<float> qenc = query_encoder_->Encode(q);

  // Per-subset top-k candidate lists, beamed per level.
  std::map<AliasMask, std::vector<Candidate>> level;
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    const optimizer::ScanChoice scan = cm.BestScan(q, a);
    Candidate c;
    c.plan.AddScan(a, scan.type, scan.index_column);
    c.score = LatencyToTarget(static_cast<VirtualNanos>(scan.cost));
    ++*cost_calls;
    level[query::MaskOf(a)].push_back(std::move(c));
  }

  auto net_adjust = [&](Candidate* c) {
    const double sa = net_a_->Score(qenc, q, c->plan, *plan_encoder_);
    const double sb = net_b_->Score(qenc, q, c->plan, *plan_encoder_);
    *nn_evals += 2;
    c->uncertainty = std::abs(sa - sb);
    c->score += 0.5 * (sa + sb) * 0.5;  // learned correction, damped
  };

  for (int32_t size = 1; size < q.relation_count(); ++size) {
    std::map<AliasMask, std::vector<Candidate>> next;
    for (const auto& [mask, candidates] : level) {
      for (AliasId a = 0; a < q.relation_count(); ++a) {
        const AliasMask bit = query::MaskOf(a);
        if ((mask & bit) != 0 || (q.AdjacencyMask(a) & mask) == 0) continue;
        for (const Candidate& base : candidates) {
          // Join algorithms for extending by relation `a`.
          const optimizer::ScanChoice scan = cm.BestScan(q, a);
          for (JoinAlgo algo :
               {JoinAlgo::kHash, JoinAlgo::kMerge, JoinAlgo::kNestLoop}) {
            PhysicalPlan leaf;
            leaf.AddScan(a, scan.type, scan.index_column);
            Candidate c;
            c.plan = CombinePlans(base.plan, leaf, algo);
            const double cost = planner.EstimatePlanCost(q, c.plan);
            ++*cost_calls;
            if (cost >= optimizer::kImpossibleCost) continue;
            c.score = LatencyToTarget(static_cast<VirtualNanos>(
                std::min(cost, 1.0e18)));
            next[mask | bit].push_back(std::move(c));
          }
          catalog::ColumnId probe_column = catalog::kInvalidColumn;
          if (cm.CanIndexNlj(q, mask, a, &probe_column)) {
            PhysicalPlan leaf;
            leaf.AddScan(a, ScanType::kIndex, probe_column);
            Candidate c;
            c.plan = CombinePlans(base.plan, leaf, JoinAlgo::kIndexNlj);
            const double cost = planner.EstimatePlanCost(q, c.plan);
            ++*cost_calls;
            if (cost < optimizer::kImpossibleCost) {
              c.score = LatencyToTarget(static_cast<VirtualNanos>(
                  std::min(cost, 1.0e18)));
              next[mask | bit].push_back(std::move(c));
            }
          }
        }
      }
    }
    // Per subset: keep top-k by cost, then apply the learned correction to
    // the survivors and re-rank.
    for (auto& [mask, candidates] : next) {
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.score < b.score;
                });
      if (static_cast<int32_t>(candidates.size()) > options_.topk_per_mask) {
        candidates.resize(static_cast<size_t>(options_.topk_per_mask));
      }
      for (Candidate& c : candidates) net_adjust(&c);
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.score < b.score;
                });
    }
    // Beam over subsets: keep the most promising masks.
    if (static_cast<int32_t>(next.size()) > options_.beam_masks) {
      std::vector<std::pair<double, AliasMask>> ranked;
      for (const auto& [mask, candidates] : next) {
        ranked.emplace_back(candidates.front().score, mask);
      }
      std::sort(ranked.begin(), ranked.end());
      std::map<AliasMask, std::vector<Candidate>> pruned;
      for (int32_t i = 0; i < options_.beam_masks; ++i) {
        pruned[ranked[static_cast<size_t>(i)].second] =
            std::move(next[ranked[static_cast<size_t>(i)].second]);
      }
      next = std::move(pruned);
    }
    level = std::move(next);
  }

  LQOLAB_CHECK_EQ(level.size(), 1u);
  std::vector<Candidate> finals = std::move(level.begin()->second);
  for (Candidate& c : finals) c.plan.Validate(q);
  return finals;
}

TrainReport LeonOptimizer::Train(const std::vector<Query>& train_set,
                                 Database* db) {
  EnsureModel(db);
  TrainReport report;

  struct Executed {
    PhysicalPlan plan;
    VirtualNanos latency = 0;
  };

  std::unique_ptr<engine::BatchExecutor> batch_exec;
  if (options_.parallelism > 0) {
    batch_exec = std::make_unique<engine::BatchExecutor>(
        db, options_.seed, options_.parallelism);
  }

  int32_t episode_index = 0;
  for (const Query& q : train_set) {
    // Respect the end-to-end training budget (the paper capped LEON's
    // training at 120 hours and notes the budget cuts it short).
    const VirtualNanos modeled =
        report.execution_ns +
        report.planner_calls * timing::kLeonSubplanCallNs +
        report.nn_updates * timing::kNnUpdateNs +
        report.nn_evals * timing::kNnEvalNs;
    if (modeled >= options_.train_budget_ns) break;
    const TrainReport before = report;

    std::vector<Candidate> candidates =
        Enumerate(q, db, &report.planner_calls, &report.nn_evals);
    if (candidates.empty()) continue;

    // Execute the best-ranked plan plus the most uncertain ones.
    std::vector<size_t> to_execute = {0};
    std::vector<size_t> by_uncertainty;
    for (size_t i = 1; i < candidates.size(); ++i) by_uncertainty.push_back(i);
    std::sort(by_uncertainty.begin(), by_uncertainty.end(),
              [&](size_t a, size_t b) {
                return candidates[a].uncertainty > candidates[b].uncertainty;
              });
    for (size_t i : by_uncertainty) {
      if (static_cast<int32_t>(to_execute.size()) >= options_.exec_per_query) {
        break;
      }
      to_execute.push_back(i);
    }

    // The selected candidates are independent executions of one query:
    // run them concurrently when parallelism was requested.
    std::vector<Executed> executed;
    std::vector<engine::QueryRun> runs;
    if (batch_exec != nullptr) {
      std::vector<engine::PlanExec> batch;
      batch.reserve(to_execute.size());
      for (size_t idx : to_execute) {
        batch.push_back({&q, &candidates[idx].plan, 0});
      }
      runs = batch_exec->Execute(batch);
    } else {
      runs.reserve(to_execute.size());
      for (size_t idx : to_execute) {
        runs.push_back(db->ExecutePlan(q, candidates[idx].plan));
      }
    }
    for (size_t i = 0; i < to_execute.size(); ++i) {
      ++report.plans_executed;
      report.execution_ns += runs[i].execution_ns;
      executed.push_back({candidates[to_execute[i]].plan,
                          runs[i].execution_ns});
    }

    // Pairwise ranking updates on the executed plans of this query.
    const std::vector<float> qenc = query_encoder_->Encode(q);
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (int32_t epoch = 0; epoch < options_.pair_epochs; ++epoch) {
      for (size_t i = 0; i < executed.size(); ++i) {
        for (size_t j = 0; j < executed.size(); ++j) {
          if (executed[i].latency >= executed[j].latency) continue;
          loss_sum += net_a_->TrainPairwise(qenc, q, executed[i].plan,
                                            executed[j].plan, *plan_encoder_,
                                            adam_a_.get());
          loss_sum += net_b_->TrainPairwise(qenc, q, executed[i].plan,
                                            executed[j].plan, *plan_encoder_,
                                            adam_b_.get());
          report.nn_updates += 2;
          loss_count += 2;
        }
      }
    }

    // One query's active-learning step is one episode; its training-time
    // share uses LEON's formula (subplan calls dominate).
    EpisodeStats stats;
    stats.episode = episode_index++;
    stats.loss =
        loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
    stats.plans_executed = report.plans_executed - before.plans_executed;
    stats.execution_ns = report.execution_ns - before.execution_ns;
    stats.nn_updates = report.nn_updates - before.nn_updates;
    stats.nn_evals = report.nn_evals - before.nn_evals;
    stats.training_time_ns =
        stats.execution_ns +
        (report.planner_calls - before.planner_calls) *
            timing::kLeonSubplanCallNs +
        stats.nn_updates * timing::kNnUpdateNs +
        stats.nn_evals * timing::kNnEvalNs +
        stats.plans_executed * timing::kTrainPlanOverheadNs;
    report.episodes.push_back(stats);
    obs::Count(obs::Counter::kTrainEpisodes);
  }

  report.training_time_ns =
      report.execution_ns +
      report.planner_calls * timing::kLeonSubplanCallNs +
      report.nn_updates * timing::kNnUpdateNs +
      report.nn_evals * timing::kNnEvalNs +
      report.plans_executed * timing::kTrainPlanOverheadNs;
  report.training_time_ns = std::min<VirtualNanos>(
      report.training_time_ns,
      options_.train_budget_ns + 3600ll * 1'000'000'000);
  return report;
}

Prediction LeonOptimizer::Plan(const Query& q, Database* db) {
  EnsureModel(db);
  Prediction prediction;
  int64_t cost_calls = 0;
  std::vector<Candidate> candidates =
      Enumerate(q, db, &cost_calls, &prediction.nn_evals);
  LQOLAB_CHECK(!candidates.empty());
  prediction.plan = std::move(candidates.front().plan);
  prediction.inference_ns = cost_calls * timing::kLeonSubplanCallNs +
                            prediction.nn_evals * timing::kNnEvalNs;
  return prediction;
}

EncodingSpec LeonOptimizer::encoding_spec() const {
  return {"LEON",     "yes",  "cardinality", "cardinality", "stacking",
          "yes",      "yes",  "yes",         "-",           "LTR",
          "Tree-CNN", "Plan", "Static",      "-"};
}

}  // namespace lqolab::lqo
