#ifndef LQOLAB_LQO_LEON_H_
#define LQOLAB_LQO_LEON_H_

#include <memory>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/interface.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified LEON (Chen et al., VLDB 2023): a learning-to-rank method that
/// enumerates physical subplans dynamic-programming style (here: beamed
/// left-deep enumeration with top-k plans per subset), ranks candidates by
/// DBMS cost estimates corrected by a pairwise-trained network ensemble,
/// and uses ensemble disagreement as the uncertainty that picks which plans
/// to execute for training. Its inference cost is dominated by the
/// tens of thousands of per-subplan cost-estimate calls (paper §8.2.2:
/// ~6.5 h to plan query 29a), modeled via timing::kLeonSubplanCallNs.
class LeonOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t beam_masks = 20;    ///< subsets kept per enumeration level
    int32_t topk_per_mask = 3;  ///< plans kept per subset
    int32_t exec_per_query = 3;
    int32_t pair_epochs = 8;
    int32_t hidden = 48;
    double learning_rate = 1e-3;
    /// Modeled end-to-end training budget; training stops when exceeded
    /// (the paper capped LEON at 120 hours).
    util::VirtualNanos train_budget_ns = 120ll * 3600 * 1'000'000'000;
    uint64_t seed = 4;
    /// Training-execution workers. 0 keeps the serial in-place path
    /// (executions share the parent's cache state); >= 1 executes each
    /// query's candidate set on isolated worker replicas with deterministic
    /// replay — results are then independent of the worker count.
    int32_t parallelism = 0;
  };

  LeonOptimizer();
  explicit LeonOptimizer(Options options);
  ~LeonOptimizer() override;

  std::string name() const override { return "leon"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

 private:
  struct Candidate {
    optimizer::PhysicalPlan plan;
    double score = 0.0;        ///< cost target + learned correction
    double uncertainty = 0.0;  ///< ensemble disagreement
  };

  void EnsureModel(engine::Database* db);

  /// Beamed left-deep enumeration; returns full-plan candidates sorted by
  /// score and counts cost-estimate calls / NN evaluations.
  std::vector<Candidate> Enumerate(const query::Query& q,
                                   engine::Database* db, int64_t* cost_calls,
                                   int64_t* nn_evals);

  Options options_;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_a_;
  std::unique_ptr<TreeValueNet> net_b_;
  std::unique_ptr<ml::Adam> adam_a_;
  std::unique_ptr<ml::Adam> adam_b_;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_LEON_H_
