#include "lqo/plan_search.h"

#include <limits>

#include "util/check.h"

namespace lqolab::lqo {

using optimizer::JoinAlgo;
using optimizer::PhysicalPlan;
using optimizer::PlanNode;
using optimizer::ScanType;
using query::AliasId;
using query::Query;

PhysicalPlan CombinePlans(const PhysicalPlan& left, const PhysicalPlan& right,
                          JoinAlgo algo) {
  LQOLAB_CHECK(!left.empty());
  LQOLAB_CHECK(!right.empty());
  PhysicalPlan out;
  out.nodes = left.nodes;
  const int32_t offset = static_cast<int32_t>(left.nodes.size());
  for (PlanNode node : right.nodes) {
    if (node.type == PlanNode::Type::kJoin) {
      node.left += offset;
      node.right += offset;
    }
    out.nodes.push_back(node);
  }
  out.root = static_cast<int32_t>(out.nodes.size());
  PlanNode join;
  join.type = PlanNode::Type::kJoin;
  join.algo = algo;
  join.left = left.root;
  join.right = right.root + offset;
  join.mask = left.nodes[static_cast<size_t>(left.root)].mask |
              right.nodes[static_cast<size_t>(right.root)].mask;
  out.nodes.push_back(join);
  return out;
}

namespace {

/// Single-leaf plan with the cost model's preferred access path.
PhysicalPlan LeafPlan(const Query& q, const optimizer::CostModel& cost_model,
                      AliasId alias) {
  const optimizer::ScanChoice scan = cost_model.BestScan(q, alias);
  PhysicalPlan plan;
  plan.AddScan(alias, scan.type, scan.index_column);
  return plan;
}

/// Index-probe leaf used as the inner of an index nested-loop join.
PhysicalPlan IndexLeafPlan(AliasId alias, catalog::ColumnId probe_column) {
  PhysicalPlan plan;
  plan.AddScan(alias, ScanType::kIndex, probe_column);
  return plan;
}

bool IsSingleScan(const PhysicalPlan& plan) {
  return plan.nodes.size() == 1 &&
         plan.nodes[0].type == PlanNode::Type::kScan;
}

}  // namespace

SearchResult GreedyBottomUpSearch(const Query& q,
                                  const optimizer::CostModel& cost_model,
                                  const PlanScorer& scorer) {
  SearchResult result;
  std::vector<PhysicalPlan> fragments;
  fragments.reserve(static_cast<size_t>(q.relation_count()));
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    fragments.push_back(LeafPlan(q, cost_model, a));
  }

  while (fragments.size() > 1) {
    double best_score = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    size_t best_j = 0;
    PhysicalPlan best_candidate;

    for (size_t i = 0; i < fragments.size(); ++i) {
      for (size_t j = 0; j < fragments.size(); ++j) {
        if (i == j) continue;
        const query::AliasMask mask_i =
            fragments[i].node(fragments[i].root).mask;
        const query::AliasMask mask_j =
            fragments[j].node(fragments[j].root).mask;
        if (!q.HasEdgeBetween(mask_i, mask_j)) continue;
        for (JoinAlgo algo :
             {JoinAlgo::kHash, JoinAlgo::kMerge, JoinAlgo::kNestLoop}) {
          PhysicalPlan candidate =
              CombinePlans(fragments[i], fragments[j], algo);
          const double score = scorer(candidate);
          ++result.evals;
          if (score < best_score) {
            best_score = score;
            best_i = i;
            best_j = j;
            best_candidate = std::move(candidate);
          }
        }
        // Index-NLJ: inner must be a lone base relation with an index.
        if (IsSingleScan(fragments[j])) {
          const AliasId inner = fragments[j].nodes[0].alias;
          catalog::ColumnId probe_column = catalog::kInvalidColumn;
          if (cost_model.CanIndexNlj(q, mask_i, inner, &probe_column)) {
            PhysicalPlan candidate =
                CombinePlans(fragments[i], IndexLeafPlan(inner, probe_column),
                             JoinAlgo::kIndexNlj);
            const double score = scorer(candidate);
            ++result.evals;
            if (score < best_score) {
              best_score = score;
              best_i = i;
              best_j = j;
              best_candidate = std::move(candidate);
            }
          }
        }
      }
    }
    LQOLAB_CHECK_MSG(best_score < std::numeric_limits<double>::infinity(),
                     "no joinable fragment pair in " << q.id);
    // Replace fragment i by the combination, erase fragment j.
    fragments[best_i] = std::move(best_candidate);
    fragments.erase(fragments.begin() + static_cast<long>(best_j));
  }
  result.plan = std::move(fragments[0]);
  result.plan.Validate(q);
  return result;
}

std::vector<AliasId> RepairOrder(const Query& q,
                                 const std::vector<AliasId>& preference) {
  LQOLAB_CHECK(!preference.empty());
  std::vector<AliasId> order;
  std::vector<char> used(static_cast<size_t>(q.relation_count()), 0);
  order.push_back(preference[0]);
  used[static_cast<size_t>(preference[0])] = 1;
  query::AliasMask mask = query::MaskOf(preference[0]);
  while (static_cast<int32_t>(order.size()) < q.relation_count()) {
    AliasId chosen = -1;
    for (AliasId a : preference) {
      if (!used[static_cast<size_t>(a)] && (q.AdjacencyMask(a) & mask) != 0) {
        chosen = a;
        break;
      }
    }
    if (chosen < 0) {
      // Preference list may be incomplete; fall back to any connectable.
      for (AliasId a = 0; a < q.relation_count(); ++a) {
        if (!used[static_cast<size_t>(a)] &&
            (q.AdjacencyMask(a) & mask) != 0) {
          chosen = a;
          break;
        }
      }
    }
    LQOLAB_CHECK_GE(chosen, 0);
    order.push_back(chosen);
    used[static_cast<size_t>(chosen)] = 1;
    mask |= query::MaskOf(chosen);
  }
  return order;
}

std::vector<AliasId> ExtendGreedily(const Query& q,
                                    std::vector<AliasId> prefix) {
  LQOLAB_CHECK(!prefix.empty());
  query::AliasMask mask = 0;
  for (AliasId a : prefix) mask |= query::MaskOf(a);
  while (static_cast<int32_t>(prefix.size()) < q.relation_count()) {
    AliasId next = -1;
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      if ((mask & query::MaskOf(a)) == 0 &&
          (q.AdjacencyMask(a) & mask) != 0) {
        next = a;
        break;
      }
    }
    LQOLAB_CHECK_GE(next, 0);
    prefix.push_back(next);
    mask |= query::MaskOf(next);
  }
  return prefix;
}

PhysicalPlan RandomPlan(const Query& q, const optimizer::CostModel& cost_model,
                        uint64_t* rng_state) {
  auto next = [&]() {
    *rng_state = *rng_state * 6364136223846793005ULL + 1442695040888963407ULL;
    return *rng_state >> 33;
  };
  std::vector<PhysicalPlan> fragments;
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    fragments.push_back(LeafPlan(q, cost_model, a));
  }
  while (fragments.size() > 1) {
    // Collect joinable pairs.
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t i = 0; i < fragments.size(); ++i) {
      for (size_t j = 0; j < fragments.size(); ++j) {
        if (i == j) continue;
        if (q.HasEdgeBetween(fragments[i].node(fragments[i].root).mask,
                             fragments[j].node(fragments[j].root).mask)) {
          pairs.emplace_back(i, j);
        }
      }
    }
    LQOLAB_CHECK(!pairs.empty());
    const auto [i, j] = pairs[next() % pairs.size()];
    constexpr JoinAlgo kAlgos[] = {JoinAlgo::kHash, JoinAlgo::kNestLoop,
                                   JoinAlgo::kMerge};
    const JoinAlgo algo = kAlgos[next() % 3];
    PhysicalPlan combined = CombinePlans(fragments[i], fragments[j], algo);
    const size_t erase_at = j;
    fragments[i] = std::move(combined);
    fragments.erase(fragments.begin() + static_cast<long>(erase_at));
  }
  fragments[0].Validate(q);
  return fragments[0];
}

}  // namespace lqolab::lqo
