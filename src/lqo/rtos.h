#ifndef LQOLAB_LQO_RTOS_H_
#define LQOLAB_LQO_RTOS_H_

#include <memory>
#include <vector>

#include "lqo/encoding.h"
#include "lqo/interface.h"
#include "lqo/plan_search.h"
#include "lqo/value_net.h"
#include "ml/nn.h"

namespace lqolab::lqo {

/// Simplified RTOS (Yu et al., ICDE 2020): a join-ORDER-only learned
/// optimizer. The RL agent picks the sequence of joins; it recommends
/// neither join algorithms nor scan types (Table 1: no join type, no scan
/// type in the encoding) — the native engine fills in the physical
/// operators for the chosen order. Value estimates come from a tree network
/// (the Tree-LSTM stand-in); training follows Neo's latency-regression
/// skeleton and, uniquely among the methods (Table 1), reports a
/// CROSS-VALIDATION metric over the training set.
class RtosOptimizer : public LearnedOptimizer {
 public:
  struct Options {
    int32_t iterations = 2;
    int32_t train_epochs = 12;
    int32_t cv_folds = 3;
    int32_t hidden = 48;
    double learning_rate = 1e-3;
    uint64_t seed = 5;
  };

  RtosOptimizer();
  explicit RtosOptimizer(Options options);
  ~RtosOptimizer() override;

  std::string name() const override { return "rtos"; }
  TrainReport Train(const std::vector<query::Query>& train_set,
                    engine::Database* db) override;
  Prediction Plan(const query::Query& q, engine::Database* db) override;
  EncodingSpec encoding_spec() const override;

  /// Mean cross-validated holdout loss of the last Train() call (Table 1's
  /// "CV" testing column made concrete).
  double last_cv_loss() const { return last_cv_loss_; }

 private:
  struct Sample {
    query::Query query;
    std::vector<query::AliasId> order;
    float target = 0.0f;
  };

  void EnsureModel(engine::Database* db);
  /// Builds the physical plan the engine picks for a join order.
  optimizer::PhysicalPlan PlanForOrder(
      const query::Query& q, engine::Database* db,
      const std::vector<query::AliasId>& order) const;
  /// Greedy order construction guided by the value net; counts NN evals.
  std::vector<query::AliasId> SearchOrder(const query::Query& q,
                                          engine::Database* db,
                                          int64_t* evals);
  double TrainOn(const std::vector<Sample>& samples, engine::Database* db,
                 int32_t epochs, TrainReport* report);

  Options options_;
  std::unique_ptr<QueryEncoder> query_encoder_;
  std::unique_ptr<PlanEncoder> plan_encoder_;
  std::unique_ptr<TreeValueNet> net_;
  std::unique_ptr<ml::Adam> adam_;
  std::vector<Sample> replay_;
  double last_cv_loss_ = 0.0;
  uint64_t rng_state_ = 0;
};

}  // namespace lqolab::lqo

#endif  // LQOLAB_LQO_RTOS_H_
