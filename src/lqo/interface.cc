#include "lqo/interface.h"

#include "lqo/balsa.h"
#include "lqo/bao.h"
#include "lqo/leon.h"
#include "lqo/hybridqo.h"
#include "lqo/lero.h"
#include "lqo/loger.h"
#include "lqo/neo.h"
#include "lqo/rtos.h"

namespace lqolab::lqo {

std::vector<EncodingSpec> Table1EncodingSpecs() {
  std::vector<EncodingSpec> rows;
  rows.push_back(NeoOptimizer().encoding_spec());
  rows.push_back(RtosOptimizer().encoding_spec());
  rows.push_back(BaoOptimizer().encoding_spec());
  rows.push_back(BalsaOptimizer().encoding_spec());
  rows.push_back(LeroOptimizer().encoding_spec());
  rows.push_back(LeonOptimizer().encoding_spec());
  rows.push_back(LogerOptimizer().encoding_spec());
  rows.push_back(HybridQoOptimizer().encoding_spec());
  return rows;
}

}  // namespace lqolab::lqo
