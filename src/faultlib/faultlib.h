#ifndef LQOLAB_FAULTLIB_FAULTLIB_H_
#define LQOLAB_FAULTLIB_FAULTLIB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/virtual_clock.h"

namespace lqolab::faultlib {

/// What an armed fault point does when it fires.
enum class FaultKind : int32_t {
  kNone = 0,  ///< Nothing fired.
  kError,     ///< Inject a typed util::Status error at the site.
  kLatency,   ///< Inject a virtual-time latency spike at the site.
  kPoison,    ///< Corrupt the site's output (site-defined, e.g. a degraded
              ///< learned plan) without signalling an error.
};

const char* FaultKindName(FaultKind kind);

/// The decision handed back to an instrumentation site for one hit.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  util::StatusCode error_code = util::StatusCode::kUnavailable;
  util::VirtualNanos latency_ns = 0;
  /// Multiplier a kPoison site applies to its numeric output (e.g. the
  /// cardinality estimator scales its estimate by this; 1e-4 models a
  /// catastrophic underestimate). 1.0 = site-defined poison behaviour.
  double poison_scale = 1.0;

  bool fired() const { return kind != FaultKind::kNone; }
  bool is_error() const { return kind == FaultKind::kError; }
  bool is_latency() const { return kind == FaultKind::kLatency; }
  bool is_poison() const { return kind == FaultKind::kPoison; }

  /// The typed status an error action injects.
  util::Status error(std::string_view point) const {
    return util::Status(error_code,
                        "injected fault at " + std::string(point));
  }
};

/// One rule arming a named fault point. Firing is deterministic: the
/// decision for hit #k of a point is a pure function of
/// (plan seed, point name, k), so single-threaded runs replay exactly and
/// multi-threaded runs fire the same *number* of faults per point (which
/// queries absorb them depends on scheduling; see docs/robustness.md).
struct FaultRule {
  /// Site name, e.g. "buffer.read_page" (catalog in docs/robustness.md).
  std::string point;
  FaultKind kind = FaultKind::kError;
  /// Per-hit fire probability, evaluated from the seeded per-point stream.
  /// Ignored when every_nth > 0.
  double probability = 0.0;
  /// Deterministic trigger-count mode: fire on every Nth armed hit
  /// (1 = every hit). 0 selects probability mode.
  int64_t every_nth = 0;
  /// Arm the rule only after this many hits (lets a scenario skip warm-up).
  int64_t skip_hits = 0;
  /// Stop firing after this many fires; -1 = unlimited.
  int64_t max_fires = -1;
  /// Status injected by kError rules.
  util::StatusCode error_code = util::StatusCode::kUnavailable;
  /// Virtual latency added by kLatency rules.
  util::VirtualNanos latency_ns = 0;
  /// Output multiplier carried by kPoison rules (see FaultAction).
  double poison_scale = 1.0;
};

/// A named, seeded fault schedule: the full configuration of one chaos
/// scenario. Plain data — build it once, run it through a FaultInjector.
struct FaultPlan {
  std::string name = "faults";
  uint64_t seed = 42;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  FaultPlan& Add(FaultRule rule) {
    rules.push_back(std::move(rule));
    return *this;
  }
};

/// Per-point lifetime totals, for reports and assertions.
struct PointStats {
  std::string point;
  FaultKind kind = FaultKind::kNone;
  int64_t hits = 0;
  int64_t fires = 0;
};

/// Runtime state of one fault schedule: per-point hit/fire counters and the
/// seeded decision streams. Thread-safe — the point table is immutable
/// after construction and the counters are atomics — so one injector can
/// cover a whole QueryServer worker pool.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Records one hit of `point` and returns the action to apply (kNone for
  /// unarmed points). Fires are counted on the calling thread's
  /// obs::MetricsRegistry (fault_* counters).
  FaultAction Hit(std::string_view point);

  /// Keyed variant: the fire decision is a pure function of
  /// (plan seed, point name, key) — independent of how many times or in
  /// what order threads hit the point. Sites that need schedule-independent
  /// determinism (e.g. the cardinality estimator, hit from concurrent serve
  /// workers) pass a stable semantic key such as hash(query, alias mask);
  /// the same key always gets the same decision. skip_hits/max_fires are
  /// hit-order concepts and are ignored in keyed mode; every_nth selects a
  /// deterministic 1-in-N subset of the key space.
  FaultAction HitKeyed(std::string_view point, uint64_t key);

  /// Lifetime hits/fires of one point (0/0 when the point is unarmed).
  int64_t hits(std::string_view point) const;
  int64_t fires(std::string_view point) const;
  /// Fires across every armed point.
  int64_t total_fires() const;
  /// Per-point totals in rule order.
  std::vector<PointStats> Stats() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  struct PointState {
    FaultRule rule;
    uint64_t stream_seed = 0;
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> fires{0};
  };

  const PointState* Find(std::string_view point) const;

  FaultPlan plan_;
  // Heterogeneous lookup so Hit(string_view) never allocates.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::unique_ptr<PointState>, StringHash,
                     std::equal_to<>>
      points_;
};

namespace internal {
extern std::atomic<FaultInjector*> g_injector;
}  // namespace internal

/// The process-wide active injector, or nullptr when fault injection is
/// disabled (the default). Unlike obs::MetricsScope this is global, not
/// thread-local: faults must reach QueryServer worker threads the test or
/// bench did not spawn itself.
inline FaultInjector* Current() {
  return internal::g_injector.load(std::memory_order_acquire);
}

/// RAII activation of one injector. Scopes nest (the previous injector is
/// restored on destruction); activate before traffic starts and deactivate
/// after it drains — sites sample Current() once per hit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector)
      : saved_(internal::g_injector.exchange(injector,
                                             std::memory_order_acq_rel)) {}
  ~ScopedFaultInjection() {
    internal::g_injector.store(saved_, std::memory_order_release);
  }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* saved_;
};

/// Instrumentation-site entry point: one atomic load and a branch when
/// disabled (the zero-cost contract), a seeded decision when enabled.
inline FaultAction Check(std::string_view point) {
  FaultInjector* injector = Current();
  return injector == nullptr ? FaultAction{} : injector->Hit(point);
}

/// Keyed instrumentation-site entry point (see FaultInjector::HitKeyed).
inline FaultAction CheckKeyed(std::string_view point, uint64_t key) {
  FaultInjector* injector = Current();
  return injector == nullptr ? FaultAction{} : injector->HitKeyed(point, key);
}

}  // namespace lqolab::faultlib

/// Named fault point. Usage at a site:
///   const auto fault = LQOLAB_FAULT_POINT("buffer.read_page");
///   if (fault.is_error()) { ...propagate fault.error(...)... }
#define LQOLAB_FAULT_POINT(point) ::lqolab::faultlib::Check(point)

/// Keyed fault point: decision is a pure function of (seed, point, key),
/// immune to thread interleaving of other hits.
#define LQOLAB_FAULT_POINT_KEYED(point, key) \
  ::lqolab::faultlib::CheckKeyed(point, key)

#endif  // LQOLAB_FAULTLIB_FAULTLIB_H_
