#include "faultlib/faultlib.h"

#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::faultlib {

namespace internal {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace internal

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kError:
      return "error";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kPoison:
      return "poison";
  }
  return "unknown";
}

namespace {

// Uniform double in [0, 1) derived from one mixed word (53 mantissa bits),
// matching util::Rng::Uniform's resolution without consuming a generator.
double UniformFromWord(uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

obs::Counter FireCounter(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLatency:
      return obs::Counter::kFaultInjectedLatency;
    case FaultKind::kPoison:
      return obs::Counter::kFaultInjectedPoison;
    default:
      return obs::Counter::kFaultInjectedErrors;
  }
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  for (const FaultRule& rule : plan_.rules) {
    LQOLAB_CHECK(!rule.point.empty());
    LQOLAB_CHECK_GE(rule.probability, 0.0);
    LQOLAB_CHECK_GE(rule.every_nth, 0);
    LQOLAB_CHECK_GE(rule.skip_hits, 0);
    auto state = std::make_unique<PointState>();
    state->rule = rule;
    // Independent decision stream per point: (plan seed, point-name hash).
    state->stream_seed =
        util::MixSeed(plan_.seed, std::hash<std::string_view>{}(rule.point));
    auto [it, inserted] = points_.emplace(rule.point, std::move(state));
    LQOLAB_CHECK(inserted);  // One rule per point keeps decisions unambiguous.
  }
}

const FaultInjector::PointState* FaultInjector::Find(
    std::string_view point) const {
  auto it = points_.find(point);
  return it == points_.end() ? nullptr : it->second.get();
}

FaultAction FaultInjector::Hit(std::string_view point) {
  auto it = points_.find(point);
  if (it == points_.end()) return FaultAction{};
  PointState& state = *it->second;
  const FaultRule& rule = state.rule;

  // k is this hit's index in the point's lifetime sequence; the fire
  // decision is a pure function of (stream_seed, k).
  const int64_t k = state.hits.fetch_add(1, std::memory_order_relaxed);
  if (k < rule.skip_hits) return FaultAction{};

  bool fire;
  if (rule.every_nth > 0) {
    fire = (k - rule.skip_hits) % rule.every_nth == rule.every_nth - 1;
  } else {
    fire = UniformFromWord(util::MixSeed(
               state.stream_seed, static_cast<uint64_t>(k))) < rule.probability;
  }
  if (!fire) return FaultAction{};

  if (rule.max_fires >= 0) {
    // Claim a fire slot; losers past the cap put the slot count back.
    const int64_t f = state.fires.fetch_add(1, std::memory_order_relaxed);
    if (f >= rule.max_fires) {
      state.fires.fetch_sub(1, std::memory_order_relaxed);
      return FaultAction{};
    }
  } else {
    state.fires.fetch_add(1, std::memory_order_relaxed);
  }

  obs::Count(FireCounter(rule.kind));
  FaultAction action;
  action.kind = rule.kind;
  action.error_code = rule.error_code;
  action.latency_ns = rule.latency_ns;
  action.poison_scale = rule.poison_scale;
  return action;
}

FaultAction FaultInjector::HitKeyed(std::string_view point, uint64_t key) {
  auto it = points_.find(point);
  if (it == points_.end()) return FaultAction{};
  PointState& state = *it->second;
  const FaultRule& rule = state.rule;
  state.hits.fetch_add(1, std::memory_order_relaxed);

  // Unlike Hit(), the decision never reads the hit counter: two threads
  // racing on different keys cannot perturb each other's outcomes, and the
  // same key replays the same decision in any schedule.
  const uint64_t word = util::MixSeed(state.stream_seed, key);
  bool fire;
  if (rule.every_nth > 0) {
    fire = word % static_cast<uint64_t>(rule.every_nth) == 0;
  } else {
    fire = UniformFromWord(word) < rule.probability;
  }
  if (!fire) return FaultAction{};

  state.fires.fetch_add(1, std::memory_order_relaxed);
  obs::Count(FireCounter(rule.kind));
  FaultAction action;
  action.kind = rule.kind;
  action.error_code = rule.error_code;
  action.latency_ns = rule.latency_ns;
  action.poison_scale = rule.poison_scale;
  return action;
}

int64_t FaultInjector::hits(std::string_view point) const {
  const PointState* state = Find(point);
  return state == nullptr ? 0 : state->hits.load(std::memory_order_relaxed);
}

int64_t FaultInjector::fires(std::string_view point) const {
  const PointState* state = Find(point);
  return state == nullptr ? 0 : state->fires.load(std::memory_order_relaxed);
}

int64_t FaultInjector::total_fires() const {
  int64_t total = 0;
  for (const auto& [point, state] : points_) {
    total += state->fires.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<PointStats> FaultInjector::Stats() const {
  std::vector<PointStats> stats;
  stats.reserve(plan_.rules.size());
  for (const FaultRule& rule : plan_.rules) {
    const PointState* state = Find(rule.point);
    PointStats entry;
    entry.point = rule.point;
    entry.kind = rule.kind;
    entry.hits = state->hits.load(std::memory_order_relaxed);
    entry.fires = state->fires.load(std::memory_order_relaxed);
    stats.push_back(std::move(entry));
  }
  return stats;
}

}  // namespace lqolab::faultlib
