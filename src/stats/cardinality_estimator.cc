#include "stats/cardinality_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "faultlib/faultlib.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::stats {

using query::AliasId;
using query::AliasMask;
using query::JoinEdge;
using query::Predicate;
using query::Query;

namespace {

/// Join selectivities must be finite and strictly positive: a NaN (missing
/// stats combined with a poisoned join_selectivity_scale) would propagate
/// through every cost comparison, and a hard zero erases the base
/// cardinalities it multiplies, collapsing whole subplans to one row. NaN
/// falls back to the uninformative 1.0; zero clamps to the smallest normal
/// double — far below any selectivity real statistics can produce, so no
/// legitimate estimate is perturbed.
double ClampJoinSelectivity(double s) {
  if (std::isnan(s)) return 1.0;
  return std::min(1.0, std::max(std::numeric_limits<double>::min(), s));
}

}  // namespace

CardinalityEstimator::CardinalityEstimator(const exec::DbContext* ctx)
    : ctx_(ctx) {
  LQOLAB_CHECK(ctx != nullptr);
}

double CardinalityEstimator::PredicateSelectivity(const Query& q,
                                                  const Predicate& pred) const {
  const catalog::TableId table_id =
      q.relations[static_cast<size_t>(pred.alias)].table;
  const storage::Table& table = ctx_->table(table_id);
  const ColumnStats& cs = ctx_->column_stats(table_id, pred.column);
  const query::BoundPredicate bound = query::BindPredicate(pred, table);
  switch (pred.kind) {
    case Predicate::Kind::kIsNull:
      return cs.NullSelectivity();
    case Predicate::Kind::kNotNull:
      return cs.NotNullSelectivity();
    case Predicate::Kind::kRange:
      return cs.RangeSelectivity(bound.lo, bound.hi);
    case Predicate::Kind::kEq:
    case Predicate::Kind::kIn:
    case Predicate::Kind::kLikePrefix:
      // The bound form is the expanded membership set, so the estimate
      // sees exactly the dictionary codes the prefix matches.
      return cs.InSelectivity(bound.values);
  }
  return 1.0;
}

double CardinalityEstimator::EstimateBaseRows(const Query& q,
                                              AliasId alias) const {
  if (ctx_->card_pins != nullptr) {
    const double pinned = ctx_->card_pins->Lookup(query::MaskOf(alias));
    if (pinned >= 0.0) return pinned;
  }
  const catalog::TableId table_id =
      q.relations[static_cast<size_t>(alias)].table;
  double rows = static_cast<double>(ctx_->table(table_id).row_count());
  for (const Predicate* pred : q.PredicatesFor(alias)) {
    rows *= PredicateSelectivity(q, *pred);
  }
  return std::max(1.0, rows);
}

double CardinalityEstimator::EdgeSelectivity(const Query& q,
                                             const JoinEdge& edge) const {
  // PostgreSQL's eqjoinsel: match the MCV lists of both sides exactly, then
  // assume uniformity over the remaining distincts. This captures joins
  // onto Zipf-skewed foreign keys far better than 1/max(nd).
  const catalog::TableId lt =
      q.relations[static_cast<size_t>(edge.left_alias)].table;
  const catalog::TableId rt =
      q.relations[static_cast<size_t>(edge.right_alias)].table;
  const ColumnStats& ls = ctx_->column_stats(lt, edge.left_column);
  const ColumnStats& rs = ctx_->column_stats(rt, edge.right_column);
  const double scale = ctx_->config.join_selectivity_scale;

  if (ctx_->config.estimator_mode == engine::EstimatorMode::kNoMcvJoins) {
    // Ablation: plain 1/max(nd) with null-fraction correction.
    const double nd = std::max<double>(
        1.0, static_cast<double>(std::max(ls.n_distinct, rs.n_distinct)));
    return ClampJoinSelectivity(scale * ls.NotNullSelectivity() *
                                rs.NotNullSelectivity() / nd);
  }

  double matched = 0.0;
  double matched_l = 0.0;
  double matched_r = 0.0;
  for (size_t i = 0; i < ls.mcv_values.size(); ++i) {
    for (size_t j = 0; j < rs.mcv_values.size(); ++j) {
      if (ls.mcv_values[i] == rs.mcv_values[j]) {
        matched += ls.mcv_freqs[i] * rs.mcv_freqs[j];
        matched_l += ls.mcv_freqs[i];
        matched_r += rs.mcv_freqs[j];
        break;
      }
    }
  }
  const double rest_l =
      std::max(0.0, ls.NotNullSelectivity() - matched_l);
  const double rest_r =
      std::max(0.0, rs.NotNullSelectivity() - matched_r);
  const double rest_nd = std::max(
      1.0, static_cast<double>(std::max(ls.n_distinct, rs.n_distinct)) -
               static_cast<double>(
                   std::min(ls.mcv_values.size(), rs.mcv_values.size())));
  return ClampJoinSelectivity(scale * (matched + rest_l * rest_r / rest_nd));
}

double CardinalityEstimator::EstimateJoinRows(const Query& q,
                                              AliasMask mask) const {
  // Pinned observed truths (adaptive replan) win over everything, including
  // an armed poison schedule: a re-plan must see ground truth for the
  // prefix it already paid for.
  if (ctx_->card_pins != nullptr) {
    const double pinned = ctx_->card_pins->Lookup(mask);
    if (pinned >= 0.0) return pinned;
  }
  double rows = EstimateJoinRowsRaw(q, mask);
  if (faultlib::Current() != nullptr) {
    // Key = (query identity, alias subset): every estimate of the same
    // subset of the same query gets the same decision in any schedule, so
    // poisoned planning is reproducible across worker counts.
    uint64_t key = 1469598103934665603ull;  // FNV-1a over the query id.
    for (const char c : q.id) {
      key ^= static_cast<uint8_t>(c);
      key *= 1099511628211ull;
    }
    key = util::MixSeed(
        key, (static_cast<uint64_t>(static_cast<uint32_t>(q.template_id))
              << 32) |
                 mask);
    const auto fault = LQOLAB_FAULT_POINT_KEYED("stats.estimate", key);
    if (fault.is_poison()) {
      rows = std::max(1.0, rows * fault.poison_scale);
    }
  }
  return rows;
}

double CardinalityEstimator::EstimateJoinRowsRaw(const Query& q,
                                                 AliasMask mask) const {
  if (ctx_->config.estimator_mode == engine::EstimatorMode::kNaiveProduct) {
    // Ablation: the naive full-product formula whose deep-chain collapse
    // degenerates plan choice (DESIGN.md design decision 2).
    double rows = 1.0;
    for (AliasId a = 0; a < q.relation_count(); ++a) {
      if (mask & query::MaskOf(a)) rows *= EstimateBaseRows(q, a);
    }
    for (const JoinEdge& edge : q.edges) {
      if ((mask & query::MaskOf(edge.left_alias)) &&
          (mask & query::MaskOf(edge.right_alias))) {
        // Clamp after every edge, not once at the end: applying a dozen
        // selectivities at once can underflow the running product to 0,
        // which a final max(1, ...) would then freeze at exactly one row
        // regardless of the base cardinalities.
        rows = std::max(1.0, rows * EdgeSelectivity(q, edge));
      }
    }
    return rows;
  }
  // Stepwise estimate in the spirit of calc_joinrel_size_estimate: grow the
  // subset one relation at a time (largest filtered base last, mirroring
  // the oracle's evaluation order), clamping at >= 1 row after every step.
  // This avoids the catastrophic collapse of the naive full-product formula
  // on deep join chains while keeping the independence assumptions that
  // make the estimator realistically wrong on correlated data.
  std::vector<AliasId> members;
  for (AliasId a = 0; a < q.relation_count(); ++a) {
    if (mask & query::MaskOf(a)) members.push_back(a);
  }
  if (members.empty()) return 1.0;
  std::vector<double> base(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    base[i] = EstimateBaseRows(q, members[i]);
  }
  // Start from the smallest base that keeps connectivity as we extend.
  std::vector<char> used(members.size(), 0);
  size_t start = 0;
  for (size_t i = 1; i < members.size(); ++i) {
    if (base[i] < base[start]) start = i;
  }
  used[start] = 1;
  AliasMask covered = query::MaskOf(members[start]);
  double rows = base[start];
  for (size_t step = 1; step < members.size(); ++step) {
    // Next: the smallest unused base connected to the covered set.
    size_t next = members.size();
    for (size_t i = 0; i < members.size(); ++i) {
      if (used[i]) continue;
      if ((q.AdjacencyMask(members[i]) & covered) == 0) continue;
      if (next == members.size() || base[i] < base[next]) next = i;
    }
    if (next == members.size()) {
      // Disconnected subset (cross product): multiply sizes.
      for (size_t i = 0; i < members.size(); ++i) {
        if (!used[i]) {
          rows *= base[i];
          used[i] = 1;
          covered |= query::MaskOf(members[i]);
        }
      }
      break;
    }
    rows *= base[next];
    for (const JoinEdge& edge : q.edges) {
      const AliasMask l = query::MaskOf(edge.left_alias);
      const AliasMask r = query::MaskOf(edge.right_alias);
      const AliasMask next_bit = query::MaskOf(members[next]);
      if (((l & covered) && (r & next_bit)) ||
          ((r & covered) && (l & next_bit))) {
        // Per-edge clamp, as above: cliques connect each new relation to
        // the whole covered set, and multiplying all of those edge
        // selectivities before clamping can underflow to 0.
        rows = std::max(1.0, rows * EdgeSelectivity(q, edge));
      }
    }
    used[next] = 1;
    covered |= query::MaskOf(members[next]);
  }
  return std::max(1.0, rows);
}

}  // namespace lqolab::stats
