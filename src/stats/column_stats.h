#ifndef LQOLAB_STATS_COLUMN_STATS_H_
#define LQOLAB_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/table.h"

namespace lqolab::stats {

/// Per-column statistics in the style of pg_statistic: null fraction,
/// distinct count, most-common values with frequencies, and an equi-depth
/// histogram over the remaining values. Built by Analyze().
struct ColumnStats {
  int64_t row_count = 0;
  int64_t null_count = 0;
  int64_t n_distinct = 0;
  storage::Value min_value = storage::kNullValue;
  storage::Value max_value = storage::kNullValue;

  /// Most common values, sorted by descending frequency.
  std::vector<storage::Value> mcv_values;
  /// Frequency (fraction of all rows) per MCV.
  std::vector<double> mcv_freqs;

  /// Equi-depth histogram bounds over non-null, non-MCV values
  /// (bounds.size() = buckets + 1; empty when too few values).
  std::vector<storage::Value> histogram_bounds;
  /// Fraction of all rows covered by the histogram (non-null, non-MCV).
  double histogram_fraction = 0.0;

  /// Estimated selectivity of `column = value`.
  double EqSelectivity(storage::Value value) const;

  /// Estimated selectivity of `column IN (values)`; values must be distinct.
  double InSelectivity(const std::vector<storage::Value>& values) const;

  /// Estimated selectivity of `lo <= column <= hi`.
  double RangeSelectivity(storage::Value lo, storage::Value hi) const;

  /// Selectivity of IS NULL / IS NOT NULL.
  double NullSelectivity() const;
  double NotNullSelectivity() const;

  double null_fraction() const {
    return row_count == 0 ? 0.0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }
};

/// Statistics for all columns of one table.
struct TableStats {
  std::vector<ColumnStats> columns;
};

/// Number of MCVs and histogram buckets kept by Analyze (PostgreSQL's
/// default_statistics_target is 100; we keep the same shape).
constexpr int32_t kMcvTarget = 50;
constexpr int32_t kHistogramBuckets = 100;

/// Computes statistics for every column of `table` (a full-table ANALYZE;
/// the generated database is small enough not to need sampling).
TableStats Analyze(const storage::Table& table);

}  // namespace lqolab::stats

#endif  // LQOLAB_STATS_COLUMN_STATS_H_
