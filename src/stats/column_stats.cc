#include "stats/column_stats.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace lqolab::stats {

using storage::kNullValue;
using storage::Value;

namespace {

/// Fractional bucket position of `v` in [0, buckets]: the index of the
/// bucket containing v plus linear interpolation inside it. All comparisons
/// happen in doubles — casting v back to Value truncates toward zero, which
/// used to shift negative query bounds into the wrong bucket. Duplicate
/// bounds (duplicate-heavy columns produce runs of equal equi-depth bounds)
/// are handled by always interpolating in the last bucket whose lower bound
/// is <= v, whose width is then strictly positive.
double BucketPosition(const std::vector<Value>& bounds, double v) {
  const double buckets = static_cast<double>(bounds.size() - 1);
  if (v <= static_cast<double>(bounds.front())) return 0.0;
  if (v >= static_cast<double>(bounds.back())) return buckets;
  const auto it = std::upper_bound(
      bounds.begin(), bounds.end(), v,
      [](double value, Value bound) { return value < static_cast<double>(bound); });
  // Everything before `it` is <= v, so b is the last such index; since
  // bounds.front() <= v < bounds.back(), b is in [0, size-2] and
  // bounds[b+1] > v >= bounds[b] gives a strictly positive width.
  const size_t b = static_cast<size_t>(it - bounds.begin()) - 1;
  const double width =
      static_cast<double>(bounds[b + 1]) - static_cast<double>(bounds[b]);
  const double frac =
      width <= 0.0 ? 0.5 : (v - static_cast<double>(bounds[b])) / width;
  const double position =
      static_cast<double>(b) + std::min(1.0, std::max(0.0, frac));
  return std::min(buckets, std::max(0.0, position));
}

/// Fraction of histogram mass inside [lo, hi], linearly interpolated within
/// buckets (PostgreSQL's ineq_histogram_selectivity approach).
double HistogramRangeFraction(const std::vector<Value>& bounds, Value lo,
                              Value hi) {
  if (bounds.size() < 2) return 0.0;
  if (bounds.front() == bounds.back()) {
    // All bounds equal: the histogram is a point mass; inclusive ranges
    // either cover it entirely or not at all.
    return lo <= bounds.front() && bounds.front() <= hi ? 1.0 : 0.0;
  }
  const double buckets = static_cast<double>(bounds.size() - 1);
  const double span = BucketPosition(bounds, static_cast<double>(hi) + 0.5) -
                      BucketPosition(bounds, static_cast<double>(lo) - 0.5);
  return std::min(1.0, std::max(0.0, span / buckets));
}

}  // namespace

double ColumnStats::EqSelectivity(Value value) const {
  if (row_count == 0) return 0.0;
  if (value == kNullValue) return 0.0;  // = NULL never matches
  for (size_t i = 0; i < mcv_values.size(); ++i) {
    if (mcv_values[i] == value) return mcv_freqs[i];
  }
  if (value < min_value || value > max_value) return 0.0;
  // Non-MCV value: spread the histogram mass over the remaining distincts.
  const double remaining_distinct =
      static_cast<double>(n_distinct) - static_cast<double>(mcv_values.size());
  if (remaining_distinct <= 0.0) return 1.0 / static_cast<double>(row_count);
  return histogram_fraction / remaining_distinct;
}

double ColumnStats::InSelectivity(const std::vector<Value>& values) const {
  double total = 0.0;
  for (Value v : values) total += EqSelectivity(v);
  return std::min(1.0, total);
}

double ColumnStats::RangeSelectivity(Value lo, Value hi) const {
  if (row_count == 0 || lo > hi) return 0.0;
  double selectivity = 0.0;
  for (size_t i = 0; i < mcv_values.size(); ++i) {
    if (mcv_values[i] >= lo && mcv_values[i] <= hi) selectivity += mcv_freqs[i];
  }
  selectivity +=
      histogram_fraction * HistogramRangeFraction(histogram_bounds, lo, hi);
  return std::min(1.0, selectivity);
}

double ColumnStats::NullSelectivity() const { return null_fraction(); }

double ColumnStats::NotNullSelectivity() const { return 1.0 - null_fraction(); }

TableStats Analyze(const storage::Table& table) {
  TableStats stats;
  stats.columns.reserve(static_cast<size_t>(table.column_count()));
  for (int32_t c = 0; c < table.column_count(); ++c) {
    const storage::Column& column = table.column(c);
    ColumnStats cs;
    cs.row_count = column.size();

    std::vector<Value> non_null;
    non_null.reserve(static_cast<size_t>(column.size()));
    for (Value v : column.values()) {
      if (v == kNullValue) {
        ++cs.null_count;
      } else {
        non_null.push_back(v);
      }
    }
    if (non_null.empty()) {
      stats.columns.push_back(cs);
      continue;
    }
    std::sort(non_null.begin(), non_null.end());
    cs.min_value = non_null.front();
    cs.max_value = non_null.back();

    // Count distincts and frequencies in one pass over the sorted values.
    std::vector<std::pair<int64_t, Value>> freq;  // (count, value)
    for (size_t i = 0; i < non_null.size();) {
      size_t j = i;
      while (j < non_null.size() && non_null[j] == non_null[i]) ++j;
      freq.emplace_back(static_cast<int64_t>(j - i), non_null[i]);
      i = j;
    }
    cs.n_distinct = static_cast<int64_t>(freq.size());

    // MCVs: values appearing more than ~1.25x the average frequency, capped
    // at kMcvTarget (mirrors analyze.c's "common enough" rule).
    const double avg_freq = static_cast<double>(non_null.size()) /
                            static_cast<double>(freq.size());
    std::sort(freq.begin(), freq.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<bool> is_mcv_rank(freq.size(), false);
    for (size_t i = 0; i < freq.size() && i < kMcvTarget; ++i) {
      if (static_cast<double>(freq[i].first) <= 1.25 * avg_freq && i > 0) break;
      cs.mcv_values.push_back(freq[i].second);
      cs.mcv_freqs.push_back(static_cast<double>(freq[i].first) /
                             static_cast<double>(cs.row_count));
      is_mcv_rank[i] = true;
    }

    // Histogram over non-MCV values.
    std::vector<Value> hist_values;
    if (cs.mcv_values.empty()) {
      hist_values = non_null;
    } else {
      std::vector<Value> mcv_sorted = cs.mcv_values;
      std::sort(mcv_sorted.begin(), mcv_sorted.end());
      for (Value v : non_null) {
        if (!std::binary_search(mcv_sorted.begin(), mcv_sorted.end(), v)) {
          hist_values.push_back(v);
        }
      }
    }
    cs.histogram_fraction = static_cast<double>(hist_values.size()) /
                            static_cast<double>(cs.row_count);
    if (hist_values.size() >= 2) {
      const size_t buckets = std::min<size_t>(
          kHistogramBuckets, hist_values.size() - 1);
      cs.histogram_bounds.reserve(buckets + 1);
      for (size_t b = 0; b <= buckets; ++b) {
        const size_t idx = b * (hist_values.size() - 1) / buckets;
        cs.histogram_bounds.push_back(hist_values[idx]);
      }
    }
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace lqolab::stats
