#ifndef LQOLAB_STATS_CARDINALITY_ESTIMATOR_H_
#define LQOLAB_STATS_CARDINALITY_ESTIMATOR_H_

#include "exec/db_context.h"
#include "query/predicate_binding.h"
#include "query/query.h"

namespace lqolab::stats {

/// PostgreSQL-style cardinality estimator: per-column statistics with
/// attribute-independence and join-uniformity assumptions. The estimator is
/// deliberately "classical" — on the correlated synthetic data it makes the
/// same kinds of errors the paper's PostgreSQL baseline makes on IMDB, which
/// is the gap learned optimizers try to exploit.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const exec::DbContext* ctx);

  /// Selectivity of one predicate on its alias's table.
  double PredicateSelectivity(const query::Query& q,
                              const query::Predicate& pred) const;

  /// Estimated row count of `alias` after all its filters (independence
  /// across predicates; >= 1).
  double EstimateBaseRows(const query::Query& q, query::AliasId alias) const;

  /// Selectivity of an equi-join edge: (1-nullfrac_l)(1-nullfrac_r) /
  /// max(nd_l, nd_r).
  double EdgeSelectivity(const query::Query& q,
                         const query::JoinEdge& edge) const;

  /// Estimated cardinality of the join over a connected subset: product of
  /// base estimates times the selectivity of every internal edge (>= 1).
  ///
  /// Two cross-cutting layers wrap the raw formula:
  ///   1. Pinned truths — when the owning DbContext carries CardinalityPins
  ///      (installed by the adaptive replan loop), a pinned mask returns its
  ///      observed row count directly, bypassing both the formula and any
  ///      armed poison.
  ///   2. The keyed "stats.estimate" fault point — a kPoison rule scales the
  ///      estimate by its poison_scale, deterministically per (query, mask)
  ///      regardless of thread interleaving (FaultInjector::HitKeyed).
  double EstimateJoinRows(const query::Query& q, query::AliasMask mask) const;

 private:
  /// The unpinned, unpoisoned stepwise estimate.
  double EstimateJoinRowsRaw(const query::Query& q,
                             query::AliasMask mask) const;

  const exec::DbContext* ctx_;
};

}  // namespace lqolab::stats

#endif  // LQOLAB_STATS_CARDINALITY_ESTIMATOR_H_
