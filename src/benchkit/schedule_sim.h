#ifndef LQOLAB_BENCHKIT_SCHEDULE_SIM_H_
#define LQOLAB_BENCHKIT_SCHEDULE_SIM_H_

#include <cstdint>
#include <vector>

#include "util/virtual_clock.h"

namespace lqolab::benchkit {

/// Outcome of simulating a work-stealing schedule in virtual time.
struct ScheduleResult {
  /// Virtual wall-clock of the whole job: the time the last worker finishes.
  util::VirtualNanos makespan_ns = 0;
  /// Total virtual time each worker spent executing tasks (idle time at the
  /// end of the schedule is not counted).
  std::vector<util::VirtualNanos> worker_busy_ns;
  /// Tasks executed by a worker other than the one whose static block they
  /// were assigned to.
  int64_t steals = 0;

  /// sum(task costs) / makespan — the parallel speedup an ideal
  /// contention-free machine with `workers` cores would observe.
  double speedup() const;
};

/// Simulates util::ThreadPool's work-stealing discipline over per-task
/// virtual costs and returns the resulting makespan.
///
/// The engine measures queries in virtual nanoseconds (util::VirtualClock),
/// so a wall-clock parallel speedup on the host says more about the machine
/// running the benchmark than about the scheduler — on a single-core CI
/// container it is bounded by 1x regardless of how well work is balanced.
/// This simulation asks the machine-independent question instead: given the
/// per-query virtual costs the engine actually measured, how long would the
/// pool's schedule take on `workers` ideal cores? It is fully deterministic
/// (same costs + same worker count => same makespan) and is what
/// bench/micro_parallel_runner reports and tests/check_bench_gates.sh gates
/// on (docs/benchmarks.md).
///
/// The simulated policy mirrors util::ThreadPool::RunJob: task i starts in
/// the static block [w*n/P, (w+1)*n/P) of worker w; a worker drains its own
/// block front-to-back, then steals from the back of the block with the most
/// remaining tasks (ties to the lowest worker id). Whenever several workers
/// are idle, the one with the lowest id claims first.
ScheduleResult SimulateWorkStealing(
    const std::vector<util::VirtualNanos>& task_ns, int32_t workers);

}  // namespace lqolab::benchkit

#endif  // LQOLAB_BENCHKIT_SCHEDULE_SIM_H_
