#include "benchkit/parallel_runner.h"

#include <utility>
#include <vector>

#include "exec/cost_constants.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::benchkit {

using engine::Database;
using query::Query;
using util::VirtualNanos;

ParallelRunner::ParallelRunner(Database* db, const RunnerOptions& options)
    : parent_(db),
      seed_(options.seed),
      pool_(options.parallelism > 0 ? options.parallelism
                                    : util::ThreadPool::DefaultParallelism()) {
  LQOLAB_CHECK(db != nullptr);
  replicas_.reserve(static_cast<size_t>(pool_.size()));
  for (int32_t w = 0; w < pool_.size(); ++w) {
    replicas_.push_back(db->CloneContextForWorker());
  }
}

ParallelRunner::~ParallelRunner() = default;

void ParallelRunner::ForEachQuery(
    int64_t n, const std::function<void(Database*, int64_t)>& fn) {
  // Worker threads have their own thread-local registry slot (empty by
  // default), so metrics recorded inside the pool would be lost. When the
  // calling thread has a registry installed, give each worker a private
  // one and merge them afterwards: counters are sums and every item runs
  // exactly once, so the totals equal a serial run's regardless of how
  // items were scheduled across workers.
  obs::MetricsRegistry* parent_metrics = obs::MetricsRegistry::Current();
  std::vector<obs::MetricsRegistry> worker_metrics(
      parent_metrics != nullptr ? static_cast<size_t>(pool_.size()) : 0);
  pool_.ParallelFor(n, [this, &fn, &worker_metrics](int32_t worker,
                                                    int64_t item) {
    obs::MetricsScope scope(
        worker_metrics.empty()
            ? nullptr
            : &worker_metrics[static_cast<size_t>(worker)]);
    fn(replicas_[static_cast<size_t>(worker)].get(), item);
  });
  for (const obs::MetricsRegistry& m : worker_metrics) {
    parent_metrics->MergeFrom(m);
  }
}

WorkloadMeasurement MeasureWorkload(Database* db, lqo::LearnedOptimizer* lqo,
                                    const std::vector<Query>& qs,
                                    const Protocol& protocol,
                                    const RunnerOptions& options) {
  ParallelRunner runner(db, options);
  return MeasureWorkload(&runner, lqo, qs, protocol);
}

WorkloadMeasurement MeasureWorkload(ParallelRunner* runner,
                                    lqo::LearnedOptimizer* lqo,
                                    const std::vector<Query>& qs,
                                    const Protocol& protocol) {
  LQOLAB_CHECK_GT(protocol.runs, 0);
  LQOLAB_CHECK_GE(protocol.take, 0);
  LQOLAB_CHECK_LT(protocol.take, protocol.runs);

  WorkloadMeasurement workload;
  workload.method = lqo != nullptr ? lqo->name() : "pglite";
  workload.queries.resize(qs.size());

  // Phase A (serial, parent instance): learned-optimizer inference. LQO
  // nets and their autodiff tape are mutable shared state, and inference
  // may re-plan through the parent's configuration — both are kept off the
  // workers so the prediction sequence matches a fully serial run.
  std::vector<lqo::Prediction> predictions;
  if (lqo != nullptr) {
    predictions.reserve(qs.size());
    for (const Query& q : qs) {
      predictions.push_back(lqo->Plan(q, runner->parent()));
    }
  }

  // Phase B (parallel): per-query replay on worker replicas. Each slot of
  // workload.queries is written by exactly one item, so no locking.
  const uint64_t seed = runner->seed();
  runner->ForEachQuery(
      static_cast<int64_t>(qs.size()),
      [&](Database* worker_db, int64_t i) {
        const Query& q = qs[static_cast<size_t>(i)];
        worker_db->BeginQueryReplay(seed, q);
        QueryMeasurement measurement;
        optimizer::PhysicalPlan plan;
        VirtualNanos planning_ns = 0;
        if (lqo != nullptr) {
          const lqo::Prediction& prediction =
              predictions[static_cast<size_t>(i)];
          measurement.inference_ns = prediction.inference_ns;
          plan = prediction.plan;
          // Forced plans skip join-order search in the engine; hint-based
          // methods (Bao) report their per-hint-set plannings instead.
          planning_ns =
              prediction.planning_ns > 0
                  ? prediction.planning_ns
                  : static_cast<VirtualNanos>(q.relation_count()) *
                        exec::cost::kPlanPerRelationNs;
        } else {
          // Native planning is const over (storage, stats, config), all of
          // which the replica shares with the parent: same plan, same
          // modeled planning time on every worker.
          const Database::Planned planned = worker_db->PlanQuery(q);
          plan = planned.plan;
          planning_ns = planned.planning_ns;
        }
        workload.queries[static_cast<size_t>(i)] = internal::MeasureRuns(
            worker_db, q, plan, planning_ns, protocol, std::move(measurement));
      });
  return workload;
}

}  // namespace lqolab::benchkit
