#include "benchkit/schedule_sim.h"

#include <algorithm>

#include "util/check.h"

namespace lqolab::benchkit {

using util::VirtualNanos;

double ScheduleResult::speedup() const {
  if (makespan_ns <= 0) return 1.0;
  VirtualNanos total = 0;
  for (VirtualNanos busy : worker_busy_ns) total += busy;
  return static_cast<double>(total) / static_cast<double>(makespan_ns);
}

ScheduleResult SimulateWorkStealing(const std::vector<VirtualNanos>& task_ns,
                                    int32_t workers) {
  LQOLAB_CHECK_GT(workers, 0);
  ScheduleResult result;
  result.worker_busy_ns.assign(static_cast<size_t>(workers), 0);
  if (task_ns.empty()) return result;

  const int64_t n = static_cast<int64_t>(task_ns.size());
  const int64_t p = workers;
  // Static block [lo, hi) per worker, same split as ThreadPool::ParallelFor.
  std::vector<int64_t> lo(static_cast<size_t>(p)), hi(static_cast<size_t>(p));
  for (int64_t w = 0; w < p; ++w) {
    lo[static_cast<size_t>(w)] = w * n / p;
    hi[static_cast<size_t>(w)] = (w + 1) * n / p;
  }

  // Event simulation: repeatedly advance the worker whose virtual clock is
  // lowest (ties to the lowest id) and have it claim its next task. Claimed
  // tasks run to completion, so remaining > 0 implies some block is
  // non-empty and a claim always succeeds.
  std::vector<VirtualNanos> clock(static_cast<size_t>(p), 0);
  int64_t remaining = n;
  while (remaining > 0) {
    int32_t next = 0;
    for (int32_t w = 1; w < workers; ++w) {
      if (clock[static_cast<size_t>(w)] < clock[static_cast<size_t>(next)]) {
        next = w;
      }
    }
    const size_t wi = static_cast<size_t>(next);
    int64_t task;
    if (lo[wi] < hi[wi]) {
      task = lo[wi]++;  // own block, front first
    } else {
      // Steal from the back of the fullest block (ties to the lowest id).
      int32_t victim = -1;
      int64_t best = 0;
      for (int32_t v = 0; v < workers; ++v) {
        const int64_t left = hi[static_cast<size_t>(v)] -
                             lo[static_cast<size_t>(v)];
        if (left > best) {
          best = left;
          victim = v;
        }
      }
      LQOLAB_CHECK_GE(victim, 0);
      task = --hi[static_cast<size_t>(victim)];
      ++result.steals;
    }
    const VirtualNanos cost = task_ns[static_cast<size_t>(task)];
    clock[wi] += cost;
    result.worker_busy_ns[wi] += cost;
    --remaining;
  }
  result.makespan_ns =
      *std::max_element(clock.begin(), clock.end());
  return result;
}

}  // namespace lqolab::benchkit
