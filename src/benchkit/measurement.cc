#include "benchkit/measurement.h"

#include <algorithm>

#include "exec/cost_constants.h"
#include "util/check.h"
#include "util/statistics.h"

namespace lqolab::benchkit {

using engine::Database;
using engine::QueryRun;
using query::Query;
using util::VirtualNanos;

namespace internal {

QueryMeasurement MeasureRuns(Database* db, const Query& q,
                             const optimizer::PhysicalPlan& plan,
                             VirtualNanos planning_ns, const Protocol& protocol,
                             QueryMeasurement measurement) {
  LQOLAB_CHECK_GT(protocol.runs, 0);
  LQOLAB_CHECK_GE(protocol.take, 0);
  LQOLAB_CHECK_LT(protocol.take, protocol.runs);
  measurement.query_id = q.id;
  measurement.joins = q.join_count();
  measurement.planning_ns = planning_ns;
  for (int32_t r = 0; r < protocol.runs; ++r) {
    QueryRun run = db->ExecutePlan(q, plan, planning_ns);
    measurement.run_execution_ns.push_back(run.execution_ns);
    if (r == protocol.take) {
      measurement.execution_ns = run.execution_ns;
      measurement.timed_out = run.timed_out;
      measurement.result_rows = run.result_rows;
      measurement.node_rows = std::move(run.node_rows);
    }
  }
  return measurement;
}

}  // namespace internal

using internal::MeasureRuns;

QueryMeasurement MeasureNative(Database* db, const Query& q,
                               const Protocol& protocol) {
  const Database::Planned planned = db->PlanQuery(q);
  QueryMeasurement measurement;
  return MeasureRuns(db, q, planned.plan, planned.planning_ns, protocol,
                     std::move(measurement));
}

QueryMeasurement MeasureLqo(Database* db, lqo::LearnedOptimizer* lqo,
                            const Query& q, const Protocol& protocol) {
  const lqo::Prediction prediction = lqo->Plan(q, db);
  QueryMeasurement measurement;
  measurement.inference_ns = prediction.inference_ns;
  // Forced plans skip join-order search in the engine; the hint-based
  // methods (Bao) report their per-hint-set plannings here instead.
  const VirtualNanos planning =
      prediction.planning_ns > 0
          ? prediction.planning_ns
          : static_cast<VirtualNanos>(q.relation_count()) *
                exec::cost::kPlanPerRelationNs;
  return MeasureRuns(db, q, prediction.plan, planning, protocol,
                     std::move(measurement));
}

WorkloadMeasurement MeasureWorkloadNative(Database* db,
                                          const std::vector<Query>& qs,
                                          const Protocol& protocol) {
  WorkloadMeasurement workload;
  workload.method = "pglite";
  for (const Query& q : qs) {
    workload.queries.push_back(MeasureNative(db, q, protocol));
  }
  return workload;
}

WorkloadMeasurement MeasureWorkloadLqo(Database* db,
                                       lqo::LearnedOptimizer* lqo,
                                       const std::vector<Query>& qs,
                                       const Protocol& protocol) {
  WorkloadMeasurement workload;
  workload.method = lqo->name();
  for (const Query& q : qs) {
    workload.queries.push_back(MeasureLqo(db, lqo, q, protocol));
  }
  return workload;
}

VirtualNanos WorkloadMeasurement::total_inference_ns() const {
  VirtualNanos total = 0;
  for (const auto& q : queries) total += q.inference_ns;
  return total;
}

VirtualNanos WorkloadMeasurement::total_planning_ns() const {
  VirtualNanos total = 0;
  for (const auto& q : queries) total += q.planning_ns;
  return total;
}

VirtualNanos WorkloadMeasurement::total_execution_ns() const {
  VirtualNanos total = 0;
  for (const auto& q : queries) total += q.execution_ns;
  return total;
}

VirtualNanos WorkloadMeasurement::total_end_to_end_ns() const {
  return total_inference_ns() + total_planning_ns() + total_execution_ns();
}

int32_t WorkloadMeasurement::timeout_count() const {
  int32_t count = 0;
  for (const auto& q : queries) count += q.timed_out ? 1 : 0;
  return count;
}

void WriteWorkloadTrace(const WorkloadMeasurement& workload,
                        obs::TraceWriter* trace) {
  {
    obs::JsonObject record;
    record.Set("type", "workload");
    record.Set("method", workload.method);
    record.Set("split", workload.split);
    record.Set("queries", static_cast<int64_t>(workload.queries.size()));
    record.Set("total_inference_ns", workload.total_inference_ns());
    record.Set("total_planning_ns", workload.total_planning_ns());
    record.Set("total_execution_ns", workload.total_execution_ns());
    record.Set("total_end_to_end_ns", workload.total_end_to_end_ns());
    record.Set("timeouts", static_cast<int64_t>(workload.timeout_count()));
    trace->Write(record);
  }
  for (const QueryMeasurement& q : workload.queries) {
    obs::JsonObject record;
    record.Set("type", "query");
    record.Set("method", workload.method);
    record.Set("query", q.query_id);
    record.Set("joins", q.joins);
    record.Set("inference_ns", q.inference_ns);
    record.Set("planning_ns", q.planning_ns);
    record.Set("execution_ns", q.execution_ns);
    record.Set("end_to_end_ns", q.end_to_end_ns());
    record.Set("timed_out", q.timed_out);
    record.Set("result_rows", q.result_rows);
    std::string runs = "[";
    for (size_t r = 0; r < q.run_execution_ns.size(); ++r) {
      if (r > 0) runs += ",";
      runs += std::to_string(q.run_execution_ns[r]);
    }
    runs += "]";
    record.SetRaw("run_execution_ns", runs);
    trace->Write(record);
  }
  const lqo::TrainReport& train = workload.train_report;
  for (const lqo::EpisodeStats& e : train.episodes) {
    obs::JsonObject record;
    record.Set("type", "episode");
    record.Set("method", workload.method);
    record.Set("episode", e.episode);
    record.Set("loss", e.loss);
    record.Set("plans_executed", e.plans_executed);
    record.Set("execution_ns", e.execution_ns);
    record.Set("nn_updates", e.nn_updates);
    record.Set("nn_evals", e.nn_evals);
    record.Set("training_time_ns", e.training_time_ns);
    trace->Write(record);
  }
  if (train.training_time_ns > 0 || train.plans_executed > 0 ||
      train.nn_updates > 0) {
    obs::JsonObject record;
    record.Set("type", "train");
    record.Set("method", workload.method);
    record.Set("training_time_ns", train.training_time_ns);
    record.Set("plans_executed", train.plans_executed);
    record.Set("nn_updates", train.nn_updates);
    record.Set("nn_evals", train.nn_evals);
    record.Set("planner_calls", train.planner_calls);
    record.Set("execution_ns", train.execution_ns);
    record.Set("episodes", static_cast<int64_t>(train.episodes.size()));
    trace->Write(record);
  }
}

double WorkloadMeasurement::execution_ci95_ns() const {
  if (queries.empty()) return 0.0;
  // Totals per run index, over post-warm-up runs (>= take index).
  const size_t runs = queries.front().run_execution_ns.size();
  std::vector<double> totals;
  for (size_t r = 2; r < runs; ++r) {
    double total = 0.0;
    for (const auto& q : queries) {
      if (r < q.run_execution_ns.size()) {
        total += static_cast<double>(q.run_execution_ns[r]);
      }
    }
    totals.push_back(total);
  }
  if (totals.size() < 2) {
    // Fall back to per-query variance across the last two runs.
    std::vector<double> diffs;
    for (const auto& q : queries) {
      if (q.run_execution_ns.size() >= 2) {
        diffs.push_back(static_cast<double>(
            q.run_execution_ns.back() -
            q.run_execution_ns[q.run_execution_ns.size() - 2]));
      }
    }
    return util::StdDev(diffs) * 1.96;
  }
  return util::ConfidenceInterval95(totals);
}

}  // namespace lqolab::benchkit
