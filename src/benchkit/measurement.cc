#include "benchkit/measurement.h"

#include <algorithm>

#include "exec/cost_constants.h"
#include "util/check.h"
#include "util/statistics.h"

namespace lqolab::benchkit {

using engine::Database;
using engine::QueryRun;
using query::Query;
using util::VirtualNanos;

namespace internal {

QueryMeasurement MeasureRuns(Database* db, const Query& q,
                             const optimizer::PhysicalPlan& plan,
                             VirtualNanos planning_ns, const Protocol& protocol,
                             QueryMeasurement measurement) {
  LQOLAB_CHECK_GT(protocol.runs, 0);
  LQOLAB_CHECK_GE(protocol.take, 0);
  LQOLAB_CHECK_LT(protocol.take, protocol.runs);
  measurement.query_id = q.id;
  measurement.joins = q.join_count();
  measurement.planning_ns = planning_ns;
  for (int32_t r = 0; r < protocol.runs; ++r) {
    QueryRun run = db->ExecutePlan(q, plan, planning_ns);
    measurement.run_execution_ns.push_back(run.execution_ns);
    if (r == protocol.take) {
      measurement.execution_ns = run.execution_ns;
      measurement.timed_out = run.timed_out;
      measurement.result_rows = run.result_rows;
      measurement.node_rows = std::move(run.node_rows);
    }
  }
  return measurement;
}

}  // namespace internal

using internal::MeasureRuns;

QueryMeasurement MeasureNative(Database* db, const Query& q,
                               const Protocol& protocol) {
  const Database::Planned planned = db->PlanQuery(q);
  QueryMeasurement measurement;
  return MeasureRuns(db, q, planned.plan, planned.planning_ns, protocol,
                     std::move(measurement));
}

QueryMeasurement MeasureLqo(Database* db, lqo::LearnedOptimizer* lqo,
                            const Query& q, const Protocol& protocol) {
  const lqo::Prediction prediction = lqo->Plan(q, db);
  QueryMeasurement measurement;
  measurement.inference_ns = prediction.inference_ns;
  // Forced plans skip join-order search in the engine; the hint-based
  // methods (Bao) report their per-hint-set plannings here instead.
  const VirtualNanos planning =
      prediction.planning_ns > 0
          ? prediction.planning_ns
          : static_cast<VirtualNanos>(q.relation_count()) *
                exec::cost::kPlanPerRelationNs;
  return MeasureRuns(db, q, prediction.plan, planning, protocol,
                     std::move(measurement));
}

WorkloadMeasurement MeasureWorkloadNative(Database* db,
                                          const std::vector<Query>& qs,
                                          const Protocol& protocol) {
  WorkloadMeasurement workload;
  workload.method = "pglite";
  for (const Query& q : qs) {
    workload.queries.push_back(MeasureNative(db, q, protocol));
  }
  return workload;
}

WorkloadMeasurement MeasureWorkloadLqo(Database* db,
                                       lqo::LearnedOptimizer* lqo,
                                       const std::vector<Query>& qs,
                                       const Protocol& protocol) {
  WorkloadMeasurement workload;
  workload.method = lqo->name();
  for (const Query& q : qs) {
    workload.queries.push_back(MeasureLqo(db, lqo, q, protocol));
  }
  return workload;
}

VirtualNanos WorkloadMeasurement::total_inference_ns() const {
  VirtualNanos total = 0;
  for (const auto& q : queries) total += q.inference_ns;
  return total;
}

VirtualNanos WorkloadMeasurement::total_planning_ns() const {
  VirtualNanos total = 0;
  for (const auto& q : queries) total += q.planning_ns;
  return total;
}

VirtualNanos WorkloadMeasurement::total_execution_ns() const {
  VirtualNanos total = 0;
  for (const auto& q : queries) total += q.execution_ns;
  return total;
}

VirtualNanos WorkloadMeasurement::total_end_to_end_ns() const {
  return total_inference_ns() + total_planning_ns() + total_execution_ns();
}

int32_t WorkloadMeasurement::timeout_count() const {
  int32_t count = 0;
  for (const auto& q : queries) count += q.timed_out ? 1 : 0;
  return count;
}

double WorkloadMeasurement::execution_ci95_ns() const {
  if (queries.empty()) return 0.0;
  // Totals per run index, over post-warm-up runs (>= take index).
  const size_t runs = queries.front().run_execution_ns.size();
  std::vector<double> totals;
  for (size_t r = 2; r < runs; ++r) {
    double total = 0.0;
    for (const auto& q : queries) {
      if (r < q.run_execution_ns.size()) {
        total += static_cast<double>(q.run_execution_ns[r]);
      }
    }
    totals.push_back(total);
  }
  if (totals.size() < 2) {
    // Fall back to per-query variance across the last two runs.
    std::vector<double> diffs;
    for (const auto& q : queries) {
      if (q.run_execution_ns.size() >= 2) {
        diffs.push_back(static_cast<double>(
            q.run_execution_ns.back() -
            q.run_execution_ns[q.run_execution_ns.size() - 2]));
      }
    }
    return util::StdDev(diffs) * 1.96;
  }
  return util::ConfidenceInterval95(totals);
}

}  // namespace lqolab::benchkit
