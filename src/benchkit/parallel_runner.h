#ifndef LQOLAB_BENCHKIT_PARALLEL_RUNNER_H_
#define LQOLAB_BENCHKIT_PARALLEL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "benchkit/measurement.h"
#include "engine/database.h"
#include "lqo/interface.h"
#include "query/query.h"
#include "util/thread_pool.h"

namespace lqolab::benchkit {

/// Knobs of the parallel measurement path.
struct RunnerOptions {
  /// Worker count; 0 means util::ThreadPool::DefaultParallelism()
  /// (hardware_concurrency).
  int32_t parallelism = 0;
  /// Global replay seed. Every query's noise stream derives from
  /// MixSeed(seed, QueryFingerprint(q)), so results depend on this value
  /// and the query alone — never on worker count or scheduling.
  uint64_t seed = 42;
};

/// Fans queries of a workload across a fixed-size worker pool with
/// work-stealing scheduling (util::ThreadPool): each worker starts on a
/// static block of the query range and idle workers steal from the back of
/// still-loaded blocks, so a few expensive straggler queries cannot idle the
/// rest of the pool. Each worker owns an isolated replica of the execution
/// substrate — an O(1) copy-on-write DbContext view (shared immutable
/// engine::SharedContext, private buffer cache), oracle, planner, executor
/// and noise stream — so a query's measurement is a pure function of
/// (storage, config, query, seed). That makes results bit-identical to the
/// serial path regardless of thread count or scheduling; see
/// docs/parallelism.md for the full determinism contract.
class ParallelRunner {
 public:
  /// Builds `parallelism` worker replicas of `db` (which must outlive the
  /// runner and is not touched by ForEachQuery).
  ParallelRunner(engine::Database* db, const RunnerOptions& options);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int32_t parallelism() const { return pool_.size(); }
  uint64_t seed() const { return seed_; }
  engine::Database* parent() const { return parent_; }
  /// Queries executed by a worker other than the one whose static block
  /// they started in, over this runner's lifetime (util::ThreadPool's
  /// work-stealing counter). Observability only — results do not depend on
  /// which worker ran a query.
  int64_t steals() const { return pool_.steals(); }

  /// Runs fn(worker_replica, item) exactly once for every item in [0, n)
  /// and blocks until all completed. At most one item runs on a given
  /// replica at a time. `fn` must only touch the replica it is handed (plus
  /// item-private state) and must put the replica into its canonical state
  /// itself (Database::BeginQueryReplay) — replicas carry cache state from
  /// whatever item they ran last.
  void ForEachQuery(int64_t n,
                    const std::function<void(engine::Database*, int64_t)>& fn);

 private:
  engine::Database* parent_;
  uint64_t seed_;
  std::vector<std::unique_ptr<engine::Database>> replicas_;
  util::ThreadPool pool_;
};

/// Unified workload measurement with deterministic replay. Plans every
/// query (serially through `lqo` when given — learned optimizers mutate
/// model state during inference — or on the worker replicas for the native
/// path) and executes the protocol's runs on worker replicas, each query
/// starting from the canonical replay state (cold caches, derived noise
/// stream). Results are bit-identical for any `options.parallelism`,
/// including 1; they intentionally differ from the order-dependent
/// shared-cache numbers of MeasureWorkloadNative/Lqo.
WorkloadMeasurement MeasureWorkload(engine::Database* db,
                                    lqo::LearnedOptimizer* lqo,
                                    const std::vector<query::Query>& qs,
                                    const Protocol& protocol,
                                    const RunnerOptions& options = {});

/// Same, reusing an existing runner (and its worker replicas) across
/// multiple workloads; `lqo` may be nullptr for the native optimizer.
WorkloadMeasurement MeasureWorkload(ParallelRunner* runner,
                                    lqo::LearnedOptimizer* lqo,
                                    const std::vector<query::Query>& qs,
                                    const Protocol& protocol);

}  // namespace lqolab::benchkit

#endif  // LQOLAB_BENCHKIT_PARALLEL_RUNNER_H_
