#ifndef LQOLAB_BENCHKIT_MEASUREMENT_H_
#define LQOLAB_BENCHKIT_MEASUREMENT_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "lqo/interface.h"
#include "obs/trace.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::benchkit {

/// The paper's measurement protocol (§7.3): execute each query `runs` times
/// in succession on a hot cache and report the `take`-th execution (0-based;
/// default: 3 runs, take the 3rd).
struct Protocol {
  int32_t runs = 3;
  int32_t take = 2;
};

/// Timing decomposition of one measured query (§8.2.1).
struct QueryMeasurement {
  std::string query_id;
  int32_t joins = 0;
  util::VirtualNanos inference_ns = 0;
  util::VirtualNanos planning_ns = 0;
  util::VirtualNanos execution_ns = 0;  ///< the `take`-th run
  bool timed_out = false;
  int64_t result_rows = 0;
  /// Execution time of every run, in order.
  std::vector<util::VirtualNanos> run_execution_ns;
  /// True output rows per plan node of the `take`-th run (parallel to the
  /// executed plan's node array; -1 where the oracle count overflowed).
  std::vector<int64_t> node_rows;

  util::VirtualNanos end_to_end_ns() const {
    return inference_ns + planning_ns + execution_ns;
  }
};

/// Aggregate over a query set.
struct WorkloadMeasurement {
  std::string method;
  std::string split;
  std::vector<QueryMeasurement> queries;
  lqo::TrainReport train_report;

  util::VirtualNanos total_inference_ns() const;
  util::VirtualNanos total_planning_ns() const;
  util::VirtualNanos total_execution_ns() const;
  util::VirtualNanos total_end_to_end_ns() const;
  int32_t timeout_count() const;
  /// 95% CI half-width of the total execution time, from the per-run totals
  /// of the post-warm-up runs.
  double execution_ci95_ns() const;
};

/// Measures the native optimizer on one query.
QueryMeasurement MeasureNative(engine::Database* db, const query::Query& q,
                               const Protocol& protocol);

/// Measures a learned optimizer on one query (plan once, execute per the
/// protocol through the forced-plan path).
QueryMeasurement MeasureLqo(engine::Database* db, lqo::LearnedOptimizer* lqo,
                            const query::Query& q, const Protocol& protocol);

/// Runs a full query set with the native optimizer.
WorkloadMeasurement MeasureWorkloadNative(engine::Database* db,
                                          const std::vector<query::Query>& qs,
                                          const Protocol& protocol);

/// Runs a full query set with a learned optimizer (already trained).
WorkloadMeasurement MeasureWorkloadLqo(engine::Database* db,
                                       lqo::LearnedOptimizer* lqo,
                                       const std::vector<query::Query>& qs,
                                       const Protocol& protocol);

/// Appends a measured workload to a JSONL trace: one "workload" summary
/// record, one "query" record per measured query, then one "episode" record
/// per training episode and a "train" summary when the workload carries a
/// TrainReport. Schema reference in docs/observability.md.
void WriteWorkloadTrace(const WorkloadMeasurement& workload,
                        obs::TraceWriter* trace);

namespace internal {
/// The shared run loop of the protocol: validates `protocol`, executes
/// `plan` `protocol.runs` times and fills the execution fields of
/// `measurement`. Used by both the serial entry points above and the
/// parallel runner (benchkit/parallel_runner.h).
QueryMeasurement MeasureRuns(engine::Database* db, const query::Query& q,
                             const optimizer::PhysicalPlan& plan,
                             util::VirtualNanos planning_ns,
                             const Protocol& protocol,
                             QueryMeasurement measurement);
}  // namespace internal

}  // namespace lqolab::benchkit

#endif  // LQOLAB_BENCHKIT_MEASUREMENT_H_
