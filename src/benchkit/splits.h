#ifndef LQOLAB_BENCHKIT_SPLITS_H_
#define LQOLAB_BENCHKIT_SPLITS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"

namespace lqolab::benchkit {

/// The paper's three train/test split samplers (§7.2, Fig. 3), in
/// increasing difficulty order.
enum class SplitKind {
  kLeaveOneOut,  ///< one variant of each base query in the test set ("easy")
  kRandom,       ///< uniform over all queries ("medium")
  kBaseQuery,    ///< whole base-query families held out ("hard")
};

const char* SplitKindName(SplitKind kind);

/// A concrete train/test assignment over a workload.
struct Split {
  std::string name;  ///< e.g. "base_query_1"
  SplitKind kind = SplitKind::kRandom;
  std::vector<int32_t> train_indices;
  std::vector<int32_t> test_indices;
};

/// Samples one split. `test_fraction` applies to kRandom and kBaseQuery
/// (the paper uses 80/20); kLeaveOneOut ignores it (exactly one variant per
/// family is held out). Deterministic in `seed`.
Split SampleSplit(const std::vector<query::Query>& workload, SplitKind kind,
                  double test_fraction, uint64_t seed);

/// The paper's evaluation grid: 3 splits per sampler (9 total), shared by
/// every method.
std::vector<Split> PaperSplits(const std::vector<query::Query>& workload);

/// Materializes the query lists of a split.
std::vector<query::Query> SelectQueries(
    const std::vector<query::Query>& workload,
    const std::vector<int32_t>& indices);

}  // namespace lqolab::benchkit

#endif  // LQOLAB_BENCHKIT_SPLITS_H_
