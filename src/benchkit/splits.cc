#include "benchkit/splits.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/rng.h"

namespace lqolab::benchkit {

using query::Query;

const char* SplitKindName(SplitKind kind) {
  switch (kind) {
    case SplitKind::kLeaveOneOut: return "leave_one_out";
    case SplitKind::kRandom: return "random";
    case SplitKind::kBaseQuery: return "base_query";
  }
  return "?";
}

Split SampleSplit(const std::vector<Query>& workload, SplitKind kind,
                  double test_fraction, uint64_t seed) {
  LQOLAB_CHECK(!workload.empty());
  util::Rng rng(seed);
  Split split;
  split.kind = kind;

  // Group query indices by base-query family.
  std::map<int32_t, std::vector<int32_t>> families;
  for (size_t i = 0; i < workload.size(); ++i) {
    families[workload[i].template_id].push_back(static_cast<int32_t>(i));
  }

  std::vector<char> in_test(workload.size(), 0);
  switch (kind) {
    case SplitKind::kLeaveOneOut: {
      for (const auto& [family, members] : families) {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1));
        in_test[static_cast<size_t>(members[pick])] = 1;
      }
      break;
    }
    case SplitKind::kRandom: {
      std::vector<int32_t> order(workload.size());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int32_t>(i);
      }
      rng.Shuffle(&order);
      const size_t test_count = static_cast<size_t>(
          test_fraction * static_cast<double>(workload.size()) + 0.5);
      for (size_t i = 0; i < test_count; ++i) {
        in_test[static_cast<size_t>(order[i])] = 1;
      }
      break;
    }
    case SplitKind::kBaseQuery: {
      std::vector<int32_t> family_ids;
      for (const auto& [family, members] : families) {
        family_ids.push_back(family);
      }
      rng.Shuffle(&family_ids);
      const size_t target = static_cast<size_t>(
          test_fraction * static_cast<double>(workload.size()) + 0.5);
      size_t assigned = 0;
      for (int32_t family : family_ids) {
        if (assigned >= target) break;
        for (int32_t idx : families[family]) {
          in_test[static_cast<size_t>(idx)] = 1;
          ++assigned;
        }
      }
      break;
    }
  }

  for (size_t i = 0; i < workload.size(); ++i) {
    if (in_test[i]) {
      split.test_indices.push_back(static_cast<int32_t>(i));
    } else {
      split.train_indices.push_back(static_cast<int32_t>(i));
    }
  }
  LQOLAB_CHECK(!split.train_indices.empty());
  LQOLAB_CHECK(!split.test_indices.empty());
  return split;
}

std::vector<Split> PaperSplits(const std::vector<Query>& workload) {
  std::vector<Split> splits;
  const SplitKind kinds[] = {SplitKind::kLeaveOneOut, SplitKind::kRandom,
                             SplitKind::kBaseQuery};
  for (SplitKind kind : kinds) {
    for (int32_t i = 1; i <= 3; ++i) {
      Split split = SampleSplit(workload, kind, 0.2,
                                0x5eed0000ULL + static_cast<uint64_t>(i) +
                                    (static_cast<uint64_t>(kind) << 8));
      split.name =
          std::string(SplitKindName(kind)) + "_" + std::to_string(i);
      splits.push_back(std::move(split));
    }
  }
  return splits;
}

std::vector<Query> SelectQueries(const std::vector<Query>& workload,
                                 const std::vector<int32_t>& indices) {
  std::vector<Query> out;
  out.reserve(indices.size());
  for (int32_t i : indices) {
    out.push_back(workload[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace lqolab::benchkit
