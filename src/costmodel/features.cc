#include "costmodel/features.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lqolab::costmodel {

using optimizer::PhysicalPlan;
using optimizer::PlanNode;
using query::Query;

namespace {

/// Depth of the subtree rooted at `node` (leaves are depth 1).
int32_t SubtreeDepth(const PhysicalPlan& plan, int32_t node) {
  const PlanNode& n = plan.node(node);
  if (n.type == PlanNode::Type::kScan) return 1;
  return 1 + std::max(SubtreeDepth(plan, n.left), SubtreeDepth(plan, n.right));
}

}  // namespace

PlanFeaturizer::PlanFeaturizer(const exec::DbContext* ctx,
                               const stats::CardinalityEstimator* estimator)
    : estimator_(estimator),
      encoder_(ctx, estimator, lqo::PlanEncodingStyle::kCardinalityOnly) {
  LQOLAB_CHECK(ctx != nullptr);
  LQOLAB_CHECK(estimator != nullptr);
}

int32_t PlanFeaturizer::dim() const {
  return 3 * encoder_.node_dim() + kShapeFeatures;
}

std::vector<float> PlanFeaturizer::Featurize(const Query& q,
                                             const PhysicalPlan& plan) const {
  const int32_t node_dim = encoder_.node_dim();
  std::vector<float> features(static_cast<size_t>(dim()), 0.0f);
  LQOLAB_CHECK(!plan.empty());

  // Tree aggregation: [0, d) element-wise sum over all nodes, [d, 2d)
  // element-wise max, [2d, 3d) the root node's own encoding.
  int32_t bushy_joins = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(plan.nodes.size()); ++i) {
    const std::vector<float> enc = encoder_.EncodeNode(q, plan, i);
    for (int32_t f = 0; f < node_dim; ++f) {
      features[static_cast<size_t>(f)] += enc[static_cast<size_t>(f)];
      float& slot = features[static_cast<size_t>(node_dim + f)];
      slot = std::max(slot, enc[static_cast<size_t>(f)]);
    }
    const PlanNode& node = plan.node(i);
    if (node.type == PlanNode::Type::kJoin &&
        plan.node(node.right).type == PlanNode::Type::kJoin) {
      ++bushy_joins;
    }
  }
  const std::vector<float> root_enc = encoder_.EncodeNode(q, plan, plan.root);
  for (int32_t f = 0; f < node_dim; ++f) {
    features[static_cast<size_t>(2 * node_dim + f)] =
        root_enc[static_cast<size_t>(f)];
  }

  // Join-graph shape block.
  float* shape = &features[static_cast<size_t>(3 * node_dim)];
  shape[0] = static_cast<float>(q.relation_count()) / 16.0f;
  shape[1] = static_cast<float>(plan.join_count()) / 16.0f;
  shape[2] = static_cast<float>(SubtreeDepth(plan, plan.root)) / 16.0f;
  shape[3] = plan.IsLeftDeep() ? 1.0f : 0.0f;
  shape[4] = static_cast<float>(bushy_joins) / 8.0f;
  const double root_rows =
      estimator_->EstimateJoinRows(q, plan.node(plan.root).mask);
  shape[5] =
      static_cast<float>(std::log1p(std::max(0.0, root_rows)) / 20.0);
  return features;
}

}  // namespace lqolab::costmodel
