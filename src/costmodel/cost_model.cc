#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace lqolab::costmodel {

double QError(double predicted, double actual) {
  if (!std::isfinite(predicted) || !std::isfinite(actual) ||
      predicted <= 0.0 || actual <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(predicted / actual, actual / predicted);
}

double MedianSampleQError(const PlanCostModel& model,
                          const std::vector<CostSample>& samples) {
  if (samples.empty()) return std::numeric_limits<double>::infinity();
  std::vector<double> errors;
  errors.reserve(samples.size());
  for (const CostSample& s : samples) {
    errors.push_back(QError(model.PredictSampleNs(s),
                            static_cast<double>(s.actual_ns)));
  }
  std::sort(errors.begin(), errors.end());
  const size_t n = errors.size();
  // Lower median: deterministic and never averages with an infinity.
  return errors[(n - 1) / 2];
}

AnalyticCostModel::AnalyticCostModel(const optimizer::Planner* planner)
    : planner_(planner) {
  LQOLAB_CHECK(planner != nullptr);
}

double AnalyticCostModel::PredictNs(const query::Query& q,
                                    const optimizer::PhysicalPlan& plan) const {
  return planner_->EstimatePlanCost(q, plan) * ns_per_unit_.load();
}

double AnalyticCostModel::PredictSampleNs(const CostSample& sample) const {
  return sample.analytic_cost * ns_per_unit_.load();
}

void AnalyticCostModel::Calibrate(const std::vector<CostSample>& samples) {
  std::vector<double> ratios;
  ratios.reserve(samples.size());
  for (const CostSample& s : samples) {
    if (s.analytic_cost > 0.0 && s.actual_ns > 0) {
      ratios.push_back(static_cast<double>(s.actual_ns) / s.analytic_cost);
    }
  }
  if (ratios.empty()) return;
  std::sort(ratios.begin(), ratios.end());
  ns_per_unit_.store(ratios[(ratios.size() - 1) / 2]);
  calibrated_.store(true);
}

std::shared_ptr<const PlanCostModel> SelectBackend(
    const engine::DbConfig& config,
    std::shared_ptr<const PlanCostModel> analytic,
    std::shared_ptr<const PlanCostModel> learned) {
  if (config.cost_model_backend == engine::CostModelBackend::kLearnedMlp) {
    LQOLAB_CHECK(learned != nullptr);
    return learned;
  }
  return analytic;
}

}  // namespace lqolab::costmodel
