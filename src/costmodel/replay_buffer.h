#ifndef LQOLAB_COSTMODEL_REPLAY_BUFFER_H_
#define LQOLAB_COSTMODEL_REPLAY_BUFFER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "costmodel/cost_model.h"

namespace lqolab::costmodel {

struct ReplayBufferOptions {
  /// Samples retained; when full, the smallest-sequence (oldest-admitted)
  /// sample is dropped first.
  int64_t capacity = 1024;
};

/// Bounded, deterministic replay buffer of harvested cost samples. Samples
/// key on CostSample::sequence (the admission ticket id), and retention
/// keeps the largest sequences — so after a drain the retained *set* is a
/// pure function of what was admitted, independent of the completion order
/// or worker count under which samples arrived. SnapshotSorted() returns
/// ascending sequence order, which is the canonical training order of
/// LearnedCostModel (bit-identical retraining at any parallelism).
///
/// Thread-safe; serve workers Add concurrently while the refresh step
/// snapshots.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(const ReplayBufferOptions& options);

  /// Inserts (or, for a repeated sequence, replaces) a sample, then evicts
  /// the smallest sequence while over capacity.
  void Add(CostSample sample);

  /// All retained samples in ascending sequence order.
  std::vector<CostSample> SnapshotSorted() const;

  int64_t size() const;
  /// Lifetime Add calls.
  int64_t added() const;
  /// Lifetime capacity evictions.
  int64_t dropped() const;

 private:
  const int64_t capacity_;
  mutable std::mutex mu_;
  std::map<uint64_t, CostSample> samples_;
  int64_t added_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_REPLAY_BUFFER_H_
