#ifndef LQOLAB_COSTMODEL_LEARNED_MODEL_H_
#define LQOLAB_COSTMODEL_LEARNED_MODEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "costmodel/features.h"
#include "ml/nn.h"

namespace lqolab::costmodel {

struct LearnedModelOptions {
  /// Hidden width of both MLP layers ({dim, hidden, hidden, 1}).
  int32_t hidden = 32;
  /// Full passes over the training slice (per-sample Adam, sample order).
  int32_t epochs = 60;
  double learning_rate = 3e-3;
  /// Seeds the Kaiming initialization; everything else is data-ordered, so
  /// (seed, sample corpus) fully determines the trained weights.
  uint64_t seed = 7;
};

/// The plan-featurized MLP cost model: PlanFeaturizer features in, log-ms
/// latency target out (the same lqo::LatencyToTarget scale the value
/// networks regress on), trained with per-sample Adam on the ml/ autodiff
/// graph. Training is bit-deterministic: same options, same samples in the
/// same order, same weights — the property the serve-path refresh loop
/// leans on to stay reproducible across worker counts (locked by
/// `ctest -L costmodel`).
///
/// Thread-safe: Predict*/Train serialize on an internal mutex (forward
/// passes build a Graph over the shared parameter matrices).
class LearnedCostModel : public PlanCostModel {
 public:
  /// `featurizer` must outlive the model.
  LearnedCostModel(const PlanFeaturizer* featurizer,
                   const LearnedModelOptions& options);

  std::string name() const override { return "learned_mlp"; }
  double PredictNs(const query::Query& q,
                   const optimizer::PhysicalPlan& plan) const override;
  double PredictSampleNs(const CostSample& sample) const override;
  int64_t nn_evals_per_prediction() const override { return 1; }

  /// Trains for options.epochs passes over `samples` in the given order
  /// (callers pass replay-buffer snapshots, already sequence-sorted).
  /// Samples whose feature width mismatches or whose actual_ns is
  /// non-positive are skipped. Returns the mean MSE loss of the final
  /// epoch (0 when nothing trained).
  double Train(const std::vector<CostSample>& samples);

  /// Prediction from a raw feature vector (no locking caveats for callers;
  /// used by tests and the bake-off).
  double PredictFeaturesNs(const std::vector<float>& features) const;

  /// FNV-1a over every parameter's float bits, in registration order: two
  /// identically-trained models have equal digests, and any weight-bit
  /// divergence changes it. The determinism tests' fingerprint.
  uint64_t WeightsDigest() const;

  int64_t train_steps() const;
  const LearnedModelOptions& options() const { return options_; }

 private:
  double ForwardLocked(const std::vector<float>& features) const;

  const PlanFeaturizer* featurizer_;
  const LearnedModelOptions options_;
  mutable std::mutex mu_;
  mutable ml::Mlp mlp_;
  ml::Adam adam_;
  int64_t train_steps_ = 0;
};

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_LEARNED_MODEL_H_
