#ifndef LQOLAB_COSTMODEL_FEATURES_H_
#define LQOLAB_COSTMODEL_FEATURES_H_

#include <cstdint>
#include <vector>

#include "exec/db_context.h"
#include "lqo/encoding.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "stats/cardinality_estimator.h"

namespace lqolab::costmodel {

/// Flattens a (query, physical plan) pair into the fixed-width feature
/// vector of the learned cost model. Per node it reuses the schema-agnostic
/// lqo::PlanEncoder kCardinalityOnly encoding (join/scan operator one-hots,
/// log estimated cardinality, log per-node cost proxy — Table 1's Bao row),
/// aggregated over the tree three ways (element-wise sum, element-wise max,
/// and the root node verbatim), then appends join-graph shape features:
/// relation count, join count, tree depth, left-deepness, bushy-join count
/// and the log estimated root cardinality. Schema-agnostic by construction,
/// so one architecture serves IMDB and TPC-H alike; see
/// docs/cost_models.md for the exact slot map.
///
/// Stateless after construction and safe for concurrent Featurize calls
/// (the estimator is read-only); serve workers share one instance.
class PlanFeaturizer {
 public:
  /// Both pointers must outlive the featurizer (they are the parent
  /// database's context and estimator).
  PlanFeaturizer(const exec::DbContext* ctx,
                 const stats::CardinalityEstimator* estimator);

  /// Feature-vector width: 3 * PlanEncoder::node_dim() + kShapeFeatures.
  int32_t dim() const;

  std::vector<float> Featurize(const query::Query& q,
                               const optimizer::PhysicalPlan& plan) const;

  static constexpr int32_t kShapeFeatures = 6;

 private:
  const stats::CardinalityEstimator* estimator_;
  lqo::PlanEncoder encoder_;
};

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_FEATURES_H_
