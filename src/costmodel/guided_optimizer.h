#ifndef LQOLAB_COSTMODEL_GUIDED_OPTIMIZER_H_
#define LQOLAB_COSTMODEL_GUIDED_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "engine/database.h"
#include "lqo/interface.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::costmodel {

/// One candidate in a cost-model bake-off or guided-planning sweep.
struct PlanCandidate {
  optimizer::PhysicalPlan plan;
  util::VirtualNanos planning_ns = 0;
  /// Which perturbation produced it ("no_nestloop", "sel_x10", ...).
  std::string source;
};

/// Candidate-plan generation shared by CostGuidedOptimizer and
/// bench/cost_model_bakeoff: the native plan under every Bao hint set
/// (lqo::DefaultHintSets, enable_* overlays) plus Lero-style cardinality
/// perturbations (join_selectivity_scale x0.1 / x10), deduplicated by
/// structural plan equality. The database's configuration is saved and
/// restored around the sweep. Deterministic for a fixed (db, q).
std::vector<PlanCandidate> GenerateCandidatePlans(engine::Database* db,
                                                  const query::Query& q);

/// A learned optimizer whose only learning lives in its cost model: plan
/// candidates with the native planner under perturbations (Bao's hint
/// sweep + Lero's selectivity sweep), rank them with a PlanCostModel, and
/// return the cheapest-predicted plan. This is the serving form of the
/// online cost-model refresh loop — OnlineRefresher trains and gates the
/// model, then publishes one of these through the QueryServer's
/// HotSwapSlot. Train() is therefore a no-op. Deterministic per query, so
/// serve-path results stay worker-count-independent.
class CostGuidedOptimizer : public lqo::LearnedOptimizer {
 public:
  explicit CostGuidedOptimizer(std::shared_ptr<const PlanCostModel> model);

  std::string name() const override;
  lqo::TrainReport Train(const std::vector<query::Query>& train_set,
                         engine::Database* db) override;
  lqo::Prediction Plan(const query::Query& q, engine::Database* db) override;
  lqo::EncodingSpec encoding_spec() const override;

  const PlanCostModel& model() const { return *model_; }

 private:
  std::shared_ptr<const PlanCostModel> model_;
};

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_GUIDED_OPTIMIZER_H_
