#include "costmodel/replay_buffer.h"

#include <utility>

#include "util/check.h"

namespace lqolab::costmodel {

ReplayBuffer::ReplayBuffer(const ReplayBufferOptions& options)
    : capacity_(options.capacity) {
  LQOLAB_CHECK_GT(options.capacity, 0);
}

void ReplayBuffer::Add(CostSample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ++added_;
  samples_[sample.sequence] = std::move(sample);
  while (static_cast<int64_t>(samples_.size()) > capacity_) {
    samples_.erase(samples_.begin());
    ++dropped_;
  }
}

std::vector<CostSample> ReplayBuffer::SnapshotSorted() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CostSample> out;
  out.reserve(samples_.size());
  for (const auto& [seq, sample] : samples_) out.push_back(sample);
  return out;
}

int64_t ReplayBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(samples_.size());
}

int64_t ReplayBuffer::added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return added_;
}

int64_t ReplayBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace lqolab::costmodel
