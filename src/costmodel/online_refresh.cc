#include "costmodel/online_refresh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "costmodel/guided_optimizer.h"
#include "costmodel/trace_ingest.h"
#include "obs/metrics.h"
#include "optimizer/plan_hint.h"
#include "util/check.h"

namespace lqolab::costmodel {

namespace {

/// Buffered samples before the analytic incumbent is lazily calibrated (and
/// drift tracking turns on). Small on purpose: until calibration the
/// analytic model's unit is wrong by construction, and scoring it would
/// read as (false) drift.
constexpr int64_t kCalibrationSamples = 16;

double MedianOf(std::vector<double> values) {
  LQOLAB_CHECK(!values.empty());
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace

OnlineRefresher::OnlineRefresher(engine::Database* db,
                                 const RefreshOptions& options)
    : db_(db),
      options_(options),
      featurizer_(&db->context(), &db->planner().estimator()),
      buffer_(options.buffer),
      analytic_(std::make_shared<AnalyticCostModel>(&db->planner())) {
  LQOLAB_CHECK_GT(options.min_samples, 0);
  LQOLAB_CHECK_GT(options.refresh_every, 0);
  LQOLAB_CHECK_GT(options.drift_window, 0);
  LQOLAB_CHECK(options.holdout_fraction > 0.0 &&
               options.holdout_fraction < 1.0);
  incumbent_ = analytic_;
}

OnlineRefresher::~OnlineRefresher() { StopBackground(); }

void OnlineRefresher::AttachServer(serve::QueryServer* server) {
  std::lock_guard<std::mutex> lock(mu_);
  server_ = server;
}

std::shared_ptr<const PlanCostModel> OnlineRefresher::incumbent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incumbent_;
}

void OnlineRefresher::OnPlanExecuted(const query::Query& q,
                                     const optimizer::PhysicalPlan& plan,
                                     util::VirtualNanos execution_ns,
                                     uint64_t sequence) {
  CostSample sample;
  sample.sequence = sequence;
  sample.query_id = q.id;
  sample.features = featurizer_.Featurize(q, plan);
  sample.actual_ns = execution_ns;
  sample.analytic_cost = db_->planner().EstimatePlanCost(q, plan);

  // Score the serving incumbent on the observation (drift signal + trace
  // diagnostic) before the sample enters the buffer.
  bool ready = false;
  std::shared_ptr<const PlanCostModel> incumbent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready = incumbent_ready_;
    incumbent = incumbent_;
  }
  double predicted = std::numeric_limits<double>::quiet_NaN();
  if (ready) predicted = incumbent->PredictSampleNs(sample);

  if (options_.trace != nullptr) {
    ServeSampleRecord record;
    record.sequence = sequence;
    record.query_id = q.id;
    record.plan_hint = optimizer::RenderPlanHint(plan, q);
    record.actual_ns = execution_ns;
    record.analytic_cost = sample.analytic_cost;
    record.predicted_ns = predicted;
    std::lock_guard<std::mutex> lock(trace_mu_);
    WriteServeSample(record, options_.trace);
  }

  buffer_.Add(std::move(sample));
  obs::Count(obs::Counter::kCostmodelSamples);

  if (!ready && buffer_.size() >= kCalibrationSamples) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!incumbent_ready_) {
      analytic_->Calibrate(buffer_.SnapshotSorted());
      if (analytic_->calibrated()) incumbent_ready_ = true;
    }
  }

  if (ready) {
    bool alarm = false;
    serve::QueryServer* server = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drift_qerrors_.push_back(
          QError(predicted, static_cast<double>(execution_ns)));
      if (static_cast<int64_t>(drift_qerrors_.size()) >=
          options_.drift_window) {
        const double median = MedianOf(
            {drift_qerrors_.begin(), drift_qerrors_.end()});
        if (median > options_.drift_median_threshold) {
          // The incumbent is consistently wrong on live traffic: raise the
          // alarm and restart the window so one bad stretch fires once.
          alarm = true;
          drift_qerrors_.clear();
        } else {
          drift_qerrors_.pop_front();
        }
      }
      server = server_;
    }
    if (alarm) {
      ++drift_alarms_;
      obs::Count(obs::Counter::kCostmodelDriftAlarms);
      if (server != nullptr) server->TripLqoBreaker();
    }
  }

  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (++since_refresh_ >= options_.refresh_every) bg_cv_.notify_one();
  }
}

void OnlineRefresher::Split(const std::vector<CostSample>& samples,
                            std::vector<CostSample>* train,
                            std::vector<CostSample>* holdout) const {
  const int64_t n = static_cast<int64_t>(samples.size());
  const int64_t holdout_n = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(n) *
                              options_.holdout_fraction));
  const int64_t train_n = std::max<int64_t>(0, n - holdout_n);
  train->assign(samples.begin(), samples.begin() + train_n);
  holdout->assign(samples.begin() + train_n, samples.end());
}

RefreshOutcome OnlineRefresher::Refresh() {
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  RefreshOutcome out;
  const std::vector<CostSample> samples = buffer_.SnapshotSorted();
  if (static_cast<int64_t>(samples.size()) < options_.min_samples) {
    out.reason = "insufficient_samples";
    return out;
  }
  out.attempted = true;
  std::vector<CostSample> train;
  std::vector<CostSample> holdout;
  Split(samples, &train, &holdout);
  out.train_samples = static_cast<int64_t>(train.size());
  out.holdout_samples = static_cast<int64_t>(holdout.size());

  // The analytic incumbent gets the same fresh look at the data the
  // candidate does — the gate compares models, not staleness.
  analytic_->Calibrate(train);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (analytic_->calibrated()) incumbent_ready_ = true;
  }

  auto candidate =
      std::make_shared<LearnedCostModel>(&featurizer_, options_.model);
  out.train_loss = candidate->Train(train);
  ++refreshes_;
  obs::Count(obs::Counter::kCostmodelRefreshes);

  GateLocked(std::move(candidate), holdout, &out);
  return out;
}

RefreshOutcome OnlineRefresher::ScoreAndMaybePromote(
    std::shared_ptr<LearnedCostModel> candidate) {
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  RefreshOutcome out;
  const std::vector<CostSample> samples = buffer_.SnapshotSorted();
  if (samples.empty()) {
    out.reason = "insufficient_samples";
    return out;
  }
  out.attempted = true;
  std::vector<CostSample> train;
  std::vector<CostSample> holdout;
  Split(samples, &train, &holdout);
  out.train_samples = static_cast<int64_t>(train.size());
  out.holdout_samples = static_cast<int64_t>(holdout.size());
  GateLocked(std::move(candidate), holdout, &out);
  return out;
}

void OnlineRefresher::GateLocked(std::shared_ptr<LearnedCostModel> candidate,
                                 const std::vector<CostSample>& holdout,
                                 RefreshOutcome* out) {
  out->weights_digest = candidate->WeightsDigest();
  std::shared_ptr<const PlanCostModel> incumbent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    incumbent = incumbent_;
  }
  out->candidate_median_qerror = MedianSampleQError(*candidate, holdout);
  out->incumbent_median_qerror = MedianSampleQError(*incumbent, holdout);

  // Shadow-scoring verdict: no regression against the incumbent AND
  // absolutely sane. The absolute ceiling is what refuses a poisoned
  // candidate even when the incumbent itself is broken (both infinite
  // medians would pass a pure ratio test).
  const bool no_regression =
      out->candidate_median_qerror <=
      options_.gate_ratio * out->incumbent_median_qerror;
  const bool sane =
      out->candidate_median_qerror <= options_.max_median_qerror;
  if (!holdout.empty() && no_regression && sane) {
    out->promoted = true;
    out->reason = "promoted";
    serve::QueryServer* server = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      incumbent_ = candidate;
      incumbent_ready_ = true;
      server = server_;
    }
    if (server != nullptr) {
      out->published_version = server->PublishModel(
          std::make_shared<CostGuidedOptimizer>(std::move(candidate)));
    }
    ++promotions_;
    obs::Count(obs::Counter::kCostmodelPromotions);
  } else {
    out->reason = !sane ? "gate_absolute" : "gate_regression";
    ++rejections_;
    obs::Count(obs::Counter::kCostmodelRejections);
  }
}

void OnlineRefresher::StartBackground() {
  std::lock_guard<std::mutex> lock(bg_mu_);
  if (bg_thread_.joinable()) return;
  bg_stop_ = false;
  bg_thread_ = std::thread([this] { BackgroundLoop(); });
}

void OnlineRefresher::StopBackground() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (!bg_thread_.joinable()) return;
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  bg_thread_.join();
  std::lock_guard<std::mutex> lock(bg_mu_);
  bg_stop_ = false;
}

void OnlineRefresher::BackgroundLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait(lock, [this] {
        return bg_stop_ || since_refresh_ >= options_.refresh_every;
      });
      if (bg_stop_) return;
      since_refresh_ = 0;
    }
    Refresh();
  }
}

}  // namespace lqolab::costmodel
