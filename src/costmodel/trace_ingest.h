#ifndef LQOLAB_COSTMODEL_TRACE_INGEST_H_
#define LQOLAB_COSTMODEL_TRACE_INGEST_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "costmodel/features.h"
#include "costmodel/replay_buffer.h"
#include "obs/trace.h"
#include "query/query.h"

namespace lqolab::costmodel {

/// One serving observation as it appears on the obs/ JSONL trace stream
/// ({"type":"serve_sample",...}); the durable form of a replay-buffer
/// entry. The plan travels as its lossless optimizer::RenderPlanHint text,
/// so ingestion can re-featurize under the ingesting database's statistics.
struct ServeSampleRecord {
  uint64_t sequence = 0;
  std::string query_id;
  std::string plan_hint;
  int64_t actual_ns = 0;
  double analytic_cost = 0.0;
  /// The serving incumbent's prediction at harvest time (diagnostic only;
  /// a diverged model may yield NaN here, which the trace layer renders as
  /// JSON null and ingestion skips).
  double predicted_ns = 0.0;
};

/// Appends `record` to `trace` as one {"type":"serve_sample"} line.
void WriteServeSample(const ServeSampleRecord& record, obs::TraceWriter* trace);

/// Per-file ingestion accounting. Every skip also counts
/// obs::Counter::kCostmodelTraceSkipped on the calling thread's registry —
/// corrupt telemetry must be visible, never fatal.
struct IngestStats {
  int64_t lines = 0;
  /// Records ingested into the buffer.
  int64_t ingested = 0;
  /// Non-serve_sample records passed over (workload/query/metrics lines
  /// share the stream; not an error, not counted as skipped()).
  int64_t other_records = 0;
  /// Lines that are not valid records: unparsable JSON, missing fields, or
  /// null / non-finite numerics (e.g. a pre-fix trace's bare `nan`).
  int64_t skipped_malformed = 0;
  /// serve_sample records naming a query id absent from the workload map.
  int64_t skipped_unknown_query = 0;
  /// Plan hints that fail optimizer::ParsePlanHint against their query.
  int64_t skipped_bad_plan = 0;

  int64_t skipped() const {
    return skipped_malformed + skipped_unknown_query + skipped_bad_plan;
  }
};

/// Re-ingests a serve trace into `buffer`: parses each serve_sample line,
/// resolves its query by id, parses the plan hint, re-featurizes with
/// `featurizer`, and Add()s the sample keyed by its recorded sequence.
/// Hardened by design: any malformed line (including invalid JSON from
/// traces written before the non-finite fix in obs/trace.cc) is counted
/// and skipped — a poisoned line must never abort a retraining run.
IngestStats IngestServeTrace(
    const std::string& path,
    const std::unordered_map<std::string, query::Query>& queries_by_id,
    const PlanFeaturizer& featurizer, ReplayBuffer* buffer);

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_TRACE_INGEST_H_
