#ifndef LQOLAB_COSTMODEL_COST_MODEL_H_
#define LQOLAB_COSTMODEL_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/config.h"
#include "optimizer/physical_plan.h"
#include "optimizer/planner.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::costmodel {

/// One harvested (plan, actual latency) observation: the training unit of
/// the learned cost model and the payload of the serve-path replay buffer.
/// Only the featurized plan is retained — the buffer must stay bounded and
/// scheduling-independent — plus the analytic estimate captured at harvest
/// time so the analytic incumbent can be scored over a feature-only holdout
/// slice without replaying the original plans.
struct CostSample {
  /// Admission ticket id (serve) or corpus line (offline): a deterministic,
  /// scheduling-independent ordering key. Replay-buffer retention and
  /// training order both follow it, so retraining from the same corpus is
  /// bit-identical at any worker count.
  uint64_t sequence = 0;
  std::string query_id;
  std::vector<float> features;
  /// Observed virtual execution time of the plan.
  util::VirtualNanos actual_ns = 0;
  /// Raw optimizer::Planner::EstimatePlanCost units (not ns) at harvest.
  double analytic_cost = 0.0;
};

/// Q-error of a prediction: max(pred/actual, actual/pred), the standard
/// scale-free cost-estimator accuracy metric ("How Good are Learned Cost
/// Models, Really?"). Non-positive or non-finite inputs yield +infinity —
/// a diverged model must look maximally wrong, not silently fine.
double QError(double predicted, double actual);

/// Median q-error of a model's predictions over `samples` via
/// PredictSampleNs. Empty input yields +infinity.
class PlanCostModel;
double MedianSampleQError(const PlanCostModel& model,
                          const std::vector<CostSample>& samples);

/// Interface of plan-level cost models: given a query and a full candidate
/// physical plan, predict its execution time in virtual nanoseconds. This
/// is deliberately narrower than optimizer::CostModel (which prices
/// operators *during* DP search): these backends rank finished candidate
/// plans at the serving layer, and are interchangeable behind
/// engine::DbConfig::cost_model_backend. Implementations must be safe for
/// concurrent Predict* calls — serve workers share one instance.
class PlanCostModel {
 public:
  virtual ~PlanCostModel() = default;

  virtual std::string name() const = 0;

  /// Predicted execution time (virtual ns) of `plan` for `q`.
  virtual double PredictNs(const query::Query& q,
                           const optimizer::PhysicalPlan& plan) const = 0;

  /// Prediction from a harvested sample (features + recorded analytic
  /// estimate), without the original query/plan. This is what the promotion
  /// gate scores over the replay buffer's holdout slice.
  virtual double PredictSampleNs(const CostSample& sample) const = 0;

  /// Modeled NN forward passes per PredictNs call (0 for analytic models);
  /// drives the serving layer's inference-time accounting.
  virtual int64_t nn_evals_per_prediction() const { return 0; }
};

/// The existing analytic cost model, adapted to the plan-level interface:
/// optimizer::Planner::EstimatePlanCost scaled by a calibrated ns-per-cost-
/// unit factor. The planner's unit is abstract cost, so q-error against
/// observed nanoseconds is only meaningful after Calibrate() — the bake-off
/// and the online-refresh gate both calibrate on the training split, which
/// is exactly the linear post-hoc fit the learned-cost-model literature
/// grants classical models.
class AnalyticCostModel : public PlanCostModel {
 public:
  /// `planner` must outlive the model (it is the parent database's).
  explicit AnalyticCostModel(const optimizer::Planner* planner);

  std::string name() const override { return "analytic"; }
  double PredictNs(const query::Query& q,
                   const optimizer::PhysicalPlan& plan) const override;
  double PredictSampleNs(const CostSample& sample) const override;

  /// Fits ns_per_unit as the median actual_ns/analytic_cost ratio over
  /// `samples` (median, not OLS: robust to the heavy latency tail).
  /// Samples with non-positive cost are ignored; an empty/degenerate fit
  /// leaves the current scale.
  void Calibrate(const std::vector<CostSample>& samples);

  double ns_per_unit() const { return ns_per_unit_.load(); }
  /// Manual override (tests use it to fabricate a weak incumbent).
  void set_ns_per_unit(double v) { ns_per_unit_.store(v); }
  bool calibrated() const { return calibrated_.load(); }

 private:
  const optimizer::Planner* planner_;
  std::atomic<double> ns_per_unit_{1.0};
  std::atomic<bool> calibrated_{false};
};

/// Resolves engine::DbConfig::cost_model_backend to a concrete model:
/// kAnalytic returns `analytic`, kLearnedMlp returns `learned` (which must
/// be non-null in that case).
std::shared_ptr<const PlanCostModel> SelectBackend(
    const engine::DbConfig& config,
    std::shared_ptr<const PlanCostModel> analytic,
    std::shared_ptr<const PlanCostModel> learned);

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_COST_MODEL_H_
