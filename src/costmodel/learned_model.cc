#include "costmodel/learned_model.h"

#include <bit>
#include <cmath>
#include <limits>

#include "lqo/value_net.h"
#include "ml/autodiff.h"
#include "util/check.h"
#include "util/rng.h"

namespace lqolab::costmodel {

namespace {

ml::Mlp MakeMlp(int32_t in_dim, const LearnedModelOptions& options) {
  util::Rng rng(options.seed);
  return ml::Mlp({in_dim, options.hidden, options.hidden, 1}, &rng);
}

}  // namespace

LearnedCostModel::LearnedCostModel(const PlanFeaturizer* featurizer,
                                   const LearnedModelOptions& options)
    : featurizer_(featurizer),
      options_(options),
      mlp_(MakeMlp(featurizer->dim(), options)),
      adam_(mlp_.Params(), options.learning_rate) {
  LQOLAB_CHECK(featurizer != nullptr);
  LQOLAB_CHECK_GT(options.hidden, 0);
  LQOLAB_CHECK_GT(options.epochs, 0);
}

double LearnedCostModel::ForwardLocked(
    const std::vector<float>& features) const {
  ml::Graph g;
  const ml::NodeId out =
      mlp_.Apply(&g, g.Input(ml::Matrix::RowVector(features)));
  const double ns =
      static_cast<double>(lqo::TargetToLatency(g.scalar(out)));
  // The log1p target cannot encode sub-ns latencies; clamp so q-error and
  // ranking never divide by zero.
  return std::max(1.0, ns);
}

double LearnedCostModel::PredictNs(const query::Query& q,
                                   const optimizer::PhysicalPlan& plan) const {
  const std::vector<float> features = featurizer_->Featurize(q, plan);
  std::lock_guard<std::mutex> lock(mu_);
  return ForwardLocked(features);
}

double LearnedCostModel::PredictSampleNs(const CostSample& sample) const {
  return PredictFeaturesNs(sample.features);
}

double LearnedCostModel::PredictFeaturesNs(
    const std::vector<float>& features) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int32_t>(features.size()) != mlp_.in_features()) {
    return std::numeric_limits<double>::infinity();
  }
  return ForwardLocked(features);
}

double LearnedCostModel::Train(const std::vector<CostSample>& samples) {
  std::lock_guard<std::mutex> lock(mu_);
  double last_epoch_loss = 0.0;
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    double loss_sum = 0.0;
    int64_t steps = 0;
    for (const CostSample& s : samples) {
      if (static_cast<int32_t>(s.features.size()) != mlp_.in_features() ||
          s.actual_ns <= 0) {
        continue;
      }
      ml::Graph g;
      const ml::NodeId pred =
          mlp_.Apply(&g, g.Input(ml::Matrix::RowVector(s.features)));
      ml::Matrix target(1, 1);
      target.at(0, 0) = lqo::LatencyToTarget(s.actual_ns);
      const ml::NodeId loss = ml::MseLoss(&g, pred, g.Input(target));
      g.Backward(loss);
      adam_.Step();
      loss_sum += static_cast<double>(g.scalar(loss));
      ++steps;
      ++train_steps_;
    }
    last_epoch_loss = steps > 0 ? loss_sum / static_cast<double>(steps) : 0.0;
  }
  return last_epoch_loss;
}

uint64_t LearnedCostModel::WeightsDigest() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (ml::Param* p : mlp_.Params()) {
    for (const float x : p->value.data()) {
      h ^= static_cast<uint64_t>(std::bit_cast<uint32_t>(x));
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

int64_t LearnedCostModel::train_steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return train_steps_;
}

}  // namespace lqolab::costmodel
