#include "costmodel/trace_ingest.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"
#include "optimizer/plan_hint.h"

namespace lqolab::costmodel {

namespace {

/// Finds the raw (still-encoded) value of `"key":` in a one-line JSON
/// object; false when absent. Flat-record scanning only — good enough for
/// the serve_sample schema this module itself writes.
bool FindRawValue(const std::string& line, const std::string& key,
                  std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t begin = at + needle.size();
  size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    // String value: scan to the closing unescaped quote.
    end = begin + 1;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    if (end >= line.size()) return false;
    ++end;  // include the closing quote
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  *out = line.substr(begin, end - begin);
  return true;
}

bool GetString(const std::string& line, const std::string& key,
               std::string* out) {
  std::string raw;
  if (!FindRawValue(line, key, &raw) || raw.size() < 2 || raw.front() != '"') {
    return false;
  }
  // The fields this reader consumes (ids, plan hints) never need escapes;
  // reject any rather than mis-decode.
  const std::string body = raw.substr(1, raw.size() - 2);
  if (body.find('\\') != std::string::npos) return false;
  *out = body;
  return true;
}

/// Parses a finite number; false for null, bare nan/inf (pre-fix traces),
/// or trailing garbage.
bool GetFiniteNumber(const std::string& line, const std::string& key,
                     double* out) {
  std::string raw;
  if (!FindRawValue(line, key, &raw) || raw.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end != raw.c_str() + raw.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

void WriteServeSample(const ServeSampleRecord& record,
                      obs::TraceWriter* trace) {
  obs::JsonObject obj;
  obj.Set("type", "serve_sample");
  obj.Set("seq", static_cast<int64_t>(record.sequence));
  obj.Set("query", record.query_id);
  obj.Set("plan", record.plan_hint);
  obj.Set("execution_ns", record.actual_ns);
  obj.Set("analytic_cost", record.analytic_cost);
  obj.Set("predicted_ns", record.predicted_ns);
  trace->Write(obj);
}

IngestStats IngestServeTrace(
    const std::string& path,
    const std::unordered_map<std::string, query::Query>& queries_by_id,
    const PlanFeaturizer& featurizer, ReplayBuffer* buffer) {
  IngestStats stats;
  std::ifstream in(path);
  std::string line;
  const auto skip = [&](int64_t* bucket) {
    ++*bucket;
    obs::Count(obs::Counter::kCostmodelTraceSkipped);
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++stats.lines;
    std::string type;
    if (!GetString(line, "type", &type)) {
      skip(&stats.skipped_malformed);
      continue;
    }
    if (type != "serve_sample") {
      ++stats.other_records;
      continue;
    }
    std::string query_id;
    std::string plan_hint;
    double seq = 0.0;
    double actual_ns = 0.0;
    double analytic_cost = 0.0;
    if (!GetString(line, "query", &query_id) ||
        !GetString(line, "plan", &plan_hint) ||
        !GetFiniteNumber(line, "seq", &seq) ||
        !GetFiniteNumber(line, "execution_ns", &actual_ns) ||
        !GetFiniteNumber(line, "analytic_cost", &analytic_cost) ||
        actual_ns <= 0.0) {
      skip(&stats.skipped_malformed);
      continue;
    }
    const auto it = queries_by_id.find(query_id);
    if (it == queries_by_id.end()) {
      skip(&stats.skipped_unknown_query);
      continue;
    }
    optimizer::PhysicalPlan plan;
    std::string error;
    if (!optimizer::ParsePlanHint(plan_hint, it->second, &plan, &error)) {
      skip(&stats.skipped_bad_plan);
      continue;
    }
    CostSample sample;
    sample.sequence = static_cast<uint64_t>(seq);
    sample.query_id = query_id;
    sample.features = featurizer.Featurize(it->second, plan);
    sample.actual_ns = static_cast<util::VirtualNanos>(actual_ns);
    sample.analytic_cost = analytic_cost;
    buffer->Add(std::move(sample));
    ++stats.ingested;
  }
  return stats;
}

}  // namespace lqolab::costmodel
