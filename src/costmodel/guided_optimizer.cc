#include "costmodel/guided_optimizer.h"

#include <algorithm>
#include <utility>

#include "exec/cost_constants.h"
#include "lqo/bao.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::costmodel {

using engine::Database;
using engine::DbConfig;
using query::Query;

std::vector<PlanCandidate> GenerateCandidatePlans(Database* db,
                                                  const Query& q) {
  const DbConfig saved = db->config();
  std::vector<PlanCandidate> candidates;
  const auto add = [&](DbConfig config, const std::string& source) {
    db->SetConfig(config);
    Database::Planned planned = db->PlanQuery(q);
    obs::Count(obs::Counter::kHintSetsPlanned);
    for (const PlanCandidate& existing : candidates) {
      if (existing.plan == planned.plan) return;
    }
    PlanCandidate candidate;
    candidate.plan = std::move(planned.plan);
    candidate.planning_ns = planned.planning_ns;
    candidate.source = source;
    candidates.push_back(std::move(candidate));
  };
  for (const lqo::HintSet& hints : lqo::DefaultHintSets()) {
    DbConfig config = saved;
    config.enable_nestloop = hints.enable_nestloop;
    config.enable_hashjoin = hints.enable_hashjoin;
    config.enable_mergejoin = hints.enable_mergejoin;
    config.enable_indexscan = hints.enable_indexscan;
    config.enable_bitmapscan = hints.enable_bitmapscan;
    config.enable_seqscan = hints.enable_seqscan;
    add(config, hints.name);
  }
  // Lero-style candidates: perturb the estimator instead of the operator
  // set, surfacing join orders the default cardinalities never pick.
  for (const double scale : {0.1, 10.0}) {
    DbConfig config = saved;
    config.join_selectivity_scale = scale;
    add(config, scale < 1.0 ? "sel_x0.1" : "sel_x10");
  }
  db->SetConfig(saved);
  return candidates;
}

CostGuidedOptimizer::CostGuidedOptimizer(
    std::shared_ptr<const PlanCostModel> model)
    : model_(std::move(model)) {
  LQOLAB_CHECK(model_ != nullptr);
}

std::string CostGuidedOptimizer::name() const {
  return "cost_guided(" + model_->name() + ")";
}

lqo::TrainReport CostGuidedOptimizer::Train(
    const std::vector<query::Query>& train_set, Database* db) {
  // The cost model arrives already trained (offline bake-off or the serve
  // path's OnlineRefresher); there is nothing episodic to learn here.
  (void)train_set;
  (void)db;
  return {};
}

lqo::Prediction CostGuidedOptimizer::Plan(const Query& q, Database* db) {
  const std::vector<PlanCandidate> candidates = GenerateCandidatePlans(db, q);
  LQOLAB_CHECK(!candidates.empty());
  lqo::Prediction prediction;
  size_t best = 0;
  double best_ns = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double predicted = model_->PredictNs(q, candidates[i].plan);
    prediction.planning_ns += candidates[i].planning_ns;
    // Strict < keeps the first of tied candidates: deterministic ranking.
    if (i == 0 || predicted < best_ns) {
      best = i;
      best_ns = predicted;
    }
  }
  prediction.plan = candidates[best].plan;
  prediction.nn_evals = static_cast<int64_t>(candidates.size()) *
                        model_->nn_evals_per_prediction();
  prediction.inference_ns = prediction.nn_evals * lqo::timing::kNnEvalNs;
  return prediction;
}

lqo::EncodingSpec CostGuidedOptimizer::encoding_spec() const {
  lqo::EncodingSpec spec;
  spec.name = name();
  spec.adjacency_matrix = "implicit (tree aggregation)";
  spec.numerical_attributes = "est. cardinality + cost proxy per node";
  spec.text_attributes = "none";
  spec.encoding_aggregation = "sum/max/root over node encodings + shape";
  spec.join_type = "one-hot";
  spec.scan_type = "one-hot";
  spec.table_identifier = "none (schema-agnostic)";
  spec.extra_data = "join-graph shape features";
  spec.ml_model = "MLP regressor (plan-level cost)";
  spec.plan_processing = "flattened tree aggregate";
  spec.model_output = "predicted latency (log-ms)";
  spec.testing = "hint + selectivity sweep, rank by predicted cost";
  spec.dbms_integration = "extension-style (native planner candidates)";
  return spec;
}

}  // namespace lqolab::costmodel
