#ifndef LQOLAB_COSTMODEL_ONLINE_REFRESH_H_
#define LQOLAB_COSTMODEL_ONLINE_REFRESH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "costmodel/cost_model.h"
#include "costmodel/features.h"
#include "costmodel/learned_model.h"
#include "costmodel/replay_buffer.h"
#include "engine/database.h"
#include "obs/trace.h"
#include "serve/query_server.h"

namespace lqolab::costmodel {

/// Tuning of one OnlineRefresher (see docs/cost_models.md for the protocol).
struct RefreshOptions {
  ReplayBufferOptions buffer;
  LearnedModelOptions model;
  /// Buffered samples required before a refresh trains a candidate.
  int64_t min_samples = 48;
  /// Tail fraction of the sequence-sorted buffer held out for gating (the
  /// newest observations — the split closest to "does it generalize to the
  /// traffic arriving now").
  double holdout_fraction = 0.25;
  /// Promotion gate: candidate holdout median q-error must be <=
  /// gate_ratio * incumbent's. 1.0 = strictly no regression.
  double gate_ratio = 1.0;
  /// Absolute ceiling on the candidate's holdout median q-error; a
  /// poisoned/diverged candidate fails this even against a terrible
  /// incumbent.
  double max_median_qerror = 50.0;
  /// Background mode: harvested samples between refresh cycles.
  int64_t refresh_every = 256;
  /// Rolling q-error observations per drift check.
  int64_t drift_window = 64;
  /// Median q-error over a full window that raises a drift alarm (and
  /// trips the serving breaker).
  double drift_median_threshold = 16.0;
  /// Optional durable mirror: every harvested sample is appended as a
  /// {"type":"serve_sample"} line (costmodel/trace_ingest.h reads it back).
  /// Must outlive the refresher; nullptr disables.
  obs::TraceWriter* trace = nullptr;
};

/// Outcome of one refresh (or gate) cycle.
struct RefreshOutcome {
  /// A candidate was trained and scored (false: not enough samples).
  bool attempted = false;
  bool promoted = false;
  /// Human-readable gate verdict ("promoted", "insufficient_samples",
  /// "gate_regression", "gate_absolute").
  std::string reason;
  int64_t train_samples = 0;
  int64_t holdout_samples = 0;
  double candidate_median_qerror = 0.0;
  double incumbent_median_qerror = 0.0;
  /// Final-epoch mean MSE of the candidate's training run.
  double train_loss = 0.0;
  /// HotSwapSlot version the promotion published (0 when not promoted or
  /// no server is attached).
  uint64_t published_version = 0;
  /// LearnedCostModel::WeightsDigest of the candidate (determinism probe).
  uint64_t weights_digest = 0;
};

/// The serve-path production loop of the learned cost model: harvests
/// per-plan actuals from a QueryServer (as its ServedPlanObserver) into a
/// bounded deterministic ReplayBuffer, periodically retrains a fresh
/// LearnedCostModel candidate, shadow-scores it against the incumbent on a
/// held-out slice, and promotes it through the server's HotSwapSlot only
/// when it passes the regression gate. A rolling-q-error drift detector
/// watches the incumbent's live predictions and trips the server's LQO
/// circuit breaker when the model goes stale. Full protocol:
/// docs/cost_models.md.
///
/// Determinism: the buffer keys on admission sequence and training order is
/// sequence-sorted, so for a fixed admitted workload the retrained weights
/// (LearnedCostModel::WeightsDigest) and the promotion decision are
/// identical at any serve worker count (locked by `ctest -L costmodel`).
///
/// Thread-safe: OnPlanExecuted is called concurrently by serve workers;
/// Refresh cycles serialize on an internal mutex.
class OnlineRefresher : public serve::ServedPlanObserver {
 public:
  /// `db` must outlive the refresher; it provides the featurizer's context
  /// and statistics plus the analytic incumbent's cost function. The
  /// refresher never executes on it.
  OnlineRefresher(engine::Database* db, const RefreshOptions& options);
  ~OnlineRefresher() override;

  /// Attaches the server whose breaker drift alarms trip and whose
  /// HotSwapSlot promotions publish to (start observing by putting `this`
  /// into ServerOptions::observer). Call before serving; nullptr detaches.
  void AttachServer(serve::QueryServer* server);

  /// ServedPlanObserver: harvest one successful execution.
  void OnPlanExecuted(const query::Query& q,
                      const optimizer::PhysicalPlan& plan,
                      util::VirtualNanos execution_ns,
                      uint64_t sequence) override;

  /// One synchronous refresh cycle: snapshot the buffer, recalibrate the
  /// analytic model and train a candidate on the older slice, gate on the
  /// newest slice, promote on pass.
  RefreshOutcome Refresh();

  /// Gates an externally-built candidate against the incumbent over the
  /// current buffer's holdout slice (no training). This is the promotion
  /// gate in isolation — tests feed it a poisoned candidate and assert the
  /// refusal.
  RefreshOutcome ScoreAndMaybePromote(std::shared_ptr<LearnedCostModel> candidate);

  /// Spawns/joins the background refresh thread (one cycle per
  /// RefreshOptions::refresh_every harvested samples). Idempotent.
  void StartBackground();
  void StopBackground();

  const ReplayBuffer& buffer() const { return buffer_; }
  const PlanFeaturizer& featurizer() const { return featurizer_; }
  /// The analytic model that seeds the incumbent slot (mutable so tests can
  /// fabricate a mis-calibrated incumbent via set_ns_per_unit).
  AnalyticCostModel* analytic_model() { return analytic_.get(); }
  /// The model currently serving as the gate's baseline.
  std::shared_ptr<const PlanCostModel> incumbent() const;

  int64_t refreshes() const { return refreshes_.load(); }
  int64_t promotions() const { return promotions_.load(); }
  int64_t rejections() const { return rejections_.load(); }
  int64_t drift_alarms() const { return drift_alarms_.load(); }

 private:
  /// Scores `candidate` vs the incumbent on `holdout` and promotes/refuses;
  /// fills the gate fields of `out`. Caller holds refresh_mu_.
  void GateLocked(std::shared_ptr<LearnedCostModel> candidate,
                  const std::vector<CostSample>& holdout, RefreshOutcome* out);

  /// Splits `samples` (already sequence-sorted) into train head / holdout
  /// tail per holdout_fraction.
  void Split(const std::vector<CostSample>& samples,
             std::vector<CostSample>* train,
             std::vector<CostSample>* holdout) const;

  void BackgroundLoop();

  engine::Database* db_;
  const RefreshOptions options_;
  PlanFeaturizer featurizer_;
  ReplayBuffer buffer_;
  std::shared_ptr<AnalyticCostModel> analytic_;

  /// Guards incumbent_/incumbent_ready_/drift window/server_.
  mutable std::mutex mu_;
  std::shared_ptr<const PlanCostModel> incumbent_;
  /// Drift tracking and trace prediction start only once the incumbent is
  /// meaningful (analytic calibrated, or a learned model promoted) — an
  /// uncalibrated incumbent would alarm on unit mismatch, not drift.
  bool incumbent_ready_ = false;
  std::deque<double> drift_qerrors_;
  serve::QueryServer* server_ = nullptr;

  /// Serializes refresh cycles (snapshot -> train -> gate -> publish).
  std::mutex refresh_mu_;

  /// Guards the trace mirror (workers harvest concurrently).
  std::mutex trace_mu_;

  std::atomic<int64_t> refreshes_{0};
  std::atomic<int64_t> promotions_{0};
  std::atomic<int64_t> rejections_{0};
  std::atomic<int64_t> drift_alarms_{0};

  // Background thread.
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  int64_t since_refresh_ = 0;  // guarded by bg_mu_
  bool bg_stop_ = false;       // guarded by bg_mu_
  std::thread bg_thread_;
};

}  // namespace lqolab::costmodel

#endif  // LQOLAB_COSTMODEL_ONLINE_REFRESH_H_
