#ifndef LQOLAB_UTIL_TABLE_PRINTER_H_
#define LQOLAB_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "util/virtual_clock.h"

namespace lqolab::util {

/// Fixed-width text table used by the bench binaries to print the rows and
/// series of the paper's tables and figures.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
std::string FormatDouble(double value, int precision = 2);

/// Formats virtual nanoseconds with an adaptive unit ("412 ms", "1.73 s").
std::string FormatDuration(VirtualNanos nanos);

/// Formats a ratio as a multiplier string ("5.5x").
std::string FormatFactor(double factor);

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_TABLE_PRINTER_H_
