#ifndef LQOLAB_UTIL_STATUS_H_
#define LQOLAB_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace lqolab::util {

/// Typed failure codes for the graceful-degradation paths (faults,
/// deadlines, allocation pressure, shutdown). The engine has no exceptions
/// (util/check.h): recoverable failures travel through Status values in
/// result structs instead, and only genuine invariant violations abort.
enum class StatusCode : int32_t {
  kOk = 0,
  /// Externally cancelled (deadline cancellation, client abort).
  kCancelled,
  /// Virtual-time deadline / statement timeout expired.
  kDeadlineExceeded,
  /// Allocation pressure: a work_mem-style memory request cannot be met.
  kResourceExhausted,
  /// Transient fault (injected I/O error, worker-replica fault); a retry
  /// on a fresh attempt may succeed.
  kUnavailable,
  /// The server is shutting down; the query was never (fully) run.
  kShutdown,
  /// Unclassified internal failure.
  kInternal,
  /// The request itself is malformed (SQL syntax error, unknown table or
  /// column); retrying the identical request can never succeed.
  kInvalidArgument,
};

/// Stable snake_case name of a status code.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kShutdown:
      return "shutdown";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
  }
  return "unknown";
}

/// A code plus a human-readable detail. Default-constructed Status is OK,
/// so result structs gain a `status` field without changing any existing
/// success path.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Transient failures worth retrying on a fresh attempt. Deadline
  /// expiry, cancellation and shutdown are never retryable: the work
  /// already consumed its budget or the caller is going away.
  bool retryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted;
  }

  std::string ToString() const {
    if (ok()) return "ok";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_STATUS_H_
