#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lqolab::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t a, uint64_t b) {
  // Hash-combine: advance a splitmix64 stream seeded by `a`, fold in `b`,
  // and finalize. Asymmetric in (a, b), so swapped arguments give
  // independent streams.
  uint64_t state = a;
  const uint64_t h = SplitMix64(&state);
  state ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LQOLAB_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % span);
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  have_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

int64_t Rng::Zipf(int64_t n, double s) {
  LQOLAB_CHECK_GT(n, 0);
  if (s <= 0.0) return UniformInt(0, n - 1);
  ZipfTable table(n, s);
  return table.Sample(this);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfTable::ZipfTable(int64_t n, double s) {
  LQOLAB_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[static_cast<size_t>(rank)] = total;
  }
  for (auto& value : cdf_) value /= total;
}

int64_t ZipfTable::Sample(Rng* rng) const {
  const double u = rng->Uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size()) - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace lqolab::util
