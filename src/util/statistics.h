#ifndef LQOLAB_UTIL_STATISTICS_H_
#define LQOLAB_UTIL_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace lqolab::util {

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance; 0 for samples of size < 2.
double Variance(const std::vector<double>& values);

/// Unbiased sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile; `p` in [0, 100].
double Percentile(std::vector<double> values, double p);

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean. Returns 0 for samples of size < 2.
double ConfidenceInterval95(const std::vector<double>& values);

/// Result of a two-sample hypothesis test.
struct TestResult {
  /// Test statistic (U for Mann-Whitney, t for Welch).
  double statistic = 0.0;
  /// Two-sided p-value under the normal approximation.
  double p_value = 1.0;
  /// Whether p_value < 0.05.
  bool significant = false;
};

/// Mann-Whitney U test with tie correction and normal approximation
/// (two-sided). The paper (§8.6) uses this to compare execution-time
/// distributions of bushy vs left-deep plans.
TestResult MannWhitneyU(const std::vector<double>& sample_a,
                        const std::vector<double>& sample_b);

/// One-sided Mann-Whitney U test for "sample_a is stochastically smaller
/// than sample_b" (alternative: a < b).
TestResult MannWhitneyULess(const std::vector<double>& sample_a,
                            const std::vector<double>& sample_b);

/// Welch's unequal-variance t-test, two-sided, normal approximation. Used
/// for per-query significance of execution-time deltas (Figs. 7-9).
TestResult WelchTTest(const std::vector<double>& sample_a,
                      const std::vector<double>& sample_b);

/// Ordinary least squares fit y = slope * x + intercept.
struct OlsFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination on the fitted data.
  double r_squared = 0.0;
};

/// Fits OLS on paired samples. Requires xs.size() == ys.size() >= 2.
OlsFit OrdinaryLeastSquares(const std::vector<double>& xs,
                            const std::vector<double>& ys);

/// R² of predictions vs observations: 1 - SS_res/SS_tot. Can be negative
/// when the predictor is worse than the mean (as in the paper's Fig. 2,
/// R² = -0.11 for a cross-validated joins->time regressor).
double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted);

/// Leave-one-out cross-validated R² of a univariate OLS regressor. This is
/// the quantity that can go below zero and is what Fig. 2 reports.
double LeaveOneOutR2(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Standard normal CDF.
double NormalCdf(double z);

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_STATISTICS_H_
