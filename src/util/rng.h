#ifndef LQOLAB_UTIL_RNG_H_
#define LQOLAB_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lqolab::util {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component of the framework draws from an
/// explicitly seeded Rng so that all benches are bit-reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Standard normal variate (Box-Muller).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Zipf-distributed integer in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses the rejection-inversion-free cumulative method with a cached table
  /// for small n; callers with large n should build a ZipfTable.
  int64_t Zipf(int64_t n, double s);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Deterministically derives a child generator; use to give independent
  /// streams to sub-components without coupling their draw counts.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Deterministically mixes two 64-bit words into one well-dispersed seed
/// (splitmix64 finalizer over the concatenation). Used to derive independent
/// per-query RNG streams from (global_seed, query_fingerprint[, salt])
/// without coupling their draw counts — the stream-derivation rule of the
/// parallel runner's determinism contract (docs/parallelism.md).
uint64_t MixSeed(uint64_t a, uint64_t b);
inline uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c) {
  return MixSeed(MixSeed(a, b), c);
}

/// Precomputed cumulative table for repeated Zipf draws over a fixed domain.
class ZipfTable {
 public:
  /// Builds the CDF for ranks [0, n) with exponent s >= 0.
  ZipfTable(int64_t n, double s);

  /// Draws one rank using the provided generator.
  int64_t Sample(Rng* rng) const;

  int64_t domain_size() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_RNG_H_
