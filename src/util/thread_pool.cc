#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace lqolab::util {

namespace {

constexpr uint64_t Pack(uint32_t lo, uint32_t hi) {
  return (static_cast<uint64_t>(lo) << 32) | hi;
}
constexpr uint32_t Lo(uint64_t range) { return static_cast<uint32_t>(range >> 32); }
constexpr uint32_t Hi(uint64_t range) { return static_cast<uint32_t>(range); }

/// Claims the front item of `range` ([lo, hi) shrinks to [lo+1, hi)), or -1
/// when the block is empty. The CAS covers the whole packed word, and a
/// block only ever shrinks, so an item can be claimed exactly once even
/// with a thief working the other end.
int64_t ClaimFront(std::atomic<uint64_t>& range) {
  uint64_t cur = range.load(std::memory_order_acquire);
  while (true) {
    const uint32_t lo = Lo(cur), hi = Hi(cur);
    if (lo >= hi) return -1;
    if (range.compare_exchange_weak(cur, Pack(lo + 1, hi),
                                    std::memory_order_acq_rel)) {
      return lo;
    }
  }
}

/// Claims the back item of `range` ([lo, hi) shrinks to [lo, hi-1)).
int64_t ClaimBack(std::atomic<uint64_t>& range) {
  uint64_t cur = range.load(std::memory_order_acquire);
  while (true) {
    const uint32_t lo = Lo(cur), hi = Hi(cur);
    if (lo >= hi) return -1;
    if (range.compare_exchange_weak(cur, Pack(lo, hi - 1),
                                    std::memory_order_acq_rel)) {
      return hi - 1;
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(int32_t threads)
    : ranges_(static_cast<size_t>(std::max<int32_t>(1, threads))) {
  const int32_t count = std::max<int32_t>(1, threads);
  threads_.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int32_t ThreadPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int32_t>(hw);
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int32_t, int64_t)>& fn) {
  LQOLAB_CHECK_GE(n, 0);
  LQOLAB_CHECK_LT(n, INT64_C(0x100000000));  // packed (lo, hi) is 32+32 bits
  if (n == 0) return;
  const int64_t workers = static_cast<int64_t>(threads_.size());
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LQOLAB_CHECK(job_ == nullptr);  // no concurrent/reentrant ParallelFor
    // Static block partition: worker w starts on [w*n/P, (w+1)*n/P). The
    // blocks are only the initial assignment — idle workers rebalance by
    // stealing from the back of whichever block still has work.
    for (int64_t w = 0; w < workers; ++w) {
      const uint32_t lo = static_cast<uint32_t>(w * n / workers);
      const uint32_t hi = static_cast<uint32_t>((w + 1) * n / workers);
      ranges_[static_cast<size_t>(w)].range.store(Pack(lo, hi),
                                                  std::memory_order_relaxed);
    }
    job_ = &fn;
    workers_done_ = 0;
    epoch = ++job_epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, epoch] {
    return job_epoch_ == epoch &&
           workers_done_ == static_cast<int32_t>(threads_.size());
  });
  job_ = nullptr;
}

void ThreadPool::RunJob(int32_t worker_index,
                        const std::function<void(int32_t, int64_t)>& fn) {
  const int32_t workers = static_cast<int32_t>(threads_.size());
  // Phase 1: drain our own block from the front.
  std::atomic<uint64_t>& own = ranges_[static_cast<size_t>(worker_index)].range;
  for (;;) {
    const int64_t item = ClaimFront(own);
    if (item < 0) break;
    fn(worker_index, item);
  }
  // Phase 2: steal from the back of the other blocks, victims scanned in
  // deterministic w+1, w+2, ... order. Restart the scan after every
  // successful steal so the nearest still-loaded victim is preferred; stop
  // once a full scan finds every block empty (claims only shrink blocks, so
  // emptiness is stable and this terminates).
  for (;;) {
    bool stole = false;
    for (int32_t v = 1; v < workers; ++v) {
      std::atomic<uint64_t>& victim =
          ranges_[static_cast<size_t>((worker_index + v) % workers)].range;
      const int64_t item = ClaimBack(victim);
      if (item >= 0) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        fn(worker_index, item);
        stole = true;
        break;
      }
    }
    if (!stole) return;
  }
}

void ThreadPool::WorkerLoop(int32_t worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int32_t, int64_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return stop_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    RunJob(worker_index, *job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace lqolab::util
