#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace lqolab::util {

ThreadPool::ThreadPool(int32_t threads) {
  const int32_t count = std::max<int32_t>(1, threads);
  threads_.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int32_t ThreadPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int32_t>(hw);
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int32_t, int64_t)>& fn) {
  LQOLAB_CHECK_GE(n, 0);
  if (n == 0) return;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LQOLAB_CHECK(job_ == nullptr);  // no concurrent/reentrant ParallelFor
    next_item_.store(0, std::memory_order_relaxed);
    job_ = &fn;
    job_items_ = n;
    workers_done_ = 0;
    epoch = ++job_epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, epoch] {
    return job_epoch_ == epoch &&
           workers_done_ == static_cast<int32_t>(threads_.size());
  });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int32_t worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int32_t, int64_t)>* job = nullptr;
    int64_t items = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return stop_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
      items = job_items_;
    }
    for (;;) {
      const int64_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (item >= items) break;
      (*job)(worker_index, item);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace lqolab::util
