#ifndef LQOLAB_UTIL_THREAD_POOL_H_
#define LQOLAB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lqolab::util {

/// Fixed-size worker pool for data-parallel loops. Workers are created once
/// and reused across ParallelFor calls.
///
/// Scheduling is work-stealing over contiguous index ranges: each call
/// splits [0, n) into one block per worker; a worker claims items from the
/// front of its own block and, once that drains, steals single items from
/// the back of other workers' blocks (victims scanned in deterministic
/// w+1, w+2, ... order). Claims are CAS transitions on one packed
/// (lo, hi) word per worker, so every item runs exactly once. Item-to-worker
/// assignment is still scheduling-dependent — callers that need
/// deterministic results must make each item's outcome a pure function of
/// the item itself, the contract benchkit::ParallelRunner builds on
/// (docs/parallelism.md).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int32_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Signals shutdown and joins all workers.
  ~ThreadPool();

  int32_t size() const { return static_cast<int32_t>(threads_.size()); }

  /// Runs fn(worker_index, item_index) exactly once for every item in
  /// [0, n) and blocks until all items completed. `worker_index` is in
  /// [0, size()): at most one item runs on a given worker index at a time,
  /// so per-worker state needs no locking. Must not be called concurrently
  /// or reentrantly.
  void ParallelFor(int64_t n,
                   const std::function<void(int32_t, int64_t)>& fn);

  /// Items executed by a worker other than the one whose block they were
  /// assigned to, accumulated over the pool's lifetime. Observability only
  /// (bench/micro_parallel_runner reports it); zero under serial execution.
  int64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// std::thread::hardware_concurrency() with a fallback of 4 when the
  /// runtime cannot report it.
  static int32_t DefaultParallelism();

 private:
  /// One worker's remaining block, packed lo:32|hi:32 ([lo, hi) pending).
  /// Padded to a cache line so owner claims and thief claims on different
  /// workers never false-share.
  struct alignas(64) WorkRange {
    std::atomic<uint64_t> range{0};
  };

  void WorkerLoop(int32_t worker_index);
  /// Runs one job to completion on the calling worker: drain own block from
  /// the front, then steal from the back of the other blocks.
  void RunJob(int32_t worker_index,
              const std::function<void(int32_t, int64_t)>& fn);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // ParallelFor waits for completion
  const std::function<void(int32_t, int64_t)>* job_ = nullptr;  // guarded by mu_
  uint64_t job_epoch_ = 0;            // guarded by mu_; bumped per job
  int32_t workers_done_ = 0;          // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  std::vector<WorkRange> ranges_;     // one block per worker
  std::atomic<int64_t> steals_{0};
  std::vector<std::thread> threads_;
};

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_THREAD_POOL_H_
