#ifndef LQOLAB_UTIL_THREAD_POOL_H_
#define LQOLAB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lqolab::util {

/// Fixed-size worker pool for data-parallel loops. Workers are created once
/// and reused across ParallelFor calls; each call fans items out through a
/// shared atomic counter (dynamic load balancing), so item-to-worker
/// assignment is scheduling-dependent. Callers that need deterministic
/// results must therefore make each item's outcome a pure function of the
/// item itself — the contract benchkit::ParallelRunner builds on
/// (docs/parallelism.md).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int32_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Signals shutdown and joins all workers.
  ~ThreadPool();

  int32_t size() const { return static_cast<int32_t>(threads_.size()); }

  /// Runs fn(worker_index, item_index) exactly once for every item in
  /// [0, n) and blocks until all items completed. `worker_index` is in
  /// [0, size()): at most one item runs on a given worker index at a time,
  /// so per-worker state needs no locking. Must not be called concurrently
  /// or reentrantly.
  void ParallelFor(int64_t n,
                   const std::function<void(int32_t, int64_t)>& fn);

  /// std::thread::hardware_concurrency() with a fallback of 4 when the
  /// runtime cannot report it.
  static int32_t DefaultParallelism();

 private:
  void WorkerLoop(int32_t worker_index);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // ParallelFor waits for completion
  const std::function<void(int32_t, int64_t)>* job_ = nullptr;  // guarded by mu_
  int64_t job_items_ = 0;             // guarded by mu_
  uint64_t job_epoch_ = 0;            // guarded by mu_; bumped per job
  int32_t workers_done_ = 0;          // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  std::atomic<int64_t> next_item_{0};
  std::vector<std::thread> threads_;
};

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_THREAD_POOL_H_
