#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace lqolab::util {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Percentile(std::vector<double> values, double p) {
  LQOLAB_CHECK(!values.empty());
  LQOLAB_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ConfidenceInterval95(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double se = StdDev(values) / std::sqrt(static_cast<double>(values.size()));
  return 1.96 * se;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

// Shared U computation: returns (U of sample_a, z-score with tie correction).
struct UStat {
  double u_a = 0.0;
  double z = 0.0;
  bool degenerate = false;
};

UStat ComputeU(const std::vector<double>& sample_a,
               const std::vector<double>& sample_b) {
  UStat result;
  const size_t n_a = sample_a.size();
  const size_t n_b = sample_b.size();
  if (n_a == 0 || n_b == 0) {
    result.degenerate = true;
    return result;
  }
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(n_a + n_b);
  for (double v : sample_a) all.push_back({v, true});
  for (double v : sample_b) all.push_back({v, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  // Midranks with tie groups; accumulate tie correction term sum(t^3 - t).
  double rank_sum_a = 0.0;
  double tie_term = 0.0;
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    while (j < all.size() && all[j].value == all[i].value) ++j;
    const double mid_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    const double tie_size = static_cast<double>(j - i);
    tie_term += tie_size * tie_size * tie_size - tie_size;
    for (size_t k = i; k < j; ++k) {
      if (all[k].from_a) rank_sum_a += mid_rank;
    }
    i = j;
  }

  const double na = static_cast<double>(n_a);
  const double nb = static_cast<double>(n_b);
  result.u_a = rank_sum_a - na * (na + 1.0) / 2.0;
  const double mean_u = na * nb / 2.0;
  const double n_total = na + nb;
  const double variance =
      na * nb / 12.0 *
      ((n_total + 1.0) - tie_term / (n_total * (n_total - 1.0)));
  if (variance <= 0.0) {
    result.degenerate = true;
    return result;
  }
  // Continuity correction.
  const double delta = result.u_a - mean_u;
  const double correction = delta > 0 ? -0.5 : (delta < 0 ? 0.5 : 0.0);
  result.z = (delta + correction) / std::sqrt(variance);
  return result;
}

}  // namespace

TestResult MannWhitneyU(const std::vector<double>& sample_a,
                        const std::vector<double>& sample_b) {
  TestResult test;
  const UStat u = ComputeU(sample_a, sample_b);
  if (u.degenerate) return test;
  test.statistic = u.u_a;
  test.p_value = 2.0 * (1.0 - NormalCdf(std::fabs(u.z)));
  test.p_value = std::min(1.0, test.p_value);
  test.significant = test.p_value < 0.05;
  return test;
}

TestResult MannWhitneyULess(const std::vector<double>& sample_a,
                            const std::vector<double>& sample_b) {
  TestResult test;
  const UStat u = ComputeU(sample_a, sample_b);
  if (u.degenerate) return test;
  test.statistic = u.u_a;
  // Alternative a < b: small ranks for a, i.e. small U_a, i.e. negative z.
  test.p_value = NormalCdf(u.z);
  test.significant = test.p_value < 0.05;
  return test;
}

TestResult WelchTTest(const std::vector<double>& sample_a,
                      const std::vector<double>& sample_b) {
  TestResult test;
  if (sample_a.size() < 2 || sample_b.size() < 2) return test;
  const double mean_a = Mean(sample_a);
  const double mean_b = Mean(sample_b);
  const double var_a = Variance(sample_a) / static_cast<double>(sample_a.size());
  const double var_b = Variance(sample_b) / static_cast<double>(sample_b.size());
  const double denom = std::sqrt(var_a + var_b);
  if (denom <= 0.0) {
    // Zero variance: distributions are point masses; significant iff unequal.
    test.significant = mean_a != mean_b;
    test.p_value = test.significant ? 0.0 : 1.0;
    return test;
  }
  test.statistic = (mean_a - mean_b) / denom;
  test.p_value = 2.0 * (1.0 - NormalCdf(std::fabs(test.statistic)));
  test.p_value = std::min(1.0, test.p_value);
  test.significant = test.p_value < 0.05;
  return test;
}

OlsFit OrdinaryLeastSquares(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  LQOLAB_CHECK_EQ(xs.size(), ys.size());
  LQOLAB_CHECK_GE(xs.size(), 2u);
  const double mean_x = Mean(xs);
  const double mean_y = Mean(ys);
  double cov = 0.0;
  double var_x = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - mean_x) * (ys[i] - mean_y);
    var_x += (xs[i] - mean_x) * (xs[i] - mean_x);
  }
  OlsFit fit;
  fit.slope = var_x > 0.0 ? cov / var_x : 0.0;
  fit.intercept = mean_y - fit.slope * mean_x;
  std::vector<double> predicted(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    predicted[i] = fit.slope * xs[i] + fit.intercept;
  }
  fit.r_squared = RSquared(ys, predicted);
  return fit;
}

double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted) {
  LQOLAB_CHECK_EQ(observed.size(), predicted.size());
  LQOLAB_CHECK_GE(observed.size(), 2u);
  const double mean_obs = Mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean_obs) * (observed[i] - mean_obs);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double LeaveOneOutR2(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  LQOLAB_CHECK_EQ(xs.size(), ys.size());
  const size_t n = xs.size();
  LQOLAB_CHECK_GE(n, 3u);
  std::vector<double> predicted(n);
  for (size_t held_out = 0; held_out < n; ++held_out) {
    std::vector<double> train_x;
    std::vector<double> train_y;
    train_x.reserve(n - 1);
    train_y.reserve(n - 1);
    for (size_t i = 0; i < n; ++i) {
      if (i == held_out) continue;
      train_x.push_back(xs[i]);
      train_y.push_back(ys[i]);
    }
    const OlsFit fit = OrdinaryLeastSquares(train_x, train_y);
    predicted[held_out] = fit.slope * xs[held_out] + fit.intercept;
  }
  return RSquared(ys, predicted);
}

}  // namespace lqolab::util
