#ifndef LQOLAB_UTIL_CHECK_H_
#define LQOLAB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lqolab::util {

/// Prints a fatal-error message and aborts. Used by the CHECK macros below;
/// call directly for unconditional failures.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& message) {
  std::fprintf(stderr, "FATAL %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace lqolab::util

/// Aborts with a message when `condition` is false. Active in all build
/// modes: the engine has no exceptions, so invariant violations must stop
/// the process rather than corrupt results.
#define LQOLAB_CHECK(condition)                                        \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::lqolab::util::FatalError(__FILE__, __LINE__,                   \
                                 "CHECK failed: " #condition);         \
    }                                                                  \
  } while (0)

/// CHECK with a streamed explanation: LQOLAB_CHECK_MSG(a < b, a << " " << b).
#define LQOLAB_CHECK_MSG(condition, stream_expr)                       \
  do {                                                                 \
    if (!(condition)) {                                                \
      std::ostringstream lqolab_check_os_;                             \
      lqolab_check_os_ << "CHECK failed: " #condition ": "             \
                       << stream_expr;  /* NOLINT */                   \
      ::lqolab::util::FatalError(__FILE__, __LINE__,                   \
                                 lqolab_check_os_.str());              \
    }                                                                  \
  } while (0)

/// Binary comparison checks that print both operands on failure.
#define LQOLAB_CHECK_OP(op, a, b) \
  LQOLAB_CHECK_MSG((a)op(b), "lhs=" << (a) << " rhs=" << (b))
#define LQOLAB_CHECK_EQ(a, b) LQOLAB_CHECK_OP(==, a, b)
#define LQOLAB_CHECK_NE(a, b) LQOLAB_CHECK_OP(!=, a, b)
#define LQOLAB_CHECK_LT(a, b) LQOLAB_CHECK_OP(<, a, b)
#define LQOLAB_CHECK_LE(a, b) LQOLAB_CHECK_OP(<=, a, b)
#define LQOLAB_CHECK_GT(a, b) LQOLAB_CHECK_OP(>, a, b)
#define LQOLAB_CHECK_GE(a, b) LQOLAB_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define LQOLAB_DCHECK(condition) \
  do {                           \
  } while (0)
#else
#define LQOLAB_DCHECK(condition) LQOLAB_CHECK(condition)
#endif

#endif  // LQOLAB_UTIL_CHECK_H_
