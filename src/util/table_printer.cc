#include "util/table_printer.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace lqolab::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LQOLAB_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  LQOLAB_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatDuration(VirtualNanos nanos) {
  const double ns = static_cast<double>(nanos);
  char buffer[64];
  if (nanos < kNanosPerMicro) {
    std::snprintf(buffer, sizeof(buffer), "%ld ns", static_cast<long>(nanos));
  } else if (nanos < kNanosPerMilli) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", ns / kNanosPerMicro);
  } else if (nanos < kNanosPerSecond) {
    std::snprintf(buffer, sizeof(buffer), "%.1f ms", ns / kNanosPerMilli);
  } else if (nanos < 120 * kNanosPerSecond) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", ns / kNanosPerSecond);
  } else if (nanos < 120ll * 60 * kNanosPerSecond) {
    std::snprintf(buffer, sizeof(buffer), "%.1f min",
                  ns / (60.0 * kNanosPerSecond));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f h",
                  ns / (3600.0 * kNanosPerSecond));
  }
  return buffer;
}

std::string FormatFactor(double factor) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1fx", factor);
  return buffer;
}

}  // namespace lqolab::util
