#ifndef LQOLAB_UTIL_VIRTUAL_CLOCK_H_
#define LQOLAB_UTIL_VIRTUAL_CLOCK_H_

#include <cstdint>

#include "util/check.h"

namespace lqolab::util {

/// Simulated nanoseconds. All latencies in the framework are virtual time:
/// deterministic functions of the work a plan does and of cache state,
/// charged by the executor (see DESIGN.md §4.1).
using VirtualNanos = int64_t;

constexpr VirtualNanos kNanosPerMicro = 1'000;
constexpr VirtualNanos kNanosPerMilli = 1'000'000;
constexpr VirtualNanos kNanosPerSecond = 1'000'000'000;

/// Accumulator for simulated time. Components charge costs against the
/// clock; the executor reads it before/after a plan to report latency and to
/// enforce timeouts without spending real time on catastrophic plans.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances the clock. Negative charges are invariant violations.
  void Charge(VirtualNanos nanos) {
    LQOLAB_DCHECK(nanos >= 0);
    now_ += nanos;
  }

  VirtualNanos now() const { return now_; }

  void Reset() { now_ = 0; }

 private:
  VirtualNanos now_ = 0;
};

}  // namespace lqolab::util

#endif  // LQOLAB_UTIL_VIRTUAL_CLOCK_H_
