#ifndef LQOLAB_ENGINE_EXEC_BATCH_H_
#define LQOLAB_ENGINE_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/database.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "util/thread_pool.h"

namespace lqolab::engine {

/// One forced-plan execution in a batch.
struct PlanExec {
  const query::Query* query = nullptr;
  const optimizer::PhysicalPlan* plan = nullptr;
  /// Statement timeout override; 0 uses the configured timeout.
  util::VirtualNanos timeout_ns = 0;
};

/// Executes batches of independent forced plans across isolated worker
/// replicas of one Database (the training-episode counterpart of
/// benchkit::ParallelRunner). Every execution replays from the canonical
/// per-query state: caches dropped, warm-up stage set to the number of
/// prior executions of that query through this executor (assigned serially
/// in batch order), noise stream derived from
/// MixSeed(global_seed, QueryFingerprint(q), run_index). Results are
/// therefore a pure function of (storage, config, batch history, seed) —
/// independent of worker count and scheduling — while still reproducing the
/// serial warm-up trajectory of repeated executions.
class BatchExecutor {
 public:
  /// Builds `parallelism` replicas of `db` (>= 1; `db` must outlive the
  /// executor and is never touched by Execute).
  BatchExecutor(Database* db, uint64_t global_seed, int32_t parallelism);
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  int32_t parallelism() const { return pool_.size(); }

  /// Executes every entry of `batch` and returns the runs in batch order.
  std::vector<QueryRun> Execute(const std::vector<PlanExec>& batch);

 private:
  uint64_t seed_;
  std::vector<std::unique_ptr<Database>> replicas_;
  util::ThreadPool pool_;
  /// Executions seen per query fingerprint (drives warm-up replay).
  std::unordered_map<uint64_t, int64_t> exec_counts_;
};

}  // namespace lqolab::engine

#endif  // LQOLAB_ENGINE_EXEC_BATCH_H_
