#ifndef LQOLAB_ENGINE_SHARED_CONTEXT_H_
#define LQOLAB_ENGINE_SHARED_CONTEXT_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "stats/column_stats.h"
#include "storage/index.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace lqolab::engine {

/// Everything about a database that is immutable once the build pipeline
/// (datagen -> BuildIndexes -> ANALYZE -> optional sharding) has run: the
/// catalog, the column segments and their string dictionaries, the
/// secondary indexes, the per-column statistics (MCVs, histograms) and the
/// optional hash-partitioned shard layout.
///
/// Database assembles one SharedContext per build, then freezes it behind
/// `shared_ptr<const SharedContext>`. Worker replicas
/// (Database::CloneContextForWorker) copy only that pointer — cloning is
/// O(1) regardless of data size — and layer their own mutable state (buffer
/// pools, warm-up counters, noise RNG, metrics sinks) on top in
/// exec::DbContext. Nothing here is written after the freeze, so concurrent
/// readers need no synchronization (tests/test_parallel_runner.cc stresses
/// this under TSAN).
struct SharedContext {
  catalog::Schema schema;
  std::vector<std::shared_ptr<storage::Table>> tables;
  /// Secondary indexes keyed by (table, column).
  std::map<std::pair<catalog::TableId, catalog::ColumnId>,
           std::shared_ptr<storage::Index>>
      indexes;
  /// ANALYZE output, one entry per table.
  std::vector<stats::TableStats> table_stats;
  /// Hash-partitioned shard layout; null unless DbConfig::table_shards > 1
  /// at build time.
  std::shared_ptr<const storage::ShardedTableSet> shards;
};

}  // namespace lqolab::engine

#endif  // LQOLAB_ENGINE_SHARED_CONTEXT_H_
