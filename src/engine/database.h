#ifndef LQOLAB_ENGINE_DATABASE_H_
#define LQOLAB_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "datagen/imdb_generator.h"
#include "datagen/tpch_generator.h"
#include "engine/config.h"
#include "engine/shared_context.h"
#include "exec/db_context.h"
#include "exec/executor.h"
#include "exec/oracle.h"
#include "optimizer/planner.h"
#include "query/query.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

namespace lqolab::engine {

/// Pages corresponding to a Table 2 memory setting in MB (after
/// kMemoryScale, see engine/config.h).
int64_t ScaledPages(int64_t mb);

/// Outcome of one planned-and-executed query.
struct QueryRun {
  /// Execution outcome classification (see exec::ExecutionResult::status):
  /// OK, kDeadlineExceeded (== timed_out), a cancel code, or an injected
  /// fault code. Success paths never change: default status is OK.
  util::Status status;
  util::VirtualNanos planning_ns = 0;
  util::VirtualNanos execution_ns = 0;
  bool timed_out = false;
  int64_t result_rows = 0;
  int64_t pages_accessed = 0;
  bool used_geqo = false;
  double estimated_cost = 0.0;
  /// True output rows per plan node (parallel to the plan's node array;
  /// -1 where the oracle count overflowed).
  std::vector<int64_t> node_rows;
  /// Full per-node statistics (rows, loops, self time, buffer tiers);
  /// same order as node_rows. Input to obs::ExplainAnalyzeText/Json.
  std::vector<exec::PlanNodeStats> node_stats;

  // --- Adaptive re-optimization (ExecutePlanAdaptive only) ---------------
  /// Cancel-and-replan rounds taken (0 = the given plan ran straight
  /// through; node_rows/node_stats always describe the final attempt).
  int32_t replans = 0;
  /// Prefix virtual time paid by abandoned attempts (inside execution_ns).
  util::VirtualNanos replan_wasted_ns = 0;
  /// Modeled planning time of the replan rounds (inside execution_ns, not
  /// planning_ns: it is spent mid-execution).
  util::VirtualNanos replan_planning_ns = 0;
  /// The plan the final attempt executed, set only when replans > 0 (the
  /// caller's plan is otherwise the executed plan). Shared because QueryRun
  /// is copied around freely.
  std::shared_ptr<const optimizer::PhysicalPlan> replanned_plan;
  /// Cardinality truths accumulated across replan rounds, set only when
  /// replans > 0. Feeding these back as `seed_pins` of a later
  /// ExecutePlanAdaptive call (the serve path's plan-cache feedback) lets
  /// repeat arrivals run the corrected plan without re-paying divergence
  /// detection and replan planning time.
  std::shared_ptr<const exec::CardinalityPins> replan_pins;

  util::VirtualNanos total_ns() const { return planning_ns + execution_ns; }
};

/// "pglite": the PostgreSQL-like engine facade. Owns the schema, data,
/// indexes, statistics, buffer cache, true-cardinality oracle, planner and
/// executor of one database instance, plus the per-query warm-up state that
/// models hot/cold-cache convergence (§7.3 / Fig. 4).
class Database {
 public:
  struct Options {
    datagen::ScaleProfile profile = datagen::ScaleProfile::Medium();
    uint64_t seed = 42;
    DbConfig config = DbConfig::OurFramework();
  };

  /// Generates the synthetic IMDB, builds indexes and runs ANALYZE.
  static std::unique_ptr<Database> CreateImdb(const Options& options);

  /// Generates the synthetic TPC-H-lite database (Options::profile is
  /// ignored; the star/snowflake row counts come from `profile`).
  static std::unique_ptr<Database> CreateTpch(
      const Options& options,
      const datagen::TpchScaleProfile& profile =
          datagen::TpchScaleProfile::Medium());

  /// Wraps pre-built tables under an explicit schema (e.g. the subsampled
  /// databases of Fig. 7).
  static std::unique_ptr<Database> FromTables(
      const Options& options, catalog::Schema schema,
      std::vector<std::shared_ptr<storage::Table>> tables);

  /// Wraps pre-built IMDB tables (schema defaults to BuildImdbSchema).
  static std::unique_ptr<Database> FromTables(
      const Options& options,
      std::vector<std::shared_ptr<storage::Table>> tables);

  /// Creates an isolated worker replica for parallel measurement. O(1) in
  /// database size: the replica adopts this instance's frozen
  /// engine::SharedContext (catalog, column segments, dictionaries,
  /// indexes, statistics, shard layout) by shared_ptr — nothing is copied —
  /// and owns only fresh per-replica state: buffer pools, oracle, planner,
  /// executor, warm-up counters and the noise stream. Executions on the
  /// replica never observe or perturb the parent (or any sibling). Pair
  /// with BeginQueryReplay() for scheduling-independent results.
  std::unique_ptr<Database> CloneContextForWorker() const;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const catalog::Schema& schema() const { return *ctx_.schema; }
  const DbConfig& config() const { return ctx_.config; }
  /// Generation seed; worker replicas inherit it, and serve::QueryServer
  /// adopts it as the default replay seed.
  uint64_t seed() const { return seed_; }
  exec::DbContext& context() { return ctx_; }
  exec::Oracle& oracle() { return *oracle_; }
  const optimizer::Planner& planner() const { return *planner_; }

  /// Changes the configuration. Memory-sizing changes resize (and thus
  /// clear) the buffer cache; pure planner switches (enable_*, geqo) do
  /// not — Bao-style hint sets can be applied per query without losing
  /// cache state. Aborts on an invalid (e.g. non-positive memory) config;
  /// use TrySetConfig where allocation pressure must degrade gracefully.
  void SetConfig(const DbConfig& config);

  /// Like SetConfig, but returns kResourceExhausted instead of aborting
  /// when the memory sizing cannot be satisfied (non-positive or
  /// overflowing shared_buffers/ram). On error the configuration and the
  /// buffer cache are left unchanged.
  util::Status TrySetConfig(const DbConfig& config);

  /// Plans a query under the current configuration; returns the plan plus
  /// the modeled planning time.
  struct Planned {
    optimizer::PhysicalPlan plan;
    util::VirtualNanos planning_ns = 0;
    double estimated_cost = 0.0;
    bool used_geqo = false;
    int64_t planner_steps = 0;
  };
  Planned PlanQuery(const query::Query& q);

  /// A SQL statement parsed and bound against this database's schema, plus
  /// its normalized template identity (constants stripped) — the plan-cache
  /// key material of the serve SQL route.
  struct PreparedSql {
    query::Query query;
    /// sql::NormalizeSqlTemplate over the statement text.
    std::string normalized_template;
    /// sql::SqlTemplateFingerprint(normalized_template).
    uint64_t template_fingerprint = 0;
  };

  /// Parses and binds `sql` (see docs/sql.md for the accepted grammar).
  /// Returns kInvalidArgument with a "line:col:"-anchored diagnostic on
  /// malformed text; never aborts. `id` (optional) names the query the way
  /// workload files do ("13a", "c7b") and maps to template/variant through
  /// sql::AssignQueryId. Read-only: no planning or execution happens.
  util::Status PrepareSql(const std::string& sql, PreparedSql* out,
                          const std::string& id = "adhoc") const;

  /// Executes a caller-provided plan (the pg_hint_plan path used by LQOs).
  /// Applies warm-up state and execution noise; mutates cache state.
  /// `timeout_ns` overrides the configured statement timeout when > 0
  /// (Balsa-style training timeouts). A non-null `deadline` lets another
  /// thread cancel the execution mid-plan (serve shutdown); the cancel code
  /// surfaces in QueryRun::status.
  QueryRun ExecutePlan(const query::Query& q,
                       const optimizer::PhysicalPlan& plan,
                       util::VirtualNanos planning_ns = 0,
                       util::VirtualNanos timeout_ns = 0,
                       const exec::QueryDeadline* deadline = nullptr);

  /// ExecutePlan with mid-query adaptive re-optimization
  /// (docs/overload.md): when an observed node cardinality diverges from
  /// its estimate past DbConfig::replan_qerror_threshold, the attempt is
  /// abandoned (its prefix latency is kept), the observed truths are pinned
  /// into the estimator, the query is re-planned and re-executed, at most
  /// replan_max_per_query times. Results are byte-identical to ExecutePlan
  /// — only latency, plan choice and the replan_* QueryRun fields differ.
  /// Pass-through to ExecutePlan when DbConfig::adaptive_replan is false.
  /// A non-null `seed_pins` pre-loads cardinality truths from an earlier
  /// adaptive run (QueryRun::replan_pins) so the estimator starts corrected.
  QueryRun ExecutePlanAdaptive(const query::Query& q,
                               const optimizer::PhysicalPlan& plan,
                               util::VirtualNanos planning_ns = 0,
                               util::VirtualNanos timeout_ns = 0,
                               const exec::QueryDeadline* deadline = nullptr,
                               const exec::CardinalityPins* seed_pins = nullptr);

  /// Plans and executes.
  QueryRun Run(const query::Query& q);

  /// EXPLAIN ANALYZE: plans, executes, and renders the plan tree
  /// PostgreSQL-style — per node estimated vs actual rows, loops, virtual
  /// time and buffer-tier breakdown, then the planning/execution summary
  /// (see docs/observability.md for a worked example). Execution has the
  /// usual cache side effects.
  std::string ExplainAnalyze(const query::Query& q);

  /// Same measurement as ExplainAnalyze, rendered as one line of JSON
  /// (nested "children" arrays mirror the plan tree).
  std::string ExplainAnalyzeJson(const query::Query& q);

  /// Total database size in heap pages.
  int64_t TotalPages() const;

  /// Drops both cache tiers and all warm-up state (full cold start).
  void DropCaches();

  /// Resets this instance to the canonical replay state for `q`: cold
  /// caches and a noise stream derived from
  /// MixSeed(global_seed, QueryFingerprint(q), salt). After this call the
  /// next ExecutePlan(q, ...) result is a pure function of
  /// (storage, config, q, global_seed, salt) — independent of which worker
  /// runs it, in which order, at which parallelism (docs/parallelism.md).
  void BeginQueryReplay(uint64_t global_seed, const query::Query& q,
                        uint64_t salt = 0);

  /// Forces the warm-up stage of `q`: the next execution behaves as the
  /// (run_index+1)-th run since the last cache drop. Lets a replayed run
  /// sequence reproduce the serial warm-up trajectory regardless of how
  /// runs are batched across workers.
  void SetWarmupStage(const query::Query& q, int64_t run_index);

  /// Number of times a query signature has executed since the last cache
  /// drop (drives the warm-up multiplier).
  int64_t RunCount(const query::Query& q) const;

 private:
  explicit Database(const Options& options);

  /// Indexes + ANALYZE + optional sharding over an assembled (schema,
  /// tables) SharedContext, then freezes it into ctx_ and initializes the
  /// per-replica runtime. The build-time half of every factory.
  void FinishBuild(std::shared_ptr<SharedContext> shared);
  void BuildIndexes(SharedContext& shared);
  static void Analyze(SharedContext& shared);
  void InitRuntime();
  double WarmupMultiplier(const query::Query& q);

  uint64_t seed_;
  exec::DbContext ctx_;
  std::unique_ptr<exec::Oracle> oracle_;
  std::unique_ptr<optimizer::Planner> planner_;
  std::unique_ptr<exec::Executor> executor_;
  std::unordered_map<uint64_t, int64_t> run_counts_;
  util::Rng noise_rng_;
};

}  // namespace lqolab::engine

#endif  // LQOLAB_ENGINE_DATABASE_H_
