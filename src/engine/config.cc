#include "engine/config.h"

namespace lqolab::engine {

DbConfig DbConfig::Default() { return DbConfig{}; }

DbConfig DbConfig::JobPaper() {
  DbConfig c;
  c.name = "job_paper";
  c.geqo_threshold = 18;
  c.work_mem_mb = 2 * 1024;
  c.shared_buffers_mb = 4 * 1024;
  c.effective_cache_size_mb = 32 * 1024;
  c.ram_mb = 64 * 1024;
  return c;
}

DbConfig DbConfig::Bao() {
  DbConfig c;
  c.name = "bao";
  c.shared_buffers_mb = 4 * 1024;
  c.ram_mb = 15 * 1024;
  return c;
}

DbConfig DbConfig::BalsaLeon() {
  DbConfig c;
  c.name = "balsa_leon";
  c.geqo = false;
  c.work_mem_mb = 4 * 1024;
  c.shared_buffers_mb = 32 * 1024;
  c.temp_buffers_mb = 32 * 1024;
  c.max_worker_processes = 8;
  c.enable_bitmapscan = false;
  c.enable_tidscan = false;
  c.ram_mb = 64 * 1024;
  return c;
}

DbConfig DbConfig::Loger() {
  DbConfig c;
  c.name = "loger";
  c.geqo = false;
  c.shared_buffers_mb = 64 * 1024;
  c.max_parallel_workers = 1;
  c.max_parallel_workers_per_gather = 1;
  c.ram_mb = 256 * 1024;
  return c;
}

DbConfig DbConfig::Lero() {
  DbConfig c;
  c.name = "lero";
  c.max_parallel_workers = 0;
  c.max_parallel_workers_per_gather = 0;
  c.ram_mb = 512 * 1024;
  return c;
}

DbConfig DbConfig::OurFramework() {
  DbConfig c;
  c.name = "our_framework";
  // GEQO stays on only when pglite fully controls execution (footnote 1 of
  // Table 2); the engine honors the flag as given here.
  c.geqo = true;
  c.work_mem_mb = 4 * 1024;
  c.shared_buffers_mb = 32 * 1024;
  c.temp_buffers_mb = 32 * 1024;
  c.effective_cache_size_mb = 32 * 1024;
  c.max_worker_processes = 8;
  c.ram_mb = 64 * 1024;
  return c;
}

std::vector<DbConfig> DbConfig::Table2Presets() {
  return {Default(), JobPaper(), Bao(),  BalsaLeon(),
          Loger(),   Lero(),     OurFramework()};
}

}  // namespace lqolab::engine
