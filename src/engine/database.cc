#include "engine/database.h"

#include <cmath>
#include <functional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "catalog/imdb_schema.h"
#include "catalog/tpch_schema.h"
#include "exec/cost_constants.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "sql/binder.h"
#include "sql/template.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace lqolab::engine {

namespace cost = exec::cost;
using catalog::imdb::Table;
using util::VirtualNanos;

int64_t ScaledPages(int64_t mb) {
  return std::max<int64_t>(16, ScaledBytes(mb) / storage::kPageSizeBytes);
}

Database::Database(const Options& options)
    : seed_(options.seed), noise_rng_(options.seed ^ 0xabcdefULL) {
  ctx_.config = options.config;
}

std::unique_ptr<Database> Database::CreateImdb(const Options& options) {
  std::unique_ptr<Database> db(new Database(options));
  auto shared = std::make_shared<SharedContext>();
  shared->schema = catalog::BuildImdbSchema();
  for (auto& table :
       datagen::GenerateImdb(shared->schema, options.profile, options.seed)) {
    shared->tables.push_back(std::move(table));
  }
  db->FinishBuild(std::move(shared));
  return db;
}

std::unique_ptr<Database> Database::CreateTpch(
    const Options& options, const datagen::TpchScaleProfile& profile) {
  std::unique_ptr<Database> db(new Database(options));
  auto shared = std::make_shared<SharedContext>();
  shared->schema = catalog::BuildTpchSchema();
  for (auto& table :
       datagen::GenerateTpch(shared->schema, profile, options.seed)) {
    shared->tables.push_back(std::move(table));
  }
  db->FinishBuild(std::move(shared));
  return db;
}

std::unique_ptr<Database> Database::FromTables(
    const Options& options, catalog::Schema schema,
    std::vector<std::shared_ptr<storage::Table>> tables) {
  std::unique_ptr<Database> db(new Database(options));
  auto shared = std::make_shared<SharedContext>();
  shared->schema = std::move(schema);
  LQOLAB_CHECK_EQ(static_cast<int32_t>(tables.size()),
                  shared->schema.table_count());
  shared->tables = std::move(tables);
  db->FinishBuild(std::move(shared));
  return db;
}

std::unique_ptr<Database> Database::FromTables(
    const Options& options,
    std::vector<std::shared_ptr<storage::Table>> tables) {
  return FromTables(options, catalog::BuildImdbSchema(), std::move(tables));
}

void Database::FinishBuild(std::shared_ptr<SharedContext> shared) {
  BuildIndexes(*shared);
  Analyze(*shared);
  if (ctx_.config.table_shards > 1) {
    shared->shards = std::make_shared<const storage::ShardedTableSet>(
        shared->tables, ctx_.config.table_shards);
  }
  // Freeze: from here on the shared context is only ever read.
  ctx_.shared = std::move(shared);
  ctx_.schema = &ctx_.shared->schema;
  InitRuntime();
}

std::unique_ptr<Database> Database::CloneContextForWorker() const {
  Options options;
  options.seed = seed_;
  options.config = ctx_.config;
  std::unique_ptr<Database> db(new Database(options));
  // The whole post-build state transfers as one refcount bump; only the
  // per-replica runtime (buffer pools, oracle, planner, executor) is built.
  db->ctx_.shared = ctx_.shared;
  db->ctx_.schema = ctx_.schema;
  db->InitRuntime();
  return db;
}

void Database::BuildIndexes(SharedContext& shared) {
  // Primary keys and every foreign key (the JOB index set of Leis et al.,
  // which already includes Balsa's two complete_cast additions), plus the
  // filter-column indexes listed in DESIGN.md.
  const catalog::Schema& schema = shared.schema;
  std::set<std::pair<catalog::TableId, catalog::ColumnId>> wanted;
  for (catalog::TableId t = 0; t < schema.table_count(); ++t) {
    wanted.insert({t, 0});  // id
    for (const auto& fk : schema.table(t).foreign_keys) {
      wanted.insert({t, fk.column});
    }
  }
  // Resolved by name so the one list serves every schema this engine
  // builds; pairs whose table doesn't exist in the current schema are
  // skipped (the IMDB entries resolve exactly as before, keeping the IMDB
  // index set — and thus every golden plan — unchanged).
  const std::vector<std::pair<const char*, const char*>> filter_indexes = {
      // IMDB (the JOB filter columns of DESIGN.md).
      {"title", "production_year"}, {"title", "episode_nr"},
      {"keyword", "keyword"},       {"company_name", "country_code"},
      {"name", "name_pcode_cf"},    {"name", "gender"},
      {"movie_info", "info"},       {"movie_info_idx", "info"},
      {"cast_info", "note"},        {"kind_type", "kind"},
      {"info_type", "info"},        {"company_type", "kind"},
      {"role_type", "role"},        {"link_type", "link"},
      {"comp_cast_type", "kind"},
      // TPC-H-lite filter columns.
      {"orders", "orderdate"},      {"lineitem", "shipdate"},
      {"customer", "mktsegment"},   {"part", "brand"}};
  for (const auto& [table_name, column_name] : filter_indexes) {
    const catalog::TableId table = schema.FindTable(table_name);
    if (table == catalog::kInvalidTable) continue;
    const catalog::ColumnId col = schema.table(table).FindColumn(column_name);
    LQOLAB_CHECK_NE(col, catalog::kInvalidColumn);
    wanted.insert({table, col});
  }
  for (const auto& [table, column] : wanted) {
    shared.indexes[{table, column}] = std::make_shared<storage::Index>(
        *shared.tables[static_cast<size_t>(table)], column);
  }
}

void Database::Analyze(SharedContext& shared) {
  shared.table_stats.clear();
  shared.table_stats.reserve(shared.tables.size());
  for (const auto& table : shared.tables) {
    shared.table_stats.push_back(stats::Analyze(*table));
  }
}

namespace {

/// Per-shard pool capacity: the configured capacity split evenly across
/// shards (floored like ScaledPages so tiny configs stay usable).
int64_t ShardPages(int64_t mb, int32_t num_shards) {
  return std::max<int64_t>(16, ScaledPages(mb) / num_shards);
}

}  // namespace

void Database::InitRuntime() {
  ctx_.buffer_pool = std::make_unique<storage::BufferPool>(
      ScaledPages(ctx_.config.shared_buffers_mb),
      ScaledPages(ctx_.config.ram_mb));
  ctx_.shard_pools.clear();
  if (const storage::ShardedTableSet* shards = ctx_.shards()) {
    const int32_t n = shards->num_shards();
    for (int32_t s = 0; s < n; ++s) {
      ctx_.shard_pools.push_back(std::make_unique<storage::BufferPool>(
          ShardPages(ctx_.config.shared_buffers_mb, n),
          ShardPages(ctx_.config.ram_mb, n)));
    }
  }
  oracle_ = std::make_unique<exec::Oracle>(&ctx_);
  planner_ = std::make_unique<optimizer::Planner>(&ctx_);
  executor_ = std::make_unique<exec::Executor>(&ctx_, oracle_.get());
}

void Database::SetConfig(const DbConfig& config) {
  LQOLAB_CHECK(TrySetConfig(config).ok());
}

util::Status Database::TrySetConfig(const DbConfig& config) {
  DbConfig next = config;
  // Sharding is physical layout, fixed when the tables were partitioned at
  // build time: the built value is preserved no matter what the incoming
  // config says (see DbConfig::table_shards).
  next.table_shards = ctx_.config.table_shards;
  const bool memory_changed =
      next.shared_buffers_mb != ctx_.config.shared_buffers_mb ||
      next.ram_mb != ctx_.config.ram_mb;
  if (memory_changed) {
    if (next.shared_buffers_mb <= 0 || next.ram_mb <= 0) {
      return util::Status(util::StatusCode::kResourceExhausted,
                          "non-positive buffer sizing");
    }
    const util::Status status =
        ctx_.buffer_pool->TryResize(ScaledPages(next.shared_buffers_mb),
                                    ScaledPages(next.ram_mb));
    if (!status.ok()) return status;  // Old config and caches intact.
    const int32_t n = static_cast<int32_t>(ctx_.shard_pools.size());
    for (auto& pool : ctx_.shard_pools) {
      // Strictly smaller positive capacities than the main resize that just
      // succeeded, so this cannot fail.
      LQOLAB_CHECK(pool->TryResize(ShardPages(next.shared_buffers_mb, n),
                                   ShardPages(next.ram_mb, n))
                       .ok());
    }
    run_counts_.clear();
  }
  ctx_.config = next;
  return util::Status::Ok();
}

int64_t Database::TotalPages() const {
  int64_t pages = 0;
  for (const auto& table : ctx_.tables()) pages += table->page_count();
  return pages;
}

util::Status Database::PrepareSql(const std::string& sql, PreparedSql* out,
                                  const std::string& id) const {
  query::Query q;
  const util::Status bound = sql::ParseAndBindSql(sql, schema(), &q);
  if (!bound.ok()) return bound;
  sql::AssignQueryId(id, &q);
  out->query = std::move(q);
  out->normalized_template = sql::NormalizeSqlTemplate(sql);
  out->template_fingerprint = sql::SqlTemplateFingerprint(sql);
  return util::Status::Ok();
}

Database::Planned Database::PlanQuery(const query::Query& q) {
  const optimizer::PlanningResult result = planner_->Plan(q);
  Planned planned;
  planned.plan = result.plan;
  planned.estimated_cost = result.estimated_cost;
  planned.used_geqo = result.used_geqo;
  planned.planner_steps = result.planner_steps;

  // Modeled planning time: a per-relation baseline plus a per-step cost;
  // when effective_cache_size is small relative to the database, planning
  // pays extra per-step probe costs (the Table 2 planning-time effect).
  double planning =
      static_cast<double>(q.relation_count()) * cost::kPlanPerRelationNs +
      static_cast<double>(result.planner_steps) * cost::kPlanStepNs;
  const double cached = planner_->cost_model().CachedFraction();
  planning += (1.0 - cached) * static_cast<double>(result.planner_steps) *
              cost::kPlanColdProbeNs;
  planned.planning_ns = static_cast<VirtualNanos>(planning);
  obs::Observe(obs::Histogram::kPlanningLatencyNs, planned.planning_ns);
  return planned;
}

double Database::WarmupMultiplier(const query::Query& q) {
  const uint64_t fp = exec::QueryFingerprint(q);
  const int64_t runs = run_counts_[fp]++;
  if (runs == 0) return 1.0 + cost::kFirstRunPenalty;
  if (runs == 1) return 1.0 + cost::kSecondRunPenalty;
  return 1.0;
}

QueryRun Database::ExecutePlan(const query::Query& q,
                               const optimizer::PhysicalPlan& plan,
                               VirtualNanos planning_ns,
                               VirtualNanos timeout_ns,
                               const exec::QueryDeadline* deadline) {
  const double warm = WarmupMultiplier(q);
  const double noise =
      std::exp(noise_rng_.Gaussian(0.0, cost::kNoiseSigma));
  const VirtualNanos timeout =
      timeout_ns > 0 ? timeout_ns
                     : ctx_.config.statement_timeout_ms * util::kNanosPerMilli;
  const exec::ExecutionResult result =
      executor_->Execute(q, plan, timeout, warm * noise, deadline);
  QueryRun run;
  run.status = result.status;
  run.planning_ns = planning_ns;
  run.execution_ns = result.execution_ns;
  run.timed_out = result.timed_out;
  run.result_rows = result.result_rows;
  run.pages_accessed = result.pages_accessed;
  run.node_rows = result.node_rows;
  run.node_stats = result.node_stats;
  obs::Count(obs::Counter::kExecPlansExecuted);
  if (run.timed_out) obs::Count(obs::Counter::kExecTimeouts);
  obs::Observe(obs::Histogram::kExecutionLatencyNs, run.execution_ns);
  return run;
}

QueryRun Database::ExecutePlanAdaptive(const query::Query& q,
                                       const optimizer::PhysicalPlan& plan,
                                       VirtualNanos planning_ns,
                                       VirtualNanos timeout_ns,
                                       const exec::QueryDeadline* deadline,
                                       const exec::CardinalityPins* seed_pins) {
  if (!ctx_.config.adaptive_replan) {
    return ExecutePlan(q, plan, planning_ns, timeout_ns, deadline);
  }
  // One warm-up step and one noise draw for the whole query, shared by
  // every attempt: a replan continues the same query run, it does not
  // start a new one.
  const double warm = WarmupMultiplier(q);
  const double noise = std::exp(noise_rng_.Gaussian(0.0, cost::kNoiseSigma));
  const double mult = warm * noise;
  const VirtualNanos timeout =
      timeout_ns > 0 ? timeout_ns
                     : ctx_.config.statement_timeout_ms * util::kNanosPerMilli;

  // Pins and the spooled-intermediate set live on the context for the
  // duration of the adaptive loop so the estimator and cost model
  // (re-planning) and the monitor (re-execution) all see them.
  exec::CardinalityPins pins;
  if (seed_pins != nullptr) pins = *seed_pins;
  // Intermediates fully materialized (and paid for) by abandoned attempts,
  // keyed by alias mask; the re-planner prices them at spool re-read cost
  // and later attempts read them back instead of recomputing their
  // subtrees (exec::ReplanMonitor::materialized).
  std::unordered_map<uint32_t, int64_t> materialized;
  struct PinGuard {
    exec::DbContext* ctx;
    ~PinGuard() {
      ctx->card_pins = nullptr;
      ctx->spooled = nullptr;
    }
  } guard{&ctx_};
  ctx_.card_pins = &pins;
  ctx_.spooled = &materialized;

  QueryRun run;
  run.planning_ns = planning_ns;
  optimizer::PhysicalPlan current = plan;
  VirtualNanos spent = 0;  // Abandoned prefixes + replan planning time.
  int32_t replans = 0;
  for (;;) {
    const bool monitor_armed = replans < ctx_.config.replan_max_per_query;
    if (!monitor_armed && replans > 0) {
      obs::Count(obs::Counter::kExecReplanCapped);
    }
    exec::ReplanMonitor monitor;
    // A null estimator disables the divergence trigger, so a capped attempt
    // still reuses the spooled intermediates without ever replanning again.
    monitor.estimator = monitor_armed ? &planner_->estimator() : nullptr;
    monitor.pins = &pins;
    monitor.qerror_threshold = ctx_.config.replan_qerror_threshold;
    monitor.min_rows = ctx_.config.replan_min_rows;
    monitor.materialized = materialized;
    const bool pass_monitor = monitor_armed || !materialized.empty();
    const exec::ExecutionResult result =
        executor_->Execute(q, current, timeout - spent, mult, deadline,
                           pass_monitor ? &monitor : nullptr);
    if (!result.replan_requested) {
      run.status = result.status;
      run.execution_ns = spent + result.execution_ns;
      run.timed_out = result.timed_out;
      run.result_rows = result.result_rows;
      run.pages_accessed = result.pages_accessed;
      run.node_rows = result.node_rows;
      run.node_stats = result.node_stats;
      break;
    }
    // Divergence: keep the prefix latency, pin every observed truth, then
    // re-plan the remainder with the estimator grounded on those pins.
    obs::Count(obs::Counter::kExecReplans);
    spent += result.execution_ns;
    run.replan_wasted_ns += result.execution_ns;
    ++replans;
    for (const auto& [mask, rows] : monitor.observed) {
      pins.Pin(mask, static_cast<double>(rows));
    }
    for (const auto& [mask, rows] : result.completed) {
      materialized[mask] = rows;
    }
    const Planned replanned = PlanQuery(q);
    spent += replanned.planning_ns;
    run.replan_planning_ns += replanned.planning_ns;
    if (replanned.plan == current) {
      obs::Count(obs::Counter::kExecReplanNoChange);
    }
    current = replanned.plan;
    if (spent >= timeout) {
      // The wasted attempts alone exhausted the statement timeout.
      run.status = util::Status(util::StatusCode::kDeadlineExceeded,
                                "statement timeout");
      run.execution_ns = timeout;
      run.timed_out = true;
      break;
    }
  }
  run.replans = replans;
  if (replans > 0) {
    run.replanned_plan =
        std::make_shared<const optimizer::PhysicalPlan>(std::move(current));
    run.replan_pins = std::make_shared<const exec::CardinalityPins>(pins);
  }
  obs::Count(obs::Counter::kExecPlansExecuted);
  if (run.timed_out) obs::Count(obs::Counter::kExecTimeouts);
  obs::Observe(obs::Histogram::kExecutionLatencyNs, run.execution_ns);
  return run;
}

QueryRun Database::Run(const query::Query& q) {
  const Planned planned = PlanQuery(q);
  QueryRun run = ExecutePlan(q, planned.plan, planned.planning_ns);
  run.used_geqo = planned.used_geqo;
  run.estimated_cost = planned.estimated_cost;
  return run;
}

int64_t Database::RunCount(const query::Query& q) const {
  auto it = run_counts_.find(exec::QueryFingerprint(q));
  return it == run_counts_.end() ? 0 : it->second;
}

void Database::DropCaches() {
  ctx_.buffer_pool->DropCaches();
  for (auto& pool : ctx_.shard_pools) pool->DropCaches();
  run_counts_.clear();
}

void Database::BeginQueryReplay(uint64_t global_seed, const query::Query& q,
                                uint64_t salt) {
  DropCaches();
  noise_rng_ =
      util::Rng(util::MixSeed(global_seed, exec::QueryFingerprint(q), salt));
}

void Database::SetWarmupStage(const query::Query& q, int64_t run_index) {
  LQOLAB_CHECK_GE(run_index, 0);
  run_counts_[exec::QueryFingerprint(q)] = run_index;
}

namespace {

obs::ExplainInput BuildExplainInput(const query::Query& q,
                                    const catalog::Schema& schema,
                                    const optimizer::Planner& planner,
                                    const Database::Planned& planned,
                                    const QueryRun& run) {
  obs::ExplainInput in;
  in.query = &q;
  in.schema = &schema;
  in.plan = &planned.plan;
  in.estimated_rows.reserve(planned.plan.nodes.size());
  for (const optimizer::PlanNode& node : planned.plan.nodes) {
    in.estimated_rows.push_back(
        planner.estimator().EstimateJoinRows(q, node.mask));
  }
  in.node_stats = run.node_stats;
  in.planning_ns = run.planning_ns;
  in.execution_ns = run.execution_ns;
  in.timed_out = run.timed_out;
  return in;
}

}  // namespace

std::string Database::ExplainAnalyze(const query::Query& q) {
  const Planned planned = PlanQuery(q);
  const QueryRun run = ExecutePlan(q, planned.plan, planned.planning_ns);
  return obs::ExplainAnalyzeText(
      BuildExplainInput(q, schema(), *planner_, planned, run));
}

std::string Database::ExplainAnalyzeJson(const query::Query& q) {
  const Planned planned = PlanQuery(q);
  const QueryRun run = ExecutePlan(q, planned.plan, planned.planning_ns);
  return obs::ExplainAnalyzeJson(
      BuildExplainInput(q, schema(), *planner_, planned, run));
}

}  // namespace lqolab::engine
