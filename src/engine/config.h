#ifndef LQOLAB_ENGINE_CONFIG_H_
#define LQOLAB_ENGINE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lqolab::engine {

/// Divisor applied when converting Table 2's memory settings (sized for the
/// real 3.6 GB IMDB) to capacities over the ~165 MB synthetic database, so
/// the presets keep their relative cache-pressure semantics (DESIGN.md §1).
inline constexpr int64_t kMemoryScale = 32;

/// Bytes corresponding to a Table 2 memory setting in MB, after scaling.
inline constexpr int64_t ScaledBytes(int64_t mb) {
  return mb * 1024 * 1024 / kMemoryScale;
}

/// DBMS configuration: the pglite equivalents of the PostgreSQL parameters
/// the paper compares in Table 2, plus the planner's enable_* switches used
/// by the ablations (Figs. 8-9) and by hint sets (Bao).
/// Cardinality-estimator variants for the estimator-design ablation bench
/// (DESIGN.md design decision 2): the full estimator, one without the
/// MCV-based equi-join selectivity, and the naive full-product formula.
enum class EstimatorMode {
  kFull,
  kNoMcvJoins,
  kNaiveProduct,
};

/// Cost-model backend used where the serving layer ranks whole candidate
/// plans (costmodel::CostGuidedOptimizer, bench/cost_model_bakeoff). The
/// DP planner always prices operators with the analytic model during join
/// search; this knob selects what scores the *finished* candidates. Part
/// of serve::PlanCacheKey — flipping the backend must not serve plans
/// ranked by the other model. See docs/cost_models.md.
enum class CostModelBackend {
  kAnalytic,
  kLearnedMlp,
};

struct DbConfig {
  std::string name = "default";

  // --- Join order ---------------------------------------------------------
  /// Genetic query optimization for large join counts.
  bool geqo = true;
  /// Number of FROM items at which the planner switches from DP to GEQO.
  int32_t geqo_threshold = 12;
  /// When 1, the join order follows the FROM-clause order (no reordering).
  int32_t join_collapse_limit = 8;
  /// Seed mixed into GEQO's per-query RNG stream (pglite's geqo_seed).
  /// Planner::Plan threads it into GeqoParams, so two databases with the
  /// same configuration — including CloneContextForWorker replicas and
  /// fuzzer replays — genetically plan the same query identically.
  uint64_t geqo_seed = 0;

  // --- Working memory (MB) ------------------------------------------------
  int64_t work_mem_mb = 4;
  int64_t shared_buffers_mb = 128;
  int64_t temp_buffers_mb = 8;
  int64_t effective_cache_size_mb = 4096;
  /// Physical RAM of the simulated machine; sizes the OS page-cache tier.
  int64_t ram_mb = 64 * 1024;

  // --- Parallelization ----------------------------------------------------
  int32_t max_parallel_workers = 8;
  int32_t max_parallel_workers_per_gather = 8;
  int32_t max_worker_processes = 2;

  // --- Scan types ---------------------------------------------------------
  bool enable_seqscan = true;
  bool enable_indexscan = true;
  bool enable_bitmapscan = true;
  bool enable_tidscan = true;

  // --- Join methods -------------------------------------------------------
  bool enable_nestloop = true;
  bool enable_hashjoin = true;
  bool enable_mergejoin = true;

  /// Allow bushy join trees in the DP planner (left-deep only when false).
  bool enable_bushy = true;

  /// Simulated-time budget per query execution; exceeding it aborts the
  /// query (the paper's experiments time out long-running queries).
  int64_t statement_timeout_ms = 3 * 60 * 1000;

  /// Estimator variant (ablation bench only; kFull elsewhere).
  EstimatorMode estimator_mode = EstimatorMode::kFull;

  /// Which cost model ranks candidate plans at the serving layer (see
  /// CostModelBackend above). kAnalytic everywhere except learned-cost
  /// serving experiments.
  CostModelBackend cost_model_backend = CostModelBackend::kAnalytic;

  // --- Execution engine ---------------------------------------------------
  /// Batch-at-a-time oracle/executor hot path (exec/kernels.h). When false
  /// the original tuple-at-a-time code runs; both produce byte-identical
  /// row sets, so the scalar path stays available as the differential
  /// reference for tests/test_kernels.cc and the fuzzer. Not part of
  /// serve::PlanCacheKey — the planner never reads it.
  bool vectorized_exec = true;
  /// Bloom-filter sideways information passing during semi-join reduction
  /// (docs/execution.md): build a Bloom filter over the transfer side and
  /// pre-test probe keys before the exact hash lookup. Pure fast path —
  /// results are identical with it on or off. Only read when
  /// vectorized_exec is true.
  bool predicate_transfer = true;

  /// Multiplier applied to equi-join selectivities, clamped to [.., 1].
  /// Lero generates its candidate plans by sweeping this knob (its
  /// "changing the internal cardinality estimations").
  double join_selectivity_scale = 1.0;

  // --- Storage layout -----------------------------------------------------
  /// Opt-in table sharding: when > 1, the stored tables are hash-partitioned
  /// into this many shards (storage::ShardedTableSet) at build time, scans
  /// run shard-at-a-time over dense per-shard column segments, and the
  /// buffer cache splits into one pool per shard (docs/parallelism.md).
  /// Results, plans and cardinalities are byte-identical to the unsharded
  /// layout (locked by `ctest -L shard` and the fuzzer's sharded arm);
  /// only the virtual cache-hit pattern may shift, because each shard has
  /// its own LRU. Build-time only: Database::TrySetConfig preserves the
  /// built value (a config carrying a different shard count applies its
  /// other fields and keeps the existing layout), and like vectorized_exec
  /// it is not part of
  /// serve::PlanCacheKey — the planner never reads it. 1 = disabled;
  /// valid range up to storage::ShardedTableSet::kMaxShards (64).
  int32_t table_shards = 1;

  // --- Mid-query adaptive re-optimization (docs/overload.md) -------------
  /// Cancel-and-replan when an observed node cardinality diverges from the
  /// planner's estimate by more than replan_qerror_threshold: the executor
  /// stops, the observed prefix truths are pinned into the estimator, the
  /// remainder is re-planned and re-executed. Off by default — results are
  /// byte-identical either way (locked by the replan differential suite);
  /// only latency and plan choice change. Like vectorized_exec, not part of
  /// serve::PlanCacheKey — the *initial* plan is unaffected.
  bool adaptive_replan = false;
  /// Divergence trigger: max(actual/est, est/actual) >= threshold.
  double replan_qerror_threshold = 8.0;
  /// ... on subsets where max(actual, estimate) >= this many rows.
  int64_t replan_min_rows = 1024;
  /// Replan rounds per query before the current plan is run to completion.
  int32_t replan_max_per_query = 2;

  // --- Presets of Table 2 -------------------------------------------------
  /// PostgreSQL defaults.
  static DbConfig Default();
  /// The configuration recommended by Leis et al. for JOB.
  static DbConfig JobPaper();
  /// Bao's published configuration (15 GB machine).
  static DbConfig Bao();
  /// Balsa's / LEON's configuration (disables bitmap & tid scans).
  static DbConfig BalsaLeon();
  /// LOGER's configuration (256 GB machine, no parallelism).
  static DbConfig Loger();
  /// Lero's configuration (512 GB machine, no parallelism).
  static DbConfig Lero();
  /// The paper's framework configuration ("Our Framework" column).
  static DbConfig OurFramework();

  /// All presets, in Table 2 column order.
  static std::vector<DbConfig> Table2Presets();
};

}  // namespace lqolab::engine

#endif  // LQOLAB_ENGINE_CONFIG_H_
