#include "engine/exec_batch.h"

#include "exec/oracle.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace lqolab::engine {

BatchExecutor::BatchExecutor(Database* db, uint64_t global_seed,
                             int32_t parallelism)
    : seed_(global_seed), pool_(parallelism) {
  LQOLAB_CHECK(db != nullptr);
  replicas_.reserve(static_cast<size_t>(pool_.size()));
  for (int32_t w = 0; w < pool_.size(); ++w) {
    replicas_.push_back(db->CloneContextForWorker());
  }
}

BatchExecutor::~BatchExecutor() = default;

std::vector<QueryRun> BatchExecutor::Execute(
    const std::vector<PlanExec>& batch) {
  // Assign warm-up stages serially in batch order, so the replayed history
  // matches a serial execution of the same batches.
  std::vector<int64_t> run_index(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    LQOLAB_CHECK(batch[i].query != nullptr);
    LQOLAB_CHECK(batch[i].plan != nullptr);
    run_index[i] = exec_counts_[exec::QueryFingerprint(*batch[i].query)]++;
  }
  std::vector<QueryRun> runs(batch.size());
  // Same per-worker-registry merge as ParallelRunner::ForEachQuery: worker
  // threads collect into private registries, summed into the caller's
  // afterwards so totals match a serial execution of the batch.
  obs::MetricsRegistry* parent_metrics = obs::MetricsRegistry::Current();
  std::vector<obs::MetricsRegistry> worker_metrics(
      parent_metrics != nullptr ? static_cast<size_t>(pool_.size()) : 0);
  pool_.ParallelFor(
      static_cast<int64_t>(batch.size()), [&](int32_t worker, int64_t i) {
        obs::MetricsScope scope(
            worker_metrics.empty()
                ? nullptr
                : &worker_metrics[static_cast<size_t>(worker)]);
        Database* db = replicas_[static_cast<size_t>(worker)].get();
        const PlanExec& task = batch[static_cast<size_t>(i)];
        const int64_t stage = run_index[static_cast<size_t>(i)];
        db->BeginQueryReplay(seed_, *task.query,
                             static_cast<uint64_t>(stage));
        db->SetWarmupStage(*task.query, stage);
        runs[static_cast<size_t>(i)] =
            db->ExecutePlan(*task.query, *task.plan, 0, task.timeout_ns);
      });
  for (const obs::MetricsRegistry& m : worker_metrics) {
    parent_metrics->MergeFrom(m);
  }
  return runs;
}

}  // namespace lqolab::engine
