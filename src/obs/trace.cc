#include "obs/trace.h"

#include <cmath>
#include <cstdio>

namespace lqolab::obs {

JsonObject& JsonObject::Set(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, double value) {
  // JSON has no NaN/Infinity literal — a bare `nan` from %g corrupts the
  // whole line for any conforming reader. Non-finite values (e.g. a
  // diverged model's prediction) are data loss in one field, not in the
  // record: emit null and let readers skip the field.
  if (!std::isfinite(value)) {
    fields_.emplace_back(key, "null");
    return *this;
  }
  // %.12g round-trips every value the framework emits (losses, ratios)
  // while keeping lines compact; integers print without a trailing ".0".
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::SetRaw(const std::string& key, std::string raw_json) {
  fields_.emplace_back(key, std::move(raw_json));
  return *this;
}

std::string JsonObject::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonObject::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + fields_[i].first + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

TraceWriter::TraceWriter(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {}

void TraceWriter::Write(const JsonObject& record) {
  out_ << record.ToString() << "\n";
  out_.flush();
  ++records_;
}

void WriteMetricsTrace(const MetricsRegistry& metrics, TraceWriter* trace) {
  JsonObject record;
  record.Set("type", "metrics");
  const std::string json = metrics.ToJson();
  // ToJson() renders {"counters":...,"histograms":...}; splice its two
  // members into this record rather than nesting a redundant object.
  record.SetRaw("metrics", json);
  trace->Write(record);
}

}  // namespace lqolab::obs
