#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace lqolab::obs {

namespace internal {
thread_local MetricsRegistry* g_current_registry = nullptr;
}  // namespace internal

namespace {

struct CounterInfo {
  const char* name;
  const char* layer;
};

constexpr CounterInfo kCounterInfo[] = {
    {"buffer_shared_hits", "storage"},
    {"buffer_os_hits", "storage"},
    {"buffer_disk_reads", "storage"},
    {"buffer_evictions", "storage"},
    {"exec_pages_accessed", "exec"},
    {"exec_plans_executed", "exec"},
    {"exec_timeouts", "exec"},
    {"exec_cancelled", "exec"},
    {"oracle_cardinality_calls", "exec"},
    {"exec_replans", "exec"},
    {"exec_replan_no_change", "exec"},
    {"exec_replan_capped", "exec"},
    {"planner_invocations", "optimizer"},
    {"planner_dp_subproblems", "optimizer"},
    {"planner_geqo_generations", "optimizer"},
    {"planner_geqo_plans_costed", "optimizer"},
    {"hint_sets_planned", "lqo"},
    {"hint_failures", "lqo"},
    {"train_episodes", "lqo"},
    {"plan_cache_hits", "serve"},
    {"plan_cache_misses", "serve"},
    {"plan_cache_evictions", "serve"},
    {"serve_queries", "serve"},
    {"serve_rejected", "serve"},
    {"serve_fallbacks", "serve"},
    {"serve_lqo_planned", "serve"},
    {"serve_model_swaps", "serve"},
    {"serve_retries", "serve"},
    {"serve_shutdown_dropped", "serve"},
    {"serve_infer_faults", "serve"},
    {"serve_breaker_trips", "serve"},
    {"serve_breaker_short_circuits", "serve"},
    {"serve_breaker_probes", "serve"},
    {"serve_breaker_recoveries", "serve"},
    {"serve_sql_queries", "serve"},
    {"serve_sql_rejected", "serve"},
    {"serve_open_loop_queries", "serve"},
    {"serve_shed", "serve"},
    {"serve_deadline_missed", "serve"},
    {"serve_replanned_queries", "serve"},
    {"serve_plan_feedback", "serve"},
    {"costmodel_samples", "costmodel"},
    {"costmodel_trace_skipped", "costmodel"},
    {"costmodel_refreshes", "costmodel"},
    {"costmodel_promotions", "costmodel"},
    {"costmodel_rejections", "costmodel"},
    {"costmodel_drift_alarms", "costmodel"},
    {"fault_injected_errors", "fault"},
    {"fault_injected_latency", "fault"},
    {"fault_injected_poison", "fault"},
};
static_assert(sizeof(kCounterInfo) / sizeof(kCounterInfo[0]) ==
                  static_cast<size_t>(Counter::kCounterCount),
              "kCounterInfo must cover every Counter");

constexpr const char* kHistogramNames[] = {
    "execution_latency_ns",
    "planning_latency_ns",
};
static_assert(sizeof(kHistogramNames) / sizeof(kHistogramNames[0]) ==
                  static_cast<size_t>(Histogram::kHistogramCount),
              "kHistogramNames must cover every Histogram");

}  // namespace

const char* CounterName(Counter c) {
  return kCounterInfo[static_cast<size_t>(c)].name;
}

const char* CounterLayer(Counter c) {
  return kCounterInfo[static_cast<size_t>(c)].layer;
}

const char* HistogramName(Histogram h) {
  return kHistogramNames[static_cast<size_t>(h)];
}

void LogHistogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  const int32_t b = std::bit_width(static_cast<uint64_t>(value));
  ++buckets_[static_cast<size_t>(b)];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void LogHistogram::MergeFrom(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  for (size_t i = 0; i < histograms_.size(); ++i) {
    histograms_[i].MergeFrom(other.histograms_[i]);
  }
}

void MetricsRegistry::Reset() {
  counters_.fill(0);
  for (auto& h : histograms_) h = LogHistogram();
}

std::string MetricsRegistry::ToJson() const {
  // Counter names are fixed identifiers, so no string escaping is needed.
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << kCounterInfo[i].name << "\":" << counters_[i];
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const LogHistogram& h = histograms_[i];
    if (i > 0) os << ",";
    os << "\"" << kHistogramNames[i] << "\":{\"count\":" << h.count()
       << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
       << ",\"max\":" << h.max() << ",\"buckets\":[";
    bool first = true;
    for (int32_t b = 0; b < LogHistogram::kBuckets; ++b) {
      if (h.bucket(b) == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "[" << b << "," << h.bucket(b) << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream os;
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] == 0) continue;
    os << kCounterInfo[i].layer << " " << kCounterInfo[i].name << " "
       << counters_[i] << "\n";
  }
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const LogHistogram& h = histograms_[i];
    if (h.count() == 0) continue;
    os << kHistogramNames[i] << " count=" << h.count() << " sum=" << h.sum()
       << " min=" << h.min() << " max=" << h.max() << "\n";
  }
  return os.str();
}

}  // namespace lqolab::obs
