#ifndef LQOLAB_OBS_METRICS_H_
#define LQOLAB_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

namespace lqolab::obs {

/// Identity of every counter the engine can emit. Counters are fixed at
/// compile time so the hot-path increment is an array add, not a hash
/// lookup; names/layers for rendering live in CounterName()/CounterLayer()
/// and the reference table in docs/observability.md.
enum class Counter : int32_t {
  // storage
  kBufferSharedHits = 0,  ///< Page served from shared buffers.
  kBufferOsHits,          ///< Page served from the OS page-cache tier.
  kBufferDiskReads,       ///< Page read from (virtual) disk.
  kBufferEvictions,       ///< LRU evictions across both cache tiers.
  // exec
  kExecPagesAccessed,       ///< Buffer-pool operations charged by the executor.
  kExecPlansExecuted,       ///< Plan executions through engine::Database.
  kExecTimeouts,            ///< Executions that hit the statement timeout.
  kExecCancelled,           ///< Executions aborted by a QueryDeadline cancel.
  kOracleCardinalityCalls,  ///< True-cardinality requests to exec::Oracle.
  kExecReplans,             ///< Mid-query cancel-and-replan rounds taken.
  kExecReplanNoChange,      ///< Replans whose new plan equalled the old one.
  kExecReplanCapped,        ///< Final attempts forced straight-through by
                            ///< the replan_max_per_query cap.
  // optimizer
  kPlannerInvocations,      ///< Planner::Plan entry points.
  kPlannerDpSubproblems,    ///< DP subproblems enumerated (join-order search).
  kPlannerGeqoGenerations,  ///< GEQO generations evolved.
  kPlannerGeqoPlansCosted,  ///< Join orders costed by GEQO fitness.
  // lqo
  kHintSetsPlanned,  ///< Bao-style per-hint-set planner round trips.
  kHintFailures,     ///< Plans that violated their hint set (soft enable_*).
  kTrainEpisodes,    ///< LQO training episodes recorded.
  // serve
  kPlanCacheHits,       ///< Plan-cache lookups served from the cache.
  kPlanCacheMisses,     ///< Plan-cache lookups that had to plan.
  kPlanCacheEvictions,  ///< Cached plans dropped (capacity or Clear).
  kServeQueries,        ///< Queries served to completion by a QueryServer.
  kServeRejected,       ///< Admissions rejected on a full queue (TrySubmit).
  kServeFallbacks,      ///< LQO-plan timeouts re-executed on the pglite plan.
  kServeLqoPlanned,     ///< Inference calls through the published model.
  kServeModelSwaps,     ///< Models published to a hot-swap slot.
  kServeRetries,        ///< Re-executions after a retryable transient fault.
  kServeShutdownDropped,  ///< Queued queries surfaced as kShutdown at drain.
  kServeInferFaults,      ///< Inference faults absorbed by routing native.
  kServeBreakerTrips,          ///< Circuit breaker kClosed -> kOpen edges.
  kServeBreakerShortCircuits,  ///< LQO requests short-circuited while open.
  kServeBreakerProbes,         ///< Half-open probe requests let through.
  kServeBreakerRecoveries,     ///< Circuit breaker kHalfOpen -> kClosed edges.
  kServeSqlQueries,       ///< SQL-text admissions parsed and bound (SubmitSql).
  kServeSqlRejected,      ///< SQL-text admissions refused at parse/bind.
  kServeOpenLoopQueries,  ///< Open-loop (SubmitAt) admissions accepted.
  kServeShed,             ///< Admissions shed: predicted wait > deadline.
  kServeDeadlineMissed,   ///< Completions past their arrival-stamped deadline.
  kServeReplannedQueries,  ///< Served queries that took >= 1 adaptive replan.
  kServePlanFeedback,  ///< Corrected plans + pins written back to the cache.
  // costmodel (the online cost-model refresh loop; docs/cost_models.md)
  kCostmodelSamples,       ///< Served executions harvested into the buffer.
  kCostmodelTraceSkipped,  ///< Corrupt trace records skipped at ingestion.
  kCostmodelRefreshes,     ///< Refresh steps that trained a candidate.
  kCostmodelPromotions,    ///< Candidates promoted past the regression gate.
  kCostmodelRejections,    ///< Candidates refused by the regression gate.
  kCostmodelDriftAlarms,   ///< Rolling-Q-error drift alarms (trip breaker).
  // faultlib
  kFaultInjectedErrors,   ///< kError fault-point fires.
  kFaultInjectedLatency,  ///< kLatency fault-point fires.
  kFaultInjectedPoison,   ///< kPoison fault-point fires.
  kCounterCount           ///< Sentinel; not a counter.
};

/// Identity of every histogram. Same fixed-enum scheme as Counter.
enum class Histogram : int32_t {
  kExecutionLatencyNs = 0,  ///< Per-execution virtual latency.
  kPlanningLatencyNs,       ///< Per-query modeled planning time.
  kHistogramCount           ///< Sentinel; not a histogram.
};

/// Stable snake_case name of a counter (used as its JSON key).
const char* CounterName(Counter c);
/// Layer that emits the counter ("storage", "exec", "optimizer", "lqo",
/// "serve", "costmodel", "fault").
const char* CounterLayer(Counter c);
/// Stable snake_case name of a histogram.
const char* HistogramName(Histogram h);

/// Power-of-two-bucket histogram of non-negative int64 values: value v
/// lands in bucket bit_width(v). Fixed layout makes Observe O(1), merges
/// a plain element-wise add, and the whole thing trivially deterministic.
class LogHistogram {
 public:
  static constexpr int32_t kBuckets = 64;

  /// Records one value (negatives clamp to 0).
  void Observe(int64_t value);

  /// Element-wise accumulation of `other` into this.
  void MergeFrom(const LogHistogram& other);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  /// Smallest/largest observed value (0 when empty).
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  /// Count in bucket `i` (values v with bit_width(v) == i).
  int64_t bucket(int32_t i) const { return buckets_[static_cast<size_t>(i)]; }

 private:
  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// A set of named counters and histograms. Plain mutable state with no
/// internal locking: one registry is only ever written by one thread at a
/// time (the parallel runners give each worker its own registry and merge —
/// counter addition commutes, so aggregates equal the serial run's).
///
/// Collection is opt-in per thread via MetricsScope. With no scope
/// installed, Current() is nullptr and every instrumentation site reduces
/// to a thread-local load and a branch — the "disabled" cost. Instrumented
/// code must never charge virtual time or mutate engine state for metrics,
/// so enabling collection cannot change any measured number.
class MetricsRegistry {
 public:
  void Add(Counter c, int64_t delta) {
    counters_[static_cast<size_t>(c)] += delta;
  }
  int64_t Get(Counter c) const { return counters_[static_cast<size_t>(c)]; }

  void Observe(Histogram h, int64_t value) {
    histograms_[static_cast<size_t>(h)].Observe(value);
  }
  const LogHistogram& histogram(Histogram h) const {
    return histograms_[static_cast<size_t>(h)];
  }

  /// Accumulates all counters and histograms of `other` into this.
  void MergeFrom(const MetricsRegistry& other);

  /// Zeroes every counter and histogram.
  void Reset();

  /// One JSON object: {"counters":{...},"histograms":{...}}. Histogram
  /// buckets are emitted sparsely as [bucket_index, count] pairs.
  std::string ToJson() const;

  /// Human-readable "layer name value" lines for non-zero counters plus
  /// count/sum/min/max per non-empty histogram.
  std::string ToText() const;

  /// The registry collecting on this thread, or nullptr when collection is
  /// disabled (the default).
  static MetricsRegistry* Current();

 private:
  std::array<int64_t, static_cast<size_t>(Counter::kCounterCount)> counters_{};
  std::array<LogHistogram, static_cast<size_t>(Histogram::kHistogramCount)>
      histograms_{};
};

namespace internal {
extern thread_local MetricsRegistry* g_current_registry;
}  // namespace internal

inline MetricsRegistry* MetricsRegistry::Current() {
  return internal::g_current_registry;
}

/// RAII installer: makes `registry` the calling thread's collection target
/// for its lifetime, restoring the previous target (usually nullptr) on
/// destruction. Pass nullptr to disable collection within the scope.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry* registry)
      : saved_(internal::g_current_registry) {
    internal::g_current_registry = registry;
  }
  ~MetricsScope() { internal::g_current_registry = saved_; }

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsRegistry* saved_;
};

/// Increments `c` on the thread's current registry; no-op when disabled.
inline void Count(Counter c, int64_t delta = 1) {
  if (MetricsRegistry* r = MetricsRegistry::Current()) r->Add(c, delta);
}

/// Records `value` into `h` on the thread's current registry; no-op when
/// disabled.
inline void Observe(Histogram h, int64_t value) {
  if (MetricsRegistry* r = MetricsRegistry::Current()) r->Observe(h, value);
}

}  // namespace lqolab::obs

#endif  // LQOLAB_OBS_METRICS_H_
