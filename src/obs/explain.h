#ifndef LQOLAB_OBS_EXPLAIN_H_
#define LQOLAB_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "exec/executor.h"
#include "optimizer/physical_plan.h"
#include "query/query.h"
#include "util/virtual_clock.h"

namespace lqolab::obs {

/// Everything needed to render one executed plan: the plan tree, the
/// planner's estimates and the executor's per-node statistics (parallel to
/// plan->nodes). Assembled by engine::Database::ExplainAnalyze*.
struct ExplainInput {
  const query::Query* query = nullptr;
  const catalog::Schema* schema = nullptr;
  const optimizer::PhysicalPlan* plan = nullptr;
  /// Estimated output rows per plan node (estimator view).
  std::vector<double> estimated_rows;
  /// Actual rows/loops/time/buffers per plan node (executor view).
  std::vector<exec::PlanNodeStats> node_stats;
  util::VirtualNanos planning_ns = 0;
  util::VirtualNanos execution_ns = 0;
  bool timed_out = false;
};

/// PostgreSQL-style text rendering: one line per operator with estimated
/// vs actual rows, loops, inclusive/self time, followed by a per-node
/// `Buffers:` line and the planning/execution time summary. A worked
/// example lives in docs/observability.md.
std::string ExplainAnalyzeText(const ExplainInput& in);

/// Single-line JSON rendering of the same data: a nested plan tree
/// ("children" arrays) under {"query",...,"plan":{...}}; key reference in
/// docs/observability.md.
std::string ExplainAnalyzeJson(const ExplainInput& in);

}  // namespace lqolab::obs

#endif  // LQOLAB_OBS_EXPLAIN_H_
