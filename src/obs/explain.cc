#include "obs/explain.h"

#include <functional>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace lqolab::obs {

using optimizer::PhysicalPlan;
using optimizer::PlanNode;
using util::VirtualNanos;

namespace {

/// Inclusive time of the subtree rooted at `i` (self times summed; probed
/// index-NLJ inner scans charge to the join, so their self time is 0).
VirtualNanos SubtreeTime(const ExplainInput& in, int32_t i) {
  const PlanNode& node = in.plan->node(i);
  VirtualNanos total = in.node_stats[static_cast<size_t>(i)].self_time_ns;
  if (node.type == PlanNode::Type::kJoin) {
    total += SubtreeTime(in, node.left);
    total += SubtreeTime(in, node.right);
  }
  return total;
}

std::string NodeLabel(const ExplainInput& in, const PlanNode& node) {
  std::ostringstream os;
  if (node.type == PlanNode::Type::kScan) {
    const auto& rel = in.query->relations[static_cast<size_t>(node.alias)];
    os << optimizer::ScanTypeName(node.scan_type) << " on "
       << in.schema->table(rel.table).name << " " << rel.alias;
  } else {
    os << optimizer::JoinAlgoName(node.algo);
  }
  return os.str();
}

void RenderNodeText(const ExplainInput& in, int32_t i, int depth,
                    std::ostringstream& os) {
  const PlanNode& node = in.plan->node(i);
  const exec::PlanNodeStats& stats = in.node_stats[static_cast<size_t>(i)];
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  os << indent << "-> " << NodeLabel(in, node) << "  (est rows="
     << static_cast<int64_t>(in.estimated_rows[static_cast<size_t>(i)])
     << ") (actual rows=" << stats.actual_rows << " loops=" << stats.loops
     << " time=" << util::FormatDuration(SubtreeTime(in, i))
     << " self=" << util::FormatDuration(stats.self_time_ns) << ")\n";
  os << indent << "   Buffers: shared hit=" << stats.shared_hits
     << " os hit=" << stats.os_hits << " read=" << stats.disk_reads << "\n";
  if (node.type == PlanNode::Type::kJoin) {
    RenderNodeText(in, node.left, depth + 1, os);
    RenderNodeText(in, node.right, depth + 1, os);
  }
}

std::string RenderNodeJson(const ExplainInput& in, int32_t i) {
  const PlanNode& node = in.plan->node(i);
  const exec::PlanNodeStats& stats = in.node_stats[static_cast<size_t>(i)];
  JsonObject o;
  if (node.type == PlanNode::Type::kScan) {
    const auto& rel = in.query->relations[static_cast<size_t>(node.alias)];
    o.Set("node", optimizer::ScanTypeName(node.scan_type));
    o.Set("relation", in.schema->table(rel.table).name);
    o.Set("alias", rel.alias);
  } else {
    o.Set("node", optimizer::JoinAlgoName(node.algo));
  }
  o.Set("est_rows", in.estimated_rows[static_cast<size_t>(i)]);
  o.Set("actual_rows", stats.actual_rows);
  o.Set("loops", stats.loops);
  o.Set("total_time_ns", SubtreeTime(in, i));
  o.Set("self_time_ns", stats.self_time_ns);
  o.Set("shared_hits", stats.shared_hits);
  o.Set("os_hits", stats.os_hits);
  o.Set("disk_reads", stats.disk_reads);
  if (node.type == PlanNode::Type::kJoin) {
    o.SetRaw("children", "[" + RenderNodeJson(in, node.left) + "," +
                             RenderNodeJson(in, node.right) + "]");
  }
  return o.ToString();
}

void CheckInput(const ExplainInput& in) {
  LQOLAB_CHECK(in.query != nullptr);
  LQOLAB_CHECK(in.schema != nullptr);
  LQOLAB_CHECK(in.plan != nullptr && !in.plan->empty());
  LQOLAB_CHECK_EQ(in.estimated_rows.size(), in.plan->nodes.size());
  LQOLAB_CHECK_EQ(in.node_stats.size(), in.plan->nodes.size());
}

}  // namespace

std::string ExplainAnalyzeText(const ExplainInput& in) {
  CheckInput(in);
  std::ostringstream os;
  os << "EXPLAIN ANALYZE " << in.query->id << "\n";
  RenderNodeText(in, in.plan->root, 0, os);
  int64_t shared = 0, os_hits = 0, disk = 0;
  for (const auto& stats : in.node_stats) {
    shared += stats.shared_hits;
    os_hits += stats.os_hits;
    disk += stats.disk_reads;
  }
  os << "Buffers: shared hit=" << shared << " os hit=" << os_hits
     << " read=" << disk << "\n";
  os << "Planning Time: " << util::FormatDuration(in.planning_ns) << "\n";
  os << "Execution Time: " << util::FormatDuration(in.execution_ns);
  if (in.timed_out) os << " (TIMED OUT)";
  os << "\n";
  return os.str();
}

std::string ExplainAnalyzeJson(const ExplainInput& in) {
  CheckInput(in);
  JsonObject o;
  o.Set("query", in.query->id);
  o.Set("planning_ns", in.planning_ns);
  o.Set("execution_ns", in.execution_ns);
  o.Set("timed_out", in.timed_out);
  o.SetRaw("plan", RenderNodeJson(in, in.plan->root));
  return o.ToString();
}

}  // namespace lqolab::obs
