#ifndef LQOLAB_OBS_TRACE_H_
#define LQOLAB_OBS_TRACE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace lqolab::obs {

/// Tiny insertion-ordered JSON object builder — just enough for the flat
/// (occasionally one-level-nested via SetRaw) records of the JSONL trace
/// format; not a general JSON library.
class JsonObject {
 public:
  /// Scalar setters; keys must be plain identifiers (not escaped).
  JsonObject& Set(const std::string& key, int64_t value);
  JsonObject& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JsonObject& Set(const std::string& key, double value);
  JsonObject& Set(const std::string& key, bool value);
  JsonObject& Set(const std::string& key, const std::string& value);
  JsonObject& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }

  /// Inserts `raw_json` verbatim as the value (for nested objects/arrays
  /// the caller already rendered).
  JsonObject& SetRaw(const std::string& key, std::string raw_json);

  /// Renders the object on one line, fields in insertion order.
  std::string ToString() const;

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string Escape(const std::string& s);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Line-oriented JSONL trace file: one JSON object per line, flushed per
/// record so partial traces of interrupted runs stay readable. Schema of
/// the records the framework emits: docs/observability.md.
class TraceWriter {
 public:
  /// Opens (truncates) `path`; check ok() before relying on output.
  explicit TraceWriter(const std::string& path);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// True when the file opened and every write so far succeeded.
  bool ok() const { return out_.good(); }
  const std::string& path() const { return path_; }
  int64_t records_written() const { return records_; }

  /// Appends one record as a single line.
  void Write(const JsonObject& record);

 private:
  std::string path_;
  std::ofstream out_;
  int64_t records_ = 0;
};

/// Appends one {"type":"metrics",...} record with every counter and
/// histogram of `metrics` (the aggregate snapshot of a bench run).
void WriteMetricsTrace(const MetricsRegistry& metrics, TraceWriter* trace);

}  // namespace lqolab::obs

#endif  // LQOLAB_OBS_TRACE_H_
